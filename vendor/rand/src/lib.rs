//! Offline, API-compatible subset of `rand` 0.8.
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace vendors the small slice of the `rand` surface it actually
//! uses: `StdRng` + `SeedableRng::seed_from_u64`, the `Rng` extension
//! methods (`gen`, `gen_range`, `gen_bool`), and `seq::SliceRandom::shuffle`.
//!
//! `StdRng` here is xoshiro256++ seeded through SplitMix64 — a different
//! stream than upstream's ChaCha12, but the repository only relies on
//! *determinism for a fixed seed*, never on a specific stream.

use core::ops::{Range, RangeInclusive};

/// Core random-number generation primitives.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// A seedable generator.
pub trait SeedableRng: Sized {
    type Seed: AsMut<[u8]> + Default;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self {
        // SplitMix64 seed expansion, same scheme upstream uses.
        let mut sm = SplitMix64(state);
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types that `Rng::gen` can produce uniformly.
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types with a uniform sampler over a range.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Uniform sample from `[low, high_incl]`.
    fn sample_incl<R: RngCore + ?Sized>(rng: &mut R, low: Self, high_incl: Self) -> Self;

    /// Uniform sample from `[low, high_excl)`.
    fn sample_excl<R: RngCore + ?Sized>(rng: &mut R, low: Self, high_excl: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_incl<R: RngCore + ?Sized>(rng: &mut R, low: Self, high_incl: Self) -> Self {
                assert!(low <= high_incl, "cannot sample empty range");
                let span = (high_incl as i128 - low as i128) as u128 + 1;
                // Widening-multiply mapping (Lemire); the slight bias over a
                // 64-bit stream is irrelevant for the simulation's purposes.
                let x = rng.next_u64() as u128;
                let v = (x * span) >> 64;
                (low as i128 + v as i128) as $t
            }

            fn sample_excl<R: RngCore + ?Sized>(rng: &mut R, low: Self, high_excl: Self) -> Self {
                assert!(low < high_excl, "cannot sample empty range");
                Self::sample_incl(rng, low, high_excl - 1)
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_incl<R: RngCore + ?Sized>(rng: &mut R, low: Self, high_incl: Self) -> Self {
        let u = f64::sample_standard(rng);
        low + u * (high_incl - low)
    }

    fn sample_excl<R: RngCore + ?Sized>(rng: &mut R, low: Self, high_excl: Self) -> Self {
        Self::sample_incl(rng, low, high_excl)
    }
}

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_excl(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        T::sample_incl(rng, low, high)
    }
}

/// Convenience extension methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // Avoid the all-zero state, which xoshiro never escapes.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(3u16..=5);
            assert!((3..=5).contains(&w));
        }
    }

    #[test]
    fn gen_f64_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
