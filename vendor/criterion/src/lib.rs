//! Offline, API-compatible subset of `criterion`.
//!
//! Provides `Criterion::bench_function`, `Bencher::iter`, `black_box`, and
//! the `criterion_group!`/`criterion_main!` macros. Measurement is a simple
//! calibrated wall-clock loop — adequate for relative comparisons of the
//! repository's hot paths, with none of criterion's statistics machinery.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock time per benchmark measurement.
const MEASURE_TARGET: Duration = Duration::from_millis(200);

#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };

        // Calibrate: grow the iteration count until a run takes long enough
        // to time meaningfully.
        loop {
            b.elapsed = Duration::ZERO;
            f(&mut b);
            if b.elapsed >= Duration::from_millis(10) || b.iters >= 1 << 30 {
                break;
            }
            b.iters *= 8;
        }

        let per_run = b.elapsed;
        let runs = (MEASURE_TARGET.as_nanos() / per_run.as_nanos().max(1)).clamp(1, 1000) as u32;
        let mut best = per_run;
        for _ in 1..runs {
            b.elapsed = Duration::ZERO;
            f(&mut b);
            if b.elapsed < best {
                best = b.elapsed;
            }
        }

        let ns_per_iter = best.as_nanos() as f64 / b.iters as f64;
        println!("{name:<40} {ns_per_iter:>12.2} ns/iter ({} iters)", b.iters);
        self
    }
}

pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed += start.elapsed();
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
    (name = $group:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let _ = $cfg;
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        #[allow(dead_code)]
        fn main() {
            $($group();)+
        }
    };
}
