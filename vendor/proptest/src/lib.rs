//! Offline, API-compatible subset of `proptest`.
//!
//! The build environment has no crates.io access, so this crate supplies the
//! slice of the proptest surface the test suite uses: the `proptest!` macro,
//! `Strategy` with `prop_map`, range/`any`/`Just`/tuple/`vec`/`option`
//! strategies, weighted `prop_oneof!`, `prop_assert*!`, `prop_assume!`, and
//! `ProptestConfig { cases }`.
//!
//! Failing inputs are **not shrunk**; the panic message reports the seed and
//! case number instead, which is enough to reproduce deterministically.

use rand::rngs::StdRng;
use rand::Rng;

pub mod strategy {
    use super::*;

    /// A generator of values of type `Self::Value`.
    pub trait Strategy {
        type Value;

        fn sample(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;

        fn sample(&self, rng: &mut StdRng) -> T {
            (**self).sample(rng)
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// `s.prop_map(f)`.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn sample(&self, rng: &mut StdRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Weighted union over same-valued strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total_weight: u64,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            let total_weight = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total_weight > 0, "prop_oneof! weights sum to zero");
            Union { arms, total_weight }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn sample(&self, rng: &mut StdRng) -> T {
            let mut pick = rng.gen_range(0..self.total_weight);
            for (w, s) in &self.arms {
                if pick < *w as u64 {
                    return s.sample(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weights covered above")
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut StdRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    /// `any::<T>()`.
    pub struct Any<T>(core::marker::PhantomData<T>);

    pub fn any<T: rand::Standard>() -> Any<T> {
        Any(core::marker::PhantomData)
    }

    impl<T: rand::Standard> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut StdRng) -> T {
            rng.gen()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
}

pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Element-count bound accepted by [`fn@vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_incl: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_incl: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi_incl: r.end - 1 }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi_incl: *r.end() }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.size.lo..=self.size.hi_incl);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod array {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;

    pub struct UniformArrayStrategy<S, const N: usize> {
        element: S,
    }

    impl<S: Strategy, const N: usize> Strategy for UniformArrayStrategy<S, N> {
        type Value = [S::Value; N];

        fn sample(&self, rng: &mut StdRng) -> [S::Value; N] {
            core::array::from_fn(|_| self.element.sample(rng))
        }
    }

    macro_rules! uniform_fn {
        ($($name:ident => $n:literal),+ $(,)?) => {$(
            /// An array of `N` independent samples of `element`.
            pub fn $name<S: Strategy>(element: S) -> UniformArrayStrategy<S, $n> {
                UniformArrayStrategy { element }
            }
        )+};
    }
    uniform_fn! {
        uniform2 => 2, uniform3 => 3, uniform4 => 4, uniform8 => 8,
        uniform16 => 16, uniform32 => 32,
    }
}

pub mod option {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    pub struct OptionStrategy<S>(S);

    /// `prop::option::of(s)` — yields `None` about a quarter of the time.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Option<S::Value> {
            if rng.gen_bool(0.25) {
                None
            } else {
                Some(self.0.sample(rng))
            }
        }
    }
}

/// Runner configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 96 keeps the suite quick while still
        // exercising each property broadly (no shrinking here anyway).
        ProptestConfig { cases: 96, max_shrink_iters: 0 }
    }
}

#[doc(hidden)]
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Derives a deterministic per-test RNG from the test name, so every
    /// `cargo test` run sees the same inputs.
    pub fn deterministic_rng(test_name: &str) -> StdRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        StdRng::seed_from_u64(h)
    }
}

/// `prop::` namespace, mirroring `proptest::prelude::prop`.
pub mod prop {
    pub use super::array;
    pub use super::collection;
    pub use super::option;
}

pub mod prelude {
    pub use super::prop;
    pub use super::strategy::{any, Just, Strategy};
    pub use super::ProptestConfig;
    pub use super::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { cfg = { $cfg }; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { cfg = { $crate::ProptestConfig::default() }; $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (cfg = { $cfg:expr };
     $($(#[$meta:meta])*
       fn $name:ident($($p:pat_param in $s:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::deterministic_rng(stringify!($name));
                let __strategies = ($($s,)+);
                for __case in 0..__config.cases {
                    let __values =
                        $crate::strategy::Strategy::sample(&__strategies, &mut __rng);
                    let __outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(move || {
                            let ($($p,)+) = __values;
                            $body
                        }),
                    );
                    if let Err(__panic) = __outcome {
                        eprintln!(
                            "proptest case {}/{} of `{}` failed (deterministic seed; \
                             rerun reproduces it)",
                            __case + 1,
                            __config.cases,
                            stringify!($name),
                        );
                        ::std::panic::resume_unwind(__panic);
                    }
                }
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($w:expr => $s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($w as u32, $crate::strategy::Strategy::boxed($s))),+
        ])
    };
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($s))),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

pub use strategy::Strategy;

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_any(x in 1u32..10, y in any::<u64>(), flag in any::<bool>()) {
            prop_assert!((1..10).contains(&x));
            let _ = (y, flag);
        }

        #[test]
        fn vec_sizes(v in prop::collection::vec(0u8..5, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&b| b < 5));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

        #[test]
        fn config_cases_respected(_x in 0u8..2) {
            // Just needs to run without panicking under a custom config.
        }
    }

    #[derive(Debug, Clone, PartialEq)]
    enum Arm {
        A(u16),
        B,
    }

    proptest! {
        #[test]
        fn oneof_and_map(arm in prop_oneof![3 => (1u16..6).prop_map(Arm::A), 1 => Just(Arm::B)]) {
            match arm {
                Arm::A(v) => prop_assert!((1..6).contains(&v)),
                Arm::B => {}
            }
        }

        #[test]
        fn assume_skips(x in 0u8..10) {
            prop_assume!(x > 3);
            prop_assert!(x > 3);
        }
    }
}
