//! Offline, API-compatible subset of `loom` 0.7.
//!
//! The build environment has no crates.io access, so this vendors the
//! slice of the loom surface the workspace's `--features loom` job uses:
//! [`model`], `sync::atomic`, `thread::{spawn, yield_now}`, and
//! [`cell::UnsafeCell`] with the closure-based access API.
//!
//! Upstream loom exhaustively enumerates interleavings under the C11
//! memory model. This subset cannot do that offline; instead it is a
//! *randomized-schedule stress checker*:
//!
//! - [`model`] runs the closure for many iterations, each with a
//!   different deterministic schedule seed.
//! - Every atomic operation consults the schedule and injects
//!   `yield_now` at pseudo-random points, shaking out orderings a plain
//!   unit test would never hit.
//! - [`cell::UnsafeCell`] tracks concurrent access for real: overlapping
//!   `with_mut`/`with` calls — the data races upstream loom would flag —
//!   panic immediately with a diagnostic.
//!
//! That keeps the contract code written against `loom::*` actually
//! checks something here (protocol violations surface as panics across
//! the seeded iterations), while remaining source-compatible with the
//! real crate if the job is ever pointed at it.

use std::sync::atomic::{AtomicU64 as StdAtomicU64, Ordering as StdOrdering};

/// Iterations [`model`] runs (override with `LOOM_MAX_ITER`).
const DEFAULT_ITERATIONS: u64 = 64;

static MODEL_ACTIVE: StdAtomicU64 = StdAtomicU64::new(0);
static SPAWN_COUNTER: StdAtomicU64 = StdAtomicU64::new(0);

std::thread_local! {
    static SCHEDULE: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

fn set_schedule_seed(seed: u64) {
    SCHEDULE.with(|s| s.set(seed | 1));
}

/// Advances the thread's schedule stream and yields at pseudo-random
/// points. Called before every instrumented atomic operation.
fn schedule_tick() {
    if MODEL_ACTIVE.load(StdOrdering::Relaxed) == 0 {
        return;
    }
    let z = SCHEDULE.with(|s| {
        // xorshift64* step.
        let mut x = s.get();
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        s.set(x);
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    });
    // Yield on ~1/4 of operations; the varying seed per iteration and
    // per thread moves the yield points around.
    if z & 0b11 == 0 {
        std::thread::yield_now();
    }
}

/// Runs `f` under the stress checker: many iterations, each with a
/// distinct deterministic schedule seed perturbing every atomic op.
pub fn model<F>(f: F)
where
    F: Fn() + Sync + Send + 'static,
{
    let iterations = std::env::var("LOOM_MAX_ITER")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_ITERATIONS);
    MODEL_ACTIVE.fetch_add(1, StdOrdering::SeqCst);
    for iter in 0..iterations {
        set_schedule_seed(0x5EED_0000_0000_0001 ^ (iter << 1));
        f();
    }
    MODEL_ACTIVE.fetch_sub(1, StdOrdering::SeqCst);
}

pub mod thread {
    use super::{StdOrdering, SCHEDULE, SPAWN_COUNTER};

    pub use std::thread::JoinHandle;

    /// Spawns a thread with its own schedule stream.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let parent = SCHEDULE.with(|s| s.get());
        let lane = SPAWN_COUNTER.fetch_add(1, StdOrdering::Relaxed);
        std::thread::spawn(move || {
            super::set_schedule_seed(parent ^ lane.rotate_left(31) ^ 0x9E37_79B9_7F4A_7C15);
            f()
        })
    }

    /// Schedule point.
    pub fn yield_now() {
        std::thread::yield_now();
    }
}

pub mod sync {
    pub mod atomic {
        pub use std::sync::atomic::Ordering;

        macro_rules! instrumented_atomic {
            ($name:ident, $std:ty, $value:ty) => {
                /// An atomic whose every operation is a schedule point.
                #[derive(Debug, Default)]
                pub struct $name($std);

                impl $name {
                    pub fn new(value: $value) -> Self {
                        Self(<$std>::new(value))
                    }

                    pub fn load(&self, order: Ordering) -> $value {
                        super::super::schedule_tick();
                        self.0.load(order)
                    }

                    pub fn store(&self, value: $value, order: Ordering) {
                        super::super::schedule_tick();
                        self.0.store(value, order);
                    }

                    pub fn swap(&self, value: $value, order: Ordering) -> $value {
                        super::super::schedule_tick();
                        self.0.swap(value, order)
                    }

                    pub fn compare_exchange(
                        &self,
                        current: $value,
                        new: $value,
                        success: Ordering,
                        failure: Ordering,
                    ) -> Result<$value, $value> {
                        super::super::schedule_tick();
                        self.0.compare_exchange(current, new, success, failure)
                    }
                }
            };
        }

        instrumented_atomic!(AtomicBool, std::sync::atomic::AtomicBool, bool);
        instrumented_atomic!(AtomicU32, std::sync::atomic::AtomicU32, u32);
        instrumented_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);
        instrumented_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);

        /// An atomic pointer whose every operation is a schedule point
        /// (the generic parameter keeps the macro above out of it).
        #[derive(Debug, Default)]
        pub struct AtomicPtr<T>(std::sync::atomic::AtomicPtr<T>);

        impl<T> AtomicPtr<T> {
            pub fn new(value: *mut T) -> Self {
                Self(std::sync::atomic::AtomicPtr::new(value))
            }

            pub fn load(&self, order: Ordering) -> *mut T {
                super::super::schedule_tick();
                self.0.load(order)
            }

            pub fn store(&self, value: *mut T, order: Ordering) {
                super::super::schedule_tick();
                self.0.store(value, order);
            }

            pub fn swap(&self, value: *mut T, order: Ordering) -> *mut T {
                super::super::schedule_tick();
                self.0.swap(value, order)
            }

            pub fn compare_exchange(
                &self,
                current: *mut T,
                new: *mut T,
                success: Ordering,
                failure: Ordering,
            ) -> Result<*mut T, *mut T> {
                super::super::schedule_tick();
                self.0.compare_exchange(current, new, success, failure)
            }
        }

        macro_rules! instrumented_fetch {
            ($name:ident, $value:ty) => {
                impl $name {
                    pub fn fetch_add(&self, value: $value, order: Ordering) -> $value {
                        super::super::schedule_tick();
                        self.0.fetch_add(value, order)
                    }

                    pub fn fetch_sub(&self, value: $value, order: Ordering) -> $value {
                        super::super::schedule_tick();
                        self.0.fetch_sub(value, order)
                    }
                }
            };
        }

        instrumented_fetch!(AtomicU32, u32);
        instrumented_fetch!(AtomicU64, u64);
        instrumented_fetch!(AtomicUsize, usize);
    }
}

pub mod cell {
    use std::sync::atomic::{AtomicI32, Ordering};

    /// An `UnsafeCell` that *tracks* concurrent access: state > 0 counts
    /// readers, -1 marks a writer. Overlap — the data race upstream loom
    /// would report — panics with a diagnostic.
    #[derive(Debug, Default)]
    pub struct UnsafeCell<T> {
        state: AtomicI32,
        value: std::cell::UnsafeCell<T>,
    }

    impl<T> UnsafeCell<T> {
        pub fn new(value: T) -> Self {
            UnsafeCell { state: AtomicI32::new(0), value: std::cell::UnsafeCell::new(value) }
        }

        /// Immutable access; panics on a concurrent mutable access.
        pub fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
            super::schedule_tick();
            let prev = self.state.fetch_add(1, Ordering::AcqRel);
            assert!(prev >= 0, "loom: immutable access raced with a mutable access");
            let result = f(self.value.get());
            self.state.fetch_sub(1, Ordering::AcqRel);
            result
        }

        /// Mutable access; panics on any concurrent access.
        pub fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
            super::schedule_tick();
            let entered = self.state.compare_exchange(0, -1, Ordering::AcqRel, Ordering::Acquire);
            assert!(entered.is_ok(), "loom: mutable access raced with another access");
            let result = f(self.value.get());
            self.state.store(0, Ordering::Release);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    #[test]
    fn model_runs_many_seeded_iterations() {
        let count = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let c = Arc::clone(&count);
        super::model(move || {
            c.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        });
        assert!(count.load(std::sync::atomic::Ordering::Relaxed) >= 2);
    }

    /// Like production users of `loom::cell::UnsafeCell`, the tests wrap
    /// it in a type that asserts its own cross-thread safety contract
    /// (the cell itself is deliberately `!Sync`, matching upstream).
    struct RacyCell(super::cell::UnsafeCell<u64>);
    unsafe impl Send for RacyCell {}
    unsafe impl Sync for RacyCell {}

    #[test]
    fn publish_style_handoff_transfers_values() {
        super::model(|| {
            let flag = Arc::new(AtomicBool::new(false));
            let cell = Arc::new(RacyCell(super::cell::UnsafeCell::new(0)));
            let (f, c) = (Arc::clone(&flag), Arc::clone(&cell));
            let producer = super::thread::spawn(move || {
                c.0.with_mut(|p| unsafe { *p = 7 });
                f.store(true, Ordering::Release);
            });
            while !flag.load(Ordering::Acquire) {
                super::thread::yield_now();
            }
            assert_eq!(cell.0.with(|p| unsafe { *p }), 7);
            producer.join().unwrap();
        });
    }

    #[test]
    fn cell_detects_write_write_races() {
        // Four threads hammer `with_mut` with no synchronization: the
        // access tracker must catch the overlap and panic in at least
        // one of them. (Once one panics mid-access the state stays
        // claimed, so the rest fail fast too.)
        let cell = Arc::new(RacyCell(super::cell::UnsafeCell::new(0)));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let cell = Arc::clone(&cell);
                std::thread::spawn(move || {
                    for _ in 0..200_000 {
                        cell.0.with_mut(|p| unsafe { *p += 1 });
                    }
                })
            })
            .collect();
        let raced = handles.into_iter().map(|h| h.join().is_err()).filter(|&e| e).count();
        assert!(raced > 0, "unsynchronized with_mut calls should be detected");
    }
}
