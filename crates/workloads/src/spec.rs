//! The workload interface and run driver.
//!
//! A workload declares a guest program (methods, call sites, allocation
//! sites), sets up its long-lived guest data structures, and then produces
//! work in *ticks* (one request / document / graph step per tick). The
//! [`execute`] driver assembles the requested runtime configuration,
//! applies the paper's per-workload package filters (ROLP runs) or hand
//! annotations (NG2C runs), rotates guest threads, paces requests, and
//! collects the measurements every bench harness consumes.

use rolp::runtime::{CollectorKind, JvmRuntime, RunReport, RuntimeConfig};
use rolp::PackageFilters;
use rolp_metrics::{PauseRecorder, SimTime};
use rolp_vm::{MutatorCtx, Program, ProgramBuilder, ThreadId};

/// A runnable workload.
pub trait Workload {
    /// Display name (e.g. `"Cassandra WI"`).
    fn name(&self) -> String;

    /// The paper's Table 1 package filters for ROLP runs.
    fn profiling_filters(&self) -> PackageFilters {
        PackageFilters::all()
    }

    /// Number of hand-annotated code locations under NG2C (Table 1's
    /// "NG2C" column equivalent).
    fn annotation_count(&self) -> usize {
        0
    }

    /// Declares the guest program's methods, call sites and allocation
    /// sites into `b`. Called once, before [`Workload::setup`].
    ///
    /// Declaring into a caller-supplied builder (rather than returning a
    /// finished [`Program`]) lets a service harness compose several
    /// tenant workloads into one guest program: each tenant declares its
    /// own method namespace into the shared builder and the harness
    /// builds once.
    fn declare_program(&mut self, b: &mut ProgramBuilder);

    /// Declares this workload alone into a fresh builder and builds it.
    /// Single-tenant drivers ([`execute`] and friends) call this.
    fn build_program(&mut self) -> Program {
        let mut b = ProgramBuilder::new();
        self.declare_program(&mut b);
        b.build()
    }

    /// Registers guest classes and builds initial long-lived structures.
    fn setup(&mut self, rt: &mut JvmRuntime);

    /// Produces one unit of work; returns completed application
    /// operations. The driver calls `complete_ops` on the workload's
    /// behalf with the returned count.
    fn tick(&mut self, ctx: &mut MutatorCtx<'_>) -> u64;

    /// Toggles NG2C hand annotations (the driver enables them exactly for
    /// [`CollectorKind::Ng2c`] runs).
    fn set_annotations(&mut self, _on: bool) {}
}

/// How long to run.
#[derive(Debug, Clone)]
pub struct RunBudget {
    /// Stop after this much simulated time.
    pub sim_time: SimTime,
    /// Drop pauses recorded before this point (the paper discards the
    /// first five minutes of each 30-minute run).
    pub warmup_discard: SimTime,
    /// Hard cap on application operations (safety valve).
    pub max_ops: u64,
}

impl RunBudget {
    /// A budget proportional to the paper's 30-minute runs with a 5-minute
    /// discard, scaled to `secs` simulated seconds.
    pub fn scaled_run(secs: u64) -> Self {
        RunBudget {
            sim_time: SimTime::from_secs(secs),
            warmup_discard: SimTime::from_secs(secs / 6),
            max_ops: u64::MAX,
        }
    }

    /// A tiny budget for unit tests.
    pub fn smoke(max_ops: u64) -> Self {
        RunBudget { sim_time: SimTime::from_secs(3_600), warmup_discard: SimTime::ZERO, max_ops }
    }
}

/// Everything a bench harness needs from one run.
pub struct RunOutcome {
    /// End-of-run summary.
    pub report: RunReport,
    /// Pause recorder with warmup discarded (percentile/interval views).
    pub pauses: PauseRecorder,
    /// Pause recorder including warmup (Fig. 10 timeline).
    pub raw_pauses: PauseRecorder,
    /// Throughput samples `(window end, ops)` per sampling window.
    pub throughput_samples: Vec<(SimTime, u64)>,
    /// Mutator (non-pause) simulated time.
    pub mutator_time: SimTime,
    /// Flight-recorder events (empty unless `RuntimeConfig::trace_enabled`
    /// was set).
    pub trace: Vec<rolp_trace::TraceEvent>,
    /// Events the per-thread trace rings overflowed and dropped.
    pub trace_dropped: u64,
    /// Every telemetry snapshot published during the run (one per
    /// sampling window, plus the end-of-run snapshot), oldest first.
    pub metrics: Vec<std::sync::Arc<rolp_telemetry::MetricsSnapshot>>,
}

/// Runs `workload` under `config` until the budget is exhausted.
pub fn execute(
    workload: &mut dyn Workload,
    config: RuntimeConfig,
    budget: &RunBudget,
) -> RunOutcome {
    execute_with(workload, config, budget, |_| {})
}

/// [`execute`] with an `on_start` hook that observes the runtime after
/// setup but before the first tick — e.g. to clone the telemetry
/// registry for a crash-flush guard that must outlive the run loop.
pub fn execute_with(
    workload: &mut dyn Workload,
    config: RuntimeConfig,
    budget: &RunBudget,
    on_start: impl FnOnce(&JvmRuntime),
) -> RunOutcome {
    execute_hooked(workload, config, budget, on_start, |_| {})
}

/// [`execute_with`] plus an `on_end` hook that observes the runtime after
/// the final tick but before the report is assembled — e.g. to extract
/// the profiler's learned state for a warm-started follow-up run.
pub fn execute_hooked(
    workload: &mut dyn Workload,
    mut config: RuntimeConfig,
    budget: &RunBudget,
    on_start: impl FnOnce(&JvmRuntime),
    on_end: impl FnOnce(&mut JvmRuntime),
) -> RunOutcome {
    let program = workload.build_program();
    // Apply the workload's paper filters unless the caller configured
    // explicit filters already.
    if config.collector == CollectorKind::RolpNg2c && config.rolp.filters.is_unfiltered() {
        config.rolp.filters = workload.profiling_filters();
    }
    workload.set_annotations(config.collector == CollectorKind::Ng2c);
    let threads = config.threads.max(1);

    let mut rt = JvmRuntime::new(config, program);
    workload.setup(&mut rt);
    on_start(&rt);

    let mut ops: u64 = 0;
    let mut tick_no: u64 = 0;
    let window = SimTime::from_secs(1);
    let mut next_window = window;
    loop {
        let thread = ThreadId((tick_no % threads as u64) as u32);
        tick_no += 1;
        let mut ctx = rt.ctx(thread);
        let done = workload.tick(&mut ctx);
        ctx.complete_ops(done);
        ops += done;

        let now = rt.vm.env.clock.now();
        if now >= next_window {
            rt.vm.env.throughput.sample_window(now);
            rt.sample_side_tables();
            rt.vm.env.telemetry.registry().publish(now.as_nanos());
            next_window = now + window;
        }
        if now >= budget.sim_time || ops >= budget.max_ops {
            break;
        }
    }

    on_end(&mut rt);

    let report = rt.report();
    let raw_pauses = rt.vm.env.pauses.clone();
    let mut pauses = raw_pauses.clone();
    pauses.discard_before(budget.warmup_discard);
    let trace_dropped = rt.vm.env.trace.dropped();
    // `report()` published the end-of-run snapshot, so the history is
    // complete by the time we copy it out.
    let metrics = rt.vm.env.telemetry.registry().store().history();
    RunOutcome {
        report,
        pauses,
        raw_pauses,
        throughput_samples: rt.vm.env.throughput.samples().to_vec(),
        mutator_time: rt.vm.env.clock.mutator_time(),
        trace: rt.take_trace(),
        trace_dropped,
        metrics,
    }
}
