//! YCSB-style request generation.
//!
//! The paper drives Cassandra with YCSB at fixed op rates and three
//! read/write mixes (WI 75% writes, RW 50%, RI 25%). This module provides
//! the standard YCSB generators: a zipfian key distribution (Gray et al.'s
//! rejection-free method, as used by YCSB itself) and the operation mixer.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Zipfian generator over `0..n` with exponent `theta` (YCSB default
/// 0.99).
#[derive(Debug, Clone)]
pub struct Zipfian {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2theta: f64,
}

impl Zipfian {
    /// Creates a generator over `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "zipfian over empty domain");
        let zetan = Self::zeta(n, theta);
        let zeta2theta = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2theta / zetan);
        Zipfian { n, theta, alpha, zetan, eta, zeta2theta }
    }

    /// YCSB's default skew.
    pub fn ycsb(n: u64) -> Self {
        Zipfian::new(n, 0.99)
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // Direct sum; domains here are ≤ a few million and the value is
        // precomputed once.
        (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    }

    /// Next key.
    pub fn sample(&self, rng: &mut StdRng) -> u64 {
        let u: f64 = rng.gen();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let v = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        v.min(self.n - 1)
    }

    /// Domain size.
    pub fn domain(&self) -> u64 {
        self.n
    }

    /// Internal zeta(2, theta), exposed for tests.
    pub fn zeta2(&self) -> f64 {
        self.zeta2theta
    }
}

/// An operation in the YCSB mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Insert/update a key.
    Write(u64),
    /// Read a key.
    Read(u64),
}

/// The request mixer: zipfian keys, configurable write fraction.
#[derive(Debug, Clone)]
pub struct YcsbGenerator {
    keys: Zipfian,
    write_fraction: f64,
    rng: StdRng,
}

impl YcsbGenerator {
    /// Creates a generator over `key_space` keys with the given write
    /// fraction.
    pub fn new(key_space: u64, write_fraction: f64, seed: u64) -> Self {
        YcsbGenerator {
            keys: Zipfian::ycsb(key_space),
            write_fraction,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Next operation.
    pub fn next_op(&mut self) -> Op {
        let key = self.keys.sample(&mut self.rng);
        if self.rng.gen_bool(self.write_fraction) {
            Op::Write(key)
        } else {
            Op::Read(key)
        }
    }

    /// A value payload size in words (log-normal-ish spread around 48
    /// words ≈ 384 bytes, Cassandra-row sized).
    pub fn value_words(&mut self) -> u32 {
        16 + self.rng.gen_range(0..64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipfian_is_skewed_towards_small_keys() {
        let z = Zipfian::ycsb(10_000);
        let mut rng = StdRng::seed_from_u64(9);
        let mut head = 0u64;
        let total = 50_000;
        for _ in 0..total {
            if z.sample(&mut rng) < 100 {
                head += 1;
            }
        }
        // With theta=0.99 the hottest 1% of keys draw the majority.
        assert!(head as f64 > total as f64 * 0.4, "head hits {head}/{total}");
    }

    #[test]
    fn zipfian_stays_in_domain() {
        let z = Zipfian::ycsb(100);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 100);
        }
    }

    #[test]
    fn mixer_respects_write_fraction() {
        let mut g = YcsbGenerator::new(1_000, 0.75, 3);
        let mut writes = 0;
        for _ in 0..10_000 {
            if matches!(g.next_op(), Op::Write(_)) {
                writes += 1;
            }
        }
        let frac = writes as f64 / 10_000.0;
        assert!((frac - 0.75).abs() < 0.02, "write fraction {frac}");
    }

    #[test]
    fn value_sizes_are_bounded() {
        let mut g = YcsbGenerator::new(10, 0.5, 3);
        for _ in 0..1_000 {
            let w = g.value_words();
            assert!((16..80).contains(&w));
        }
    }
}
