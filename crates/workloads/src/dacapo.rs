//! DaCapo-like synthetic benchmark suite.
//!
//! The paper uses 13 benchmarks of the DaCapo 9.12-bach suite to measure
//! the *overhead sensitivity* of ROLP's profiling code (Fig. 6, Fig. 7,
//! Table 2): each benchmark exercises the profiling instructions with a
//! different mix of call rate, allocation rate, object sizes, survivor
//! fraction, code-base breadth (number of hot methods), inlining
//! opportunity, and allocation-context conflicts.
//!
//! Since DaCapo itself is a JVM artifact, each benchmark is replaced by a
//! synthetic program that preserves exactly that mix — e.g. `sunflow` is
//! allocation-heavy with few calls (its Fig. 6 bars show high allocation-
//! profiling overhead and near-zero call-profiling overhead), `fop` and
//! `jython` are call-heavy across a broad hot code base, and `pmd` /
//! `tomcat` / `tradesoap` contain factory call paths that produce the
//! conflict counts Table 2 reports (6 / 4 / 3).

use std::collections::VecDeque;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use rolp::runtime::JvmRuntime;
use rolp_heap::{ClassId, Handle, HeapConfig};
use rolp_metrics::SimScale;
use rolp_vm::{AllocSiteId, CallSiteId, MutatorCtx, ProgramBuilder};

use crate::spec::Workload;

/// The static profile of one DaCapo-like benchmark.
#[derive(Debug, Clone)]
pub struct DacapoSpec {
    /// Benchmark name.
    pub name: &'static str,
    /// Paper Table 2 heap size in MB (scaled by the harness).
    pub paper_heap_mb: u64,
    /// Hot worker methods (breadth of the jitted code base).
    pub workers: usize,
    /// Tiny inlineable helper methods.
    pub helpers: usize,
    /// Allocation sites per worker.
    pub sites_per_worker: usize,
    /// Non-inlined calls per operation.
    pub calls_per_op: u64,
    /// Allocations per operation.
    pub allocs_per_op: u64,
    /// Guest work units per call.
    pub work_per_call: u64,
    /// Object payload size range in words.
    pub obj_words: (u32, u32),
    /// Fraction of allocations that survive.
    pub survive_fraction: f64,
    /// Operations a surviving object lives for.
    pub survive_ops: usize,
    /// Conflicting factory call paths (Table 2 conflicts).
    pub conflicts: usize,
    /// Benchmark length in operations.
    pub ops: u64,
}

impl DacapoSpec {
    /// Heap configuration for this benchmark at `scale`.
    pub fn heap_config(&self, scale: SimScale) -> HeapConfig {
        let heap = scale.bytes(self.paper_heap_mb * 1024 * 1024).max(2 * 1024 * 1024);
        // Keep roughly 64–256 regions regardless of heap size.
        let region = (heap / 128).next_power_of_two().clamp(16 * 1024, 1024 * 1024);
        HeapConfig { region_bytes: region as usize, max_heap_bytes: heap }
    }
}

/// The 13 benchmarks with their paper heap sizes (Table 2) and synthetic
/// behaviour mixes.
pub fn all_benchmarks() -> Vec<DacapoSpec> {
    // (name, heap, workers, helpers, sites/w, calls, allocs, work, words,
    //  survive%, survive_ops, conflicts, ops)
    #[allow(clippy::type_complexity)] // a literal parameter table reads best flat
    let rows: [(
        &'static str,
        u64,
        usize,
        usize,
        usize,
        u64,
        u64,
        u64,
        (u32, u32),
        f64,
        usize,
        usize,
        u64,
    ); 13] = [
        ("avrora", 32, 24, 8, 3, 40, 10, 30, (4, 16), 0.02, 200, 0, 30_000),
        ("eclipse", 1024, 90, 30, 4, 60, 30, 40, (8, 48), 0.10, 400, 0, 20_000),
        ("fop", 512, 200, 60, 4, 120, 25, 15, (8, 32), 0.05, 150, 0, 15_000),
        ("h2", 1024, 90, 20, 2, 50, 35, 35, (16, 64), 0.15, 600, 0, 20_000),
        ("jython", 128, 400, 120, 2, 150, 30, 12, (6, 24), 0.03, 100, 0, 12_000),
        ("luindex", 256, 30, 10, 3, 30, 25, 40, (8, 40), 0.08, 300, 0, 20_000),
        ("lusearch", 256, 35, 10, 4, 35, 30, 35, (8, 40), 0.04, 120, 0, 20_000),
        ("pmd", 256, 200, 60, 2, 90, 28, 20, (6, 24), 0.06, 250, 6, 15_000),
        ("sunflow", 128, 22, 6, 10, 15, 60, 25, (4, 20), 0.02, 80, 0, 20_000),
        ("tomcat", 512, 180, 60, 2, 80, 25, 25, (8, 32), 0.07, 300, 4, 15_000),
        ("tradebeans", 512, 140, 40, 2, 70, 25, 30, (8, 32), 0.08, 350, 0, 15_000),
        ("tradesoap", 512, 350, 100, 1, 110, 30, 18, (8, 32), 0.08, 350, 3, 12_000),
        ("xalan", 64, 130, 40, 3, 100, 35, 20, (6, 24), 0.04, 150, 0, 20_000),
    ];
    rows.iter()
        .map(|&(name, heap, workers, helpers, spw, calls, allocs, work, words, sf, so, cf, ops)| {
            DacapoSpec {
                name,
                paper_heap_mb: heap,
                workers,
                helpers,
                sites_per_worker: spw,
                calls_per_op: calls,
                allocs_per_op: allocs,
                work_per_call: work,
                obj_words: words,
                survive_fraction: sf,
                survive_ops: so,
                conflicts: cf,
                ops,
            }
        })
        .collect()
}

/// Looks up a benchmark by name.
pub fn benchmark(name: &str) -> Option<DacapoSpec> {
    all_benchmarks().into_iter().find(|s| s.name == name)
}

struct ConflictFactory {
    /// Short-lived call path into the factory.
    cs_short: CallSiteId,
    /// Long-lived call path into the factory.
    cs_long: CallSiteId,
    /// The shared factory allocation site.
    site: AllocSiteId,
}

/// A synthetic DaCapo-like benchmark instance.
pub struct DacapoBench {
    spec: DacapoSpec,
    rng: StdRng,
    class: Option<ClassId>,
    /// Harness -> dispatcher call (makes the dispatcher hot so the worker
    /// call sites in its body are jitted and profilable).
    cs_iterate: Option<CallSiteId>,
    cs_workers: Vec<CallSiteId>,
    cs_helpers: Vec<CallSiteId>,
    worker_sites: Vec<Vec<AllocSiteId>>,
    factories: Vec<ConflictFactory>,
    /// FIFO of (expiry op, handle) for surviving objects.
    survivors: VecDeque<(u64, Handle)>,
    /// Long-lived conflict-path objects, keyed by expiry *GC cycle* so
    /// their death age (and thus the factory's bimodality) is independent
    /// of heap size and scale.
    long_lived: VecDeque<(u64, Handle)>,
    op_no: u64,
}

impl DacapoBench {
    /// Instantiates a benchmark from its spec.
    pub fn new(spec: DacapoSpec, seed: u64) -> Self {
        DacapoBench {
            spec,
            rng: StdRng::seed_from_u64(seed),
            class: None,
            cs_iterate: None,
            cs_workers: Vec::new(),
            cs_helpers: Vec::new(),
            worker_sites: Vec::new(),
            factories: Vec::new(),
            survivors: VecDeque::new(),
            long_lived: VecDeque::new(),
            op_no: 0,
        }
    }

    /// The benchmark's spec.
    pub fn spec(&self) -> &DacapoSpec {
        &self.spec
    }

    fn obj_words(&mut self) -> u32 {
        let (lo, hi) = self.spec.obj_words;
        self.rng.gen_range(lo..=hi)
    }
}

impl Workload for DacapoBench {
    fn name(&self) -> String {
        self.spec.name.to_string()
    }

    fn declare_program(&mut self, b: &mut ProgramBuilder) {
        let name = self.spec.name;
        let harness = b.method(format!("dacapo.{name}.Harness::main"), 60, false);
        let root = b.method(format!("dacapo.{name}.Harness::iterate"), 300, false);
        self.cs_iterate = Some(b.call_site(harness, root));

        let mut workers = Vec::new();
        for i in 0..self.spec.workers {
            let m = b.method(format!("dacapo.{name}.pkg{}.Worker{i}::run", i % 8), 120, false);
            self.cs_workers.push(b.call_site(root, m));
            let mut sites = Vec::new();
            for s in 0..self.spec.sites_per_worker {
                sites.push(b.alloc_site(m, s as u32 * 7 + 1));
            }
            self.worker_sites.push(sites);
            workers.push(m);
        }
        for i in 0..self.spec.helpers {
            let h = b.method(format!("dacapo.{name}.util.Helper{i}::get"), 10, true);
            // Each helper is called from one worker (inlined there).
            let caller = workers[i % workers.len()];
            self.cs_helpers.push(b.call_site(caller, h));
        }
        for c in 0..self.spec.conflicts {
            let factory = b.method(format!("dacapo.{name}.factory.Factory{c}::make"), 90, false);
            let short_caller = workers[(2 * c) % workers.len()];
            let long_caller = workers[(2 * c + 1) % workers.len()];
            self.factories.push(ConflictFactory {
                cs_short: b.call_site(short_caller, factory),
                cs_long: b.call_site(long_caller, factory),
                site: b.alloc_site(factory, 1),
            });
        }
    }

    fn setup(&mut self, rt: &mut JvmRuntime) {
        self.class =
            Some(rt.vm.env.heap.classes.register(format!("dacapo.{}.Obj", self.spec.name)));
    }

    fn tick(&mut self, ctx: &mut MutatorCtx<'_>) -> u64 {
        let cs_iterate = self.cs_iterate.expect("build_program not called");
        ctx.call(cs_iterate, |ctx| self.run_op(ctx));
        1
    }
}

impl DacapoBench {
    /// One benchmark operation, executed inside the hot dispatcher.
    fn run_op(&mut self, ctx: &mut MutatorCtx<'_>) {
        let class = self.class.expect("setup not called");
        self.op_no += 1;
        let op = self.op_no;
        let spec = self.spec.clone();

        // Expire survivors.
        while let Some(&(expiry, h)) = self.survivors.front() {
            if expiry > op {
                break;
            }
            ctx.release(h);
            self.survivors.pop_front();
        }
        let cycle = ctx.gc_cycles();
        while let Some(&(expiry_cycle, h)) = self.long_lived.front() {
            if expiry_cycle > cycle {
                break;
            }
            ctx.release(h);
            self.long_lived.pop_front();
        }

        // Calls and allocations interleaved across the hot workers.
        let allocs_per_call = (spec.allocs_per_op / spec.calls_per_op.max(1)).max(1);
        let mut allocs_done = 0u64;
        for k in 0..spec.calls_per_op {
            let w = ((op + k) % spec.workers as u64) as usize;
            let cs = self.cs_workers[w];
            let helper = if self.cs_helpers.is_empty() {
                None
            } else {
                Some(self.cs_helpers[w % self.cs_helpers.len()])
            };
            let sites = self.worker_sites[w].clone();
            let mut new_handles: Vec<Handle> = Vec::new();
            let mut sizes: Vec<u32> = Vec::new();
            for _ in 0..allocs_per_call.min(spec.allocs_per_op - allocs_done) {
                sizes.push(self.obj_words());
            }
            ctx.call(cs, |ctx| {
                ctx.work(spec.work_per_call);
                if let Some(hcs) = helper {
                    ctx.call(hcs, |ctx| ctx.work(2));
                }
                for (i, &words) in sizes.iter().enumerate() {
                    let site = sites[i % sites.len()];
                    new_handles.push(ctx.alloc(site, class, 0, words));
                }
            });
            allocs_done += sizes.len() as u64;
            for h in new_handles {
                if self.rng.gen_bool(spec.survive_fraction) {
                    self.survivors.push_back((op + spec.survive_ops as u64, h));
                } else {
                    ctx.release(h);
                }
            }
        }

        // Conflict factories: the same allocation site through a
        // short-lived and a long-lived call path, every operation.
        for f in 0..self.factories.len() {
            let (cs_short, cs_long, site) =
                (self.factories[f].cs_short, self.factories[f].cs_long, self.factories[f].site);
            let words = self.obj_words();
            let transient = ctx.call(cs_short, |ctx| {
                ctx.work(10);
                ctx.alloc(site, class, 0, words)
            });
            ctx.release(transient);
            let durable = ctx.call(cs_long, |ctx| {
                ctx.work(10);
                ctx.alloc(site, class, 0, words)
            });
            // Die together after ~8 GC cycles: a clear second mode for the
            // conflict detector at any scale.
            self.long_lived.push_back((cycle + 8, durable));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{execute, RunBudget};
    use rolp::runtime::{CollectorKind, RuntimeConfig};

    #[test]
    fn all_thirteen_benchmarks_exist() {
        let b = all_benchmarks();
        assert_eq!(b.len(), 13);
        let names: Vec<&str> = b.iter().map(|s| s.name).collect();
        for expected in [
            "avrora",
            "eclipse",
            "fop",
            "h2",
            "jython",
            "luindex",
            "lusearch",
            "pmd",
            "sunflow",
            "tomcat",
            "tradebeans",
            "tradesoap",
            "xalan",
        ] {
            assert!(names.contains(&expected), "missing {expected}");
        }
        // Table 2 conflict counts.
        assert_eq!(benchmark("pmd").unwrap().conflicts, 6);
        assert_eq!(benchmark("tomcat").unwrap().conflicts, 4);
        assert_eq!(benchmark("tradesoap").unwrap().conflicts, 3);
        assert_eq!(benchmark("xalan").unwrap().conflicts, 0);
    }

    #[test]
    fn heap_config_scales_with_table2_sizes() {
        let avrora = benchmark("avrora").unwrap().heap_config(SimScale::new(16));
        let h2 = benchmark("h2").unwrap().heap_config(SimScale::new(16));
        assert!(h2.max_heap_bytes > avrora.max_heap_bytes);
        assert_eq!(h2.max_heap_bytes, 64 * 1024 * 1024);
    }

    #[test]
    fn a_small_benchmark_runs_under_g1() {
        let spec = DacapoSpec { ops: 300, ..benchmark("avrora").unwrap() };
        let heap = spec.heap_config(SimScale::new(16));
        let mut bench = DacapoBench::new(spec, 1);
        let cfg = RuntimeConfig { collector: CollectorKind::G1, heap, ..Default::default() };
        let out = execute(&mut bench, cfg, &RunBudget::smoke(300));
        assert_eq!(out.report.ops, 300);
        assert!(out.report.elapsed.as_nanos() > 0);
    }

    #[test]
    fn conflict_benchmark_produces_conflicts_under_rolp() {
        let spec = DacapoSpec { ops: 6_000, ..benchmark("pmd").unwrap() };
        let heap = spec.heap_config(SimScale::new(64));
        let mut bench = DacapoBench::new(spec, 1);
        let cfg = RuntimeConfig { collector: CollectorKind::RolpNg2c, heap, ..Default::default() };
        let out = execute(&mut bench, cfg, &RunBudget::smoke(6_000));
        let rolp = out.report.rolp.expect("rolp stats");
        assert!(
            rolp.conflicts.detected >= 1,
            "factory paths should conflict: {:?}",
            rolp.conflicts
        );
    }
}
