//! GraphChi-like out-of-core graph engine workload.
//!
//! Reproduces the paper's GraphChi 0.2.2 setup (Connected Components and
//! PageRank over a Twitter-scale graph, Table 1, Figs. 8–10), scaled to a
//! synthetic power-law graph:
//!
//! - *Long-lived*: chunked vertex-value arrays — allocated at engine start
//!   and alive for the whole run.
//! - *Epochal*: per-interval edge-block buffers loaded from the sharded
//!   "disk" representation — large, allocated at interval start, dead at
//!   interval end (precisely the middle-lived die-together pattern).
//! - *Transient*: per-vertex scratch objects during updates.
//!
//! The paper filters profiling to `graphchi.datablocks` and
//! `graphchi.engine`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use rolp::runtime::JvmRuntime;
use rolp::PackageFilters;
use rolp_heap::{ClassId, Handle};
use rolp_vm::{AllocSiteId, CallSiteId, MutatorCtx, ProgramBuilder};

use crate::spec::Workload;

/// NG2C annotation: edge blocks live for one interval (a few GC cycles).
const BLOCK_GEN: u8 = 5;
/// Vertex chunks live forever.
const VERTEX_GEN: u8 = 15;

/// The graph algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphAlgo {
    /// Connected components (label propagation).
    ConnectedComponents,
    /// PageRank.
    PageRank,
}

impl GraphAlgo {
    /// Paper's short label.
    pub fn label(self) -> &'static str {
        match self {
            GraphAlgo::ConnectedComponents => "CC",
            GraphAlgo::PageRank => "PR",
        }
    }
}

/// Workload parameters (paper: 42 M vertices, 1.5 B edges; default scale
/// cuts both by the experiment scale factor).
#[derive(Debug, Clone)]
pub struct GraphChiParams {
    /// Algorithm.
    pub algo: GraphAlgo,
    /// Vertices.
    pub vertices: u32,
    /// Edges.
    pub edges: u64,
    /// Number of shards (intervals per full pass).
    pub shards: usize,
    /// Vertices per guest vertex-chunk object.
    pub chunk: usize,
    /// Simulated disk-read time per edge loaded, in nanoseconds (drives
    /// the interval pacing; GraphChi is I/O bound).
    pub io_ns_per_edge: u64,
    /// One in `update_sample` edges performs a real guest-heap vertex
    /// read-modify-write (the rest are covered by the charged work).
    pub update_sample: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GraphChiParams {
    fn default() -> Self {
        GraphChiParams {
            algo: GraphAlgo::ConnectedComponents,
            vertices: 120_000,
            edges: 2_000_000,
            shards: 16,
            chunk: 2_048,
            io_ns_per_edge: 800,
            update_sample: 64,
            seed: 0x6AF,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Ids {
    cs_load_block: CallSiteId,
    cs_update: CallSiteId,
    cs_scratch: CallSiteId,
    cs_commit: CallSiteId,
    cs_deg: CallSiteId,
    site_block: AllocSiteId,
    site_vertex_chunk: AllocSiteId,
    site_scratch: AllocSiteId,
}

#[derive(Debug, Clone, Copy)]
struct Classes {
    block: ClassId,
    vertex_chunk: ClassId,
    scratch: ClassId,
}

/// The GraphChi-like workload.
pub struct GraphChiWorkload {
    params: GraphChiParams,
    rng: StdRng,
    ids: Option<Ids>,
    classes: Option<Classes>,
    /// Edges per shard ("on disk"; blocks are materialized into the guest
    /// heap only while an interval processes them).
    edges_per_shard: u64,
    /// Destination-popularity distribution (power-law, preferential-
    /// attachment shape — the Twitter-follow-graph profile).
    dst_dist: crate::ycsb::Zipfian,
    /// Long-lived vertex-value chunks.
    vertex_chunks: Vec<Handle>,
    /// Live edge blocks of the interval being processed.
    interval_blocks: Vec<Handle>,
    current_shard: usize,
    annotate: bool,
    /// Completed intervals (epochs).
    pub intervals: u64,
    /// Completed full passes over the graph.
    pub iterations: u64,
}

impl GraphChiWorkload {
    /// Creates the workload. The power-law graph is represented by its
    /// per-shard edge counts plus a destination-popularity distribution:
    /// edge data only exists in the guest heap, as the blocks an interval
    /// loads from "disk" (materializing the paper's 1.5 B-edge list host-
    /// side would dwarf the system under test).
    pub fn new(params: GraphChiParams) -> Self {
        let rng = StdRng::seed_from_u64(params.seed);
        let edges_per_shard = params.edges / params.shards as u64;
        let dst_dist = crate::ycsb::Zipfian::new(params.vertices as u64, 0.8);
        GraphChiWorkload {
            params,
            rng,
            ids: None,
            classes: None,
            edges_per_shard,
            dst_dist,
            vertex_chunks: Vec::new(),
            interval_blocks: Vec::new(),
            current_shard: 0,
            annotate: false,
            intervals: 0,
            iterations: 0,
        }
    }

    fn ids(&self) -> Ids {
        self.ids.expect("build_program not called")
    }

    fn classes(&self) -> Classes {
        self.classes.expect("setup not called")
    }

    /// Processes one interval (one shard): load edge blocks, run updates,
    /// commit, drop blocks. Block loading is interleaved with the
    /// simulated disk I/O, so an interval spans several GC cycles with all
    /// of its blocks live — the epochal pattern.
    fn process_interval(&mut self, ctx: &mut MutatorCtx<'_>) {
        let ids = self.ids();
        let classes = self.classes();
        let annotate = self.annotate;
        let edges = self.edges_per_shard;

        // Load: edge data streams in as ~4 KiB block buffers, paced by
        // disk bandwidth.
        let blocks_needed = (edges / 256).max(1);
        let io_per_block = 256 * self.params.io_ns_per_edge;
        for _ in 0..blocks_needed {
            let h = ctx.call(ids.cs_load_block, |ctx| {
                ctx.work(600);
                ctx.idle(io_per_block);
                if annotate {
                    ctx.alloc_annotated(ids.site_block, classes.block, 0, 512, BLOCK_GEN)
                } else {
                    ctx.alloc(ids.site_block, classes.block, 0, 512)
                }
            });
            self.interval_blocks.push(h);
        }

        // Update phase: charged per-edge work, with one in `update_sample`
        // edges doing a real guest-heap vertex read-modify-write.
        let algo_work: u64 = match self.params.algo {
            GraphAlgo::ConnectedComponents => 60,
            GraphAlgo::PageRank => 100,
        };
        let chunk = self.params.chunk;
        let sampled = edges / self.params.update_sample.max(1);
        for _ in 0..sampled {
            let src = self.rng.gen_range(0..self.params.vertices);
            let dst = self.dst_dist.sample(&mut self.rng) as u32;
            let sc = self.vertex_chunks[src as usize / chunk];
            let dc = self.vertex_chunks[dst as usize / chunk];
            let val = ctx.get_data(sc, (src as usize % chunk) as u32);
            let merged = match self.params.algo {
                GraphAlgo::ConnectedComponents => {
                    let cur = ctx.get_data(dc, (dst as usize % chunk) as u32);
                    cur.min(val).min(src as u64)
                }
                GraphAlgo::PageRank => val.wrapping_add(1),
            };
            ctx.set_data(dc, (dst as usize % chunk) as u32, merged);
        }
        ctx.call(ids.cs_update, |ctx| {
            ctx.work(edges * algo_work);
            ctx.call(ids.cs_deg, |ctx| ctx.work(2)); // tiny, inlined
        });
        // Transient per-subinterval scratch objects.
        for _ in 0..(blocks_needed / 8).max(1) {
            let s = ctx.call(ids.cs_scratch, |ctx| {
                ctx.work(20);
                ctx.alloc(ids.site_scratch, classes.scratch, 0, 16)
            });
            ctx.release(s);
        }

        // Commit: interval ends; every edge block dies together.
        ctx.call(ids.cs_commit, |ctx| ctx.work(500));
        for h in self.interval_blocks.drain(..) {
            ctx.release(h);
        }

        self.intervals += 1;
        self.current_shard = (self.current_shard + 1) % self.params.shards;
        if self.current_shard == 0 {
            self.iterations += 1;
        }
    }
}

impl Workload for GraphChiWorkload {
    fn name(&self) -> String {
        format!("GraphChi {}", self.params.algo.label())
    }

    fn profiling_filters(&self) -> PackageFilters {
        // Paper Table 1: graphchi.datablocks, graphchi.engine.
        PackageFilters::include(&["graphchi.datablocks", "graphchi.engine"])
    }

    fn annotation_count(&self) -> usize {
        // block, vertex chunk.
        2
    }

    fn set_annotations(&mut self, on: bool) {
        self.annotate = on;
    }

    fn declare_program(&mut self, b: &mut ProgramBuilder) {
        let run = b.method("graphchi.engine.GraphChiEngine::run", 600, false);
        let load = b.method("graphchi.datablocks.BlockManager::loadBlock", 150, false);
        let update = b.method("graphchi.engine.VertexProcessor::update", 250, false);
        let scratch = b.method("graphchi.engine.VertexProcessor::scratch", 60, false);
        let commit = b.method("graphchi.datablocks.BlockManager::commit", 120, false);
        let deg = b.method("graphchi.engine.Degree::of", 8, true); // inlined

        let ids = Ids {
            cs_load_block: b.call_site(run, load),
            cs_update: b.call_site(run, update),
            cs_scratch: b.call_site(update, scratch),
            cs_commit: b.call_site(run, commit),
            cs_deg: b.call_site(update, deg),
            site_block: b.alloc_site(load, 6),
            site_vertex_chunk: b.alloc_site(run, 2),
            site_scratch: b.alloc_site(scratch, 3),
        };
        self.ids = Some(ids);
    }

    fn setup(&mut self, rt: &mut JvmRuntime) {
        let classes = Classes {
            block: rt.vm.env.heap.classes.register("graphchi.datablocks.EdgeBlock"),
            vertex_chunk: rt.vm.env.heap.classes.register("graphchi.engine.VertexChunk"),
            scratch: rt.vm.env.heap.classes.register("graphchi.engine.Scratch"),
        };
        self.classes = Some(classes);

        // Long-lived vertex-value chunks cover all vertices.
        let ids = self.ids();
        let chunks = (self.params.vertices as usize).div_ceil(self.params.chunk);
        let mut ctx = rt.ctx(rolp_vm::ThreadId(0));
        for i in 0..chunks {
            let h = if self.annotate {
                ctx.alloc_annotated(
                    ids.site_vertex_chunk,
                    classes.vertex_chunk,
                    0,
                    self.params.chunk as u32,
                    VERTEX_GEN,
                )
            } else {
                ctx.alloc(ids.site_vertex_chunk, classes.vertex_chunk, 0, self.params.chunk as u32)
            };
            // CC starts with label = vertex id; PR with rank ~ 1.
            for j in 0..self.params.chunk {
                let vid = (i * self.params.chunk + j) as u64;
                ctx.set_data(h, j as u32, vid);
            }
            self.vertex_chunks.push(h);
        }
    }

    fn tick(&mut self, ctx: &mut MutatorCtx<'_>) -> u64 {
        self.process_interval(ctx);
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{execute, RunBudget};
    use rolp::runtime::{CollectorKind, RuntimeConfig};
    use rolp_heap::HeapConfig;

    fn small(algo: GraphAlgo) -> GraphChiParams {
        GraphChiParams {
            algo,
            vertices: 4_000,
            edges: 40_000,
            shards: 8,
            chunk: 512,
            io_ns_per_edge: 10,
            ..Default::default()
        }
    }

    fn config(kind: CollectorKind) -> RuntimeConfig {
        RuntimeConfig {
            collector: kind,
            heap: HeapConfig { region_bytes: 64 * 1024, max_heap_bytes: 24 << 20 },
            ..Default::default()
        }
    }

    #[test]
    fn intervals_cycle_through_shards() {
        let mut w = GraphChiWorkload::new(small(GraphAlgo::ConnectedComponents));
        let out = execute(&mut w, config(CollectorKind::G1), &RunBudget::smoke(20));
        assert_eq!(out.report.ops, 20);
        assert_eq!(w.intervals, 20);
        assert!(w.iterations >= 2, "full passes: {}", w.iterations);
    }

    #[test]
    fn cc_labels_propagate_downwards() {
        let mut w = GraphChiWorkload::new(small(GraphAlgo::ConnectedComponents));
        let _ = execute(&mut w, config(CollectorKind::G1), &RunBudget::smoke(16));
        // After two passes some vertex labels must have shrunk below their
        // own id (they adopted a smaller neighbour label).
        // Vertex values live in the guest heap; read them back.
        // (Spot check via the workload's recorded handles is done in the
        // integration suite; here we just assert the run completed.)
        assert!(w.intervals >= 16);
    }

    #[test]
    fn pagerank_variant_runs_heavier_updates() {
        let mut cc = GraphChiWorkload::new(small(GraphAlgo::ConnectedComponents));
        let out_cc = execute(&mut cc, config(CollectorKind::G1), &RunBudget::smoke(8));
        let mut pr = GraphChiWorkload::new(small(GraphAlgo::PageRank));
        let out_pr = execute(&mut pr, config(CollectorKind::G1), &RunBudget::smoke(8));
        assert!(
            out_pr.mutator_time.as_nanos() > out_cc.mutator_time.as_nanos(),
            "PR does more work per edge"
        );
    }

    #[test]
    fn rolp_sees_epochal_blocks() {
        let mut w = GraphChiWorkload::new(small(GraphAlgo::ConnectedComponents));
        let out = execute(&mut w, config(CollectorKind::RolpNg2c), &RunBudget::smoke(300));
        let rolp = out.report.rolp.expect("rolp stats");
        assert!(rolp.profiled_allocations > 0);
    }
}
