//! Workloads for the ROLP reproduction.
//!
//! Synthetic equivalents of everything the paper's evaluation runs
//! (§8.1), preserving the object demography and profiling challenges that
//! drive the results:
//!
//! - [`dacapo`] — 13 DaCapo-like benchmarks with the Table 2 heap sizes
//!   and per-benchmark call/allocation mixes (Figs. 6–7, Table 2).
//! - [`cassandra`] — a memtable/SSTable key-value store under YCSB-style
//!   load at three write ratios, with a built-in allocation-context
//!   conflict (Figs. 8–10, Table 1).
//! - [`lucene`] — a text indexer over a synthetic corpus, 80% writes.
//! - [`graphchi`] — a sharded out-of-core graph engine running Connected
//!   Components and PageRank over a synthetic power-law graph.
//! - [`ycsb`] — zipfian key and operation-mix generators.
//! - [`presets`] — the Table 1 paper-parameterized workload constructors
//!   and heap sizing shared by the CLI and bench harnesses.
//! - [`spec`] — the [`spec::Workload`] trait and the [`spec::execute`]
//!   run driver shared by tests, examples, and bench harnesses.

pub mod cassandra;
pub mod dacapo;
pub mod graphchi;
pub mod lucene;
pub mod presets;
pub mod spec;
pub mod ycsb;

pub use cassandra::{CassandraMix, CassandraParams, CassandraWorkload};
pub use dacapo::{all_benchmarks, benchmark, DacapoBench, DacapoSpec};
pub use graphchi::{GraphAlgo, GraphChiParams, GraphChiWorkload};
pub use lucene::{LuceneParams, LuceneWorkload};
pub use spec::{execute, execute_hooked, execute_with, RunBudget, RunOutcome, Workload};
pub use ycsb::{Op, YcsbGenerator, Zipfian};
