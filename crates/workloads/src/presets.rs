//! Paper-parameterized workload presets (§8.1).
//!
//! One place holds the Table 1 big-data workload parameters and heap
//! sizing so the CLI and every bench harness construct *identical*
//! experiments. All counts divide by the experiment [`SimScale`]; the
//! fixed shape parameters (pacing, fan-out, seeds) do not scale.

use rolp_heap::HeapConfig;
use rolp_metrics::SimScale;

use crate::cassandra::{CassandraMix, CassandraParams, CassandraWorkload};
use crate::graphchi::{GraphAlgo, GraphChiParams, GraphChiWorkload};
use crate::lucene::{LuceneParams, LuceneWorkload};
use crate::spec::Workload;

/// Cassandra workload at experiment scale (10 k ops/s as in the paper).
pub fn cassandra(mix: CassandraMix, scale: SimScale) -> CassandraWorkload {
    CassandraWorkload::new(CassandraParams {
        mix,
        op_pacing_ns: 100_000,
        memtable_flush_entries: scale.count(2_400_000) as usize,
        key_space: scale.count(8_000_000),
        parse_buffers_per_op: 6,
        row_cache_entries: scale.count(1_200_000) as usize,
        seed: 0xCA55,
    })
}

/// Lucene workload at experiment scale (80% writes, 25 k ops/s).
pub fn lucene(scale: SimScale) -> LuceneWorkload {
    LuceneWorkload::new(LuceneParams {
        write_fraction: 0.80,
        op_pacing_ns: 40_000,
        segment_flush_docs: scale.count(4_500_000) as usize,
        vocabulary: scale.count(1_200_000),
        doc_words: 48,
        postings_per_doc: 2,
        analysis_scratch: 4,
        seed: 0x10CE,
    })
}

/// GraphChi workload at experiment scale (paper: 42 M vertices, 1.5 B
/// edges, 16 shards — one shard's edge blocks are roughly a quarter of
/// the heap and live for exactly one interval).
pub fn graphchi(algo: GraphAlgo, scale: SimScale) -> GraphChiWorkload {
    GraphChiWorkload::new(GraphChiParams {
        algo,
        vertices: scale.count(42_000_000) as u32,
        edges: scale.count(1_500_000_000),
        shards: 16,
        chunk: 4_096,
        io_ns_per_edge: 800,
        update_sample: 64,
        seed: 0x6AF,
    })
}

/// The big-data heap: the paper's 6 GB divided by the scale, with
/// region count held near G1's ~1.5–2 k regions.
pub fn bigdata_heap(scale: SimScale) -> HeapConfig {
    let heap = scale.bytes(6 * 1024 * 1024 * 1024);
    let region = (heap / 1536).next_power_of_two().clamp(64 * 1024, 1024 * 1024);
    HeapConfig { region_bytes: region as usize, max_heap_bytes: heap }
}

/// The six big-data rows of Table 1 / Figs. 8–10, in paper order.
pub fn bigdata_workloads(scale: SimScale) -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(cassandra(CassandraMix::WriteIntensive, scale)),
        Box::new(cassandra(CassandraMix::ReadWrite, scale)),
        Box::new(cassandra(CassandraMix::ReadIntensive, scale)),
        Box::new(lucene(scale)),
        Box::new(graphchi(GraphAlgo::ConnectedComponents, scale)),
        Box::new(graphchi(GraphAlgo::PageRank, scale)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bigdata_heap_scales_with_power_of_two_regions() {
        for divisor in [1, 4, 16, 64] {
            let heap = bigdata_heap(SimScale::new(divisor));
            assert_eq!(heap.max_heap_bytes, 6 * 1024 * 1024 * 1024 / divisor);
            assert!(heap.region_bytes.is_power_of_two());
            assert!((64 * 1024..=1024 * 1024).contains(&heap.region_bytes));
        }
    }

    #[test]
    fn bigdata_set_matches_paper_order() {
        let names: Vec<String> =
            bigdata_workloads(SimScale::new(16)).iter().map(|w| w.name()).collect();
        assert_eq!(names.len(), 6);
        assert!(names[0].contains("Cassandra"));
        assert!(names[3].contains("Lucene"));
        assert!(names[5].contains("GraphChi"));
    }
}
