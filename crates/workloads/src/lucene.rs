//! Lucene-like text-indexing workload.
//!
//! Reproduces the paper's Lucene 6.1.0 setup (indexing a Wikipedia dump at
//! 25 k ops/s, 80% writes) with a synthetic corpus:
//!
//! - *Transient*: per-document token streams and per-query scoring
//!   buffers — die within the operation.
//! - *Middle-lived*: in-memory segment posting buffers — accumulate until
//!   the segment flushes at a document threshold, then die together.
//! - *Long-lived*: the term dictionary (grows towards the vocabulary
//!   size) and flushed-segment metadata (until merges drop them).
//!
//! The paper filters profiling to `lucene.store`; the analysis chain
//! (`lucene.analysis`) is deliberately outside the filter.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use rolp::runtime::JvmRuntime;
use rolp::PackageFilters;
use rolp_heap::{ClassId, Handle};
use rolp_vm::{AllocSiteId, CallSiteId, MutatorCtx, ProgramBuilder};

use crate::spec::Workload;
use crate::ycsb::Zipfian;

/// NG2C annotations: posting buffers live to segment flush.
const POSTING_GEN: u8 = 7;
/// Dictionary and segment metadata are effectively immortal.
const DICT_GEN: u8 = 15;

/// Workload parameters.
#[derive(Debug, Clone)]
pub struct LuceneParams {
    /// Fraction of index (write) operations; paper: 0.80.
    pub write_fraction: f64,
    /// Nanoseconds of think time per op (paper: 25 k ops/s → 40 µs).
    pub op_pacing_ns: u64,
    /// Documents per in-memory segment before flush.
    pub segment_flush_docs: usize,
    /// Vocabulary size of the synthetic corpus.
    pub vocabulary: u64,
    /// Words per document.
    pub doc_words: usize,
    /// Posting chunks appended per indexed document (the middle-lived
    /// segment mass).
    pub postings_per_doc: usize,
    /// Transient analysis scratch buffers per document (tokenizer chains
    /// churn heavily).
    pub analysis_scratch: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for LuceneParams {
    fn default() -> Self {
        LuceneParams {
            write_fraction: 0.80,
            op_pacing_ns: 40_000,
            segment_flush_docs: 12_000,
            vocabulary: 80_000,
            doc_words: 48,
            postings_per_doc: 2,
            analysis_scratch: 4,
            seed: 0x10CE,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Ids {
    cs_analyze: CallSiteId,
    cs_index_doc: CallSiteId,
    cs_add_posting: CallSiteId,
    cs_flush: CallSiteId,
    cs_merge: CallSiteId,
    cs_search: CallSiteId,
    cs_score: CallSiteId,
    cs_norm: CallSiteId,
    site_tokens: AllocSiteId,
    site_posting: AllocSiteId,
    site_dict: AllocSiteId,
    site_segment: AllocSiteId,
    site_hits: AllocSiteId,
}

#[derive(Debug, Clone, Copy)]
struct Classes {
    tokens: ClassId,
    posting: ClassId,
    dict: ClassId,
    segment: ClassId,
    hits: ClassId,
}

/// The Lucene-like workload.
pub struct LuceneWorkload {
    params: LuceneParams,
    rng: StdRng,
    terms: Zipfian,
    ids: Option<Ids>,
    classes: Option<Classes>,
    /// Term id → dictionary entry handle (immortal).
    dictionary: std::collections::HashMap<u64, Handle>,
    /// Current in-memory segment's posting buffers.
    segment_postings: Vec<Handle>,
    docs_in_segment: usize,
    /// Flushed segment metadata, oldest first.
    segments: Vec<Handle>,
    annotate: bool,
    /// Segments flushed (epochs).
    pub flushes: u64,
    /// Merges performed.
    pub merges: u64,
}

impl LuceneWorkload {
    /// Creates the workload.
    pub fn new(params: LuceneParams) -> Self {
        let terms = Zipfian::new(params.vocabulary, 1.0); // word frequencies: zipf(1)
        let rng = StdRng::seed_from_u64(params.seed);
        LuceneWorkload {
            params,
            rng,
            terms,
            ids: None,
            classes: None,
            dictionary: std::collections::HashMap::new(),
            segment_postings: Vec::new(),
            docs_in_segment: 0,
            segments: Vec::new(),
            annotate: false,
            flushes: 0,
            merges: 0,
        }
    }

    /// Mutable parameter access for shape-only overrides after
    /// construction (e.g. the service harness zeroes `op_pacing_ns`
    /// because the arrival schedule paces requests). The term
    /// distribution and RNG seed are baked in at [`LuceneWorkload::new`];
    /// changing them here has no effect.
    pub fn params_mut(&mut self) -> &mut LuceneParams {
        &mut self.params
    }

    fn ids(&self) -> Ids {
        self.ids.expect("build_program not called")
    }

    fn classes(&self) -> Classes {
        self.classes.expect("setup not called")
    }

    fn index_document(&mut self, ctx: &mut MutatorCtx<'_>) {
        let ids = self.ids();
        let classes = self.classes();
        let words = self.params.doc_words;
        let annotate = self.annotate;

        // Analysis: a transient token stream plus tokenizer scratch
        // buffers per document — the heavy die-young churn of a Lucene
        // analysis chain.
        let tokens = ctx.call(ids.cs_analyze, |ctx| {
            ctx.work(words as u64 * 120);
            ctx.alloc(ids.site_tokens, classes.tokens, 0, words as u32)
        });
        let mut scratch = Vec::with_capacity(self.params.analysis_scratch);
        for _ in 0..self.params.analysis_scratch {
            scratch.push(ctx.call(ids.cs_analyze, |ctx| {
                ctx.work(600);
                ctx.alloc(ids.site_tokens, classes.tokens, 0, 40)
            }));
        }

        // Indexing: postings accumulate in the in-memory segment.
        let mut new_dict_terms = Vec::new();
        for _ in 0..words {
            let term = self.terms.sample(&mut self.rng);
            if !self.dictionary.contains_key(&term) {
                new_dict_terms.push(term);
            }
        }
        ctx.call(ids.cs_index_doc, |ctx| {
            ctx.work(words as u64 * 150);
            ctx.call(ids.cs_norm, |ctx| ctx.work(2)); // tiny, inlined
        });
        for _ in 0..self.params.postings_per_doc {
            let h = ctx.call(ids.cs_add_posting, |ctx| {
                ctx.work(500);
                if annotate {
                    ctx.alloc_annotated(ids.site_posting, classes.posting, 0, 16, POSTING_GEN)
                } else {
                    ctx.alloc(ids.site_posting, classes.posting, 0, 16)
                }
            });
            self.segment_postings.push(h);
        }
        for s in scratch {
            ctx.release(s);
        }
        for term in new_dict_terms {
            let h = if annotate {
                ctx.alloc_annotated(ids.site_dict, classes.dict, 0, 8, DICT_GEN)
            } else {
                ctx.alloc(ids.site_dict, classes.dict, 0, 8)
            };
            self.dictionary.insert(term, h);
        }

        ctx.release(tokens);
        self.docs_in_segment += 1;
        if self.docs_in_segment >= self.params.segment_flush_docs {
            self.flush_segment(ctx);
        }
    }

    fn flush_segment(&mut self, ctx: &mut MutatorCtx<'_>) {
        let ids = self.ids();
        let classes = self.classes();
        let annotate = self.annotate;
        let meta = ctx.call(ids.cs_flush, |ctx| {
            ctx.work(2_000_000);
            if annotate {
                ctx.alloc_annotated(ids.site_segment, classes.segment, 0, 64, DICT_GEN)
            } else {
                ctx.alloc(ids.site_segment, classes.segment, 0, 64)
            }
        });
        // The epoch: every posting buffer of this segment dies together.
        for h in self.segment_postings.drain(..) {
            ctx.release(h);
        }
        self.docs_in_segment = 0;
        self.segments.push(meta);
        self.flushes += 1;
        if self.segments.len() > 10 {
            let merged = ctx.call(ids.cs_merge, |ctx| {
                ctx.work(4_000_000);
                if annotate {
                    ctx.alloc_annotated(ids.site_segment, classes.segment, 0, 96, DICT_GEN)
                } else {
                    ctx.alloc(ids.site_segment, classes.segment, 0, 96)
                }
            });
            for old in self.segments.drain(..5) {
                ctx.release(old);
            }
            self.segments.insert(0, merged);
            self.merges += 1;
        }
    }

    fn search(&mut self, ctx: &mut MutatorCtx<'_>) {
        let ids = self.ids();
        let classes = self.classes();
        // A 2–4 term query; transient hit-list and scoring buffers.
        let nterms = self.rng.gen_range(2..=4);
        let hits = ctx.call(ids.cs_search, |ctx| {
            ctx.work(nterms * 4_000);
            ctx.alloc(ids.site_hits, classes.hits, 0, 64)
        });
        for _ in 0..nterms {
            let term = self.terms.sample(&mut self.rng);
            if self.dictionary.contains_key(&term) {
                ctx.call(ids.cs_score, |ctx| ctx.work(2_000));
            }
        }
        ctx.release(hits);
    }
}

impl Workload for LuceneWorkload {
    fn name(&self) -> String {
        "Lucene".to_string()
    }

    fn profiling_filters(&self) -> PackageFilters {
        // Paper Table 1: lucene.store.
        PackageFilters::include(&["lucene.store"])
    }

    fn annotation_count(&self) -> usize {
        // posting, dict, segment (flush), segment (merge).
        4
    }

    fn set_annotations(&mut self, on: bool) {
        self.annotate = on;
    }

    fn declare_program(&mut self, b: &mut ProgramBuilder) {
        let writer = b.method("lucene.index.IndexWriter::addDocument", 500, false);
        let analyze = b.method("lucene.analysis.Analyzer::tokenStream", 200, false);
        let index_doc = b.method("lucene.index.DocConsumer::processDocument", 300, false);
        let add_posting = b.method("lucene.store.PostingsArray::grow", 80, false);
        let norm = b.method("lucene.store.Norms::encode", 10, true); // inlined
        let flush = b.method("lucene.store.SegmentWriter::flush", 400, false);
        let merge = b.method("lucene.store.SegmentMerger::merge", 450, false);
        let search = b.method("lucene.search.IndexSearcher::search", 350, false);
        let score = b.method("lucene.search.Scorer::score", 90, false);

        let ids = Ids {
            cs_analyze: b.call_site(writer, analyze),
            cs_index_doc: b.call_site(writer, index_doc),
            cs_add_posting: b.call_site(index_doc, add_posting),
            cs_flush: b.call_site(index_doc, flush),
            cs_merge: b.call_site(flush, merge),
            cs_search: b.call_site(writer, search),
            cs_score: b.call_site(search, score),
            cs_norm: b.call_site(index_doc, norm),
            site_tokens: b.alloc_site(analyze, 3),
            site_posting: b.alloc_site(add_posting, 5),
            site_dict: b.alloc_site(add_posting, 9),
            site_segment: b.alloc_site(flush, 14),
            site_hits: b.alloc_site(search, 7),
        };
        self.ids = Some(ids);
    }

    fn setup(&mut self, rt: &mut JvmRuntime) {
        self.classes = Some(Classes {
            tokens: rt.vm.env.heap.classes.register("lucene.analysis.TokenStream"),
            posting: rt.vm.env.heap.classes.register("lucene.store.PostingsArray"),
            dict: rt.vm.env.heap.classes.register("lucene.store.TermDictEntry"),
            segment: rt.vm.env.heap.classes.register("lucene.store.SegmentInfo"),
            hits: rt.vm.env.heap.classes.register("lucene.search.TopDocs"),
        });
    }

    fn tick(&mut self, ctx: &mut MutatorCtx<'_>) -> u64 {
        let write: bool = self.rng.gen_bool(self.params.write_fraction);
        if write {
            self.index_document(ctx);
        } else {
            self.search(ctx);
        }
        ctx.idle(self.params.op_pacing_ns);
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{execute, RunBudget};
    use rolp::runtime::{CollectorKind, RuntimeConfig};
    use rolp_heap::HeapConfig;

    fn small() -> LuceneParams {
        LuceneParams {
            segment_flush_docs: 300,
            vocabulary: 2_000,
            doc_words: 24,
            op_pacing_ns: 1_000,
            ..Default::default()
        }
    }

    fn config(kind: CollectorKind) -> RuntimeConfig {
        RuntimeConfig {
            collector: kind,
            heap: HeapConfig { region_bytes: 64 * 1024, max_heap_bytes: 24 << 20 },
            ..Default::default()
        }
    }

    #[test]
    fn indexes_searches_and_flushes() {
        let mut w = LuceneWorkload::new(small());
        let out = execute(&mut w, config(CollectorKind::G1), &RunBudget::smoke(4_000));
        assert_eq!(out.report.ops, 4_000);
        assert!(w.flushes >= 1, "segment flush expected");
        assert!(!w.dictionary.is_empty());
    }

    #[test]
    fn rolp_learns_posting_lifetimes() {
        let mut w = LuceneWorkload::new(small());
        let out = execute(&mut w, config(CollectorKind::RolpNg2c), &RunBudget::smoke(30_000));
        let rolp = out.report.rolp.expect("rolp stats");
        assert!(rolp.profiled_allocations > 0);
        // Only lucene.store methods are inside the filter.
        assert!(rolp.unprofiled_allocations > 0, "analysis chain is filtered out");
    }
}
