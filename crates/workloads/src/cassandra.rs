//! Cassandra-like key-value store workload.
//!
//! Reproduces the object demography the paper measures on Apache
//! Cassandra 2.1.8 under YCSB (Table 1, Figs. 8–10):
//!
//! - *Transient* request/response objects and parse buffers — die within
//!   one GC cycle.
//! - *Middle-lived* memtable entries and their payload buffers — live
//!   from insertion until the memtable flushes, then die together (the
//!   epochal hypothesis).
//! - *Long-lived* SSTable metadata and index structures — survive until
//!   compaction or forever.
//!
//! The crucial profiling challenge is built in: payload buffers for both
//! the transient parse path and the durable write path come from the same
//! factory allocation site (`cassandra.utils.Buffer::allocate`), reachable
//! through two call paths — an allocation-context conflict ROLP must
//! detect and resolve (§4–§5). The paper's package filters
//! (`cassandra.db`, `cassandra.utils`, `cassandra.memory`) are reproduced
//! by putting the transport code in `cassandra.net`, which is *not*
//! profiled.

use rolp::runtime::JvmRuntime;
use rolp::PackageFilters;
use rolp_heap::{ClassId, Handle};
use rolp_vm::{AllocSiteId, CallSiteId, MutatorCtx, ProgramBuilder};

use crate::spec::Workload;
use crate::ycsb::{Op, YcsbGenerator};

/// Estimated memtable-entry lifetime a programmer would annotate for NG2C
/// (in GC cycles / dynamic generation index).
const ENTRY_GEN: u8 = 6;
/// Row-cache entries live a fixed FIFO span, somewhat longer.
const CACHE_GEN: u8 = 8;
/// SSTable metadata: effectively old.
const SSTABLE_GEN: u8 = 15;

/// The three paper workload mixes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CassandraMix {
    /// Write-intensive: 75% writes (paper "WI").
    WriteIntensive,
    /// Read-write: 50% writes (paper "RW").
    ReadWrite,
    /// Read-intensive: 25% writes (paper "RI").
    ReadIntensive,
}

impl CassandraMix {
    /// Write fraction of the mix.
    pub fn write_fraction(self) -> f64 {
        match self {
            CassandraMix::WriteIntensive => 0.75,
            CassandraMix::ReadWrite => 0.50,
            CassandraMix::ReadIntensive => 0.25,
        }
    }

    /// Paper's short label.
    pub fn label(self) -> &'static str {
        match self {
            CassandraMix::WriteIntensive => "WI",
            CassandraMix::ReadWrite => "RW",
            CassandraMix::ReadIntensive => "RI",
        }
    }
}

/// Workload parameters.
#[derive(Debug, Clone)]
pub struct CassandraParams {
    /// Operation mix.
    pub mix: CassandraMix,
    /// Simulated request pacing: nanoseconds of think time per op
    /// (paper: 10 k ops/s → 100 µs).
    pub op_pacing_ns: u64,
    /// Memtable flush threshold in entries (sized so entries live several
    /// GC cycles — the middle-lived epoch).
    pub memtable_flush_entries: usize,
    /// Key space for the zipfian generator.
    pub key_space: u64,
    /// Transient parse buffers allocated per request (deserialization
    /// churn).
    pub parse_buffers_per_op: usize,
    /// Row-cache capacity in entries. Cache entries are allocated through
    /// the same `Buffer::allocate` factory as the durable write payloads
    /// but live a *fixed* span (FIFO eviction), producing the clustered
    /// second mode that makes the factory an allocation-context conflict.
    pub row_cache_entries: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CassandraParams {
    fn default() -> Self {
        CassandraParams {
            mix: CassandraMix::WriteIntensive,
            op_pacing_ns: 100_000,
            memtable_flush_entries: 60_000,
            key_space: 500_000,
            parse_buffers_per_op: 6,
            row_cache_entries: 30_000,
            seed: 0xCA55,
        }
    }
}

/// Program ids captured at build time.
#[derive(Debug, Clone, Copy)]
struct Ids {
    cs_parse: CallSiteId,
    cs_put: CallSiteId,
    cs_get: CallSiteId,
    cs_insert: CallSiteId,
    cs_read_buf: CallSiteId,
    cs_write_buf: CallSiteId,
    cs_hash: CallSiteId,
    cs_flush: CallSiteId,
    cs_compact: CallSiteId,
    site_request: AllocSiteId,
    site_parse_buf: AllocSiteId,
    site_buffer: AllocSiteId,
    site_entry: AllocSiteId,
    site_response: AllocSiteId,
    site_sstable: AllocSiteId,
    site_index: AllocSiteId,
}

/// Guest classes.
#[derive(Debug, Clone, Copy)]
struct Classes {
    request: ClassId,
    buffer: ClassId,
    entry: ClassId,
    response: ClassId,
    sstable: ClassId,
    index: ClassId,
}

/// The Cassandra-like workload.
pub struct CassandraWorkload {
    params: CassandraParams,
    gen: YcsbGenerator,
    ids: Option<Ids>,
    classes: Option<Classes>,
    /// key → live memtable entry handle.
    memtable: std::collections::HashMap<u64, Handle>,
    /// SSTable metadata handles, oldest first.
    sstables: Vec<Handle>,
    /// Long-lived index structures (immortal).
    index: Vec<Handle>,
    /// FIFO row cache (fixed-span lifetimes through the shared factory).
    row_cache: std::collections::VecDeque<Handle>,
    annotate: bool,
    /// Ops processed (drives periodic maintenance).
    ops_done: u64,
    /// Completed flushes (epochs).
    pub flushes: u64,
    /// Completed compactions.
    pub compactions: u64,
}

impl CassandraWorkload {
    /// Creates the workload.
    pub fn new(params: CassandraParams) -> Self {
        let gen = YcsbGenerator::new(params.key_space, params.mix.write_fraction(), params.seed);
        CassandraWorkload {
            params,
            gen,
            ids: None,
            classes: None,
            memtable: std::collections::HashMap::new(),
            sstables: Vec::new(),
            index: Vec::new(),
            row_cache: std::collections::VecDeque::new(),
            annotate: false,
            ops_done: 0,
            flushes: 0,
            compactions: 0,
        }
    }

    /// The parameters this workload was built with (e.g. to derive a
    /// seed-offset sibling instance for fleet simulation).
    pub fn params(&self) -> &CassandraParams {
        &self.params
    }

    /// Mutable parameter access for shape-only overrides after
    /// construction (e.g. the service harness zeroes `op_pacing_ns`
    /// because the arrival schedule paces requests). The generator
    /// seed/mix/key-space are baked in at [`CassandraWorkload::new`];
    /// changing them here has no effect.
    pub fn params_mut(&mut self) -> &mut CassandraParams {
        &mut self.params
    }

    fn ids(&self) -> Ids {
        self.ids.expect("build_program not called")
    }

    fn classes(&self) -> Classes {
        self.classes.expect("setup not called")
    }

    /// Allocates a payload buffer through the shared factory (the
    /// conflicted allocation site). `durable` selects the call path;
    /// `gen_hint` is the *programmer knowledge* only NG2C annotations may
    /// use (applied only when annotations are on).
    fn alloc_buffer(
        &mut self,
        ctx: &mut MutatorCtx<'_>,
        words: u32,
        durable: bool,
        gen_hint: Option<u8>,
    ) -> Handle {
        let ids = self.ids();
        let classes = self.classes();
        let annotate = self.annotate;
        ctx.call(if durable { ids.cs_write_buf } else { ids.cs_read_buf }, |ctx| {
            // A tiny inlineable hash helper runs on every buffer
            // allocation (exercises the §7.2.1 inlining rule).
            ctx.call(ids.cs_hash, |ctx| ctx.work(100));
            ctx.work(300);
            match gen_hint.filter(|_| annotate) {
                Some(gen) => ctx.alloc_annotated(ids.site_buffer, classes.buffer, 0, words, gen),
                None => ctx.alloc(ids.site_buffer, classes.buffer, 0, words),
            }
        })
    }

    fn do_write(&mut self, ctx: &mut MutatorCtx<'_>, key: u64) {
        let ids = self.ids();
        let classes = self.classes();
        let words = self.gen.value_words();
        ctx.call(ids.cs_put, |ctx| ctx.work(4_000));
        // Durable payload through the conflicted factory.
        let payload = self.alloc_buffer(ctx, words, true, Some(ENTRY_GEN));
        let annotate = self.annotate;
        let entry = ctx.call(ids.cs_insert, |ctx| {
            ctx.work(2_500);
            let entry = if annotate {
                ctx.alloc_annotated(ids.site_entry, classes.entry, 1, 2, ENTRY_GEN)
            } else {
                ctx.alloc(ids.site_entry, classes.entry, 1, 2)
            };
            ctx.set_ref(entry, 0, &payload);
            ctx.set_data(entry, 0, key);
            entry
        });
        // The entry owns the payload; the local payload handle drops.
        ctx.release(payload);
        if let Some(old) = self.memtable.insert(key, entry) {
            // Overwrite: the previous version dies now.
            ctx.release(old);
        }
        if self.memtable.len() >= self.params.memtable_flush_entries {
            self.flush(ctx);
        }
    }

    fn do_read(&mut self, ctx: &mut MutatorCtx<'_>, key: u64) {
        let ids = self.ids();
        let classes = self.classes();
        let words = self.gen.value_words();
        // Read path: a row-cache fill through the shared factory — the
        // same allocation site as the durable write-path payloads reached
        // through a different call path, with a different (fixed-span)
        // lifetime: the §4/§5 allocation-context conflict.
        let cached = self.alloc_buffer(ctx, words, false, Some(CACHE_GEN));
        self.row_cache.push_back(cached);
        if self.row_cache.len() > self.params.row_cache_entries {
            if let Some(evicted) = self.row_cache.pop_front() {
                ctx.release(evicted);
            }
        }
        let hit = self.memtable.get(&key).copied();
        let response = ctx.call(ids.cs_get, |ctx| {
            ctx.work(6_000);
            let response = ctx.alloc(ids.site_response, classes.response, 1, 4);
            if let Some(entry) = hit {
                // Touch the entry (copies a couple of payload words).
                let v = ctx.get_data(entry, 0);
                ctx.set_data(response, 0, v);
            }
            response
        });
        ctx.release(response);
    }

    /// Memtable flush: every entry (and its payload) dies together; a
    /// small SSTable metadata object is born.
    fn flush(&mut self, ctx: &mut MutatorCtx<'_>) {
        let ids = self.ids();
        let classes = self.classes();
        let annotate = self.annotate;
        let sstable = ctx.call(ids.cs_flush, |ctx| {
            ctx.work(200_000);
            if annotate {
                ctx.alloc_annotated(ids.site_sstable, classes.sstable, 0, 32, SSTABLE_GEN)
            } else {
                ctx.alloc(ids.site_sstable, classes.sstable, 0, 32)
            }
        });
        // Drain in key order: the hash map's iteration order would leak
        // hasher randomness into handle-slot reuse and from there into
        // evacuation order, breaking run determinism.
        let mut entries: Vec<_> = self.memtable.drain().collect();
        entries.sort_unstable_by_key(|&(k, _)| k);
        for (_, entry) in entries {
            ctx.release(entry);
        }
        self.sstables.push(sstable);
        self.flushes += 1;
        if self.sstables.len() > 8 {
            self.compact(ctx);
        }
    }

    /// Size-tiered compaction: the four oldest SSTables merge into one.
    fn compact(&mut self, ctx: &mut MutatorCtx<'_>) {
        let ids = self.ids();
        let classes = self.classes();
        let annotate = self.annotate;
        let merged = ctx.call(ids.cs_compact, |ctx| {
            ctx.work(500_000);
            if annotate {
                ctx.alloc_annotated(ids.site_sstable, classes.sstable, 0, 48, SSTABLE_GEN)
            } else {
                ctx.alloc(ids.site_sstable, classes.sstable, 0, 48)
            }
        });
        for old in self.sstables.drain(..4) {
            ctx.release(old);
        }
        self.sstables.insert(0, merged);
        self.compactions += 1;
    }
}

impl Workload for CassandraWorkload {
    fn name(&self) -> String {
        format!("Cassandra {}", self.params.mix.label())
    }

    fn profiling_filters(&self) -> PackageFilters {
        // Paper Table 1: cassandra.db, cassandra.utils, cassandra.memory.
        PackageFilters::include(&["cassandra.db", "cassandra.utils", "cassandra.memory"])
    }

    fn annotation_count(&self) -> usize {
        // alloc_annotated code locations: entry, durable buffer, cache
        // buffer, sstable (flush), sstable (compact), index.
        6
    }

    fn set_annotations(&mut self, on: bool) {
        self.annotate = on;
    }

    fn declare_program(&mut self, b: &mut ProgramBuilder) {
        let handle = b.method("cassandra.net.RequestHandler::handle", 400, false);
        let parse = b.method("cassandra.net.RequestHandler::parse", 150, false);
        let put = b.method("cassandra.db.Table::put", 120, false);
        let get = b.method("cassandra.db.Table::get", 140, false);
        let insert = b.method("cassandra.db.Memtable::insert", 90, false);
        let buf_alloc = b.method("cassandra.utils.Buffer::allocate", 60, false);
        let murmur = b.method("cassandra.utils.Murmur::hash", 12, true); // inlined
        let flush = b.method("cassandra.db.Memtable::flush", 300, false);
        let compact = b.method("cassandra.db.Compaction::compact", 350, false);

        let ids = Ids {
            cs_parse: b.call_site(handle, parse),
            cs_put: b.call_site(handle, put),
            cs_get: b.call_site(handle, get),
            cs_insert: b.call_site(put, insert),
            cs_read_buf: b.call_site(get, buf_alloc),
            cs_write_buf: b.call_site(insert, buf_alloc),
            cs_hash: b.call_site(buf_alloc, murmur),
            cs_flush: b.call_site(insert, flush),
            cs_compact: b.call_site(flush, compact),
            site_request: b.alloc_site(parse, 4),
            site_parse_buf: b.alloc_site(parse, 8),
            site_buffer: b.alloc_site(buf_alloc, 2),
            site_entry: b.alloc_site(insert, 11),
            site_response: b.alloc_site(get, 9),
            site_sstable: b.alloc_site(flush, 21),
            site_index: b.alloc_site(compact, 30),
        };
        self.ids = Some(ids);
    }

    fn setup(&mut self, rt: &mut JvmRuntime) {
        let classes = Classes {
            request: rt.vm.env.heap.classes.register("cassandra.net.Request"),
            buffer: rt.vm.env.heap.classes.register("cassandra.utils.Buffer"),
            entry: rt.vm.env.heap.classes.register("cassandra.db.Memtable$Entry"),
            response: rt.vm.env.heap.classes.register("cassandra.net.Response"),
            sstable: rt.vm.env.heap.classes.register("cassandra.db.SSTable"),
            index: rt.vm.env.heap.classes.register("cassandra.db.Index"),
        };
        self.classes = Some(classes);

        // Long-lived index structures (partition summaries etc.).
        let ids = self.ids();
        let mut ctx = rt.ctx(rolp_vm::ThreadId(0));
        for _ in 0..64 {
            let h = if self.annotate {
                ctx.alloc_annotated(ids.site_index, classes.index, 0, 128, SSTABLE_GEN)
            } else {
                ctx.alloc(ids.site_index, classes.index, 0, 128)
            };
            self.index.push(h);
        }
    }

    fn tick(&mut self, ctx: &mut MutatorCtx<'_>) -> u64 {
        let ids = self.ids();
        let classes = self.classes();
        let op = self.gen.next_op();
        let parse_buffers = self.params.parse_buffers_per_op;

        // Request parsing (transient): a request object + deserialization
        // buffers through the *same* factory site as durable payloads.
        let request = ctx.call(ids.cs_parse, |ctx| {
            ctx.work(3_000);
            ctx.alloc(ids.site_request, classes.request, 1, 6)
        });
        let mut transients = Vec::with_capacity(parse_buffers);
        for _ in 0..parse_buffers {
            let words = self.gen.value_words();
            let h = ctx.call(ids.cs_parse, |ctx| {
                ctx.work(400);
                ctx.alloc(ids.site_parse_buf, classes.buffer, 0, words)
            });
            transients.push(h);
        }

        match op {
            Op::Write(key) => self.do_write(ctx, key),
            Op::Read(key) => self.do_read(ctx, key),
        }

        // Request done: transients die.
        for t in transients {
            ctx.release(t);
        }
        ctx.release(request);

        ctx.idle(self.params.op_pacing_ns);
        self.ops_done += 1;
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{execute, RunBudget};
    use rolp::runtime::{CollectorKind, RuntimeConfig};
    use rolp_heap::HeapConfig;

    fn small_params() -> CassandraParams {
        CassandraParams {
            memtable_flush_entries: 500,
            key_space: 5_000,
            op_pacing_ns: 1_000,
            ..Default::default()
        }
    }

    fn small_config(kind: CollectorKind) -> RuntimeConfig {
        RuntimeConfig {
            collector: kind,
            heap: HeapConfig { region_bytes: 64 * 1024, max_heap_bytes: 24 << 20 },
            ..Default::default()
        }
    }

    #[test]
    fn runs_and_flushes_under_g1() {
        let mut w = CassandraWorkload::new(small_params());
        let out = execute(&mut w, small_config(CollectorKind::G1), &RunBudget::smoke(8_000));
        assert_eq!(out.report.ops, 8_000);
        assert!(w.flushes >= 2, "memtable epochs expected, got {}", w.flushes);
        assert!(out.report.gc_cycles >= 1);
    }

    #[test]
    fn rolp_profiles_and_eventually_pretenures() {
        let mut w = CassandraWorkload::new(small_params());
        let out = execute(&mut w, small_config(CollectorKind::RolpNg2c), &RunBudget::smoke(60_000));
        let rolp = out.report.rolp.expect("rolp stats present");
        assert!(rolp.profiled_allocations > 0, "hot sites get profiled");
        assert!(rolp.inferences >= 1, "inference ran: {rolp:?}");
        assert!(rolp.decisions > 0, "lifetime decisions made: {rolp:?}");
    }

    #[test]
    fn ng2c_annotations_pretenure_immediately() {
        let mut w = CassandraWorkload::new(small_params());
        let out = execute(&mut w, small_config(CollectorKind::Ng2c), &RunBudget::smoke(5_000));
        assert!(out.report.ops == 5_000);
        assert!(w.annotation_count() > 0);
    }

    #[test]
    fn mixes_have_distinct_write_fractions() {
        assert!(
            CassandraMix::WriteIntensive.write_fraction()
                > CassandraMix::ReadWrite.write_fraction()
        );
        assert!(
            CassandraMix::ReadWrite.write_fraction() > CassandraMix::ReadIntensive.write_fraction()
        );
    }
}
