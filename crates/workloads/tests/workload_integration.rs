//! Cross-workload integration tests: determinism, annotation plumbing,
//! filter plumbing, and demography sanity for all three platforms and the
//! DaCapo suite.

use rolp::runtime::{CollectorKind, RuntimeConfig};
use rolp_heap::{HeapConfig, RegionKind};
use rolp_workloads::{
    all_benchmarks, execute, CassandraMix, CassandraParams, CassandraWorkload, DacapoBench,
    GraphAlgo, GraphChiParams, GraphChiWorkload, LuceneParams, LuceneWorkload, RunBudget, Workload,
};

fn heap() -> HeapConfig {
    HeapConfig { region_bytes: 64 * 1024, max_heap_bytes: 24 << 20 }
}

fn config(kind: CollectorKind) -> RuntimeConfig {
    RuntimeConfig { collector: kind, heap: heap(), ..Default::default() }
}

fn cassandra() -> CassandraWorkload {
    CassandraWorkload::new(CassandraParams {
        mix: CassandraMix::ReadWrite,
        memtable_flush_entries: 1_500,
        key_space: 10_000,
        row_cache_entries: 800,
        op_pacing_ns: 1_000,
        ..Default::default()
    })
}

fn lucene() -> LuceneWorkload {
    LuceneWorkload::new(LuceneParams {
        segment_flush_docs: 400,
        vocabulary: 3_000,
        op_pacing_ns: 1_000,
        ..Default::default()
    })
}

fn graphchi(algo: GraphAlgo) -> GraphChiWorkload {
    GraphChiWorkload::new(GraphChiParams {
        algo,
        vertices: 8_000,
        edges: 100_000,
        shards: 8,
        chunk: 1_024,
        io_ns_per_edge: 50,
        ..Default::default()
    })
}

#[test]
fn all_workloads_are_deterministic() {
    let fingerprint = |mk: &dyn Fn() -> Box<dyn Workload>, ops: u64| {
        let mut w = mk();
        let out = execute(w.as_mut(), config(CollectorKind::RolpNg2c), &RunBudget::smoke(ops));
        (out.report.elapsed.as_nanos(), out.report.gc_cycles, out.report.max_used_bytes)
    };
    #[allow(clippy::type_complexity)] // a literal case table reads best flat
    let cases: Vec<(Box<dyn Fn() -> Box<dyn Workload>>, u64)> = vec![
        (Box::new(|| Box::new(cassandra()) as Box<dyn Workload>), 10_000),
        (Box::new(|| Box::new(lucene()) as Box<dyn Workload>), 10_000),
        (Box::new(|| Box::new(graphchi(GraphAlgo::ConnectedComponents)) as Box<dyn Workload>), 60),
    ];
    for (mk, ops) in &cases {
        assert_eq!(fingerprint(mk, *ops), fingerprint(mk, *ops), "nondeterministic workload");
    }
}

#[test]
fn ng2c_runs_populate_dynamic_generations_from_annotations() {
    for mk in [
        || Box::new(cassandra()) as Box<dyn Workload>,
        || Box::new(lucene()) as Box<dyn Workload>,
        || Box::new(graphchi(GraphAlgo::PageRank)) as Box<dyn Workload>,
    ] {
        let mut w = mk();
        let name = w.name();
        assert!(w.annotation_count() > 0, "{name}: annotations declared");
        // Drive through the runtime and check dynamic generations fill.
        let program = w.build_program();
        let mut rt = rolp::runtime::JvmRuntime::new(config(CollectorKind::Ng2c), program);
        w.set_annotations(true);
        w.setup(&mut rt);
        for _ in 0..2_000 {
            let mut ctx = rt.ctx(rolp_vm::ThreadId(0));
            w.tick(&mut ctx);
        }
        let dynamic: usize =
            (1u8..=14).map(|g| rt.vm.env.heap.num_of_kind(RegionKind::Dynamic(g))).sum();
        assert!(dynamic > 0, "{name}: annotations must route objects to dynamic generations");
    }
}

#[test]
fn paper_filters_restrict_profiling_to_data_packages() {
    let mut w = cassandra();
    let filters = w.profiling_filters();
    assert!(filters.matches("cassandra.db"));
    assert!(filters.matches("cassandra.utils"));
    assert!(!filters.matches("cassandra.net"), "transport code is outside the filter");

    let out = execute(&mut w, config(CollectorKind::RolpNg2c), &RunBudget::smoke(20_000));
    let rolp = out.report.rolp.expect("rolp stats");
    assert!(
        rolp.unprofiled_allocations > 0,
        "request/parse allocations must be filtered out: {rolp:?}"
    );
    assert!(rolp.profiled_allocations > 0);
}

#[test]
fn cassandra_mixes_shift_the_flush_rate() {
    let flushes = |mix| {
        let mut w = CassandraWorkload::new(CassandraParams {
            mix,
            memtable_flush_entries: 1_500,
            key_space: 10_000,
            row_cache_entries: 800,
            op_pacing_ns: 1_000,
            ..Default::default()
        });
        let _ = execute(&mut w, config(CollectorKind::G1), &RunBudget::smoke(20_000));
        w.flushes
    };
    let wi = flushes(CassandraMix::WriteIntensive);
    let ri = flushes(CassandraMix::ReadIntensive);
    assert!(wi > ri, "more writes -> more memtable epochs ({wi} vs {ri})");
}

#[test]
fn lucene_merges_segments_and_grows_a_dictionary() {
    let mut w = lucene();
    let _ = execute(&mut w, config(CollectorKind::G1), &RunBudget::smoke(30_000));
    assert!(w.flushes >= 10);
    assert!(w.merges >= 1, "segment merges expected after many flushes");
}

#[test]
fn graphchi_passes_cover_every_shard() {
    let mut w = graphchi(GraphAlgo::ConnectedComponents);
    let _ = execute(&mut w, config(CollectorKind::G1), &RunBudget::smoke(24));
    assert_eq!(w.intervals, 24);
    assert_eq!(w.iterations, 3, "24 intervals over 8 shards = 3 full passes");
}

#[test]
fn dacapo_suite_runs_under_every_collector() {
    // One representative benchmark per behaviour class, each under all
    // five collectors (smoke level).
    for name in ["avrora", "sunflow", "pmd"] {
        let spec = rolp_workloads::benchmark(name).expect("exists");
        for kind in CollectorKind::all() {
            let mut bench =
                DacapoBench::new(rolp_workloads::DacapoSpec { ops: 400, ..spec.clone() }, 9);
            let cfg = RuntimeConfig {
                collector: kind,
                heap: spec.heap_config(rolp_metrics::SimScale::new(64)),
                ..Default::default()
            };
            let out = execute(&mut bench, cfg, &RunBudget::smoke(400));
            assert_eq!(out.report.ops, 400, "{name} under {kind:?}");
        }
    }
}

#[test]
fn dacapo_specs_are_distinct_profiles() {
    let specs = all_benchmarks();
    // The suite must not be 13 copies of one profile: the call/alloc mixes
    // that drive Fig. 6 differ.
    let mut mixes: Vec<(u64, u64)> =
        specs.iter().map(|s| (s.calls_per_op, s.allocs_per_op)).collect();
    mixes.sort_unstable();
    mixes.dedup();
    assert!(mixes.len() >= 8, "benchmarks should differ in their mixes");
    // sunflow is the allocation-heavy outlier; fop/jython the call-heavy.
    let sunflow = specs.iter().find(|s| s.name == "sunflow").expect("sunflow");
    assert!(sunflow.allocs_per_op > sunflow.calls_per_op);
    let fop = specs.iter().find(|s| s.name == "fop").expect("fop");
    assert!(fop.calls_per_op > 2 * fop.allocs_per_op);
}
