//! Property-based tests for the workload generators.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rolp_workloads::{Op, YcsbGenerator, Zipfian};

proptest! {
    /// Samples always stay in the domain, for arbitrary domains and skews.
    #[test]
    fn zipfian_samples_stay_in_domain(
        n in 1u64..200_000,
        theta in 0.2f64..1.2,
        seed in any::<u64>(),
    ) {
        let z = Zipfian::new(n, theta);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..200 {
            prop_assert!(z.sample(&mut rng) < n);
        }
    }

    /// Higher skew concentrates more mass on the head keys.
    #[test]
    fn zipfian_skew_orders_head_mass(n in 1_000u64..50_000, seed in any::<u64>()) {
        let head = n / 100 + 1;
        let mass = |theta: f64| {
            let z = Zipfian::new(n, theta);
            let mut rng = StdRng::seed_from_u64(seed);
            (0..3_000).filter(|_| z.sample(&mut rng) < head).count()
        };
        let light = mass(0.3);
        let heavy = mass(0.99);
        prop_assert!(heavy > light, "theta=0.99 head {heavy} <= theta=0.3 head {light}");
    }

    /// The op mixer matches its write fraction within sampling noise and
    /// is deterministic per seed.
    #[test]
    fn ycsb_mix_is_calibrated_and_deterministic(
        frac in 0.05f64..0.95,
        seed in any::<u64>(),
    ) {
        let sample = |seed| {
            let mut g = YcsbGenerator::new(10_000, frac, seed);
            (0..4_000).map(|_| g.next_op()).collect::<Vec<_>>()
        };
        let a = sample(seed);
        let b = sample(seed);
        prop_assert_eq!(&a, &b, "same seed, same stream");
        let writes = a.iter().filter(|o| matches!(o, Op::Write(_))).count();
        let measured = writes as f64 / a.len() as f64;
        prop_assert!((measured - frac).abs() < 0.05, "target {frac}, measured {measured}");
    }

    /// DaCapo heap configs scale monotonically and stay well-formed.
    #[test]
    fn dacapo_heaps_scale_monotonically(divisor in 1u64..256) {
        use rolp_metrics::SimScale;
        for spec in rolp_workloads::all_benchmarks() {
            let big = spec.heap_config(SimScale::new(divisor));
            let small = spec.heap_config(SimScale::new(divisor * 2));
            prop_assert!(big.max_heap_bytes >= small.max_heap_bytes);
            prop_assert!(big.region_bytes.is_power_of_two());
            prop_assert!(big.max_heap_bytes >= big.region_bytes as u64 * 16,
                "{}: at least 16 regions", spec.name);
        }
    }
}
