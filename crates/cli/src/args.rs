//! Hand-rolled argument parsing for `rolp-sim` (no CLI dependency).

use rolp::runtime::CollectorKind;

/// Which workload to run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkloadChoice {
    /// Cassandra-like KV store: `cassandra-wi` / `cassandra-rw` /
    /// `cassandra-ri`.
    Cassandra(rolp_workloads::CassandraMix),
    /// Lucene-like indexer.
    Lucene,
    /// GraphChi-like engine: `graphchi-cc` / `graphchi-pr`.
    GraphChi(rolp_workloads::GraphAlgo),
    /// A DaCapo-like benchmark by name.
    Dacapo(String),
}

/// Parsed command line.
#[derive(Debug, Clone)]
pub struct Args {
    /// Workload to run.
    pub workload: WorkloadChoice,
    /// Collector configuration.
    pub collector: CollectorKind,
    /// Experiment scale divisor (paper testbed / N).
    pub scale: u64,
    /// Simulated run length in seconds.
    pub secs: u64,
    /// Warmup discard in seconds.
    pub discard: u64,
    /// Print the profiler report at the end.
    pub report: bool,
    /// Export learned decisions to this file.
    pub export_profile: Option<String>,
    /// Import an offline decision profile from this file.
    pub import_profile: Option<String>,
    /// Write a Chrome `trace_event` flight-recorder trace to this file.
    pub trace_out: Option<String>,
    /// Write the machine-readable run summary (JSON) to this file.
    pub stats_json: Option<String>,
    /// Stream live telemetry snapshots (JSONL, one per interval) to this
    /// file.
    pub metrics_out: Option<String>,
    /// Simulated seconds between streamed snapshots.
    pub metrics_interval: u64,
    /// Write the final snapshot in Prometheus text exposition format to
    /// this file at exit.
    pub metrics_prom: Option<String>,
    /// Guest mutator threads.
    pub mutator_threads: u32,
    /// Parallel GC workers (None keeps the cost model's default).
    pub gc_workers: Option<usize>,
    /// OLD-table shard count (`None` keeps the unsharded backends:
    /// relaxed-shared for multi-threaded runs, sequential otherwise).
    /// `--table-shards auto` resolves to the mutator-thread count
    /// rounded up to a power of two.
    pub table_shards: Option<usize>,
    /// Fault-injection plan: a canned name or a `;`-separated spec
    /// (enables the overhead governor). `None` = no injection.
    pub fault_plan: Option<String>,
    /// Run the concurrency determinism check instead of a workload:
    /// multi-threaded mutators + parallel GC workers vs. the
    /// single-threaded reference, asserting the merged histograms stay
    /// within the measured §7.6 loss bound.
    pub verify_determinism: bool,
    /// TLAB chunk size in bytes; 0 disables the per-thread allocation
    /// fast path (`--no-tlab`).
    pub tlab_bytes: usize,
    /// Per-thread decision micro-cache (disabled with `--no-microcache`).
    pub microcache: bool,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            workload: WorkloadChoice::Cassandra(rolp_workloads::CassandraMix::WriteIntensive),
            collector: CollectorKind::RolpNg2c,
            scale: 64,
            secs: 120,
            discard: 30,
            report: false,
            export_profile: None,
            import_profile: None,
            trace_out: None,
            stats_json: None,
            metrics_out: None,
            metrics_interval: 1,
            metrics_prom: None,
            mutator_threads: 4,
            gc_workers: None,
            table_shards: None,
            fault_plan: None,
            verify_determinism: false,
            tlab_bytes: rolp_heap::DEFAULT_TLAB_BYTES,
            microcache: true,
        }
    }
}

/// Usage text.
pub const USAGE: &str = "\
rolp-sim — run a workload under a collector and report GC behaviour

USAGE:
    rolp-sim [OPTIONS]

OPTIONS:
    --workload <NAME>   cassandra-wi | cassandra-rw | cassandra-ri |
                        lucene | graphchi-cc | graphchi-pr |
                        dacapo:<benchmark>            [default: cassandra-wi]
    --collector <NAME>  cms | g1 | zgc | ng2c | rolp  [default: rolp]
    --scale <N>         run at 1/N of the paper's testbed [default: 64]
    --secs <N>          simulated run length in seconds   [default: 120]
    --discard <N>       warmup discard in seconds         [default: 30]
    --report            print the full profiler report
    --profile-out <FILE>  write the learned state as a versioned
                        rolp-profile-v1 file: pretenuring decisions with
                        confidence, frozen distinguishing call sites, the
                        program-shape fingerprint, and epoch count
                        (alias: --export-profile)
    --profile-in <FILE>   warm-start from an exported profile: decisions
                        apply the moment their site is JIT-compiled, and
                        the profile is validated against the running
                        program's shape — entries that no longer resolve
                        are rejected with a warning, never blindly applied
                        (alias: --import-profile)
    --trace-out <FILE>  record a flight-recorder trace of GC pauses,
                        profiler inferences, pretenuring decisions, and
                        JIT activity; written in Chrome trace_event format
                        (load in chrome://tracing or ui.perfetto.dev).
                        Use a .jsonl extension for line-oriented JSON
                        events instead.
    --stats-json <FILE> write the end-of-run summary as JSON (pause
                        percentiles, throughput, profiler counters);
                        written atomically (temp file + rename), and a
                        partial telemetry snapshot is flushed if the run
                        panics, so the file is never truncated JSON
    --metrics-out <FILE>  stream live telemetry snapshots as JSONL, one
                        flat object per line (schema rolp-metrics-v1:
                        time-per-bucket, counters, gauges, histogram
                        percentiles, profiling overhead)
    --metrics-interval <N>  simulated seconds between streamed snapshots
                        [default: 1]
    --metrics-prom <FILE>  dump the final telemetry snapshot in
                        Prometheus text exposition format at exit
    --mutator-threads <N>  guest mutator threads           [default: 4]
    --gc-workers <N>    parallel GC workers (marking, remembered-set
                        prescan, one private OLD table each)
                        [default: cost model, 4]
    --table-shards <N|auto>  partition the OLD table into N independently
                        locked shards (N a power of two): exact counting
                        with per-shard contention instead of the relaxed
                        lossy shared table; merge and inference fan out
                        across shards. `auto` = mutator threads rounded up
                        to a power of two  [default: unsharded]
    --fault-plan <SPEC> inject deterministic profiler faults and engage
                        the overhead governor. SPEC is a canned plan
                        (pressure-spike | id-exhaustion | merge-chaos) or
                        a `;`-separated list of atoms, e.g.
                        \"seed=7;burst@16..64x200000;drop-merge%3\"
    --verify-determinism   run the concurrency check instead of a
                        workload: N racy mutator threads + N parallel GC
                        workers vs. the single-threaded reference; fails
                        unless the merged histograms stay within the
                        measured lost-increment bound (paper section 7.6)
    --tlab-size <BYTES> per-thread allocation buffer (TLAB) chunk size;
                        each mutator bump-allocates privately from a
                        chunk of this size per space and refills under
                        the shared lock only on exhaustion
                        [default: 8192]
    --no-tlab           disable TLABs: every allocation takes the shared
                        slow path (equivalent to --tlab-size 0)
    --no-microcache     disable the per-thread pretenuring-decision
                        micro-cache; every allocation re-reads the
                        shared decision table
    --help              show this text
";

/// Parses arguments; `Err` carries the message to print.
pub fn parse(argv: &[String]) -> Result<Args, String> {
    let mut args = Args::default();
    let mut table_shards_spec: Option<String> = None;
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut take = |name: &str| {
            it.next().map(|s| s.to_string()).ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--workload" => {
                let v = take("--workload")?;
                args.workload = parse_workload(&v)?;
            }
            "--collector" => {
                let v = take("--collector")?;
                args.collector = parse_collector(&v)?;
            }
            "--scale" => {
                let v = take("--scale")?;
                args.scale =
                    v.parse::<u64>().ok().filter(|&n| n > 0).ok_or("--scale must be positive")?;
            }
            "--secs" => {
                let v = take("--secs")?;
                args.secs =
                    v.parse::<u64>().ok().filter(|&n| n > 0).ok_or("--secs must be positive")?;
            }
            "--discard" => {
                let v = take("--discard")?;
                args.discard = v.parse::<u64>().map_err(|_| "--discard must be a number")?;
            }
            "--report" => args.report = true,
            "--profile-out" | "--export-profile" => {
                args.export_profile = Some(take("--profile-out")?)
            }
            "--profile-in" | "--import-profile" => {
                args.import_profile = Some(take("--profile-in")?)
            }
            "--trace-out" => args.trace_out = Some(take("--trace-out")?),
            "--stats-json" => args.stats_json = Some(take("--stats-json")?),
            "--metrics-out" => args.metrics_out = Some(take("--metrics-out")?),
            "--metrics-interval" => {
                let v = take("--metrics-interval")?;
                args.metrics_interval = v
                    .parse::<u64>()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or("--metrics-interval must be positive")?;
            }
            "--metrics-prom" => args.metrics_prom = Some(take("--metrics-prom")?),
            "--mutator-threads" => {
                let v = take("--mutator-threads")?;
                args.mutator_threads = v
                    .parse::<u32>()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or("--mutator-threads must be positive")?;
            }
            "--gc-workers" => {
                let v = take("--gc-workers")?;
                args.gc_workers = Some(
                    v.parse::<usize>()
                        .ok()
                        .filter(|&n| n > 0)
                        .ok_or("--gc-workers must be positive")?,
                );
            }
            "--table-shards" => table_shards_spec = Some(take("--table-shards")?),
            "--fault-plan" => {
                let v = take("--fault-plan")?;
                // Validate eagerly so a typo fails before the run starts.
                rolp_faults::FaultPlan::parse(&v)?;
                args.fault_plan = Some(v);
            }
            "--verify-determinism" => args.verify_determinism = true,
            "--tlab-size" => {
                let v = take("--tlab-size")?;
                args.tlab_bytes =
                    v.parse::<usize>().map_err(|_| "--tlab-size must be a byte count")?;
            }
            "--no-tlab" => args.tlab_bytes = 0,
            "--no-microcache" => args.microcache = false,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown option {other}\n\n{USAGE}")),
        }
    }
    if args.discard >= args.secs {
        return Err("--discard must be smaller than --secs".to_string());
    }
    // `auto` depends on --mutator-threads, which may appear later on the
    // command line, so shard resolution happens after the parse loop.
    if let Some(spec) = table_shards_spec {
        let shards = if spec == "auto" {
            (args.mutator_threads as usize).next_power_of_two()
        } else {
            spec.parse::<usize>()
                .ok()
                .filter(|n| n.is_power_of_two())
                .ok_or("--table-shards must be a power of two or `auto`")?
        };
        args.table_shards = Some(shards);
    }
    Ok(args)
}

fn parse_workload(v: &str) -> Result<WorkloadChoice, String> {
    use rolp_workloads::{CassandraMix, GraphAlgo};
    Ok(match v {
        "cassandra-wi" => WorkloadChoice::Cassandra(CassandraMix::WriteIntensive),
        "cassandra-rw" => WorkloadChoice::Cassandra(CassandraMix::ReadWrite),
        "cassandra-ri" => WorkloadChoice::Cassandra(CassandraMix::ReadIntensive),
        "lucene" => WorkloadChoice::Lucene,
        "graphchi-cc" => WorkloadChoice::GraphChi(GraphAlgo::ConnectedComponents),
        "graphchi-pr" => WorkloadChoice::GraphChi(GraphAlgo::PageRank),
        other => {
            if let Some(name) = other.strip_prefix("dacapo:") {
                if rolp_workloads::benchmark(name).is_none() {
                    return Err(format!("unknown DaCapo benchmark {name}"));
                }
                WorkloadChoice::Dacapo(name.to_string())
            } else {
                return Err(format!("unknown workload {other}"));
            }
        }
    })
}

fn parse_collector(v: &str) -> Result<CollectorKind, String> {
    Ok(match v {
        "cms" => CollectorKind::Cms,
        "g1" => CollectorKind::G1,
        "zgc" => CollectorKind::Zgc,
        "ng2c" => CollectorKind::Ng2c,
        "rolp" => CollectorKind::RolpNg2c,
        other => return Err(format!("unknown collector {other}")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(|t| t.to_string()).collect()
    }

    #[test]
    fn defaults_parse_from_empty() {
        let a = parse(&[]).expect("defaults");
        assert_eq!(a.collector, CollectorKind::RolpNg2c);
        assert_eq!(a.scale, 64);
    }

    #[test]
    fn full_command_line_parses() {
        let a = parse(&argv(
            "--workload graphchi-pr --collector g1 --scale 32 --secs 90 --discard 10 --report",
        ))
        .expect("parses");
        assert!(matches!(
            a.workload,
            WorkloadChoice::GraphChi(rolp_workloads::GraphAlgo::PageRank)
        ));
        assert_eq!(a.collector, CollectorKind::G1);
        assert_eq!(a.scale, 32);
        assert_eq!(a.secs, 90);
        assert_eq!(a.discard, 10);
        assert!(a.report);
    }

    #[test]
    fn concurrency_flags_parse() {
        let a = parse(&argv("--mutator-threads 8 --gc-workers 2 --verify-determinism"))
            .expect("parses");
        assert_eq!(a.mutator_threads, 8);
        assert_eq!(a.gc_workers, Some(2));
        assert!(a.verify_determinism);
        let d = parse(&[]).expect("defaults");
        assert_eq!(d.mutator_threads, 4);
        assert_eq!(d.gc_workers, None);
        assert!(!d.verify_determinism);
        assert!(parse(&argv("--gc-workers 0")).unwrap_err().contains("positive"));
        assert!(parse(&argv("--mutator-threads 0")).unwrap_err().contains("positive"));
    }

    #[test]
    fn table_shards_flag_parses() {
        assert_eq!(parse(&argv("--table-shards 8")).unwrap().table_shards, Some(8));
        assert_eq!(parse(&[]).unwrap().table_shards, None);
        // `auto` follows the mutator-thread count regardless of flag
        // order, rounded up to a power of two.
        let a = parse(&argv("--table-shards auto --mutator-threads 6")).unwrap();
        assert_eq!(a.table_shards, Some(8));
        let b = parse(&argv("--mutator-threads 4 --table-shards auto")).unwrap();
        assert_eq!(b.table_shards, Some(4));
        assert!(parse(&argv("--table-shards 3")).unwrap_err().contains("power of two"));
        assert!(parse(&argv("--table-shards 0")).unwrap_err().contains("power of two"));
    }

    #[test]
    fn observability_flags_parse() {
        let a = parse(&argv("--trace-out t.json --stats-json s.json")).expect("parses");
        assert_eq!(a.trace_out.as_deref(), Some("t.json"));
        assert_eq!(a.stats_json.as_deref(), Some("s.json"));
        assert!(parse(&argv("--trace-out")).unwrap_err().contains("needs a value"));
    }

    #[test]
    fn metrics_flags_parse() {
        let a = parse(&argv("--metrics-out m.jsonl --metrics-interval 5 --metrics-prom m.prom"))
            .expect("parses");
        assert_eq!(a.metrics_out.as_deref(), Some("m.jsonl"));
        assert_eq!(a.metrics_interval, 5);
        assert_eq!(a.metrics_prom.as_deref(), Some("m.prom"));
        let d = parse(&[]).expect("defaults");
        assert_eq!(d.metrics_out, None);
        assert_eq!(d.metrics_interval, 1);
        assert_eq!(d.metrics_prom, None);
        assert!(parse(&argv("--metrics-interval 0")).unwrap_err().contains("positive"));
    }

    #[test]
    fn fault_plan_flag_parses_and_validates() {
        let a = parse(&argv("--fault-plan merge-chaos")).expect("canned name parses");
        assert_eq!(a.fault_plan.as_deref(), Some("merge-chaos"));
        let a = parse(&argv("--fault-plan seed=7;burst@16..64x1000")).expect("spec parses");
        assert!(a.fault_plan.is_some());
        let err = parse(&argv("--fault-plan no-such-plan")).unwrap_err();
        assert!(err.contains("pressure-spike"), "error lists canned plans: {err}");
        assert_eq!(parse(&[]).unwrap().fault_plan, None);
    }

    #[test]
    fn profile_flags_and_their_legacy_aliases_parse() {
        let a = parse(&argv("--profile-out out.prof --profile-in in.prof")).expect("parses");
        assert_eq!(a.export_profile.as_deref(), Some("out.prof"));
        assert_eq!(a.import_profile.as_deref(), Some("in.prof"));
        let b = parse(&argv("--export-profile out.prof --import-profile in.prof"))
            .expect("aliases parse");
        assert_eq!(b.export_profile.as_deref(), Some("out.prof"));
        assert_eq!(b.import_profile.as_deref(), Some("in.prof"));
        assert!(parse(&argv("--profile-in")).unwrap_err().contains("needs a value"));
    }

    #[test]
    fn tlab_flags_parse() {
        let d = parse(&[]).expect("defaults");
        assert_eq!(d.tlab_bytes, rolp_heap::DEFAULT_TLAB_BYTES);
        assert!(d.microcache);
        let a = parse(&argv("--tlab-size 4096")).expect("parses");
        assert_eq!(a.tlab_bytes, 4096);
        let b = parse(&argv("--no-tlab --no-microcache")).expect("parses");
        assert_eq!(b.tlab_bytes, 0);
        assert!(!b.microcache);
        assert!(parse(&argv("--tlab-size lots")).unwrap_err().contains("byte count"));
    }

    #[test]
    fn dacapo_names_are_validated() {
        assert!(parse(&argv("--workload dacapo:pmd")).is_ok());
        assert!(parse(&argv("--workload dacapo:nope")).is_err());
    }

    #[test]
    fn errors_are_helpful() {
        assert!(parse(&argv("--collector shenandoah")).unwrap_err().contains("unknown collector"));
        assert!(parse(&argv("--scale 0")).unwrap_err().contains("positive"));
        assert!(parse(&argv("--secs 10 --discard 10")).unwrap_err().contains("smaller"));
        assert!(parse(&argv("--frobnicate")).unwrap_err().contains("unknown option"));
    }
}
