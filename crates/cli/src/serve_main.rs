//! `rolp-serve`: fire an open-loop, arrival-rate-driven request stream at
//! the runtime and report SLO attainment with per-request latency
//! decomposition (app / GC / profiler / JIT) and decision re-convergence
//! after mid-run traffic shifts. See `--help`.

mod output;

use std::process::ExitCode;

use output::{metrics_jsonl, write_atomic, CrashGuard};
use rolp::runtime::CollectorKind;
use rolp::{DecisionProfile, GovernorConfig};
use rolp_metrics::SimScale;
use rolp_serve::{
    default_tenants, format_phases, parse_phases, render_report, serve_with, ArrivalProcess,
    ServeConfig, ServeOutcome,
};

/// Parsed `rolp-serve` command line.
#[derive(Debug, Clone)]
struct ServeArgs {
    collector: CollectorKind,
    scale: u64,
    /// Phase spec string (parsed lazily so `--help` never fails).
    phases: Option<String>,
    process: ArrivalProcess,
    slo_ms: Vec<f64>,
    mutator_threads: u32,
    gc_workers: Option<usize>,
    table_shards: Option<usize>,
    profile_in: Option<String>,
    profile_out: Option<String>,
    governor: bool,
    inference_period: Option<u64>,
    seed: u64,
    max_requests: u64,
    serve_json: Option<String>,
    stats_json: Option<String>,
    metrics_out: Option<String>,
    metrics_interval: u64,
    metrics_prom: Option<String>,
    trace_out: Option<String>,
    tlab_bytes: usize,
}

impl Default for ServeArgs {
    fn default() -> Self {
        ServeArgs {
            collector: CollectorKind::RolpNg2c,
            scale: 64,
            phases: None,
            process: ArrivalProcess::Poisson,
            slo_ms: vec![10.0, 25.0, 50.0],
            mutator_threads: 4,
            gc_workers: None,
            table_shards: None,
            profile_in: None,
            profile_out: None,
            governor: false,
            inference_period: None,
            seed: 42,
            max_requests: u64::MAX,
            serve_json: None,
            stats_json: None,
            metrics_out: None,
            metrics_interval: 1,
            metrics_prom: None,
            trace_out: None,
            tlab_bytes: rolp_heap::DEFAULT_TLAB_BYTES,
        }
    }
}

const USAGE: &str = "\
rolp-serve — open-loop request server under SLO for the ROLP reproduction

Fires a Poisson (or evenly paced) arrival schedule of Cassandra + Lucene
requests at the runtime across mixed tenants, charges every request from
its INTENDED start (coordinated-omission correction), decomposes each
request's service time into app / GC-pause / profiler-stall / JIT from
the telemetry plane's buckets, and reports exact SLO attainment plus how
many inference epochs the decision table needed to re-converge after
each mid-run traffic shift.

USAGE:
    rolp-serve [OPTIONS]

OPTIONS:
    --collector <NAME>  cms | g1 | zgc | ng2c | rolp       [default: rolp]
    --scale <N>         run at 1/N of the paper's testbed  [default: 64]
    --phases <SPEC>     ';'-separated phases, each <secs>s@<rate>
                        with optional tenant weights x<w0>/<w1>
                        [default: 10s@3000x3/1;10s@6000x1/3;10s@3000x3/1
                         — a diurnal ramp with a hot-tenant flip]
    --arrivals <KIND>   poisson | paced                    [default: poisson]
    --slo-ms <LIST>     comma-separated SLO thresholds, ms; the first is
                        the primary gate                   [default: 10,25,50]
    --mutator-threads <N>  guest threads serving requests  [default: 4]
    --gc-workers <N>    parallel GC workers (default: collector's choice)
    --table-shards <N|auto>  sharded OLD-table backend (power of two)
    --profile-in <FILE> warm-start from a rolp-profile-v1 (canary blend)
    --profile-out <FILE>  export the decisions this run learned, so the
                        next serving run can warm-start from them
    --governor          engage the measured-overhead governor
    --inference-period <N>  run inference every N GC cycles (short smoke
                        runs shrink this so epochs fit the schedule)
    --seed <N>          arrival + runtime seed             [default: 42]
    --max-requests <N>  hard cap on requests (safety valve)
    --serve-json <FILE> write the rolp-serve-v1 summary (slo_gate.py input)
    --stats-json <FILE> write the end-of-run stats JSON (crash-safe)
    --metrics-out <FILE>  stream telemetry snapshots as JSONL (crash-safe)
    --metrics-interval <SECS>  min simulated seconds between JSONL rows
                                                           [default: 1]
    --metrics-prom <FILE>  write the final snapshot in Prometheus text
    --trace-out <FILE>  flight-recorder trace (.jsonl for line JSON,
                        otherwise Chrome trace_event)
    --tlab-size <BYTES> per-thread allocation buffer chunk size; refill
                        stalls are charged to the GC bucket in the
                        per-request decomposition       [default: 8192]
    --no-tlab           disable TLABs (every allocation takes the
                        shared slow path)
    --help              show this text
";

fn parse_collector(v: &str) -> Result<CollectorKind, String> {
    Ok(match v {
        "cms" => CollectorKind::Cms,
        "g1" => CollectorKind::G1,
        "zgc" => CollectorKind::Zgc,
        "ng2c" => CollectorKind::Ng2c,
        "rolp" => CollectorKind::RolpNg2c,
        other => return Err(format!("unknown collector {other}")),
    })
}

fn parse(argv: &[String]) -> Result<ServeArgs, String> {
    let mut args = ServeArgs::default();
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut take = |name: &str| {
            it.next().map(|s| s.to_string()).ok_or_else(|| format!("{name} needs a value"))
        };
        let positive = |name: &str, v: String| {
            v.parse::<u64>().ok().filter(|&n| n > 0).ok_or(format!("{name} must be positive"))
        };
        match arg.as_str() {
            "--collector" => args.collector = parse_collector(&take("--collector")?)?,
            "--scale" => args.scale = positive("--scale", take("--scale")?)?,
            "--phases" => args.phases = Some(take("--phases")?),
            "--arrivals" => {
                args.process = match take("--arrivals")?.as_str() {
                    "poisson" => ArrivalProcess::Poisson,
                    "paced" => ArrivalProcess::Paced,
                    other => return Err(format!("unknown arrival process {other}")),
                }
            }
            "--slo-ms" => {
                let v = take("--slo-ms")?;
                let parsed: Result<Vec<f64>, String> = v
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse::<f64>()
                            .ok()
                            .filter(|ms| *ms > 0.0)
                            .ok_or(format!("bad SLO threshold {s}"))
                    })
                    .collect();
                args.slo_ms = parsed?;
                if args.slo_ms.is_empty() {
                    return Err("--slo-ms needs at least one threshold".into());
                }
            }
            "--mutator-threads" => {
                args.mutator_threads =
                    positive("--mutator-threads", take("--mutator-threads")?)? as u32
            }
            "--gc-workers" => {
                args.gc_workers = Some(positive("--gc-workers", take("--gc-workers")?)? as usize)
            }
            "--table-shards" => {
                let v = take("--table-shards")?;
                if v == "auto" {
                    // Same policy as rolp-sim: one shard per guest thread,
                    // rounded up to a power of two.
                    args.table_shards = Some(0); // resolved after the loop
                } else {
                    let n = v
                        .parse::<usize>()
                        .ok()
                        .filter(|n| n.is_power_of_two())
                        .ok_or("--table-shards must be a power of two or `auto`")?;
                    args.table_shards = Some(n);
                }
            }
            "--profile-in" => args.profile_in = Some(take("--profile-in")?),
            "--profile-out" => args.profile_out = Some(take("--profile-out")?),
            "--governor" => args.governor = true,
            "--inference-period" => {
                args.inference_period =
                    Some(positive("--inference-period", take("--inference-period")?)?)
            }
            "--seed" => {
                args.seed =
                    take("--seed")?.parse::<u64>().map_err(|_| "--seed must be an integer")?
            }
            "--max-requests" => {
                args.max_requests = positive("--max-requests", take("--max-requests")?)?
            }
            "--serve-json" => args.serve_json = Some(take("--serve-json")?),
            "--stats-json" => args.stats_json = Some(take("--stats-json")?),
            "--metrics-out" => args.metrics_out = Some(take("--metrics-out")?),
            "--metrics-interval" => {
                args.metrics_interval = positive("--metrics-interval", take("--metrics-interval")?)?
            }
            "--metrics-prom" => args.metrics_prom = Some(take("--metrics-prom")?),
            "--trace-out" => args.trace_out = Some(take("--trace-out")?),
            "--tlab-size" => {
                args.tlab_bytes = take("--tlab-size")?
                    .parse::<usize>()
                    .map_err(|_| "--tlab-size must be a byte count")?
            }
            "--no-tlab" => args.tlab_bytes = 0,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown option {other}\n\n{USAGE}")),
        }
    }
    if args.table_shards == Some(0) {
        args.table_shards = Some((args.mutator_threads.max(1) as usize).next_power_of_two());
    }
    Ok(args)
}

fn build_config(args: &ServeArgs) -> Result<ServeConfig, String> {
    let scale = SimScale::new(args.scale);
    let mut cfg = ServeConfig::new(args.collector, scale);
    if let Some(spec) = &args.phases {
        cfg.phases = parse_phases(spec)?;
    }
    cfg.process = args.process;
    cfg.slo_ms = args.slo_ms.clone();
    cfg.threads = args.mutator_threads;
    cfg.gc_workers = args.gc_workers;
    cfg.table_shards = args.table_shards;
    cfg.inference_period = args.inference_period;
    cfg.seed = args.seed;
    cfg.max_requests = args.max_requests;
    cfg.trace_enabled = args.trace_out.is_some();
    cfg.tlab_bytes = args.tlab_bytes;
    if args.governor {
        cfg.governor = Some(GovernorConfig::default());
    }
    if let Some(path) = &args.profile_in {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let profile: DecisionProfile =
            text.parse().map_err(|e| format!("bad profile {path}: {e}"))?;
        println!(
            "profile-in: {} decision(s), {} call site(s) from {path}",
            profile.len(),
            profile.call_sites.len()
        );
        cfg.offline_profile = Some(profile);
    }
    Ok(cfg)
}

fn run(args: ServeArgs) -> Result<(), String> {
    let cfg = build_config(&args)?;
    let mut tenants = default_tenants(cfg.scale);
    println!(
        "serving {} tenants under {} — {} arrivals, phases {}, SLO {:?} ms, scale 1/{}\n",
        tenants.len(),
        cfg.collector.label(),
        match cfg.process {
            ArrivalProcess::Poisson => "poisson",
            ArrivalProcess::Paced => "paced",
        },
        format_phases(&cfg.phases),
        cfg.slo_ms,
        cfg.scale.divisor(),
    );

    let mut guard: Option<CrashGuard> = None;
    let out = serve_with(&cfg, &mut tenants, |rt| {
        guard = CrashGuard::arm(
            args.stats_json.as_ref(),
            args.metrics_out.as_ref(),
            args.metrics_interval,
            rt.vm.env.telemetry.registry(),
        );
    });

    print_summary(&out);
    let result = write_outputs(&args, &cfg, &out);
    if let Some(g) = &mut guard {
        g.disarm();
    }
    result
}

fn print_summary(out: &ServeOutcome) {
    println!("collector          {}", out.report.collector);
    println!(
        "requests           {} over {} ({} tenant(s))",
        out.requests,
        out.elapsed,
        out.tenant_names.len()
    );
    for (name, n) in out.tenant_names.iter().zip(&out.tenant_requests) {
        println!("  {name:<16} {n} request(s)");
    }
    println!("SLO attainment (corrected for coordinated omission):");
    for (threshold_ns, hits, frac) in out.latency.attainment() {
        println!(
            "  <= {:>7.1} ms   {:>8} / {} ({:.4})",
            threshold_ns as f64 / 1e6,
            hits,
            out.requests,
            frac
        );
    }
    let corr = out.latency.corrected();
    println!(
        "corrected latency  p50 {:.3} ms, p99 {:.3} ms, p99.9 {:.3} ms, max {:.3} ms",
        corr.percentile(50.0) as f64 / 1e6,
        corr.percentile(99.0) as f64 / 1e6,
        corr.percentile(99.9) as f64 / 1e6,
        corr.percentile(100.0) as f64 / 1e6,
    );
    println!(
        "service latency    p99 {:.3} ms (queue p99 {:.3} ms)",
        out.latency.service().percentile(99.0) as f64 / 1e6,
        out.latency.queue().percentile(99.0) as f64 / 1e6,
    );
    let d = out.latency.decomposed();
    let wall = out.latency.service_wall_ns().max(1) as f64;
    println!(
        "decomposition      app {:.1}%, gc {:.1}%, profiler {:.1}%, jit {:.1}%, idle {:.1}%",
        d.app_ns as f64 / wall * 100.0,
        d.gc_ns as f64 / wall * 100.0,
        d.profiler_ns as f64 / wall * 100.0,
        d.jit_ns as f64 / wall * 100.0,
        d.idle_ns as f64 / wall * 100.0,
    );
    for (shift, conv) in out.shifts.iter().zip(out.reconvergence()) {
        println!(
            "phase shift        -> phase {} at {} ({} rps): {} digest change(s), re-converged after {} epoch(s)",
            shift.phase, shift.at, shift.rate_rps, conv.changes, conv.epochs_to_reconverge
        );
    }
    println!(
        "decisions          {} publication(s), stable for the final {}",
        out.digest_changes.len(),
        out.stable_tail()
    );
    println!();
}

fn write_outputs(args: &ServeArgs, cfg: &ServeConfig, out: &ServeOutcome) -> Result<(), String> {
    if let Some(path) = &args.serve_json {
        write_atomic(path, &render_report(cfg, out))?;
        println!("serve: rolp-serve-v1 summary written to {path}");
    }
    if let Some(path) = &args.stats_json {
        write_atomic(path, &rolp::stats_json(&out.report, &out.pauses, 0))?;
        println!("stats: run summary written to {path}");
    }
    if let Some(path) = &args.metrics_out {
        let body = metrics_jsonl(&out.metrics, args.metrics_interval);
        let rows = body.lines().count();
        write_atomic(path, &body)?;
        println!("metrics: {rows} snapshot(s) streamed to {path}");
    }
    if let Some(path) = &args.metrics_prom {
        std::fs::write(path, out.report.telemetry.to_prometheus())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("metrics: final snapshot exposed to {path} (Prometheus text format)");
    }
    if let Some(path) = &args.trace_out {
        let rendered = if path.ends_with(".jsonl") {
            rolp_trace::export::to_jsonl(&out.trace)
        } else {
            rolp_trace::export::to_chrome_trace(&out.trace)
        };
        std::fs::write(path, rendered).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("trace: {} event(s) written to {path}", out.trace.len());
    }
    if let Some(path) = &args.profile_out {
        match &out.profile {
            Some(profile) => {
                std::fs::write(path, profile.to_string())
                    .map_err(|e| format!("cannot write {path}: {e}"))?;
                println!("exported {} decision(s) to {path}", profile.len());
            }
            None => println!(
                "(no profiler in this configuration — --profile-out needs --collector rolp)"
            ),
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match parse(&argv) {
        Ok(args) => match run(args) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(|t| t.to_string()).collect()
    }

    #[test]
    fn defaults_and_flags_parse() {
        let d = parse(&[]).unwrap();
        assert_eq!(d.collector, CollectorKind::RolpNg2c);
        assert_eq!(d.scale, 64);
        assert_eq!(d.slo_ms, vec![10.0, 25.0, 50.0]);
        assert!(d.phases.is_none());

        let a = parse(&argv(
            "--collector g1 --scale 512 --phases 5s@100;5s@200 --arrivals paced \
             --slo-ms 5,20 --mutator-threads 2 --table-shards auto --seed 7 \
             --inference-period 2 --serve-json out.json --governor",
        ))
        .unwrap();
        assert_eq!(a.collector, CollectorKind::G1);
        assert_eq!(a.scale, 512);
        assert_eq!(a.process, ArrivalProcess::Paced);
        assert_eq!(a.slo_ms, vec![5.0, 20.0]);
        assert_eq!(a.table_shards, Some(2), "auto = threads rounded up");
        assert_eq!(a.inference_period, Some(2));
        assert!(a.governor);
        assert_eq!(a.serve_json.as_deref(), Some("out.json"));

        assert!(parse(&argv("--slo-ms 0")).unwrap_err().contains("bad SLO"));
        assert!(parse(&argv("--arrivals uniform")).unwrap_err().contains("unknown arrival"));
        assert!(parse(&argv("--table-shards 3")).unwrap_err().contains("power of two"));
        assert!(parse(&argv("--frobnicate")).unwrap_err().contains("unknown option"));
    }

    #[test]
    fn build_config_applies_flags_and_validates_phases() {
        let mut args = parse(&argv("--phases 3s@500x2/1 --slo-ms 8 --governor")).unwrap();
        let cfg = build_config(&args).unwrap();
        assert_eq!(cfg.phases.len(), 1);
        assert_eq!(cfg.phases[0].rate_rps, 500);
        assert_eq!(cfg.slo_ms, vec![8.0]);
        assert!(cfg.governor.is_some());
        args.phases = Some("garbage".into());
        assert!(build_config(&args).is_err());
    }
}
