//! Shared output sinks for the CLI binaries.
//!
//! Every binary (`rolp-sim`, `rolp-serve`, `rolp-fleet`) writes its
//! machine-readable artifacts through the same two mechanisms:
//!
//! - [`write_atomic`] — temp file + rename, so a reader (or a crash)
//!   never observes a half-written file;
//! - [`CrashGuard`] — an armed drop guard that, if the run panics,
//!   publishes whatever the telemetry cells hold and flushes well-formed
//!   partial documents for `--stats-json` and `--metrics-out` instead of
//!   leaving the sinks missing or truncated mid-record.
//!
//! Each binary compiles this file as its own module, so items unused by
//! one binary are expected.
#![allow(dead_code)]

use std::sync::Arc;

use rolp_telemetry::{MetricsSnapshot, Registry};

/// Writes `contents` to `path` via a temp file + atomic rename, so
/// readers never observe a half-written file.
pub fn write_atomic(path: &str, contents: &str) -> Result<(), String> {
    let tmp = format!("{path}.tmp");
    std::fs::write(&tmp, contents).map_err(|e| format!("cannot write {tmp}: {e}"))?;
    std::fs::rename(&tmp, path).map_err(|e| format!("cannot rename {tmp} to {path}: {e}"))
}

/// Renders the snapshot history as a JSONL stream, downsampled so
/// consecutive rows are at least `interval_secs` of simulated time
/// apart. The empty version-0 snapshot is skipped and the final one is
/// always kept.
pub fn metrics_jsonl(metrics: &[Arc<MetricsSnapshot>], interval_secs: u64) -> String {
    let interval_ns = interval_secs.saturating_mul(1_000_000_000);
    let mut out = String::new();
    let mut next_at = 0u64;
    let last = metrics.len().saturating_sub(1);
    for (i, snap) in metrics.iter().enumerate() {
        if snap.version() == 0 {
            continue;
        }
        if snap.at_ns() < next_at && i != last {
            continue;
        }
        next_at = snap.at_ns().saturating_add(interval_ns);
        out.push_str(&snap.to_jsonl());
        out.push('\n');
    }
    out
}

/// Keeps `--stats-json` and `--metrics-out` valid even when a run panics
/// mid-way: on unwind it publishes whatever the telemetry cells hold,
/// writes a small well-formed partial stats document (schema
/// `rolp-stats-partial-v1`) in place of the full summary, and flushes
/// the downsampled snapshot history — ending with the crash-time partial
/// snapshot — as the metrics JSONL stream. All writes go through
/// [`write_atomic`], so a crash never leaves truncated JSON behind.
pub struct CrashGuard {
    stats_path: Option<String>,
    metrics_path: Option<String>,
    metrics_interval: u64,
    registry: Arc<Registry>,
    armed: bool,
}

impl CrashGuard {
    /// Arms a guard when at least one crash-safe sink was requested.
    pub fn arm(
        stats_path: Option<&String>,
        metrics_path: Option<&String>,
        metrics_interval: u64,
        registry: &Arc<Registry>,
    ) -> Option<CrashGuard> {
        if stats_path.is_none() && metrics_path.is_none() {
            return None;
        }
        Some(CrashGuard {
            stats_path: stats_path.cloned(),
            metrics_path: metrics_path.cloned(),
            metrics_interval,
            registry: registry.clone(),
            armed: true,
        })
    }

    /// Stands the guard down once the real outputs have been written.
    pub fn disarm(&mut self) {
        self.armed = false;
    }
}

impl Drop for CrashGuard {
    fn drop(&mut self) {
        if !self.armed || !std::thread::panicking() {
            return;
        }
        // The simulated clock is out of reach mid-unwind; stamp the
        // flush with the last published snapshot's timestamp.
        let at_ns = self.registry.store().load().at_ns();
        self.registry.publish(at_ns);
        let snapshot = self.registry.store().snapshot();
        if let Some(path) = &self.stats_path {
            let body = format!(
                "{{\"schema\":\"rolp-stats-partial-v1\",\"panic\":true,\"telemetry\":{}}}",
                snapshot.to_jsonl()
            );
            let _ = write_atomic(path, &body);
            eprintln!("stats: run panicked — partial telemetry snapshot written to {path}");
        }
        if let Some(path) = &self.metrics_path {
            // The whole downsampled history, ending with the crash-flush
            // snapshot published above: every row is a complete record.
            let history = self.registry.store().history();
            let body = metrics_jsonl(&history, self.metrics_interval);
            let rows = body.lines().count();
            let _ = write_atomic(path, &body);
            eprintln!("metrics: run panicked — {rows} snapshot(s) flushed to {path}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rolp_telemetry::Bucket;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("rolp-cli-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn write_atomic_replaces_and_leaves_no_temp() {
        let path = temp_path("atomic.json");
        let path_str = path.to_str().unwrap();
        std::fs::write(&path, "old").unwrap();
        write_atomic(path_str, "{\"new\":true}").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"new\":true}");
        assert!(!std::path::Path::new(&format!("{path_str}.tmp")).exists());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn panic_guard_flushes_a_valid_partial_snapshot() {
        let path = temp_path("partial.json");
        let path_str = path.to_str().unwrap().to_string();
        let registry = std::sync::Arc::new(Registry::new());
        let cells = registry.register_thread();
        cells.add_time(Bucket::MutatorApp, 1_000);

        let reg = registry.clone();
        let result = std::panic::catch_unwind(move || {
            let _guard = CrashGuard::arm(Some(&path_str), None, 1, &reg);
            panic!("boom");
        });
        assert!(result.is_err());

        let body = std::fs::read_to_string(&path).expect("partial snapshot written");
        assert!(body.starts_with("{\"schema\":\"rolp-stats-partial-v1\",\"panic\":true"), "{body}");
        assert!(body.contains("\"schema\":\"rolp-metrics-v1\""), "{body}");
        assert!(body.contains("\"time_mutator_app_ns\":1000"), "{body}");
        assert!(body.trim_end().ends_with('}'), "{body}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn panic_guard_flushes_the_metrics_stream_with_a_final_partial_row() {
        let path = temp_path("crash-metrics.jsonl");
        let path_str = path.to_str().unwrap().to_string();
        let registry = std::sync::Arc::new(Registry::new());
        let cells = registry.register_thread();
        // Two published windows before the crash...
        cells.add_time(Bucket::MutatorApp, 500);
        registry.publish(1_000_000_000);
        cells.add_time(Bucket::MutatorApp, 500);
        registry.publish(2_000_000_000);
        // ...plus unpublished progress the crash flush must capture.
        cells.add_time(Bucket::GcMark, 42);

        let reg = registry.clone();
        let result = std::panic::catch_unwind(move || {
            let _guard = CrashGuard::arm(None, Some(&path_str), 1, &reg);
            panic!("boom");
        });
        assert!(result.is_err());

        let body = std::fs::read_to_string(&path).expect("metrics stream written");
        let rows: Vec<&str> = body.lines().collect();
        assert_eq!(rows.len(), 3, "two windows + crash flush: {body}");
        for row in &rows {
            assert!(row.starts_with('{') && row.ends_with('}'), "complete record: {row}");
            assert!(row.contains("\"schema\":\"rolp-metrics-v1\""), "{row}");
        }
        assert!(
            rows[2].contains("\"time_gc_mark_ns\":42"),
            "crash flush has the tail: {}",
            rows[2]
        );
        assert!(!std::path::Path::new(&format!("{}.tmp", path.display())).exists());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn disarmed_guard_writes_nothing() {
        let stats = temp_path("disarmed.json");
        let metrics = temp_path("disarmed.jsonl");
        let stats_str = stats.to_str().unwrap().to_string();
        let metrics_str = metrics.to_str().unwrap().to_string();
        let registry = std::sync::Arc::new(Registry::new());
        let result = std::panic::catch_unwind(move || {
            let mut guard =
                CrashGuard::arm(Some(&stats_str), Some(&metrics_str), 1, &registry).unwrap();
            guard.disarm();
            panic!("boom");
        });
        assert!(result.is_err());
        assert!(!stats.exists());
        assert!(!metrics.exists());
    }

    #[test]
    fn guard_is_not_armed_without_sinks() {
        let registry = std::sync::Arc::new(Registry::new());
        assert!(CrashGuard::arm(None, None, 1, &registry).is_none());
    }

    #[test]
    fn metrics_jsonl_downsamples_and_keeps_the_final_row() {
        let registry = Registry::new();
        let cells = registry.register_thread();
        let mut history = vec![registry.store().snapshot()]; // version 0
        for i in 1..=10u64 {
            cells.add_time(Bucket::MutatorApp, 100);
            registry.publish(i * 1_000_000_000); // one per simulated second
            history.push(registry.store().snapshot());
        }
        let body = metrics_jsonl(&history, 4);
        let rows: Vec<&str> = body.lines().collect();
        // t=1s, t=5s, t=9s, plus the forced final row at t=10s.
        assert_eq!(rows.len(), 4, "{body}");
        assert!(rows[0].contains("\"at_ns\":1000000000"), "{}", rows[0]);
        assert!(rows.last().unwrap().contains("\"at_ns\":10000000000"));
        for row in &rows {
            assert!(row.starts_with('{') && row.ends_with('}'), "{row}");
            assert!(row.contains("\"schema\":\"rolp-metrics-v1\""), "{row}");
        }
    }
}
