//! `rolp-fleet`: simulate a fleet of runtime instances learning the same
//! program, aggregate their exported `rolp-profile-v1` profiles into a
//! confidence-weighted consensus, and (optionally) prove the consensus
//! warm-starts a late-joining instance: the joiner imports it through the
//! ordinary `--profile-in` canary-blend path and pretenures from its
//! first allocation instead of re-learning from zero. See `--help`.

mod output;

use std::process::ExitCode;

use rolp::runtime::RuntimeConfig;
use rolp::{DecisionProfile, FleetAggregator, ProfileValidation};
use rolp_metrics::{SimScale, SimTime};
use rolp_trace::{EventKind, TraceEvent, GLOBAL_THREAD};
use rolp_vm::CostModel;
use rolp_workloads::{execute_hooked, CassandraMix, RunBudget};

/// Parsed `rolp-fleet` command line.
#[derive(Debug, Clone)]
struct FleetArgs {
    /// Fleet size (learning instances).
    instances: usize,
    /// Submission rounds: each round every instance runs with more
    /// simulated time and re-submits its latest profile (epoch cadence).
    rounds: usize,
    /// Simulated seconds of the first round; round `r` runs `(r+1) * secs`.
    secs: u64,
    /// Experiment scale divisor.
    scale: u64,
    /// Give the last instance a drifted read/write mix, exercising the
    /// weighted-majority conflict resolution.
    drift: bool,
    /// Guest mutator threads per instance.
    mutator_threads: u32,
    /// OLD-table shard count forwarded to every instance runtime.
    table_shards: Option<usize>,
    /// Write the consensus profile (rolp-profile-v1) here.
    consensus_out: Option<String>,
    /// Run the late joiner cold (no profile) and write its stats JSON.
    cold_stats: Option<String>,
    /// Run the late joiner warm (importing the consensus) and write its
    /// stats JSON.
    warm_stats: Option<String>,
    /// Write a trace of fleet submissions and the consensus publication.
    trace_out: Option<String>,
}

impl Default for FleetArgs {
    fn default() -> Self {
        FleetArgs {
            instances: 3,
            rounds: 2,
            secs: 45,
            scale: 64,
            drift: false,
            mutator_threads: 4,
            table_shards: None,
            consensus_out: None,
            cold_stats: None,
            warm_stats: None,
            trace_out: None,
        }
    }
}

const USAGE: &str = "\
rolp-fleet — aggregate lifetime profiles across simulated runtime instances

Runs N instances of the Cassandra workload with per-instance seed offsets,
exports each instance's learned rolp-profile-v1 at epoch cadence into a
central aggregator, publishes the confidence-weighted consensus, and can
run a late-joining instance cold vs. warm to show the consensus removes
the joiner's warmup window.

USAGE:
    rolp-fleet [OPTIONS]

OPTIONS:
    --instances <N>     learning instances in the fleet     [default: 3]
    --rounds <N>        submission rounds per instance      [default: 2]
    --secs <N>          simulated seconds of round 1; round r
                        runs (r+1)*secs                     [default: 45]
    --scale <N>         run at 1/N of the paper's testbed   [default: 64]
    --drift             give the last instance a drifted read/write mix
                        (forces weighted-majority conflict resolution)
    --mutator-threads <N>  guest mutator threads per instance [default: 4]
    --table-shards <N>  OLD-table shards in every instance (power of two)
    --consensus-out <FILE>  write the consensus profile (rolp-profile-v1)
    --cold-stats <FILE>    run the late joiner WITHOUT a profile and write
                        its stats JSON (for scripts/warmup_gate.py)
    --warm-stats <FILE>    run the late joiner WITH the consensus profile
                        and write its stats JSON
    --trace-out <FILE>  write fleet submission/consensus events (Chrome
                        trace_event format; .jsonl for line JSON)
    --help              show this text

EXIT CODES:
    0   success
    1   generic failure (bad flags, I/O errors, empty consensus, ...)
    2   the consensus profile failed shape validation against the warm
        joiner's program: it parsed fine but none of its decisions or
        call sites matched, so the joiner started cold
";

/// Why a fleet run failed — shape-validation failures get their own exit
/// code so CI and operators can tell "the consensus is for a different
/// program" apart from generic errors without parsing stderr.
#[derive(Debug)]
enum FleetError {
    /// The consensus profile parsed but applied nothing against the warm
    /// joiner's program (exit code 2).
    Shape(String),
    /// Anything else (exit code 1).
    Other(String),
}

impl From<String> for FleetError {
    fn from(msg: String) -> Self {
        FleetError::Other(msg)
    }
}

/// Renders a readable diagnosis of a consensus profile whose shape did
/// not match the joiner's program.
fn shape_failure_message(v: &ProfileValidation) -> String {
    let fingerprint = if v.fingerprint_checked && !v.fingerprint_matched {
        "its program fingerprint does not match (the fleet learned a different program build); "
    } else {
        ""
    };
    format!(
        "consensus profile failed shape validation against the warm joiner: \
         {fingerprint}0/{} decision entries and 0/{} call sites applied \
         ({} entr{} and {} call site(s) rejected). The joiner ran cold. \
         Re-run the fleet against the joiner's program, or drop --warm-stats.",
        v.entries_total,
        v.call_sites_total,
        v.entries_rejected,
        if v.entries_rejected == 1 { "y" } else { "ies" },
        v.call_sites_rejected,
    )
}

fn parse(argv: &[String]) -> Result<FleetArgs, String> {
    let mut args = FleetArgs::default();
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut take = |name: &str| {
            it.next().map(|s| s.to_string()).ok_or_else(|| format!("{name} needs a value"))
        };
        let positive = |name: &str, v: String| {
            v.parse::<u64>().ok().filter(|&n| n > 0).ok_or(format!("{name} must be positive"))
        };
        match arg.as_str() {
            "--instances" => {
                args.instances = positive("--instances", take("--instances")?)? as usize
            }
            "--rounds" => args.rounds = positive("--rounds", take("--rounds")?)? as usize,
            "--secs" => args.secs = positive("--secs", take("--secs")?)?,
            "--scale" => args.scale = positive("--scale", take("--scale")?)?,
            "--drift" => args.drift = true,
            "--mutator-threads" => {
                args.mutator_threads =
                    positive("--mutator-threads", take("--mutator-threads")?)? as u32
            }
            "--table-shards" => {
                let v = take("--table-shards")?;
                let n = v
                    .parse::<usize>()
                    .ok()
                    .filter(|n| n.is_power_of_two())
                    .ok_or("--table-shards must be a power of two")?;
                args.table_shards = Some(n);
            }
            "--consensus-out" => args.consensus_out = Some(take("--consensus-out")?),
            "--cold-stats" => args.cold_stats = Some(take("--cold-stats")?),
            "--warm-stats" => args.warm_stats = Some(take("--warm-stats")?),
            "--trace-out" => args.trace_out = Some(take("--trace-out")?),
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown option {other}\n\n{USAGE}")),
        }
    }
    Ok(args)
}

/// Per-instance workload: the paper's Cassandra write-intensive preset
/// with a seed offset so instances see different traffic, optionally with
/// a drifted read/write mix for the final instance.
fn instance_workload(
    args: &FleetArgs,
    scale: SimScale,
    instance: usize,
) -> rolp_workloads::CassandraWorkload {
    let mut preset = rolp_workloads::presets::cassandra(CassandraMix::WriteIntensive, scale);
    let mut params = preset.params().clone();
    params.seed = params.seed.wrapping_add((instance as u64) << 16);
    if args.drift && args.instances > 1 && instance == args.instances - 1 {
        params.mix = CassandraMix::ReadWrite;
    }
    preset = rolp_workloads::CassandraWorkload::new(params);
    preset
}

fn instance_config(args: &FleetArgs, scale: SimScale) -> RuntimeConfig {
    let mut config = RuntimeConfig {
        collector: rolp::runtime::CollectorKind::RolpNg2c,
        heap: rolp_workloads::presets::bigdata_heap(scale),
        cost: CostModel::scaled(scale),
        threads: args.mutator_threads,
        side_table_scale: scale.divisor(),
        ..Default::default()
    };
    config.rolp.table_shards = args.table_shards;
    config
}

/// Runs one instance for `secs` simulated seconds and exports its
/// learned profile.
fn run_instance(args: &FleetArgs, scale: SimScale, instance: usize, secs: u64) -> DecisionProfile {
    let mut workload = instance_workload(args, scale, instance);
    let budget = RunBudget {
        sim_time: SimTime::from_secs(secs),
        warmup_discard: SimTime::from_secs(0),
        max_ops: u64::MAX,
    };
    let mut profile = DecisionProfile::default();
    execute_hooked(
        &mut workload,
        instance_config(args, scale),
        &budget,
        |_| {},
        |rt| {
            if let Some(profiler) = &rt.profiler {
                let p = profiler.borrow();
                profile = DecisionProfile::from_profiler(&p, &rt.vm.env.program, &rt.vm.env.jit);
            }
        },
    );
    profile
}

/// Runs the late joiner (a seed the fleet never saw) and writes its stats
/// JSON; returns `(last_change_epoch, p99_ms, profile_import)`.
fn run_joiner(
    args: &FleetArgs,
    scale: SimScale,
    profile: Option<DecisionProfile>,
    stats_path: &str,
) -> Result<(u64, f64, Option<ProfileValidation>), String> {
    let mut workload = instance_workload(args, scale, args.instances);
    let mut config = instance_config(args, scale);
    config.rolp.offline_profile = profile;
    let budget = RunBudget {
        sim_time: SimTime::from_secs(args.secs),
        warmup_discard: SimTime::from_secs(0),
        max_ops: u64::MAX,
    };
    let out = rolp_workloads::execute_with(&mut workload, config, &budget, |_| {});
    let body = rolp::stats_json(&out.report, &out.pauses, out.trace_dropped);
    output::write_atomic(stats_path, &body)?;
    let rolp_stats = out.report.rolp.as_ref();
    let last_change = rolp_stats.map(|r| r.last_change_epoch).unwrap_or(u64::MAX);
    let import = rolp_stats.and_then(|r| r.profile_import);
    Ok((last_change, out.pauses.percentile_ms(99.0), import))
}

fn run(args: FleetArgs) -> Result<(), FleetError> {
    let scale = SimScale::new(args.scale);
    let mut aggregator = FleetAggregator::new();
    let mut trace: Vec<TraceEvent> = Vec::new();
    let mut seq = 0u64;
    let mut push_event = |trace: &mut Vec<TraceEvent>, secs: u64, kind: EventKind| {
        trace.push(TraceEvent {
            ts: SimTime::from_secs(secs),
            thread: GLOBAL_THREAD,
            seq: {
                seq += 1;
                seq
            },
            kind,
        });
    };

    println!(
        "fleet: {} instance(s) x {} round(s), {} simulated second(s) in round 1, scale 1/{}{}",
        args.instances,
        args.rounds,
        args.secs,
        args.scale,
        if args.drift { ", last instance drifted" } else { "" },
    );

    for round in 0..args.rounds {
        let secs = args.secs * (round as u64 + 1);
        for instance in 0..args.instances {
            let profile = run_instance(&args, scale, instance, secs);
            let (epochs, entries) = (profile.epochs, profile.len() as u64);
            let outcome = aggregator.submit(&format!("instance-{instance}"), profile);
            println!(
                "  round {round}: instance-{instance} submitted {entries} decision(s) from {epochs} epoch(s) — {outcome:?}",
            );
            push_event(
                &mut trace,
                secs,
                EventKind::FleetSubmission {
                    instance: instance as u32,
                    epochs,
                    entries,
                    accepted: outcome.accepted(),
                },
            );
        }
    }

    let consensus = aggregator.consensus();
    println!(
        "consensus: {} decision(s) from {} instance(s) — {} unanimous, {} contested, fingerprint {}",
        consensus.profile.len(),
        consensus.instances,
        consensus.unanimous,
        consensus.contested,
        consensus
            .profile
            .fingerprint
            .map(|fp| format!("{fp:016x}"))
            .unwrap_or_else(|| "none".into()),
    );
    push_event(
        &mut trace,
        args.secs * args.rounds as u64 + 1,
        EventKind::FleetConsensus {
            instances: consensus.instances as u32,
            entries: consensus.profile.len() as u64,
            contested: consensus.contested as u64,
        },
    );
    if consensus.profile.is_empty() {
        return Err(FleetError::Other(
            "fleet produced an empty consensus — nothing learned; raise --secs".into(),
        ));
    }

    if let Some(path) = &args.consensus_out {
        std::fs::write(path, consensus.profile.to_string())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("consensus profile written to {path}");
    }

    if let Some(path) = &args.cold_stats {
        let (epoch, p99, _) = run_joiner(&args, scale, None, path)?;
        println!("late joiner (cold): stable at epoch {epoch}, p99 {p99:.2} ms -> {path}");
    }
    if let Some(path) = &args.warm_stats {
        let (epoch, p99, import) = run_joiner(&args, scale, Some(consensus.profile.clone()), path)?;
        println!("late joiner (warm): stable at epoch {epoch}, p99 {p99:.2} ms -> {path}");
        // A consensus that applied nothing is a different failure from a
        // slow warm start: the profile is for another program. Surface it
        // with its own exit code (see EXIT CODES in --help).
        if let Some(v) = import {
            if v.nothing_applied() {
                return Err(FleetError::Shape(shape_failure_message(&v)));
            }
        }
        if epoch != 0 {
            return Err(FleetError::Other(format!(
                "late joiner still changed decisions after epoch 0 (last change at {epoch}) — \
                 the consensus did not warm-start it"
            )));
        }
    }

    if let Some(path) = &args.trace_out {
        let rendered = if path.ends_with(".jsonl") {
            rolp_trace::export::to_jsonl(&trace)
        } else {
            rolp_trace::export::to_chrome_trace(&trace)
        };
        std::fs::write(path, rendered).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("trace: {} fleet event(s) written to {path}", trace.len());
    }
    Ok(())
}

/// Exit code for shape-validation failures (see EXIT CODES in --help).
const EXIT_SHAPE_MISMATCH: u8 = 2;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match parse(&argv) {
        Ok(args) => match run(args) {
            Ok(()) => ExitCode::SUCCESS,
            Err(FleetError::Shape(msg)) => {
                eprintln!("error: {msg}");
                ExitCode::from(EXIT_SHAPE_MISMATCH)
            }
            Err(FleetError::Other(msg)) => {
                eprintln!("error: {msg}");
                ExitCode::FAILURE
            }
        },
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(|t| t.to_string()).collect()
    }

    #[test]
    fn defaults_and_flags_parse() {
        let d = parse(&[]).unwrap();
        assert_eq!((d.instances, d.rounds, d.secs), (3, 2, 45));
        assert!(!d.drift);
        let a = parse(&argv(
            "--instances 5 --rounds 1 --secs 30 --drift --table-shards 4 \
             --consensus-out c.prof --cold-stats cold.json --warm-stats warm.json",
        ))
        .unwrap();
        assert_eq!(a.instances, 5);
        assert_eq!(a.table_shards, Some(4));
        assert!(a.drift);
        assert_eq!(a.consensus_out.as_deref(), Some("c.prof"));
        assert!(parse(&argv("--instances 0")).unwrap_err().contains("positive"));
        assert!(parse(&argv("--table-shards 3")).unwrap_err().contains("power of two"));
        assert!(parse(&argv("--frobnicate")).unwrap_err().contains("unknown option"));
    }

    #[test]
    fn shape_failure_diagnosis_is_readable_and_distinct() {
        let v = ProfileValidation {
            fingerprint_checked: true,
            fingerprint_matched: false,
            entries_total: 7,
            entries_applied: 0,
            entries_rejected: 7,
            call_sites_total: 3,
            call_sites_applied: 0,
            call_sites_rejected: 3,
        };
        assert!(v.nothing_applied());
        let msg = shape_failure_message(&v);
        assert!(msg.contains("fingerprint does not match"), "{msg}");
        assert!(msg.contains("0/7 decision entries"), "{msg}");
        assert!(msg.contains("0/3 call sites"), "{msg}");
        // A partially-applied profile is NOT a shape failure.
        let partial = ProfileValidation { entries_applied: 2, entries_rejected: 5, ..v };
        assert!(!partial.nothing_applied());
        // String errors coerce to the generic (exit 1) variant.
        let generic: FleetError = String::from("disk full").into();
        assert!(matches!(generic, FleetError::Other(_)));
        assert_eq!(EXIT_SHAPE_MISMATCH, 2);
    }

    #[test]
    fn seed_offsets_differ_per_instance_and_drift_changes_the_mix() {
        let args = FleetArgs { drift: true, ..FleetArgs::default() };
        let scale = SimScale::new(512);
        let a = instance_workload(&args, scale, 0);
        let b = instance_workload(&args, scale, 1);
        let last = instance_workload(&args, scale, args.instances - 1);
        assert_ne!(a.params().seed, b.params().seed);
        assert_eq!(a.params().mix, CassandraMix::WriteIntensive);
        assert_eq!(last.params().mix, CassandraMix::ReadWrite);
    }
}
