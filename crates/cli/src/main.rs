//! `rolp-sim`: run any workload of the reproduction under any collector
//! and report pause percentiles, throughput, memory, and (for ROLP) the
//! profiler's learned decisions. See `--help`.

mod args;
mod output;

use std::process::ExitCode;

use rolp::runtime::{CollectorKind, RuntimeConfig};
use rolp::DecisionProfile;
use rolp_metrics::{SimScale, SimTime};
use rolp_vm::CostModel;
use rolp_workloads::{execute_with, DacapoBench, RunBudget, Workload};

use args::{Args, WorkloadChoice};
use output::{metrics_jsonl, write_atomic, CrashGuard};

fn build_workload(args: &Args, scale: SimScale) -> Box<dyn Workload> {
    use rolp_workloads::presets;
    match &args.workload {
        WorkloadChoice::Cassandra(mix) => Box::new(presets::cassandra(*mix, scale)),
        WorkloadChoice::Lucene => Box::new(presets::lucene(scale)),
        WorkloadChoice::GraphChi(algo) => Box::new(presets::graphchi(*algo, scale)),
        WorkloadChoice::Dacapo(name) => {
            let spec = rolp_workloads::benchmark(name).expect("validated at parse time");
            Box::new(DacapoBench::new(spec, 0xDACA))
        }
    }
}

fn heap_for(args: &Args, scale: SimScale) -> rolp_heap::HeapConfig {
    match &args.workload {
        WorkloadChoice::Dacapo(name) => {
            rolp_workloads::benchmark(name).expect("validated").heap_config(scale)
        }
        _ => rolp_workloads::presets::bigdata_heap(scale),
    }
}

fn run(args: Args) -> Result<(), String> {
    if args.verify_determinism {
        return verify_determinism(&args);
    }
    let scale = SimScale::new(args.scale);
    let mut workload = build_workload(&args, scale);
    let heap = heap_for(&args, scale);

    let mut config = RuntimeConfig {
        collector: args.collector,
        heap: heap.clone(),
        cost: CostModel::scaled(scale),
        threads: args.mutator_threads,
        gc_workers: args.gc_workers,
        side_table_scale: scale.divisor(),
        tlab_bytes: args.tlab_bytes,
        microcache: args.microcache,
        ..Default::default()
    };
    config.rolp.table_shards = args.table_shards;
    if let Some(path) = &args.import_profile {
        // Parse/version/truncation errors fail the run here; shape
        // validation against the program happens in the profiler at first
        // JIT compile and is reported in the end-of-run summary.
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let profile: DecisionProfile =
            text.parse().map_err(|e| format!("bad profile {path}: {e}"))?;
        let provenance = match profile.fingerprint {
            Some(fp) => format!("fingerprint {fp:016x}, {} epoch(s) of evidence", profile.epochs),
            None => "legacy headerless profile, per-entry validation only".to_string(),
        };
        println!(
            "profile-in: {} decision(s), {} call site(s) from {path} ({provenance})",
            profile.len(),
            profile.call_sites.len()
        );
        config.rolp.offline_profile = Some(profile);
    }
    // The flight recorder stays off (and costs nothing) unless a trace
    // sink was requested.
    config.trace_enabled = args.trace_out.is_some();
    if let Some(spec) = &args.fault_plan {
        let plan = rolp_faults::FaultPlan::parse(spec).expect("validated at parse time");
        println!(
            "fault plan: {} (seed {}, {} fault(s)) — overhead governor engaged",
            plan.name,
            plan.seed,
            plan.faults.len()
        );
        config.rolp.fault_plan = Some(plan);
        config.rolp.governor = Some(rolp::GovernorConfig::default());
    }

    let budget = RunBudget {
        sim_time: SimTime::from_secs(args.secs),
        warmup_discard: SimTime::from_secs(args.discard),
        max_ops: u64::MAX,
    };

    println!(
        "running {} under {} — heap {}, scale 1/{}, {} simulated ({}s discard)\n",
        workload.name(),
        args.collector.label(),
        rolp_metrics::table::fmt_bytes(heap.max_heap_bytes),
        scale.divisor(),
        budget.sim_time,
        args.discard,
    );

    // The driver consumes the config; profile export needs the runtime, so
    // re-run through the lower-level pieces when exporting.
    if args.export_profile.is_some() || args.report {
        run_with_runtime(&args, &mut *workload, config, &budget)
    } else {
        let mut guard: Option<CrashGuard> = None;
        let out = execute_with(&mut *workload, config, &budget, |rt| {
            guard = arm_crash_guard(&args, rt);
        });
        print_outcome(&out);
        let result = write_outputs(
            &args,
            &out.report,
            &out.pauses,
            &out.trace,
            out.trace_dropped,
            &out.metrics,
        );
        if let Some(g) = &mut guard {
            g.disarm();
        }
        result
    }
}

/// Arms the crash-flush guard covering the `--stats-json` and
/// `--metrics-out` sinks (see [`CrashGuard`]).
fn arm_crash_guard(args: &Args, rt: &rolp::runtime::JvmRuntime) -> Option<CrashGuard> {
    CrashGuard::arm(
        args.stats_json.as_ref(),
        args.metrics_out.as_ref(),
        args.metrics_interval,
        rt.vm.env.telemetry.registry(),
    )
}

/// `--verify-determinism`: run racy multi-threaded mutators + parallel GC
/// workers with private OLD tables against the single-threaded reference,
/// and check the §7.6 contract — parallel counts never exceed the
/// reference, and the total deviation stays within the *measured* number
/// of increments lost to the unsynchronized age-0 updates.
fn verify_determinism(args: &Args) -> Result<(), String> {
    use rolp::concurrent::{
        compare_to_reference, run_concurrent, run_concurrent_sharded, run_reference,
        ConcurrentConfig,
    };

    let config = ConcurrentConfig {
        mutator_threads: args.mutator_threads.max(1) as usize,
        gc_workers: args.gc_workers.unwrap_or(4).max(1),
        ..Default::default()
    };
    let backend = match args.table_shards {
        Some(shards) => format!("sharded table ({shards} shard(s), exact counting)"),
        None => "relaxed shared table".to_string(),
    };
    println!(
        "determinism check [{backend}]: {} mutator thread(s), {} GC worker(s), {} epoch(s) x {} allocs/thread",
        config.mutator_threads,
        config.gc_workers,
        config.epochs,
        config.allocs_per_thread_per_epoch
    );

    let run = match args.table_shards {
        Some(shards) => run_concurrent_sharded(&config, shards),
        None => run_concurrent(&config),
    };
    let reference = run_reference(&config);
    for r in &run.reconciliations {
        println!(
            "  epoch {:>2}: intended {:>8}  recorded {:>8}  lost {:>6}",
            r.epoch, r.intended, r.recorded, r.lost
        );
    }
    let merged: u64 = run.merges.iter().map(|m| m.total).sum();
    println!(
        "merges: {} safepoint(s), {} worker record(s) applied via sorted merge",
        run.merges.len(),
        merged
    );

    let report = compare_to_reference(&run.histograms, &reference);
    println!(
        "deviation vs reference: {} over {} row(s); cells exceeding reference: {}; measured loss: {} of {} increments",
        report.total_abs_dev, report.rows, report.cells_exceeding, run.total_lost, run.total_intended
    );
    // Sharded counting is locked and exact: zero measured loss, so the
    // §7.6 bound collapses to bit-identity with the reference.
    if args.table_shards.is_some() && run.total_lost != 0 {
        return Err(format!(
            "determinism check FAILED: sharded backend reported {} lost increment(s); it must be exact",
            run.total_lost
        ));
    }
    if report.within_bound(run.total_lost) {
        if args.table_shards.is_some() {
            println!("OK: sharded histograms are bit-identical to the sequential reference");
        } else {
            println!("OK: merged histograms are within the measured loss bound");
        }
        Ok(())
    } else {
        Err(format!(
            "determinism check FAILED: deviation {} exceeds measured loss {} (or {} cell(s) over-counted)",
            report.total_abs_dev, run.total_lost, report.cells_exceeding
        ))
    }
}

/// Writes the `--trace-out` / `--stats-json` / `--metrics-*` sinks, if
/// requested.
fn write_outputs(
    args: &Args,
    report: &rolp::runtime::RunReport,
    pauses: &rolp_metrics::PauseRecorder,
    trace: &[rolp_trace::TraceEvent],
    dropped: u64,
    metrics: &[std::sync::Arc<rolp_telemetry::MetricsSnapshot>],
) -> Result<(), String> {
    if let Some(path) = &args.trace_out {
        let rendered = if path.ends_with(".jsonl") {
            rolp_trace::export::to_jsonl(trace)
        } else {
            rolp_trace::export::to_chrome_trace(trace)
        };
        std::fs::write(path, rendered).map_err(|e| format!("cannot write {path}: {e}"))?;
        let dropped_note =
            if dropped > 0 { format!(" ({dropped} dropped in-ring)") } else { String::new() };
        println!("trace: {} event(s) written to {path}{dropped_note}", trace.len());
    }
    if let Some(path) = &args.stats_json {
        write_atomic(path, &rolp::stats_json(report, pauses, dropped))?;
        println!("stats: run summary written to {path}");
    }
    if let Some(path) = &args.metrics_out {
        let body = metrics_jsonl(metrics, args.metrics_interval);
        let rows = body.lines().count();
        write_atomic(path, &body)?;
        println!("metrics: {rows} snapshot(s) streamed to {path}");
    }
    if let Some(path) = &args.metrics_prom {
        std::fs::write(path, report.telemetry.to_prometheus())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("metrics: final snapshot exposed to {path} (Prometheus text format)");
    }
    Ok(())
}

/// Variant that keeps the runtime alive for report/export.
fn run_with_runtime(
    args: &Args,
    workload: &mut dyn Workload,
    mut config: RuntimeConfig,
    budget: &RunBudget,
) -> Result<(), String> {
    let program = workload.build_program();
    if config.collector == CollectorKind::RolpNg2c && config.rolp.filters.is_unfiltered() {
        config.rolp.filters = workload.profiling_filters();
    }
    workload.set_annotations(config.collector == CollectorKind::Ng2c);
    let mut rt = rolp::runtime::JvmRuntime::new(config, program);
    workload.setup(&mut rt);
    let mut guard = arm_crash_guard(args, &rt);

    let mut tick_no = 0u64;
    let threads = args.mutator_threads.max(1) as u64;
    let publish_every = SimTime::from_secs(args.metrics_interval);
    let mut next_publish = publish_every;
    while rt.vm.env.clock.now() < budget.sim_time {
        let thread = rolp_vm::ThreadId((tick_no % threads) as u32);
        tick_no += 1;
        let mut ctx = rt.ctx(thread);
        let ops = workload.tick(&mut ctx);
        ctx.complete_ops(ops);
        let now = rt.vm.env.clock.now();
        if now >= next_publish {
            rt.vm.env.telemetry.registry().publish(now.as_nanos());
            next_publish = now + publish_every;
        }
    }

    let report = rt.report();
    let mut pauses = rt.vm.env.pauses.clone();
    pauses.discard_before(budget.warmup_discard);
    print_report(&report, &pauses);
    let dropped = rt.vm.env.trace.dropped();
    let metrics = rt.vm.env.telemetry.registry().store().history();
    let trace = rt.take_trace();
    write_outputs(args, &report, &pauses, &trace, dropped, &metrics)?;
    if let Some(g) = &mut guard {
        g.disarm();
    }
    if args.report {
        println!("{}", rolp::render_telemetry(&report.telemetry));
    }

    if let Some(profiler) = &rt.profiler {
        let p = profiler.borrow();
        if args.report {
            println!("{}", rolp::render_summary(&p, &rt.vm.env.program, &rt.vm.env.jit));
            println!("{}", rolp::render_decisions(&p, &rt.vm.env.program));
        }
        if let Some(path) = &args.export_profile {
            let profile = DecisionProfile::from_profiler(&p, &rt.vm.env.program, &rt.vm.env.jit);
            std::fs::write(path, profile.to_string())
                .map_err(|e| format!("cannot write {path}: {e}"))?;
            println!("exported {} decision(s) to {path}", profile.len());
        }
    } else if args.report || args.export_profile.is_some() {
        println!("(no profiler in this configuration — --report/--export need --collector rolp)");
    }
    Ok(())
}

fn print_outcome(out: &rolp_workloads::RunOutcome) {
    print_report(&out.report, &out.pauses);
}

fn print_report(report: &rolp::runtime::RunReport, pauses: &rolp_metrics::PauseRecorder) {
    println!("collector          {}", report.collector);
    println!("operations         {}", report.ops);
    println!(
        "throughput         {:.0} ops/s ({:.0} ops/busy-s)",
        report.ops_per_sec, report.ops_per_busy_sec
    );
    println!("GC cycles          {}", report.gc_cycles);
    println!(
        "profiling overhead {:.2}% of busy mutator time (self-measured)",
        report.profiling_overhead * 100.0
    );
    println!("time paused        {} of {}", report.total_paused, report.elapsed);
    println!(
        "max memory         {} used, {} committed",
        rolp_metrics::table::fmt_bytes(report.max_used_bytes),
        rolp_metrics::table::fmt_bytes(report.max_committed_bytes)
    );
    if let Some(r) = &report.rolp {
        if let Some(state) = r.governor_state {
            println!(
                "governor           ended in state `{state}` ({} transition(s), {} injected fault event(s))",
                r.governor_transitions, r.injected_fault_events
            );
        }
        if let Some(v) = r.profile_import {
            println!(
                "profile import     {}/{} entries applied, {}/{} call sites; stable since epoch {}",
                v.entries_applied,
                v.entries_total,
                v.call_sites_applied,
                v.call_sites_total,
                r.last_change_epoch
            );
            if v.nothing_applied() {
                println!(
                    "WARNING: imported profile applied nothing — it came from a different program"
                );
            } else if !v.fully_applied() {
                println!(
                    "WARNING: imported profile only partially applied ({} entries, {} call sites rejected)",
                    v.entries_rejected, v.call_sites_rejected
                );
            }
        }
    }
    println!("pauses (post-discard): {}", pauses.count());
    for p in [50.0, 90.0, 99.0, 99.9, 100.0] {
        println!("  p{p:<6} {:>9.2} ms", pauses.percentile_ms(p));
    }
    println!();
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match args::parse(&argv) {
        Ok(args) => match run(args) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
