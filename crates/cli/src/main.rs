//! `rolp-sim`: run any workload of the reproduction under any collector
//! and report pause percentiles, throughput, memory, and (for ROLP) the
//! profiler's learned decisions. See `--help`.

mod args;

use std::process::ExitCode;

use rolp::runtime::{CollectorKind, RuntimeConfig};
use rolp::DecisionProfile;
use rolp_metrics::{SimScale, SimTime};
use rolp_vm::CostModel;
use rolp_workloads::{execute, DacapoBench, RunBudget, Workload};

use args::{Args, WorkloadChoice};

fn build_workload(args: &Args, scale: SimScale) -> Box<dyn Workload> {
    match &args.workload {
        WorkloadChoice::Cassandra(mix) => Box::new(cassandra(*mix, scale)),
        WorkloadChoice::Lucene => Box::new(lucene(scale)),
        WorkloadChoice::GraphChi(algo) => Box::new(graphchi(*algo, scale)),
        WorkloadChoice::Dacapo(name) => {
            let spec = rolp_workloads::benchmark(name).expect("validated at parse time");
            Box::new(DacapoBench::new(spec, 0xDACA))
        }
    }
}

// Paper-parameterized workload constructors (mirrors the bench harness).
fn cassandra(mix: rolp_workloads::CassandraMix, scale: SimScale) -> rolp_workloads::CassandraWorkload {
    rolp_workloads::CassandraWorkload::new(rolp_workloads::CassandraParams {
        mix,
        op_pacing_ns: 100_000,
        memtable_flush_entries: scale.count(2_400_000) as usize,
        key_space: scale.count(8_000_000),
        parse_buffers_per_op: 6,
        row_cache_entries: scale.count(1_200_000) as usize,
        seed: 0xCA55,
    })
}

fn lucene(scale: SimScale) -> rolp_workloads::LuceneWorkload {
    rolp_workloads::LuceneWorkload::new(rolp_workloads::LuceneParams {
        write_fraction: 0.80,
        op_pacing_ns: 40_000,
        segment_flush_docs: scale.count(4_500_000) as usize,
        vocabulary: scale.count(1_200_000),
        doc_words: 48,
        postings_per_doc: 2,
        analysis_scratch: 4,
        seed: 0x10CE,
    })
}

fn graphchi(algo: rolp_workloads::GraphAlgo, scale: SimScale) -> rolp_workloads::GraphChiWorkload {
    rolp_workloads::GraphChiWorkload::new(rolp_workloads::GraphChiParams {
        algo,
        vertices: scale.count(42_000_000) as u32,
        edges: scale.count(1_500_000_000),
        shards: 16,
        chunk: 4_096,
        io_ns_per_edge: 800,
        update_sample: 64,
        seed: 0x6AF,
    })
}

fn heap_for(args: &Args, scale: SimScale) -> rolp_heap::HeapConfig {
    match &args.workload {
        WorkloadChoice::Dacapo(name) => {
            rolp_workloads::benchmark(name).expect("validated").heap_config(scale)
        }
        _ => {
            let heap = scale.bytes(6 * 1024 * 1024 * 1024);
            let region = (heap / 1536).next_power_of_two().clamp(64 * 1024, 1024 * 1024);
            rolp_heap::HeapConfig { region_bytes: region as usize, max_heap_bytes: heap }
        }
    }
}

fn run(args: Args) -> Result<(), String> {
    let scale = SimScale::new(args.scale);
    let mut workload = build_workload(&args, scale);
    let heap = heap_for(&args, scale);

    let mut config = RuntimeConfig {
        collector: args.collector,
        heap: heap.clone(),
        cost: CostModel::scaled(scale),
        threads: 4,
        side_table_scale: scale.divisor(),
        ..Default::default()
    };
    if let Some(path) = &args.import_profile {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {path}: {e}"))?;
        let profile: DecisionProfile =
            text.parse().map_err(|e| format!("bad profile {path}: {e}"))?;
        println!("imported {} offline decision(s) from {path}", profile.len());
        config.rolp.offline_profile = Some(profile);
    }

    let budget = RunBudget {
        sim_time: SimTime::from_secs(args.secs),
        warmup_discard: SimTime::from_secs(args.discard),
        max_ops: u64::MAX,
    };

    println!(
        "running {} under {} — heap {}, scale 1/{}, {} simulated ({}s discard)\n",
        workload.name(),
        args.collector.label(),
        rolp_metrics::table::fmt_bytes(heap.max_heap_bytes),
        scale.divisor(),
        budget.sim_time,
        args.discard,
    );

    // The driver consumes the config; profile export needs the runtime, so
    // re-run through the lower-level pieces when exporting.
    if args.export_profile.is_some() || args.report {
        run_with_runtime(&args, &mut *workload, config, &budget)
    } else {
        let out = execute(&mut *workload, config, &budget);
        print_outcome(&out);
        Ok(())
    }
}

/// Variant that keeps the runtime alive for report/export.
fn run_with_runtime(
    args: &Args,
    workload: &mut dyn Workload,
    mut config: RuntimeConfig,
    budget: &RunBudget,
) -> Result<(), String> {
    let program = workload.build_program();
    if config.collector == CollectorKind::RolpNg2c && config.rolp.filters.is_unfiltered() {
        config.rolp.filters = workload.profiling_filters();
    }
    workload.set_annotations(config.collector == CollectorKind::Ng2c);
    let mut rt = rolp::runtime::JvmRuntime::new(config, program);
    workload.setup(&mut rt);

    let mut tick_no = 0u64;
    while rt.vm.env.clock.now() < budget.sim_time {
        let thread = rolp_vm::ThreadId((tick_no % 4) as u32);
        tick_no += 1;
        let mut ctx = rt.ctx(thread);
        let ops = workload.tick(&mut ctx);
        ctx.complete_ops(ops);
    }

    let report = rt.report();
    let mut pauses = rt.vm.env.pauses.clone();
    pauses.discard_before(budget.warmup_discard);
    print_report(&report, &pauses);

    if let Some(profiler) = &rt.profiler {
        let p = profiler.borrow();
        if args.report {
            println!("{}", rolp::render_summary(&p, &rt.vm.env.program, &rt.vm.env.jit));
            println!("{}", rolp::render_decisions(&p, &rt.vm.env.program));
        }
        if let Some(path) = &args.export_profile {
            let profile = DecisionProfile::from_profiler(&p, &rt.vm.env.program, &rt.vm.env.jit);
            std::fs::write(path, profile.to_string())
                .map_err(|e| format!("cannot write {path}: {e}"))?;
            println!("exported {} decision(s) to {path}", profile.len());
        }
    } else if args.report || args.export_profile.is_some() {
        println!("(no profiler in this configuration — --report/--export need --collector rolp)");
    }
    Ok(())
}

fn print_outcome(out: &rolp_workloads::RunOutcome) {
    print_report(&out.report, &out.pauses);
}

fn print_report(report: &rolp::runtime::RunReport, pauses: &rolp_metrics::PauseRecorder) {
    println!("collector          {}", report.collector);
    println!("operations         {}", report.ops);
    println!("throughput         {:.0} ops/s ({:.0} ops/busy-s)",
        report.ops_per_sec, report.ops_per_busy_sec);
    println!("GC cycles          {}", report.gc_cycles);
    println!("time paused        {} of {}", report.total_paused, report.elapsed);
    println!("max memory         {} used, {} committed",
        rolp_metrics::table::fmt_bytes(report.max_used_bytes),
        rolp_metrics::table::fmt_bytes(report.max_committed_bytes));
    println!("pauses (post-discard): {}", pauses.count());
    for p in [50.0, 90.0, 99.0, 99.9, 100.0] {
        println!("  p{p:<6} {:>9.2} ms", pauses.percentile_ms(p));
    }
    println!();
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match args::parse(&argv) {
        Ok(args) => match run(args) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
