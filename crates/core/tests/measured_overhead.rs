//! Regression test for the governor's *measured* overhead feedback loop
//! (DESIGN.md §14): under a `pressure-spike` fault plan, the telemetry
//! plane's self-observed profiling overhead — not the cost-model
//! estimate — must walk the degradation ladder Full → Reduced →
//! SitesOnly, with every degrading transition attributed to the
//! `overhead-budget` reason.

use rolp::governor::{CostSource, GovernorConfig};
use rolp::runtime::{CollectorKind, JvmRuntime, RunReport, RuntimeConfig};
use rolp_faults::FaultPlan;
use rolp_trace::{EventKind, TraceEvent};
use rolp_vm::{ProgramBuilder, ThreadId};

/// The prop_governor workload, with the flight recorder on so governor
/// transitions (and their reasons) are observable.
fn run_traced(config: RuntimeConfig) -> (RunReport, Vec<TraceEvent>) {
    let mut b = ProgramBuilder::new();
    let main = b.method("app.Main::run", 100, false);
    let worker = b.method("app.Worker::step", 80, false);
    let call = b.call_site(main, worker);
    let site = b.alloc_site(worker, 1);
    let site2 = b.alloc_site(main, 2);
    let program = b.build();

    let mut rt = JvmRuntime::new(config, program);
    let class = rt.vm.env.heap.classes.register("app.Item");
    let mut ring = std::collections::VecDeque::new();
    for _ in 0..60_000u64 {
        let mut ctx = rt.ctx(ThreadId(0));
        ctx.call(call, |ctx| {
            let h = ctx.alloc(site, class, 0, 4);
            ctx.release(h);
            let held = ctx.alloc(site2, class, 0, 4);
            ring.push_back(held);
            if ring.len() > 64 {
                ctx.release(ring.pop_front().unwrap());
            }
            ctx.complete_ops(1);
        });
    }
    let report = rt.report();
    let trace = rt.take_trace();
    (report, trace)
}

#[test]
fn pressure_spike_degrades_via_measured_overhead() {
    let mut cfg = RuntimeConfig {
        collector: CollectorKind::RolpNg2c,
        heap: rolp_heap::HeapConfig { region_bytes: 4096, max_heap_bytes: 1 << 18 },
        trace_enabled: true,
        ..Default::default()
    };
    // Loosen every budget except the measured-overhead one so the ladder
    // can only be driven by the telemetry signal.
    cfg.rolp.governor = Some(GovernorConfig {
        max_record_events_per_epoch: u64::MAX,
        max_table_bytes: u64::MAX,
        max_call_overhead_ns_per_epoch: u64::MAX,
        cost_source: CostSource::Measured,
        ..Default::default()
    });
    cfg.rolp.fault_plan = Some(FaultPlan::named("pressure-spike").unwrap());
    cfg.rolp.survivor_shutdown = false;
    let (report, trace) = run_traced(cfg);

    let stats = report.rolp.as_ref().expect("rolp stats");
    assert_eq!(stats.governor_cost_source, Some("measured"));
    assert!(stats.injected_fault_events > 0, "the spike fired");

    // Every degrading transition came from the measured signal, and the
    // ladder reached at least SitesOnly.
    let transitions: Vec<(&str, &str, &str)> = trace
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::GovernorTransition { from, to, reason, .. } => Some((from, to, reason)),
            _ => None,
        })
        .collect();
    assert!(
        transitions
            .iter()
            .any(|&(from, to, r)| (from, to, r) == ("full", "reduced", "overhead-budget")),
        "Full -> Reduced from measured overhead; got {transitions:?}"
    );
    assert!(
        transitions
            .iter()
            .any(|&(from, to, r)| (from, to, r) == ("reduced", "sites-only", "overhead-budget")),
        "Reduced -> SitesOnly from measured overhead; got {transitions:?}"
    );
    for &(_, _, reason) in &transitions {
        assert!(
            reason == "overhead-budget" || reason == "recovered",
            "only the measured budget may degrade this run, got {reason}"
        );
    }

    // The run's summary carries the source and the final snapshot
    // carries the overhead the governor acted on.
    let json = rolp::stats_json(&report, &rolp_metrics::PauseRecorder::new(), 0);
    assert!(json.contains("\"governor_cost_source\":\"measured\""), "{json}");
    assert!(json.contains("\"profiling_overhead\":"), "{json}");
}

#[test]
fn estimated_source_ignores_the_spike_telemetry() {
    // The same spike under the estimated source: injected events carry
    // no call-site estimate, and the other budgets are loose, so the
    // governor must stay in Full — the two sources are really distinct.
    let mut cfg = RuntimeConfig {
        collector: CollectorKind::RolpNg2c,
        heap: rolp_heap::HeapConfig { region_bytes: 4096, max_heap_bytes: 1 << 18 },
        ..Default::default()
    };
    cfg.rolp.governor = Some(GovernorConfig {
        max_record_events_per_epoch: u64::MAX,
        max_table_bytes: u64::MAX,
        max_call_overhead_ns_per_epoch: u64::MAX,
        cost_source: CostSource::Estimated,
        ..Default::default()
    });
    cfg.rolp.fault_plan = Some(FaultPlan::named("pressure-spike").unwrap());
    cfg.rolp.survivor_shutdown = false;
    let (report, _) = run_traced(cfg);

    let stats = report.rolp.as_ref().expect("rolp stats");
    assert_eq!(stats.governor_cost_source, Some("estimated"));
    assert_eq!(stats.governor_state, Some("full"));
    assert_eq!(stats.governor_transitions, 0);
}
