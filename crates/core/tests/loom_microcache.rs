//! Model check for the per-thread decision micro-cache, run by the
//! `loom` CI job:
//!
//! ```sh
//! cargo test -p rolp --features loom --test loom_microcache
//! ```
//!
//! The micro-cache validates entries against [`DecisionStore`]'s version
//! *hint*, which the publisher stores **after** the table-pointer swap.
//! That ordering is the whole protocol: because the hint trails the
//! pointer, a cached entry that validates can only have come from the
//! current table or its immediate predecessor mid-publish. The model
//! races a caching reader against back-to-back publishes and asserts the
//! staleness bound the allocation fast path depends on:
//!
//! 1. the served decision is never older than the newest hint the reader
//!    had already observed (the cache cannot resurrect an old epoch), and
//! 2. it is never older than one version behind the published table at
//!    the time of the read (bracketed here by the hint read just after).
#![cfg(feature = "loom")]

use std::collections::BTreeMap;
use std::sync::Arc;

use rolp_vm::{DecisionCache, DecisionStore, DecisionTable};

const CTX: u32 = 7 << 16;

fn rows(gen: u8) -> BTreeMap<u32, u8> {
    [(CTX, gen)].into_iter().collect()
}

/// Maps an advise answer back to the unique version that produced it
/// (each modeled epoch publishes a distinct generation for `CTX`).
fn version_of(advice: Option<u8>) -> u64 {
    match advice {
        None => 0,
        Some(2) => 1,
        Some(9) => 2,
        other => panic!("impossible advice {other:?}"),
    }
}

#[test]
fn loom_microcache_staleness_bound() {
    loom::model(|| {
        let store =
            Arc::new(DecisionStore::with_initial(DecisionTable::empty_with_geometry(64, 16)));

        // Reader: a mutator allocating at a repeat site through its
        // private micro-cache while two publishes land.
        let reader = {
            let store = Arc::clone(&store);
            loom::thread::spawn(move || {
                let mut cache = DecisionCache::new();
                let mut newest_seen = 0u64;
                for tick in 0..4u32 {
                    let hint_before = store.version_hint();
                    // tick=1 never samples a canary (CANARY_STRIDE > 4),
                    // so the decode is version-determined.
                    let served = version_of(cache.advise_for_alloc(&store, CTX, tick));
                    let hint_after = store.version_hint();

                    // Bound below: the cache can never serve anything
                    // older than a hint the reader already observed —
                    // and since the hint trails the pointer by at most
                    // one publish, that is the ≤-one-version bound.
                    assert!(
                        served >= hint_before,
                        "cache served v{served} after observing hint v{hint_before}"
                    );
                    assert!(
                        served >= newest_seen,
                        "cache went backwards: v{served} after v{newest_seen}"
                    );
                    // Bound above: nothing newer than the table pointer
                    // can exist; the pointer leads the hint by ≤ 1.
                    assert!(
                        served <= hint_after + 1,
                        "cache served v{served} with hint at v{hint_after}"
                    );
                    newest_seen = newest_seen.max(served);
                    loom::thread::yield_now();
                }
                (cache, newest_seen)
            })
        };

        // Writer (safepoint side): two inference epochs back to back.
        let v1 = DecisionTable::next_from(store.load(), &rows(2), []);
        assert_eq!(store.publish(v1), 1);
        let v2 = DecisionTable::next_from(store.load(), &rows(9), []);
        assert_eq!(store.publish(v2), 2);

        // Quiescence: with both publishes visible, the reader's cache
        // must serve exactly the current epoch — and agree bit-for-bit
        // with the uncached path for the same (table, context, tick).
        let (mut cache, _) = reader.join().expect("reader thread");
        let cached = cache.advise_for_alloc(&store, CTX, 1);
        assert_eq!(cached, Some(9), "after both publishes only v2 may be served");
        assert_eq!(cached, store.load().advise_for_alloc(CTX, 1), "hit == uncached answer");
        // A second read on the now-warm entry (a guaranteed hit) still
        // matches: validation against the hint is sufficient.
        assert_eq!(cache.advise_for_alloc(&store, CTX, 2), store.load().advise_for_alloc(CTX, 2));
    });
}
