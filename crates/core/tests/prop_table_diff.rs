//! Differential property test for the three [`LifetimeTable`] backends.
//!
//! The trait's contract (see `rolp::geometry`) is *observational*: any
//! event stream of allocations, survivals, and site expansions replayed
//! single-threaded through [`OldTable`] (sequential/exact),
//! [`SharedOldTable`] (relaxed-atomic), and [`ShardedOldTable`]
//! (per-shard-locked) must produce identical histograms, touched rows,
//! row keys, expansion state, and §7.5 memory accounting — and after
//! `clear_counts`, all must satisfy the documented clear contract. This
//! test holds them to it with generated streams, and runs under Miri
//! (the geometry is small and the vendored proptest RNG is
//! deterministic).
//!
//! One asymmetry is deliberate and excluded from the blanket comparison:
//! `age0_total`. When a site is expanded *after* counts landed in its
//! base row, those counts are stranded there until the next clear (both
//! backends document this). The sequential table's `age0_total` reads
//! back through the keyed lookup — which an expansion redirects to the
//! new block — while the shared table's safepoint scan still sees the
//! stranded base cells. So shared-table `age0_total` equality is asserted
//! only on streams where no expansion strands prior records, plus a
//! dedicated expansions-first property below. The sharded table stores
//! rows exactly like the sequential one, so its `age0_total` is held to
//! the sequential semantics unconditionally.

use std::collections::HashSet;

use proptest::prelude::*;
use rolp::context::pack;
use rolp::{LifetimeTable, OldTable, ShardedOldTable, SharedOldTable, TableGeometry};

/// Small geometry (64 site rows, 16 tss rows) so site ids ≥ 64 and stack
/// states ≥ 16 exercise the masking/aliasing paths, and Miri stays fast.
const SITE_ROWS: usize = 64;
const TSS_ROWS: usize = 16;

fn small_geometry() -> TableGeometry {
    TableGeometry::new(SITE_ROWS, TSS_ROWS)
}

/// One OLD-table event. Site ids deliberately exceed the 64-row geometry
/// (69 aliases 5, …) and stack states exceed the 16-row blocks.
#[derive(Debug, Clone, Copy)]
enum Ev {
    Alloc { site: u16, tss: u16 },
    Survive { site: u16, tss: u16, age: u8 },
    Expand { site: u16 },
}

fn ev_strategy() -> impl Strategy<Value = Ev> {
    prop_oneof![
        4 => (1u16..80, 0u16..24).prop_map(|(site, tss)| Ev::Alloc { site, tss }),
        3 => (1u16..80, 0u16..24, 0u8..16)
            .prop_map(|(site, tss, age)| Ev::Survive { site, tss, age }),
        1 => (1u16..80).prop_map(|site| Ev::Expand { site }),
    ]
}

fn record_strategy() -> impl Strategy<Value = Ev> {
    prop_oneof![
        4 => (1u16..80, 0u16..24).prop_map(|(site, tss)| Ev::Alloc { site, tss }),
        3 => (1u16..80, 0u16..24, 0u8..16)
            .prop_map(|(site, tss, age)| Ev::Survive { site, tss, age }),
    ]
}

fn apply<T: LifetimeTable>(table: &mut T, ev: Ev) {
    match ev {
        Ev::Alloc { site, tss } => table.record_allocation(pack(site, tss)),
        Ev::Survive { site, tss, age } => table.record_survival(pack(site, tss), age),
        Ev::Expand { site } => table.expand_site(site),
    }
}

/// Every context an event stream names (probed on both tables so rows
/// reached only through aliasing are compared too).
fn contexts_of(events: &[Ev]) -> Vec<u32> {
    let mut out: Vec<u32> = events
        .iter()
        .map(|ev| match *ev {
            Ev::Alloc { site, tss } | Ev::Survive { site, tss, .. } => pack(site, tss),
            Ev::Expand { site } => pack(site, 0),
        })
        .collect();
    out.sort_unstable();
    out.dedup();
    out
}

/// True when some expansion landed on a site row that already held
/// records — the stranded-counts case where `age0_total` legitimately
/// differs between the backends until the next clear.
fn strands_counts(events: &[Ev]) -> bool {
    let mask = (SITE_ROWS - 1) as u16;
    let mut recorded: HashSet<u16> = HashSet::new();
    let mut expanded: HashSet<u16> = HashSet::new();
    for ev in events {
        match *ev {
            Ev::Alloc { site, .. } | Ev::Survive { site, .. } => {
                recorded.insert(site & mask);
            }
            Ev::Expand { site } => {
                let row = site & mask;
                if expanded.insert(row) && recorded.contains(&row) {
                    return true;
                }
            }
        }
    }
    false
}

/// The full observable surface every backend must agree on with the
/// sequential reference.
fn assert_same_observable<T: LifetimeTable>(seq: &OldTable, other: &T, contexts: &[u32]) {
    assert_eq!(seq.expansions(), LifetimeTable::expansions(other));
    assert_eq!(
        LifetimeTable::expanded_sites(seq),
        LifetimeTable::expanded_sites(other),
        "masked expansion rows, ascending"
    );
    assert_eq!(seq.memory_bytes(), other.memory_bytes(), "§7.5 accounting");
    let touched = seq.touched_rows();
    assert_eq!(touched, LifetimeTable::touched_rows(other), "sorted row keys");
    for &key in touched.iter().chain(contexts) {
        assert_eq!(
            seq.histogram(key),
            LifetimeTable::histogram(other, key),
            "histogram for {key:#010x}"
        );
        assert_eq!(
            LifetimeTable::row_key(seq, key),
            LifetimeTable::row_key(other, key),
            "row key for {key:#010x}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Arbitrary interleavings of allocations, survivals, and expansions:
    /// the backends agree on every observable, and after `clear_counts`
    /// both satisfy the documented clear contract.
    #[test]
    fn backends_agree_on_any_event_stream(
        events in prop::collection::vec(ev_strategy(), 0..250),
    ) {
        let mut seq = OldTable::with_geometry(small_geometry());
        let mut shared = SharedOldTable::with_geometry(small_geometry());
        let mut sharded = ShardedOldTable::with_geometry(small_geometry(), 4);
        let contexts = contexts_of(&events);
        for &ev in &events {
            apply(&mut seq, ev);
            apply(&mut shared, ev);
            apply(&mut sharded, ev);
        }
        assert_same_observable(&seq, &shared, &contexts);
        assert_same_observable(&seq, &sharded, &contexts);
        if !strands_counts(&events) {
            prop_assert_eq!(seq.age0_total(), SharedOldTable::age0_total(&shared));
        }
        // The sharded backend resolves stranded keys through the current
        // expansion state like the sequential table, so it agrees on
        // every stream.
        prop_assert_eq!(seq.age0_total(), ShardedOldTable::age0_total(&sharded));

        // Clear contract: histograms read zero, touched rows empty,
        // age-0 total zero, expansions and memory footprint retained.
        let (expansions, memory) = (seq.expansions(), seq.memory_bytes());
        LifetimeTable::clear_counts(&mut seq);
        LifetimeTable::clear_counts(&mut shared);
        LifetimeTable::clear_counts(&mut sharded);
        assert_same_observable(&seq, &shared, &contexts);
        assert_same_observable(&seq, &sharded, &contexts);
        prop_assert!(seq.touched_rows().is_empty());
        prop_assert_eq!(seq.age0_total(), 0);
        prop_assert_eq!(SharedOldTable::age0_total(&shared), 0);
        prop_assert_eq!(ShardedOldTable::age0_total(&sharded), 0);
        for &c in &contexts {
            prop_assert_eq!(seq.histogram(c), [0u32; rolp::AGE_COLUMNS]);
        }
        prop_assert_eq!(seq.expansions(), expansions, "expansion blocks retained");
        prop_assert_eq!(seq.memory_bytes(), memory);
    }

    /// With expansions installed up front (the profiler's real order:
    /// conflicts expand at a safepoint, the table is cleared, then fresh
    /// records split by stack state), `age0_total` must also agree.
    #[test]
    fn backends_agree_on_age0_accounting(
        expand in prop::collection::vec(1u16..80, 0..4),
        events in prop::collection::vec(record_strategy(), 0..250),
    ) {
        let mut seq = OldTable::with_geometry(small_geometry());
        let mut shared = SharedOldTable::with_geometry(small_geometry());
        let mut sharded = ShardedOldTable::with_geometry(small_geometry(), 8);
        for &site in &expand {
            seq.expand_site(site);
            LifetimeTable::expand_site(&mut shared, site);
            LifetimeTable::expand_site(&mut sharded, site);
        }
        let contexts = contexts_of(&events);
        for &ev in &events {
            apply(&mut seq, ev);
            apply(&mut shared, ev);
            apply(&mut sharded, ev);
        }
        assert_same_observable(&seq, &shared, &contexts);
        assert_same_observable(&seq, &sharded, &contexts);
        prop_assert_eq!(seq.age0_total(), SharedOldTable::age0_total(&shared));
        prop_assert_eq!(seq.age0_total(), ShardedOldTable::age0_total(&sharded));

        // The exact age-0 total is also checkable against the stream:
        // allocations add one, survivals at age 0 remove at most one.
        let allocs = events.iter()
            .filter(|e| matches!(e, Ev::Alloc { .. }))
            .count() as u64;
        prop_assert!(seq.age0_total() <= allocs);
    }
}
