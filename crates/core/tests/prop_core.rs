//! Property-based tests for ROLP's core data structures.

use std::collections::BTreeMap;

use proptest::prelude::*;
use rolp::inference::{classify_row, find_peaks, quantile_age, RowVerdict};
use rolp::{LifetimeTable, OldTable, SurvivorTracking, WorkerTable, AGE_COLUMNS};

/// One OLD-table event.
#[derive(Debug, Clone, Copy)]
enum Ev {
    Alloc { site: u16, tss: u16 },
    Survive { site: u16, tss: u16, age: u8 },
}

fn ev_strategy() -> impl Strategy<Value = Ev> {
    prop_oneof![
        3 => (1u16..6, 0u16..4).prop_map(|(site, tss)| Ev::Alloc { site, tss }),
        2 => (1u16..6, 0u16..4, 0u8..15).prop_map(|(site, tss, age)| Ev::Survive { site, tss, age }),
    ]
}

proptest! {
    /// The OLD table agrees with a reference model for any event sequence,
    /// with and without expansion, as long as no counter saturates.
    #[test]
    fn old_table_matches_reference_model(
        events in prop::collection::vec(ev_strategy(), 0..500),
        expand_site in prop::option::of(1u16..6),
    ) {
        let mut table = OldTable::new();
        if let Some(site) = expand_site {
            table.expand_site(site);
        }
        // Reference: row key -> age counts, with the same aliasing rule
        // and the same saturating-at-zero decrement semantics.
        let mut model: BTreeMap<(u16, u16), [u64; AGE_COLUMNS]> = BTreeMap::new();
        let key_of = |site: u16, tss: u16| {
            if Some(site) == expand_site { (site, tss) } else { (site, 0) }
        };
        for &ev in &events {
            match ev {
                Ev::Alloc { site, tss } => {
                    table.record_allocation(((site as u32) << 16) | tss as u32);
                    model.entry(key_of(site, tss)).or_insert([0; AGE_COLUMNS])[0] += 1;
                }
                Ev::Survive { site, tss, age } => {
                    table.record_survival(((site as u32) << 16) | tss as u32, age);
                    let row = model.entry(key_of(site, tss)).or_insert([0; AGE_COLUMNS]);
                    row[age as usize] = row[age as usize].saturating_sub(1);
                    row[(age as usize + 1).min(AGE_COLUMNS - 1)] += 1;
                }
            }
        }
        for ((site, tss), expect) in &model {
            let hist = table.histogram(((*site as u32) << 16) | *tss as u32);
            for age in 0..AGE_COLUMNS {
                prop_assert_eq!(hist[age] as u64, expect[age], "site {} tss {} age {}", site, tss, age);
            }
        }
    }

    /// Worker-table buffering then merging is equivalent to direct updates.
    #[test]
    fn worker_merge_equals_direct(events in prop::collection::vec(ev_strategy(), 0..300)) {
        let mut direct = OldTable::new();
        let mut buffered = OldTable::new();
        let mut worker = WorkerTable::new();
        for &ev in &events {
            match ev {
                Ev::Alloc { site, tss } => {
                    let c = ((site as u32) << 16) | tss as u32;
                    direct.record_allocation(c);
                    buffered.record_allocation(c);
                }
                Ev::Survive { site, tss, age } => {
                    let c = ((site as u32) << 16) | tss as u32;
                    direct.record_survival(c, age);
                    worker.record_survival(c, age);
                }
            }
        }
        // NOTE: ordering differs (all survivals after all allocations in
        // the buffered table), so saturating decrements can differ. Only
        // compare totals, which are order-independent.
        worker.merge_into(&mut buffered);
        for site in 1u16..6 {
            let c = (site as u32) << 16;
            let a: u64 = direct.histogram(c).iter().map(|&x| x as u64).sum();
            let b: u64 = buffered.histogram(c).iter().map(|&x| x as u64).sum();
            // Totals can differ only through saturation; they never differ
            // by more than the number of survival events.
            let survivals = events.iter().filter(|e| matches!(e, Ev::Survive { site: s, .. } if *s == site)).count() as u64;
            prop_assert!(a.abs_diff(b) <= survivals);
        }
    }

    /// Peak detection basics hold for arbitrary histograms: every reported
    /// peak is a local maximum, and a classified lifetime is within range.
    #[test]
    fn peaks_are_local_maxima(hist in prop::array::uniform16(0u32..10_000)) {
        let peaks = find_peaks(&hist);
        for &p in &peaks {
            let i = p as usize;
            let left = if i == 0 { 0 } else { hist[i - 1] };
            let right = if i == AGE_COLUMNS - 1 { 0 } else { hist[i + 1] };
            prop_assert!(hist[i] >= left.min(right), "peak {} not a maximum", p);
        }
        // Peaks are strictly increasing in age.
        for w in peaks.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
        match classify_row(&hist) {
            RowVerdict::Lifetime(age) => prop_assert!(age <= 15),
            RowVerdict::Conflict(p) => prop_assert!(p.len() >= 2),
            RowVerdict::Insufficient => {}
        }
    }

    /// The decision quantile is monotone in q and brackets the mass.
    #[test]
    fn quantile_age_is_monotone(hist in prop::array::uniform16(0u32..10_000)) {
        let total: u64 = hist.iter().map(|&c| c as u64).sum();
        prop_assume!(total > 0);
        let mut prev = 0u8;
        for q in [0.1, 0.5, 0.85, 0.99] {
            let a = quantile_age(&hist, q);
            prop_assert!(a >= prev);
            prev = a;
            // At least q of the mass lies at or below the reported age.
            let below: u64 = hist[..=a as usize].iter().map(|&c| c as u64).sum();
            prop_assert!(below as f64 >= (total as f64 * q).floor());
        }
    }

    /// Decision hashing is order-independent and collision-sensitive.
    #[test]
    fn decision_hash_properties(
        mut decisions in prop::collection::vec((any::<u32>(), 0u8..16), 0..40),
    ) {
        decisions.sort_unstable();
        decisions.dedup_by_key(|d| d.0);
        let forward = SurvivorTracking::hash_decisions(&decisions);
        let mut reversed = decisions.clone();
        reversed.reverse();
        prop_assert_eq!(forward, SurvivorTracking::hash_decisions(&reversed));
        if let Some(first) = decisions.first().copied() {
            let mut changed = decisions.clone();
            changed[0] = (first.0, (first.1 + 1) % 16);
            prop_assert_ne!(forward, SurvivorTracking::hash_decisions(&changed));
        }
    }
}
