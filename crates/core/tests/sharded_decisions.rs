//! End-to-end bit-identity check for the sharded OLD table: the same
//! guest program driven through the full runtime (JIT, GC cycles, epoch
//! pipeline, decision publication) with the sequential backend and with
//! [`rolp::ShardedOldTable`] at several shard counts must publish
//! **identical** [`rolp_vm::DecisionTable`] snapshots — same version,
//! same `(row key, generation, canary)` set, same digest — because
//! locked per-shard counting is exact and the cross-shard reductions are
//! deterministic (see `rolp::sharded_table`).

use rolp::runtime::{CollectorKind, JvmRuntime, RuntimeConfig};
use rolp_vm::ThreadId;

/// Drives a program with three allocation demographics (transient,
/// middle-aged ring, factory conflict) long enough for several inference
/// epochs, and returns the final published decision state.
fn run_backend(table_shards: Option<usize>) -> (u64, u64, Vec<(u32, u8)>, u64) {
    let mut b = rolp_vm::ProgramBuilder::new();
    let main = b.method("app.Main::run", 100, false);
    let worker = b.method("app.Worker::step", 80, false);
    let maker = b.method("app.Factory::make", 60, false);
    let call_worker = b.call_site(main, worker);
    let call_maker = b.call_site(worker, maker);
    let site_transient = b.alloc_site(worker, 1);
    let site_ring = b.alloc_site(main, 2);
    let site_factory = b.alloc_site(maker, 3);
    let program = b.build();

    let mut cfg = RuntimeConfig {
        collector: CollectorKind::RolpNg2c,
        heap: rolp_heap::HeapConfig { region_bytes: 4096, max_heap_bytes: 1 << 18 },
        ..Default::default()
    };
    cfg.rolp.table_shards = table_shards;

    let mut rt = JvmRuntime::new(cfg, program);
    let class = rt.vm.env.heap.classes.register("app.Item");
    let mut ring = std::collections::VecDeque::new();
    let mut factory_held = std::collections::VecDeque::new();
    for i in 0..50_000u64 {
        let mut ctx = rt.ctx(ThreadId(0));
        ctx.call(call_worker, |ctx| {
            let h = ctx.alloc(site_transient, class, 0, 4);
            ctx.release(h);
            let held = ctx.alloc(site_ring, class, 0, 4);
            ring.push_back(held);
            if ring.len() > 96 {
                ctx.release(ring.pop_front().unwrap());
            }
            // The factory site alternates between transient and held
            // objects — the §7.5 conflict that forces an expansion.
            ctx.call(call_maker, |ctx| {
                let f = ctx.alloc(site_factory, class, 0, 4);
                if i % 2 == 0 {
                    ctx.release(f);
                } else {
                    factory_held.push_back(f);
                    if factory_held.len() > 48 {
                        ctx.release(factory_held.pop_front().unwrap());
                    }
                }
            });
            ctx.complete_ops(1);
        });
    }

    let profiler = rt.profiler.as_ref().expect("rolp collector has a profiler");
    let p = profiler.borrow();
    let snapshot = p.decision_store().snapshot();
    (snapshot.version(), snapshot.digest(), snapshot.iter().collect(), p.inferences())
}

#[test]
fn sharded_backends_publish_bit_identical_decisions() {
    let (ref_version, ref_digest, ref_decisions, ref_epochs) = run_backend(None);
    assert!(ref_epochs > 0, "the workload must drive inference epochs");
    assert!(!ref_decisions.is_empty(), "the workload must learn decisions");
    for shards in [1usize, 4, 16] {
        let (version, digest, decisions, epochs) = run_backend(Some(shards));
        assert_eq!(epochs, ref_epochs, "{shards} shard(s): same epoch cadence");
        assert_eq!(version, ref_version, "{shards} shard(s): same publication count");
        assert_eq!(decisions, ref_decisions, "{shards} shard(s): same decisions");
        assert_eq!(digest, ref_digest, "{shards} shard(s): same digest");
    }
}
