//! Model check for the safepoint merge protocol (worker publish →
//! coordinator merge → slot reset), run by the `loom` CI job:
//!
//! ```sh
//! cargo test -p rolp --features loom --test loom_merge
//! ```
//!
//! Under `--features loom`, [`rolp::PublishSlot`] is compiled against the
//! (vendored) loom primitives, so every atomic op inside the protocol is
//! a schedule point and the cell access is tracked for races across the
//! seeded interleavings `loom::model` explores.
#![cfg(feature = "loom")]

use std::sync::Arc;

use rolp::{
    merge_worker_tables, LifetimeTable, OldTable, PublishSlot, ShardedOldTable, TableGeometry,
    WorkerTable,
};

#[test]
fn loom_safepoint_merge_protocol() {
    loom::model(|| {
        let slots: Arc<Vec<PublishSlot<WorkerTable>>> =
            Arc::new((0..2).map(|_| PublishSlot::new()).collect());

        // Two GC pauses back to back, so the check also covers slot
        // *reuse* after the coordinator's reset.
        for round in 0..2u32 {
            let producers: Vec<_> = (0..2u32)
                .map(|w| {
                    let slots = Arc::clone(&slots);
                    loom::thread::spawn(move || {
                        let mut private = WorkerTable::new();
                        // Worker w records survivals for its own context.
                        private.record_survival(rolp::context::pack(1 + w as u16, 0), round as u8);
                        private.record_survival(rolp::context::pack(1 + w as u16, 0), round as u8);
                        slots[w as usize].publish(private);
                    })
                })
                .collect();

            // Coordinator: spin on each slot, as the safepoint does.
            let mut workers: Vec<WorkerTable> = slots
                .iter()
                .map(|slot| loop {
                    if let Some(table) = slot.try_take() {
                        break table;
                    }
                    loom::thread::yield_now();
                })
                .collect();
            for p in producers {
                p.join().unwrap();
            }

            let mut global = OldTable::new();
            for w in 0..2u16 {
                global.record_allocation(rolp::context::pack(1 + w, 0));
                global.record_allocation(rolp::context::pack(1 + w, 0));
            }
            let summary = merge_worker_tables(&mut workers, &mut global);
            assert_eq!(summary.total, 4, "all published records must merge");
            assert_eq!(summary.per_worker, vec![2, 2]);
            for w in 0..2u16 {
                let h = global.histogram(rolp::context::pack(1 + w, 0));
                assert_eq!(h[round as usize + 1], 2, "both survivals visible after merge");
            }
            // Slots must have reset for the next pause.
            assert!(slots.iter().all(|s| !s.is_ready()));
        }
    });
}

/// Model check for the sharded table's spinlock: two mutator threads
/// record into *adjacent* shards while the coordinator applies a
/// safepoint merge whose records land in both of those shards. Loom's
/// instrumented `UnsafeCell` proves the per-shard CAS lock really is
/// mutually exclusive (a missed Acquire/Release pairing or an unlocked
/// cell access fails the model), and the disjoint-row layout makes the
/// final state deterministic across every interleaving.
#[test]
fn loom_sharded_adjacent_shards_during_merge() {
    loom::model(|| {
        // 8 site rows, 2 shards: shard = site_row & 1, so sites 1 and 3
        // share shard 1 while sites 2 and 4 share shard 0.
        let table = Arc::new(ShardedOldTable::with_geometry(TableGeometry::new(8, 4), 2));

        let recorders: Vec<_> = (0..2u16)
            .map(|w| {
                let table = Arc::clone(&table);
                loom::thread::spawn(move || {
                    table.record_allocation(rolp::context::pack(1 + w, 0));
                })
            })
            .collect();

        // The merge races the recorders for the shard locks but touches
        // different rows (sites 3 and 4), so exactness is checkable.
        let mut workers = vec![WorkerTable::new()];
        workers[0].record_survival(rolp::context::pack(3, 0), 0);
        workers[0].record_survival(rolp::context::pack(4, 0), 0);
        let (summary, per_shard) = table.merge_workers_sharded(&mut workers, 1);
        assert_eq!(summary.total, 2);
        assert_eq!(per_shard, vec![1, 1], "one record per adjacent shard");

        for r in recorders {
            r.join().unwrap();
        }

        // Locked counting is exact under every interleaving.
        assert_eq!(table.age0_total(), 2, "no lost allocation increments");
        for site in [1u16, 2] {
            assert_eq!(table.histogram(rolp::context::pack(site, 0))[0], 1);
        }
        for site in [3u16, 4] {
            assert_eq!(table.histogram(rolp::context::pack(site, 0))[1], 1);
        }
        assert_eq!(LifetimeTable::touched_rows(&*table).len(), 4);
    });
}
