//! Inference pattern library: the demographic shapes the paper's Fig. 4
//! sketches, end to end through the OLD table + classifier.

use rolp::inference::{classify_row, infer, RowVerdict};
use rolp::{LifetimeTable, OldTable};

/// Simulates a cohort of `n` objects allocated through `ctx` that all die
/// at exactly `death_age` (survive that many cycles first).
fn cohort(table: &mut OldTable, ctx: u32, n: u32, death_age: u8) {
    for _ in 0..n {
        table.record_allocation(ctx);
        for age in 0..death_age {
            table.record_survival(ctx, age);
        }
    }
}

/// Simulates `n` objects with death ages uniformly spread over
/// `0..=max_age` (the uniformly-born epochal cohort).
fn spread_cohort(table: &mut OldTable, ctx: u32, n: u32, max_age: u8) {
    for i in 0..n {
        table.record_allocation(ctx);
        let death = (i % (max_age as u32 + 1)) as u8;
        for age in 0..death {
            table.record_survival(ctx, age);
        }
    }
}

#[test]
fn transient_cohort_stays_young() {
    let mut t = OldTable::new();
    cohort(&mut t, 1 << 16, 500, 0);
    assert_eq!(classify_row(&t.histogram(1 << 16)), RowVerdict::Lifetime(0));
}

#[test]
fn clustered_cohort_lands_on_its_death_age() {
    for death in [2u8, 5, 9, 14] {
        let mut t = OldTable::new();
        cohort(&mut t, 1 << 16, 400, death);
        match classify_row(&t.histogram(1 << 16)) {
            RowVerdict::Lifetime(age) => {
                assert_eq!(age, death, "cluster at {death} must be estimated exactly")
            }
            v => panic!("expected lifetime for death {death}, got {v:?}"),
        }
    }
}

#[test]
fn immortal_cohort_saturates_to_old() {
    let mut t = OldTable::new();
    cohort(&mut t, 1 << 16, 300, 15);
    // Extra survivals past 15 must keep everything at the max age.
    for _ in 0..300 {
        t.record_survival(1 << 16, 15);
    }
    assert_eq!(classify_row(&t.histogram(1 << 16)), RowVerdict::Lifetime(15));
}

#[test]
fn epochal_spread_estimates_near_its_tail() {
    let mut t = OldTable::new();
    spread_cohort(&mut t, 1 << 16, 600, 6);
    match classify_row(&t.histogram(1 << 16)) {
        RowVerdict::Lifetime(age) => {
            assert!((5..=6).contains(&age), "p85 of a 0..=6 spread, got {age}")
        }
        v => panic!("expected lifetime, got {v:?}"),
    }
}

#[test]
fn transient_plus_distant_cluster_is_a_conflict() {
    // The factory pattern: 60% die young, 40% live ~10 cycles.
    let mut t = OldTable::new();
    cohort(&mut t, 2 << 16, 600, 0);
    cohort(&mut t, 2 << 16, 400, 10);
    match classify_row(&t.histogram(2 << 16)) {
        RowVerdict::Conflict(peaks) => {
            assert!(peaks.contains(&0));
            assert!(peaks.iter().any(|&p| (9..=11).contains(&p)), "peaks {peaks:?}");
        }
        v => panic!("expected conflict, got {v:?}"),
    }
}

#[test]
fn trimodal_factory_reports_all_modes() {
    let mut t = OldTable::new();
    cohort(&mut t, 3 << 16, 500, 0);
    cohort(&mut t, 3 << 16, 400, 6);
    cohort(&mut t, 3 << 16, 400, 13);
    match classify_row(&t.histogram(3 << 16)) {
        RowVerdict::Conflict(peaks) => assert!(peaks.len() >= 3, "peaks {peaks:?}"),
        v => panic!("expected conflict, got {v:?}"),
    }
}

#[test]
fn expansion_separates_the_factory_modes() {
    // Before expansion: one conflicted row. After: per-path rows, each
    // unimodal — the resolution endpoint of Section 5.
    let mut t = OldTable::new();
    let site = 4u16;
    cohort(&mut t, (site as u32) << 16, 300, 0);
    cohort(&mut t, (site as u32) << 16, 300, 8);
    let out = infer(&t);
    assert_eq!(out.new_conflicts, vec![site]);

    t.expand_site(site);
    t.clear_counts();
    let path_a = ((site as u32) << 16) | 0x00AA;
    let path_b = ((site as u32) << 16) | 0x00BB;
    cohort(&mut t, path_a, 300, 0);
    cohort(&mut t, path_b, 300, 8);
    let out2 = infer(&t);
    assert!(out2.new_conflicts.is_empty());
    assert!(out2.unresolved_conflicts.is_empty(), "both sub-rows are unimodal");
    assert!(out2.decisions.contains(&(path_a, 0)));
    assert!(out2.decisions.iter().any(|&(k, g)| k == path_b && (7..=9).contains(&g)));
}

/// A program with one hot caller and `n` profilable call sites, jitted so
/// the resolver has something to probe.
fn probe_world(n: usize) -> (std::rc::Rc<rolp_vm::Program>, rolp_vm::JitState) {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut b = rolp_vm::ProgramBuilder::new();
    let caller = b.method("app.Main::run", 500, false);
    for i in 0..n {
        let callee = b.method(format!("app.W{i}::go"), 200, false);
        b.call_site(caller, callee);
    }
    let program = std::rc::Rc::new(b.build());
    let mut jit = rolp_vm::JitState::new(
        &program,
        rolp_vm::JitConfig { compile_threshold: 1, ..Default::default() },
    );
    jit.note_entry(&program, caller, &mut StdRng::seed_from_u64(1));
    (program, jit)
}

#[test]
fn shrink_back_converges_to_a_minimal_set_end_to_end() {
    // Section 5 end to end: conflict detected *by inference on real age
    // histograms*, probed, separated by TSS tracking, then shrunk back
    // until only a minimal distinguishing set stays enabled.
    use rolp::{ConflictConfig, ConflictResolver};

    let (program, mut jit) = probe_world(12);
    let mut resolver = ConflictResolver::new(ConflictConfig::default(), 42);
    let mut t = OldTable::new();
    let site = 7u16;

    // Epoch 1: the merged row is bimodal — inference reports a conflict
    // and the resolver enables a probing batch.
    cohort(&mut t, (site as u32) << 16, 300, 0);
    cohort(&mut t, (site as u32) << 16, 300, 8);
    let out = infer(&t);
    assert_eq!(out.new_conflicts, vec![site]);
    t.expand_site(site);
    resolver.on_inference(&program, &mut jit, &out.new_conflicts, &out.unresolved_conflicts);
    let batch = jit.enabled_call_sites();
    assert!(batch >= 2, "probing batch enabled, got {batch}");

    // Epoch 2: with tracking on, the paths separate into unimodal
    // sub-rows — resolved, so the resolver starts halving the batch.
    t.clear_counts();
    let path_a = ((site as u32) << 16) | 0x00AA;
    let path_b = ((site as u32) << 16) | 0x00BB;
    cohort(&mut t, path_a, 300, 0);
    cohort(&mut t, path_b, 300, 8);
    let out = infer(&t);
    assert!(out.new_conflicts.is_empty() && out.unresolved_conflicts.is_empty());
    resolver.on_inference(&program, &mut jit, &out.new_conflicts, &out.unresolved_conflicts);
    assert!(jit.enabled_call_sites() < batch, "shrink-back disabled half the batch");

    // Later epochs: the separation persists, so the batch halves away to
    // a minimal frozen set and the conflict closes.
    for _ in 0..8 {
        t.clear_counts();
        cohort(&mut t, path_a, 300, 0);
        cohort(&mut t, path_b, 300, 8);
        let out = infer(&t);
        resolver.on_inference(&program, &mut jit, &out.new_conflicts, &out.unresolved_conflicts);
    }
    let stats = resolver.stats();
    assert_eq!(stats.resolved, 1);
    assert!(
        (1..=2).contains(&stats.frozen_sites),
        "minimal distinguishing set, got {}",
        stats.frozen_sites
    );
    assert_eq!(jit.enabled_call_sites() as u64, stats.frozen_sites, "only S stays enabled");
    assert_eq!(resolver.open_conflicts(), 0);
}

#[test]
fn shrink_back_restores_the_disabled_half_when_separation_degrades() {
    // The other shrink-back arm: disabling half the batch collapses the
    // paths onto one TSS row again (the sub-row goes bimodal), so the
    // half comes back and the whole set freezes.
    use rolp::{ConflictConfig, ConflictResolver};

    let (program, mut jit) = probe_world(12);
    let mut resolver = ConflictResolver::new(ConflictConfig::default(), 42);
    let mut t = OldTable::new();
    let site = 9u16;

    cohort(&mut t, (site as u32) << 16, 300, 0);
    cohort(&mut t, (site as u32) << 16, 300, 8);
    let out = infer(&t);
    assert_eq!(out.new_conflicts, vec![site]);
    t.expand_site(site);
    resolver.on_inference(&program, &mut jit, &out.new_conflicts, &out.unresolved_conflicts);
    let batch = jit.enabled_call_sites();

    // Resolved once: first shrink step disables half.
    t.clear_counts();
    let path_a = ((site as u32) << 16) | 0x00AA;
    let path_b = ((site as u32) << 16) | 0x00BB;
    cohort(&mut t, path_a, 300, 0);
    cohort(&mut t, path_b, 300, 8);
    let out = infer(&t);
    resolver.on_inference(&program, &mut jit, &out.new_conflicts, &out.unresolved_conflicts);
    assert!(jit.enabled_call_sites() < batch);

    // With the half gone the paths land on one sub-row and the histogram
    // goes bimodal again — inference reports the site unresolved.
    t.clear_counts();
    cohort(&mut t, path_a, 300, 0);
    cohort(&mut t, path_a, 300, 8);
    let out = infer(&t);
    assert_eq!(out.unresolved_conflicts, vec![site]);
    resolver.on_inference(&program, &mut jit, &out.new_conflicts, &out.unresolved_conflicts);
    assert_eq!(jit.enabled_call_sites(), batch, "the disabled half came back");
    assert_eq!(resolver.stats().frozen_sites as usize, batch);
    assert_eq!(resolver.open_conflicts(), 0);
}

#[test]
fn inference_is_idempotent_on_an_unchanged_table() {
    let mut t = OldTable::new();
    cohort(&mut t, 5 << 16, 200, 3);
    cohort(&mut t, 6 << 16, 200, 0);
    let a = infer(&t);
    let b = infer(&t);
    assert_eq!(a.decisions, b.decisions);
    assert_eq!(a.new_conflicts, b.new_conflicts);
    assert_eq!(a.rows_examined, b.rows_examined);
}
