//! Inference pattern library: the demographic shapes the paper's Fig. 4
//! sketches, end to end through the OLD table + classifier.

use rolp::inference::{classify_row, infer, RowVerdict};
use rolp::{LifetimeTable, OldTable};

/// Simulates a cohort of `n` objects allocated through `ctx` that all die
/// at exactly `death_age` (survive that many cycles first).
fn cohort(table: &mut OldTable, ctx: u32, n: u32, death_age: u8) {
    for _ in 0..n {
        table.record_allocation(ctx);
        for age in 0..death_age {
            table.record_survival(ctx, age);
        }
    }
}

/// Simulates `n` objects with death ages uniformly spread over
/// `0..=max_age` (the uniformly-born epochal cohort).
fn spread_cohort(table: &mut OldTable, ctx: u32, n: u32, max_age: u8) {
    for i in 0..n {
        table.record_allocation(ctx);
        let death = (i % (max_age as u32 + 1)) as u8;
        for age in 0..death {
            table.record_survival(ctx, age);
        }
    }
}

#[test]
fn transient_cohort_stays_young() {
    let mut t = OldTable::new();
    cohort(&mut t, 1 << 16, 500, 0);
    assert_eq!(classify_row(&t.histogram(1 << 16)), RowVerdict::Lifetime(0));
}

#[test]
fn clustered_cohort_lands_on_its_death_age() {
    for death in [2u8, 5, 9, 14] {
        let mut t = OldTable::new();
        cohort(&mut t, 1 << 16, 400, death);
        match classify_row(&t.histogram(1 << 16)) {
            RowVerdict::Lifetime(age) => {
                assert_eq!(age, death, "cluster at {death} must be estimated exactly")
            }
            v => panic!("expected lifetime for death {death}, got {v:?}"),
        }
    }
}

#[test]
fn immortal_cohort_saturates_to_old() {
    let mut t = OldTable::new();
    cohort(&mut t, 1 << 16, 300, 15);
    // Extra survivals past 15 must keep everything at the max age.
    for _ in 0..300 {
        t.record_survival(1 << 16, 15);
    }
    assert_eq!(classify_row(&t.histogram(1 << 16)), RowVerdict::Lifetime(15));
}

#[test]
fn epochal_spread_estimates_near_its_tail() {
    let mut t = OldTable::new();
    spread_cohort(&mut t, 1 << 16, 600, 6);
    match classify_row(&t.histogram(1 << 16)) {
        RowVerdict::Lifetime(age) => {
            assert!((5..=6).contains(&age), "p85 of a 0..=6 spread, got {age}")
        }
        v => panic!("expected lifetime, got {v:?}"),
    }
}

#[test]
fn transient_plus_distant_cluster_is_a_conflict() {
    // The factory pattern: 60% die young, 40% live ~10 cycles.
    let mut t = OldTable::new();
    cohort(&mut t, 2 << 16, 600, 0);
    cohort(&mut t, 2 << 16, 400, 10);
    match classify_row(&t.histogram(2 << 16)) {
        RowVerdict::Conflict(peaks) => {
            assert!(peaks.contains(&0));
            assert!(peaks.iter().any(|&p| (9..=11).contains(&p)), "peaks {peaks:?}");
        }
        v => panic!("expected conflict, got {v:?}"),
    }
}

#[test]
fn trimodal_factory_reports_all_modes() {
    let mut t = OldTable::new();
    cohort(&mut t, 3 << 16, 500, 0);
    cohort(&mut t, 3 << 16, 400, 6);
    cohort(&mut t, 3 << 16, 400, 13);
    match classify_row(&t.histogram(3 << 16)) {
        RowVerdict::Conflict(peaks) => assert!(peaks.len() >= 3, "peaks {peaks:?}"),
        v => panic!("expected conflict, got {v:?}"),
    }
}

#[test]
fn expansion_separates_the_factory_modes() {
    // Before expansion: one conflicted row. After: per-path rows, each
    // unimodal — the resolution endpoint of Section 5.
    let mut t = OldTable::new();
    let site = 4u16;
    cohort(&mut t, (site as u32) << 16, 300, 0);
    cohort(&mut t, (site as u32) << 16, 300, 8);
    let out = infer(&t);
    assert_eq!(out.new_conflicts, vec![site]);

    t.expand_site(site);
    t.clear_counts();
    let path_a = ((site as u32) << 16) | 0x00AA;
    let path_b = ((site as u32) << 16) | 0x00BB;
    cohort(&mut t, path_a, 300, 0);
    cohort(&mut t, path_b, 300, 8);
    let out2 = infer(&t);
    assert!(out2.new_conflicts.is_empty());
    assert!(out2.unresolved_conflicts.is_empty(), "both sub-rows are unimodal");
    assert!(out2.decisions.contains(&(path_a, 0)));
    assert!(out2.decisions.iter().any(|&(k, g)| k == path_b && (7..=9).contains(&g)));
}

#[test]
fn inference_is_idempotent_on_an_unchanged_table() {
    let mut t = OldTable::new();
    cohort(&mut t, 5 << 16, 200, 3);
    cohort(&mut t, 6 << 16, 200, 0);
    let a = infer(&t);
    let b = infer(&t);
    assert_eq!(a.decisions, b.decisions);
    assert_eq!(a.new_conflicts, b.new_conflicts);
    assert_eq!(a.rows_examined, b.rows_examined);
}
