//! Model check for the decision publication protocol (build table →
//! anchor in history → pointer swap → lock-free reader load), run by the
//! `loom` CI job:
//!
//! ```sh
//! cargo test -p rolp --features loom --test loom_decisions
//! ```
//!
//! Under `--features loom`, [`rolp_vm::DecisionStore`]'s pointer swap is
//! compiled against the (vendored) loom primitives, so the publish-side
//! store and every reader load are schedule points across the seeded
//! interleavings `loom::model` explores. The model asserts the two
//! properties the allocation fast path depends on:
//!
//! 1. every observed snapshot is internally consistent — the version a
//!    reader sees always matches that version's decisions (no torn or
//!    half-published table is ever reachable);
//! 2. versions are monotonic per reader, and a snapshot held across a
//!    publish keeps serving its own epoch's decisions.
#![cfg(feature = "loom")]

use std::collections::BTreeMap;
use std::sync::Arc;

use rolp_vm::{DecisionStore, DecisionTable};

const CTX: u32 = 7 << 16;

fn rows(gen: u8) -> BTreeMap<u32, u8> {
    [(CTX, gen)].into_iter().collect()
}

#[test]
fn loom_decision_publish_read_pair() {
    loom::model(|| {
        let store =
            Arc::new(DecisionStore::with_initial(DecisionTable::empty_with_geometry(64, 16)));

        // Reader: a mutator thread resolving pretenuring advice while two
        // publishes land. It also grabs an owned epoch snapshot mid-run,
        // the way a mutator might pin one across a safepoint.
        let reader = {
            let store = Arc::clone(&store);
            loom::thread::spawn(move || {
                let mut last = 0u64;
                let mut held: Option<Arc<DecisionTable>> = None;
                for _ in 0..64 {
                    let t = store.load();
                    let v = t.version();
                    assert!(v >= last, "published versions must be monotonic: {last} -> {v}");
                    last = v;
                    // Whatever epoch the load lands in, the snapshot must
                    // be internally consistent with its version.
                    match v {
                        0 => assert_eq!(t.advise(CTX), None),
                        1 => assert_eq!(t.advise(CTX), Some(2)),
                        2 => assert_eq!(t.advise(CTX), Some(9)),
                        v => panic!("impossible version {v}"),
                    }
                    if held.is_none() && v >= 1 {
                        held = Some(store.snapshot());
                    }
                    if v == 2 {
                        break;
                    }
                    loom::thread::yield_now();
                }
                held
            })
        };

        // Writer (the safepoint side): two inference epochs back to back.
        let v1 = DecisionTable::next_from(store.load(), &rows(2), []);
        assert_eq!(store.publish(v1), 1);
        let v2 = DecisionTable::next_from(store.load(), &rows(9), []);
        assert_eq!(v2.changed_rows(), 1);
        assert_eq!(store.publish(v2), 2);

        // A snapshot the reader pinned stays consistent with *its* epoch
        // even though newer tables were published after it was taken.
        if let Some(held) = reader.join().expect("reader thread") {
            match held.version() {
                1 => assert_eq!(held.advise(CTX), Some(2)),
                2 => assert_eq!(held.advise(CTX), Some(9)),
                v => panic!("pinned snapshot has impossible version {v}"),
            }
        }

        // Writer-side quiescent state: the final load observes epoch 2,
        // and the history anchors all three tables (what keeps every
        // reader-held pointer dereferenceable).
        assert_eq!(store.load().version(), 2);
        assert_eq!(store.load().advise(CTX), Some(9));
        assert_eq!(store.epochs(), 3);
    });
}
