//! Property tests for the overhead governor under arbitrary fault plans.
//!
//! Two guarantees (DESIGN.md §13):
//!
//! 1. **Degradation never remaps a context.** Whatever the governor sheds,
//!    a surviving allocation context either keeps its published meaning or
//!    falls back to gen-0 semantics (no decision) — it is never advised to
//!    a *different* generation than the working set holds for it.
//! 2. **`Off` is the disabled profiler, bit for bit.** A governor pinned
//!    in `Off` produces exactly the run a profiler that matches nothing
//!    produces: same clock, same pauses, same placement, same watermarks.

use proptest::prelude::*;
use rolp::context::site_of;
use rolp::governor::{GovernorConfig, GovernorState};
use rolp::profiler::{RolpConfig, RolpProfiler};
use rolp_faults::{FaultKind, FaultPlan};
use rolp_gc::{GcCycleInfo, GcHooks};
use rolp_heap::{ObjectHeader, RegionKind};
use rolp_metrics::{PauseKind, SimTime};
use rolp_vm::{CostModel, JitConfig, ProgramBuilder, ThreadId, VmEnv, VmProfiler};

fn cycle_info(cycle: u64) -> GcCycleInfo {
    GcCycleInfo {
        cycle,
        kind: PauseKind::Young,
        bytes_copied: 0,
        survivors: 0,
        duration: SimTime::from_millis(5),
        tenured_fragmentation: 0.0,
        dynamic_gen_garbage: [0.0; 16],
    }
}

fn fault_strategy() -> impl Strategy<Value = FaultKind> {
    prop_oneof![
        (1u64..48).prop_map(|at_cycle| FaultKind::SiteIdExhaustion { at_cycle }),
        (1u64..48, 0u16..u16::MAX)
            .prop_map(|(from_cycle, tss)| FaultKind::TssCollision { from_cycle, tss }),
        (1u64..48, 1u32..64).prop_map(|(from_cycle, rows_per_cycle)| FaultKind::RowFlood {
            from_cycle,
            rows_per_cycle
        }),
        (1u64..32, 1u64..32, 1u64..300_000).prop_map(|(from_cycle, len, events_per_cycle)| {
            FaultKind::AllocBurst { from_cycle, until_cycle: from_cycle + len, events_per_cycle }
        }),
        (1u64..8).prop_map(|every| FaultKind::MergeDrop { every }),
        (1u64..8).prop_map(|every| FaultKind::MergeDelay { every }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Drive a governed profiler through 64 GC cycles of load under an
    /// arbitrary fault plan and an arbitrary (possibly hair-trigger)
    /// record budget. Nothing may panic, the site's profile id may never
    /// change, and published advice may never contradict the retained
    /// working set.
    #[test]
    fn surviving_contexts_never_change_meaning(
        seed in 0u64..1_000,
        faults in prop::collection::vec(fault_strategy(), 0..4),
        record_budget in prop_oneof![Just(50u64), Just(5_000), Just(2_000_000)],
    ) {
        let mut b = ProgramBuilder::new();
        let m = b.method("app.data.Maker::make", 100, false);
        let site = b.alloc_site(m, 1);
        let program = b.build();
        let heap = rolp_heap::Heap::new(rolp_heap::HeapConfig {
            region_bytes: 4096,
            max_heap_bytes: 1 << 20,
        });
        let mut env = VmEnv::new(heap, CostModel::default(), program, JitConfig::default(), 1);
        let program = std::rc::Rc::clone(&env.program);

        let mut p = RolpProfiler::new(RolpConfig {
            governor: Some(GovernorConfig {
                max_record_events_per_epoch: record_budget,
                ..Default::default()
            }),
            fault_plan: Some(FaultPlan { name: "prop".into(), seed, faults }),
            survivor_shutdown: false,
            ..Default::default()
        });
        p.on_jit_compile(&program, &mut env.jit, m);
        let pid = env.jit.alloc_site(site).profile_id.expect("site gets an id");

        for cycle in 1..=64u64 {
            for i in 0..8u16 {
                let ctx = p.on_alloc(pid, i % 2, ThreadId(0));
                prop_assert_eq!(site_of(ctx), pid, "degradation must not remap the site id");
                let h = ObjectHeader::new(1).with_allocation_context(ctx);
                p.on_survivor(h, RegionKind::Eden, 0);
                p.on_survivor(h.with_age(1), RegionKind::Eden, 1);
            }
            p.on_gc_end(&mut env, &cycle_info(cycle));
        }

        // The saturating id assignment survived whatever was injected.
        prop_assert_eq!(env.jit.alloc_site(site).profile_id, Some(pid));

        let state = p.governor_state().expect("governed run reports a state");
        for (&ctx, &gen) in p.decisions() {
            match p.advise(ctx) {
                // Demoted to gen-0 semantics: allowed (that's degradation).
                None => {}
                // Still published: must mean exactly what the working set
                // says — never remapped to another generation.
                Some(g) => prop_assert_eq!(g, gen, "context {:#010x} was remapped", ctx),
            }
            if state == GovernorState::Off {
                prop_assert_eq!(
                    p.advise(ctx), None,
                    "Off must publish the all-gen-0 table"
                );
            }
        }
    }
}

/// A deterministic synthetic workload through the full runtime: allocate
/// through a profiled call path, hold a sliding window live so objects
/// survive collections, release the rest.
fn run_workload(config: rolp::runtime::RuntimeConfig) -> rolp::runtime::RunReport {
    use rolp::runtime::JvmRuntime;

    let mut b = ProgramBuilder::new();
    let main = b.method("app.Main::run", 100, false);
    let worker = b.method("app.Worker::step", 80, false);
    let call = b.call_site(main, worker);
    let site = b.alloc_site(worker, 1);
    let site2 = b.alloc_site(main, 2);
    let program = b.build();

    let mut rt = JvmRuntime::new(config, program);
    let class = rt.vm.env.heap.classes.register("app.Item");
    let mut ring = std::collections::VecDeque::new();
    for _ in 0..20_000u64 {
        let mut ctx = rt.ctx(ThreadId(0));
        ctx.call(call, |ctx| {
            let h = ctx.alloc(site, class, 0, 4);
            ctx.release(h);
            let held = ctx.alloc(site2, class, 0, 4);
            ring.push_back(held);
            if ring.len() > 64 {
                ctx.release(ring.pop_front().unwrap());
            }
            ctx.complete_ops(1);
        });
    }
    rt.report()
}

/// Guarantee 2: a governor pinned in `Off` (zero budgets, `Off` start
/// state) is indistinguishable from a profiler whose filters match
/// nothing — identical clock, pauses, heap watermarks, and throughput.
#[test]
fn governor_off_is_bit_for_bit_the_disabled_profiler() {
    use rolp::runtime::{CollectorKind, RuntimeConfig};
    use rolp::PackageFilters;

    let base = || RuntimeConfig {
        collector: CollectorKind::RolpNg2c,
        heap: rolp_heap::HeapConfig { region_bytes: 4096, max_heap_bytes: 1 << 20 },
        ..Default::default()
    };

    let mut governed_cfg = base();
    governed_cfg.rolp.governor = Some(GovernorConfig {
        start_state: GovernorState::Off,
        max_record_events_per_epoch: 0,
        max_table_bytes: 0,
        max_call_overhead_ns_per_epoch: 0,
        calm_epochs_to_recover: 2,
        ..Default::default()
    });
    let governed = run_workload(governed_cfg);

    let mut disabled_cfg = base();
    disabled_cfg.rolp.filters = PackageFilters::include(&["no.such.pkg"]);
    let disabled = run_workload(disabled_cfg);

    // The governed run really was pinned off the whole time.
    let stats = governed.rolp.as_ref().expect("rolp stats");
    assert_eq!(stats.governor_state, Some("off"));
    assert_eq!(stats.profiled_allocations, 0, "nothing recorded while Off");
    assert_eq!(stats.decisions, 0);

    // Bit-for-bit run equality.
    assert_eq!(governed.elapsed, disabled.elapsed, "identical simulated clock");
    assert_eq!(governed.total_paused, disabled.total_paused, "identical pause time");
    assert_eq!(governed.ops, disabled.ops);
    assert_eq!(governed.gc_cycles, disabled.gc_cycles);
    assert_eq!(governed.pauses, disabled.pauses);
    assert_eq!(governed.max_used_bytes, disabled.max_used_bytes);
    assert_eq!(governed.max_committed_bytes, disabled.max_committed_bytes);
}
