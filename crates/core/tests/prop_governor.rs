//! Property tests for the overhead governor under arbitrary fault plans.
//!
//! Two guarantees (DESIGN.md §13):
//!
//! 1. **Degradation never remaps a context.** Whatever the governor sheds,
//!    a surviving allocation context either keeps its published meaning or
//!    falls back to gen-0 semantics (no decision) — it is never advised to
//!    a *different* generation than the working set holds for it.
//! 2. **`Off` is the disabled profiler, bit for bit.** A governor pinned
//!    in `Off` produces exactly the run a profiler that matches nothing
//!    produces: same clock, same pauses, same placement, same watermarks.

use proptest::prelude::*;
use rolp::context::site_of;
use rolp::governor::{GovernorConfig, GovernorState};
use rolp::profiler::{RolpConfig, RolpProfiler};
use rolp_faults::{FaultKind, FaultPlan};
use rolp_gc::{GcCycleInfo, GcHooks};
use rolp_heap::{ObjectHeader, RegionKind};
use rolp_metrics::{PauseKind, SimTime};
use rolp_vm::{CostModel, JitConfig, ProgramBuilder, ThreadId, VmEnv, VmProfiler};

fn cycle_info(cycle: u64) -> GcCycleInfo {
    GcCycleInfo {
        cycle,
        kind: PauseKind::Young,
        bytes_copied: 0,
        survivors: 0,
        duration: SimTime::from_millis(5),
        tenured_fragmentation: 0.0,
        dynamic_gen_garbage: [0.0; 16],
    }
}

fn fault_strategy() -> impl Strategy<Value = FaultKind> {
    prop_oneof![
        (1u64..48).prop_map(|at_cycle| FaultKind::SiteIdExhaustion { at_cycle }),
        (1u64..48, 0u16..u16::MAX)
            .prop_map(|(from_cycle, tss)| FaultKind::TssCollision { from_cycle, tss }),
        (1u64..48, 1u32..64).prop_map(|(from_cycle, rows_per_cycle)| FaultKind::RowFlood {
            from_cycle,
            rows_per_cycle
        }),
        (1u64..32, 1u64..32, 1u64..300_000).prop_map(|(from_cycle, len, events_per_cycle)| {
            FaultKind::AllocBurst { from_cycle, until_cycle: from_cycle + len, events_per_cycle }
        }),
        (1u64..8).prop_map(|every| FaultKind::MergeDrop { every }),
        (1u64..8).prop_map(|every| FaultKind::MergeDelay { every }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Drive a governed profiler through 64 GC cycles of load under an
    /// arbitrary fault plan and an arbitrary (possibly hair-trigger)
    /// record budget. Nothing may panic, the site's profile id may never
    /// change, and published advice may never contradict the retained
    /// working set.
    #[test]
    fn surviving_contexts_never_change_meaning(
        seed in 0u64..1_000,
        faults in prop::collection::vec(fault_strategy(), 0..4),
        record_budget in prop_oneof![Just(50u64), Just(5_000), Just(2_000_000)],
    ) {
        let mut b = ProgramBuilder::new();
        let m = b.method("app.data.Maker::make", 100, false);
        let site = b.alloc_site(m, 1);
        let program = b.build();
        let heap = rolp_heap::Heap::new(rolp_heap::HeapConfig {
            region_bytes: 4096,
            max_heap_bytes: 1 << 20,
        });
        let mut env = VmEnv::new(heap, CostModel::default(), program, JitConfig::default(), 1);
        let program = std::rc::Rc::clone(&env.program);

        let mut p = RolpProfiler::new(RolpConfig {
            governor: Some(GovernorConfig {
                max_record_events_per_epoch: record_budget,
                ..Default::default()
            }),
            fault_plan: Some(FaultPlan { name: "prop".into(), seed, faults }),
            survivor_shutdown: false,
            ..Default::default()
        });
        p.on_jit_compile(&program, &mut env.jit, m);
        let pid = env.jit.alloc_site(site).profile_id.expect("site gets an id");

        for cycle in 1..=64u64 {
            for i in 0..8u16 {
                let ctx = p.on_alloc(pid, i % 2, ThreadId(0));
                prop_assert_eq!(site_of(ctx), pid, "degradation must not remap the site id");
                let h = ObjectHeader::new(1).with_allocation_context(ctx);
                p.on_survivor(h, RegionKind::Eden, 0);
                p.on_survivor(h.with_age(1), RegionKind::Eden, 1);
            }
            p.on_gc_end(&mut env, &cycle_info(cycle));
        }

        // The saturating id assignment survived whatever was injected.
        prop_assert_eq!(env.jit.alloc_site(site).profile_id, Some(pid));

        let state = p.governor_state().expect("governed run reports a state");
        for (&ctx, &gen) in p.decisions() {
            match p.advise(ctx) {
                // Demoted to gen-0 semantics: allowed (that's degradation).
                None => {}
                // Still published: must mean exactly what the working set
                // says — never remapped to another generation.
                Some(g) => prop_assert_eq!(g, gen, "context {:#010x} was remapped", ctx),
            }
            if state == GovernorState::Off {
                prop_assert_eq!(
                    p.advise(ctx), None,
                    "Off must publish the all-gen-0 table"
                );
            }
        }
    }
}

/// A deterministic synthetic workload through the full runtime: allocate
/// through a profiled call path, hold a sliding window live so objects
/// survive collections, release the rest. The heap is verified at the
/// end-of-run safepoint before the report is taken.
fn run_workload(config: rolp::runtime::RuntimeConfig) -> rolp::runtime::RunReport {
    run_workload_n(config, 20_000)
}

fn run_workload_n(config: rolp::runtime::RuntimeConfig, iters: u64) -> rolp::runtime::RunReport {
    use rolp::runtime::JvmRuntime;

    let mut b = ProgramBuilder::new();
    let main = b.method("app.Main::run", 100, false);
    let worker = b.method("app.Worker::step", 80, false);
    let call = b.call_site(main, worker);
    let site = b.alloc_site(worker, 1);
    let site2 = b.alloc_site(main, 2);
    let program = b.build();

    let mut rt = JvmRuntime::new(config, program);
    let class = rt.vm.env.heap.classes.register("app.Item");
    let mut ring = std::collections::VecDeque::new();
    for _ in 0..iters {
        let mut ctx = rt.ctx(ThreadId(0));
        ctx.call(call, |ctx| {
            let h = ctx.alloc(site, class, 0, 4);
            ctx.release(h);
            let held = ctx.alloc(site2, class, 0, 4);
            ring.push_back(held);
            if ring.len() > 64 {
                ctx.release(ring.pop_front().unwrap());
            }
            ctx.complete_ops(1);
        });
    }
    let report = rt.report();
    let errors = rolp_heap::verify::verify_heap(&rt.vm.env.heap, false);
    assert!(errors.is_empty(), "heap invalid at end of run: {:?}", errors.first());
    report
}

/// Guarantee 2: a governor pinned in `Off` (zero budgets, `Off` start
/// state) is indistinguishable from a profiler whose filters match
/// nothing — identical clock, pauses, heap watermarks, and throughput.
/// Checked in both allocation modes: the TLAB + micro-cache fast path
/// (the default) and the shared slow path, since governor `Off` patches
/// out profiling but must leave the allocation machinery untouched.
fn assert_governor_off_is_disabled_profiler(tlab_bytes: usize, microcache: bool) {
    use rolp::runtime::{CollectorKind, RuntimeConfig};
    use rolp::PackageFilters;

    let base = || RuntimeConfig {
        collector: CollectorKind::RolpNg2c,
        heap: rolp_heap::HeapConfig { region_bytes: 4096, max_heap_bytes: 1 << 20 },
        tlab_bytes,
        microcache,
        ..Default::default()
    };

    let mut governed_cfg = base();
    governed_cfg.rolp.governor = Some(GovernorConfig {
        start_state: GovernorState::Off,
        max_record_events_per_epoch: 0,
        max_table_bytes: 0,
        max_call_overhead_ns_per_epoch: 0,
        calm_epochs_to_recover: 2,
        ..Default::default()
    });
    let governed = run_workload(governed_cfg);

    let mut disabled_cfg = base();
    disabled_cfg.rolp.filters = PackageFilters::include(&["no.such.pkg"]);
    let disabled = run_workload(disabled_cfg);

    // The governed run really was pinned off the whole time.
    let stats = governed.rolp.as_ref().expect("rolp stats");
    assert_eq!(stats.governor_state, Some("off"));
    assert_eq!(stats.profiled_allocations, 0, "nothing recorded while Off");
    assert_eq!(stats.decisions, 0);

    // Bit-for-bit run equality.
    assert_eq!(governed.elapsed, disabled.elapsed, "identical simulated clock");
    assert_eq!(governed.total_paused, disabled.total_paused, "identical pause time");
    assert_eq!(governed.ops, disabled.ops);
    assert_eq!(governed.gc_cycles, disabled.gc_cycles);
    assert_eq!(governed.pauses, disabled.pauses);
    assert_eq!(governed.max_used_bytes, disabled.max_used_bytes);
    assert_eq!(governed.max_committed_bytes, disabled.max_committed_bytes);
}

#[test]
fn governor_off_is_bit_for_bit_the_disabled_profiler() {
    // Fast path on (the default configuration).
    assert_governor_off_is_disabled_profiler(rolp_heap::DEFAULT_TLAB_BYTES, true);
}

#[test]
fn governor_off_is_bit_for_bit_the_disabled_profiler_without_fast_path() {
    assert_governor_off_is_disabled_profiler(0, false);
}

/// Canned fault plans with the allocation fast path enabled: the
/// governed degradation ladder (`Full → … → Off → recover`) must never
/// corrupt the heap or disturb TLAB/batched-flush bookkeeping. Mirrors
/// the fault-matrix CI job, which drives the same canned plans through
/// the CLI with TLABs both on and off.
#[test]
fn canned_fault_plans_survive_with_tlabs_enabled() {
    for plan in ["pressure-spike", "merge-chaos"] {
        let mut cfg = rolp::runtime::RuntimeConfig {
            collector: rolp::runtime::CollectorKind::RolpNg2c,
            heap: rolp_heap::HeapConfig { region_bytes: 4096, max_heap_bytes: 1 << 20 },
            ..Default::default()
        };
        assert!(cfg.tlab_bytes > 0, "fast path must be on by default");
        assert!(cfg.microcache);
        cfg.rolp.fault_plan = Some(FaultPlan::parse(plan).expect("canned plan"));
        cfg.rolp.governor = Some(GovernorConfig::default());

        // Long enough to reach the plans' burst windows (cycles 16..64);
        // the heap is verified at the end-of-run safepoint.
        let report = run_workload_n(cfg, 60_000);
        let stats = report.rolp.expect("rolp stats");
        assert!(stats.governor_state.is_some(), "{plan}: governed run must report a final state");
        assert!(report.gc_cycles > 0, "{plan}: the plan must exercise collections");
        let fault_activity =
            stats.injected_fault_events + stats.dropped_merge_records + stats.delayed_merges;
        assert!(fault_activity > 0, "{plan}: faults must actually fire: {stats:?}");
    }
}
