//! Property tests for the `rolp-profile-v1` on-disk format.
//!
//! The loader sits on a trust boundary — a profile file may come from an
//! older build, a different program version, or a truncated copy — so the
//! parser's contract is: round-trip everything the exporter can produce,
//! and turn every malformed input into a clean [`ProfileParseError`],
//! never a panic and never a silently wrong profile.

use proptest::prelude::*;
use rolp::{program_fingerprint, CallSiteEntry, DecisionProfile, ProfileEntry, PROFILE_FORMAT_V1};
use rolp_vm::ProgramBuilder;

/// A string of `size` characters drawn uniformly from `alphabet`
/// (ASCII only). The vendored proptest subset has no regex strategies,
/// so name/garbage shapes are built from this instead.
fn chars_from(
    alphabet: &'static str,
    size: std::ops::Range<usize>,
) -> impl Strategy<Value = String> {
    proptest::collection::vec(0usize..alphabet.len(), size)
        .prop_map(move |ix| ix.into_iter().map(|i| alphabet.as_bytes()[i] as char).collect())
}

const NAME_HEAD: &str = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ";
const NAME_TAIL: &str = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._:$";

/// Method-name shape: Java-ish identifiers (`pkg.Class::method`,
/// `a$1._x:y`). No whitespace (fields are whitespace-separated) and no
/// `?`/`->` (the callsite serialization's placeholders).
fn name() -> impl Strategy<Value = String> {
    (0usize..NAME_HEAD.len(), chars_from(NAME_TAIL, 0..17))
        .prop_map(|(h, tail)| format!("{}{tail}", NAME_HEAD.as_bytes()[h] as char))
}

/// Printable ASCII plus newline (and optionally tab): the "arbitrary
/// text file" shape fed to the parser's trust boundary.
fn printable(size: std::ops::Range<usize>, with_tab: bool) -> impl Strategy<Value = String> {
    let classes = if with_tab { 97usize } else { 96 };
    proptest::collection::vec(0usize..classes, size).prop_map(|ix| {
        ix.into_iter()
            .map(|i| match i {
                95 => '\n',
                96 => '\t',
                i => (b' ' + i as u8) as char,
            })
            .collect()
    })
}

/// `rolp-profile-*` headers that are well-formed but not version 1.
fn wrong_version() -> impl Strategy<Value = String> {
    prop_oneof![
        (2u64..10_000).prop_map(|n| format!("rolp-profile-v{n}")),
        Just("rolp-profile-v0".to_string()),
        Just("rolp-profile-next".to_string()),
    ]
}

fn entry() -> impl Strategy<Value = ProfileEntry> {
    (name(), 0u32..10_000, 0u8..=15, 0u8..=100).prop_map(|(method, bci, generation, confidence)| {
        ProfileEntry { method, bci, generation, confidence }
    })
}

fn call_site() -> impl Strategy<Value = CallSiteEntry> {
    (name(), proptest::option::of(name()))
        .prop_map(|(caller, callee)| CallSiteEntry { caller, callee })
}

/// Arbitrary profiles in the exporter's normal form (entries and call
/// sites sorted, as `from_profiler` and the parser both guarantee).
fn profile() -> impl Strategy<Value = DecisionProfile> {
    (
        proptest::option::of(any::<u64>()),
        any::<u64>(),
        proptest::option::of((1usize..5_000, 1usize..500)),
        proptest::collection::vec(entry(), 0..16),
        proptest::collection::vec(call_site(), 0..8),
    )
        .prop_map(|(fingerprint, epochs, geometry, mut entries, mut call_sites)| {
            entries.sort_by(|a, b| (&a.method, a.bci).cmp(&(&b.method, b.bci)));
            call_sites.sort();
            DecisionProfile { fingerprint, epochs, geometry, entries, call_sites }
        })
}

proptest! {
    /// Everything the exporter can render parses back identically.
    #[test]
    fn render_parse_round_trips(p in profile()) {
        let text = p.to_string();
        prop_assert!(text.starts_with(PROFILE_FORMAT_V1));
        let back: DecisionProfile = text.parse().expect("rendered profile parses");
        prop_assert_eq!(back, p);
    }

    /// Any line-prefix of a valid profile either parses or fails with a
    /// clean error — a copy cut off mid-transfer must not import a silent
    /// subset of the decisions the header declares.
    #[test]
    fn truncated_profiles_never_panic(p in profile(), keep in 0usize..64) {
        let full = p.to_string();
        let cut: String = full.lines().take(keep).map(|l| format!("{l}\n")).collect();
        match cut.parse::<DecisionProfile>() {
            Ok(parsed) => {
                // A prefix that still parses must carry the full entry
                // set (the `entries` count line precedes the decisions).
                if cut.contains("\nentries ") {
                    prop_assert_eq!(parsed.entries.len(), p.entries.len());
                }
            }
            Err(e) => prop_assert!(!e.reason.is_empty()),
        }
    }

    /// Unknown `rolp-profile-*` versions are rejected with a clean error,
    /// whatever follows the header.
    #[test]
    fn wrong_version_headers_fail_cleanly(
        version in wrong_version(),
        body in printable(0..201, false),
    ) {
        let text = format!("{version}\n{body}");
        let err = text.parse::<DecisionProfile>().expect_err("unknown version must fail");
        prop_assert!(err.reason.contains("unsupported profile version"), "{}", err);
    }

    /// Arbitrary printable garbage never panics the parser: it either
    /// happens to be a legal profile or yields a positioned error.
    #[test]
    fn arbitrary_input_never_panics(text in printable(0..401, true)) {
        match text.parse::<DecisionProfile>() {
            Ok(p) => prop_assert!(p.entries.iter().all(|e| e.generation <= 15)),
            Err(e) => prop_assert!(e.line >= 1),
        }
    }

    /// Resolving any profile against a program it was not exported from
    /// (fingerprint mismatch included) never panics, and the validation
    /// counts always reconcile: every entry and call site is either
    /// applied or rejected, and decisions only target live sites.
    #[test]
    fn foreign_profiles_validate_without_panicking(p in profile()) {
        let mut b = ProgramBuilder::new();
        let m = b.method("app.Main::run", 60, false);
        let callee = b.method("app.store.Buffer::fill", 120, false);
        b.call_site(m, callee);
        b.alloc_site(callee, 5);
        let program = b.build();
        prop_assume!(p.fingerprint != Some(program_fingerprint(&program)));

        let resolved = p.resolve_validated(&program);
        let v = resolved.validation;
        prop_assert_eq!(v.entries_total, p.entries.len());
        prop_assert_eq!(v.entries_applied + v.entries_rejected, v.entries_total);
        prop_assert_eq!(v.call_sites_total, p.call_sites.len());
        prop_assert_eq!(
            v.call_sites_applied + v.call_sites_rejected,
            v.call_sites_total
        );
        prop_assert!(v.fingerprint_checked == p.fingerprint.is_some());
        for site in resolved.decisions.keys() {
            prop_assert!(program.alloc_sites().any(|s| s == *site));
        }
    }
}
