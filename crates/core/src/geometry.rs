//! Shared OLD-table geometry and the [`LifetimeTable`] backend trait.
//!
//! The paper has *one* Object Lifetime Distribution table (§3.3, §7.5);
//! this repo has two implementations of it — [`crate::OldTable`]
//! (sequential, exact: the reconciliation reference) and
//! [`crate::SharedOldTable`] (relaxed-atomic: the real §7.6 fast path).
//! Everything they share that is *not* about synchronization lives here:
//!
//! - [`TableGeometry`] — row counts, masking, row keying, and the §7.5
//!   memory accounting, written once.
//! - [`LifetimeTable`] — the backend trait the profiler pipeline
//!   (worker-table merge, inference, conflict resolution, §7.6 loss
//!   reconciliation) is written against, so the logic exists once and the
//!   backends differ only in how cells are updated.
//!
//! # The `clear_counts` contract
//!
//! The backends historically diverged here, so the contract is now
//! explicit and observational. After [`LifetimeTable::clear_counts`]:
//!
//! 1. every row's histogram reads all-zero (however the backend gets
//!    there — the sequential table zeroes only rows it tracked as
//!    touched, the shared table sweeps every cell);
//! 2. [`LifetimeTable::touched_rows`] is empty and
//!    [`LifetimeTable::age0_total`] is zero;
//! 3. expansion blocks are **retained**: `is_expanded`/`expansions` and
//!    the §7.5 memory footprint are unchanged, and subsequent records to
//!    an expanded site still split by thread stack state.
//!
//! Callers may only invoke it at a safepoint (no concurrent recorders).

use crate::context::{site_of, tss_of};
use crate::old_table::AGE_COLUMNS;

/// Rows in the full-scale base table / expansion blocks (§7.5: 2^16).
pub const FULL_SCALE_ROWS: usize = 1 << 16;

/// The §7.5 table shape: a base block with one row per allocation-site
/// id, plus one per-stack-state block per conflicted site. Row counts are
/// powers of two so scaled-down tests (and Miri, which would crawl over a
/// 4 MB table) alias ids into rows by masking; at full scale the masks
/// are the identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableGeometry {
    site_rows: usize,
    site_mask: u16,
    tss_rows: usize,
    tss_mask: u16,
}

impl TableGeometry {
    /// The paper's geometry: 2^16 site rows, 2^16 stack states per
    /// expansion block — 4 MB base + 4 MB per conflict.
    pub fn full_scale() -> Self {
        Self::new(FULL_SCALE_ROWS, FULL_SCALE_ROWS)
    }

    /// A geometry with explicit power-of-two row counts.
    pub fn new(site_rows: usize, tss_rows: usize) -> Self {
        assert!(site_rows.is_power_of_two() && site_rows <= FULL_SCALE_ROWS);
        assert!(tss_rows.is_power_of_two() && tss_rows <= FULL_SCALE_ROWS);
        TableGeometry {
            site_rows,
            site_mask: (site_rows - 1) as u16,
            tss_rows,
            tss_mask: (tss_rows - 1) as u16,
        }
    }

    /// Rows in the base block.
    pub fn site_rows(&self) -> usize {
        self.site_rows
    }

    /// Rows in each expansion block.
    pub fn tss_rows(&self) -> usize {
        self.tss_rows
    }

    /// The base-block row index a context's site aliases into.
    #[inline]
    pub fn site_row(&self, context: u32) -> usize {
        (site_of(context) & self.site_mask) as usize
    }

    /// The expansion-block row index a context's stack state aliases
    /// into.
    #[inline]
    pub fn tss_row(&self, context: u32) -> usize {
        (tss_of(context) & self.tss_mask) as usize
    }

    /// The *row key* a context resolves to: the (masked) full context for
    /// expanded sites, the site-only key otherwise — the key space
    /// decisions and inference operate on.
    #[inline]
    pub fn row_key(&self, context: u32, site_expanded: bool) -> u32 {
        let site = (site_of(context) & self.site_mask) as u32;
        if site_expanded {
            (site << 16) | (tss_of(context) & self.tss_mask) as u32
        } else {
            site << 16
        }
    }

    /// Memory footprint per §7.5: one base block plus one block per
    /// conflict (`4 MB * (1 + N)` at full scale).
    pub fn memory_bytes(&self, expansions: usize) -> u64 {
        let cell = std::mem::size_of::<u32>();
        let base = self.site_rows * AGE_COLUMNS * cell;
        let per_block = self.tss_rows * AGE_COLUMNS * cell;
        (base + expansions * per_block) as u64
    }
}

impl Default for TableGeometry {
    fn default() -> Self {
        Self::full_scale()
    }
}

/// The OLD-table backend contract the profiler data plane is written
/// against.
///
/// Both backends must agree on the *observable* state: identical event
/// streams (single-threaded) produce identical histograms, touched rows,
/// and memory accounting — the differential property test in
/// `crates/core/tests/prop_table_diff.rs` holds them to it.
///
/// All methods are safepoint-or-single-thread semantics at the trait
/// level; [`crate::SharedOldTable`] additionally exposes `&self` inherent
/// methods for the genuinely concurrent paths (racy age-0 increments from
/// mutator threads), which the trait impl delegates to.
pub trait LifetimeTable {
    /// The table's §7.5 shape.
    fn geometry(&self) -> &TableGeometry;

    /// One object allocated through `context`: age-0 increment.
    fn record_allocation(&mut self, context: u32);

    /// `n` objects allocated through `context`: the batched age-0 ingest
    /// behind the safepoint flush of the per-thread delta buffers. Must
    /// be observationally identical to `n` calls of
    /// [`LifetimeTable::record_allocation`]; backends override it to pay
    /// the row lookup (and any lock) once instead of `n` times.
    fn record_allocations(&mut self, context: u32, n: u32) {
        for _ in 0..n {
            self.record_allocation(context);
        }
    }

    /// One object allocated through `context` survived at `age`, moving
    /// to `age + 1` (both clamped to the last column).
    fn record_survival(&mut self, context: u32, age: u8);

    /// Grows the table with a per-stack-state block for a conflicted
    /// site (§7.5). Idempotent. Counts already aggregated in the site's
    /// base row stay there until the next clear.
    fn expand_site(&mut self, site: u16);

    /// True if `site` has its own per-stack-state expansion block.
    fn is_expanded(&self, site: u16) -> bool;

    /// Number of expansion blocks (== resolved-or-pending conflicts).
    fn expansions(&self) -> usize;

    /// The (masked) site rows holding expansion blocks, in ascending
    /// order — what the decision snapshot builder needs to reproduce the
    /// table's row keying.
    fn expanded_sites(&self) -> Vec<u16>;

    /// The age histogram of a context's row.
    fn histogram(&self, context: u32) -> [u32; AGE_COLUMNS];

    /// Row keys with recorded counts since the last clear, in **ascending
    /// order** — the ordering contract is what makes inference and
    /// conflict processing backend-independent.
    fn touched_rows(&self) -> Vec<u32>;

    /// Sum of all age-0 cells (the §7.6 reconciliation's observed side).
    fn age0_total(&self) -> u64;

    /// Resets all counts per the module-level contract: histograms read
    /// zero, touched rows empty, expansion blocks retained.
    fn clear_counts(&mut self);

    /// Pipeline stage 2: merges (and drains) every GC worker's private
    /// table into this one at a safepoint. The default is the
    /// deterministic sorted merge
    /// ([`crate::old_table::merge_worker_tables`]); backends with internal
    /// partitioning (the sharded table) may fan the apply out over
    /// `parallelism` workers, but must produce bit-identical end state.
    fn merge_workers(
        &mut self,
        workers: &mut [crate::old_table::WorkerTable],
        parallelism: usize,
    ) -> crate::old_table::MergeSummary {
        let _ = parallelism;
        crate::old_table::merge_worker_tables(workers, self)
    }

    /// Pipeline stage 3: the §4 inference pass over every touched row.
    /// The default walks the sorted `touched_rows` sequentially
    /// ([`crate::inference::infer`]); partitioned backends may classify
    /// shards in parallel, but the outcome must be identical.
    fn run_inference_pass(&self, parallelism: usize) -> crate::inference::InferenceOutcome {
        let _ = parallelism;
        crate::inference::infer(self)
    }

    /// Shard count when the backend partitions its rows (`None` for the
    /// unsharded backends).
    fn table_shards(&self) -> Option<usize> {
        None
    }

    /// Cumulative contended shard-lock acquisitions (0 for lock-free
    /// backends) — the `shard_lock_wait` telemetry counter's source.
    fn shard_lock_waits(&self) -> u64 {
        0
    }

    /// Records the most recent safepoint merge applied per shard, in
    /// shard-index order (`None` for unsharded backends) — feeds the
    /// `shard_merge` trace event.
    fn last_shard_merge_counts(&self) -> Option<Vec<u64>> {
        None
    }

    /// The row key a context resolves to under the current expansion
    /// state.
    #[inline]
    fn row_key(&self, context: u32) -> u32 {
        self.geometry().row_key(context, self.is_expanded(site_of(context)))
    }

    /// Memory footprint per §7.5.
    fn memory_bytes(&self) -> u64 {
        self.geometry().memory_bytes(self.expansions())
    }

    /// Whether `context`'s site half is a plausible (assigned) profile
    /// id. Rows are dense, so this is a bound check against the id space
    /// the JIT has handed out.
    fn context_known(&self, context: u32, max_profile_id: u16) -> bool {
        let site = site_of(context);
        site != 0 && site <= max_profile_id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::pack;

    #[test]
    fn full_scale_masks_are_identity() {
        let g = TableGeometry::full_scale();
        assert_eq!(g.site_row(pack(0xABCD, 7)), 0xABCD);
        assert_eq!(g.tss_row(pack(3, 0xFFFE)), 0xFFFE);
        assert_eq!(g.row_key(pack(9, 42), false), 9 << 16);
        assert_eq!(g.row_key(pack(9, 42), true), pack(9, 42));
    }

    #[test]
    fn scaled_geometry_aliases_by_masking() {
        let g = TableGeometry::new(64, 16);
        assert_eq!(g.site_row(pack(69, 0)), 5, "69 & 63");
        assert_eq!(g.tss_row(pack(0, 19)), 3, "19 & 15");
        assert_eq!(g.row_key(pack(69, 19), true), (5 << 16) | 3);
    }

    #[test]
    fn memory_accounting_matches_the_paper() {
        let g = TableGeometry::full_scale();
        assert_eq!(g.memory_bytes(0), 4 * 1024 * 1024);
        assert_eq!(g.memory_bytes(3), 4 * 4 * 1024 * 1024);
        let small = TableGeometry::new(64, 16);
        assert_eq!(small.memory_bytes(1), (64 * 16 * 4 + 16 * 16 * 4) as u64);
    }
}
