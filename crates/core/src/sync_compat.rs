//! Synchronization primitives, switchable to `loom` for model checking.
//!
//! The safepoint merge protocol in [`crate::concurrent`] is written
//! against this module instead of `std` directly so the `loom` CI job can
//! explore its interleavings: building with `--features loom` swaps every
//! atomic, `UnsafeCell`, and `yield_now` for the model checker's
//! instrumented equivalents (the vendored `loom` is an API-compatible
//! stress-testing subset — see `vendor/loom`). Production builds compile
//! straight to `std` with zero overhead.

#[cfg(feature = "loom")]
pub use loom::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
#[cfg(feature = "loom")]
pub use loom::thread::yield_now;

#[cfg(not(feature = "loom"))]
pub use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
#[cfg(not(feature = "loom"))]
pub use std::thread::yield_now;

/// An `UnsafeCell` with loom's closure-based access API.
///
/// Loom's `UnsafeCell` tracks reads/writes to detect data races during
/// model checking; the `std` flavor below erases to a plain cell so the
/// production path pays nothing for the instrumentation seam.
#[cfg(feature = "loom")]
pub use loom::cell::UnsafeCell;

#[cfg(not(feature = "loom"))]
#[derive(Debug, Default)]
pub struct UnsafeCell<T>(std::cell::UnsafeCell<T>);

#[cfg(not(feature = "loom"))]
impl<T> UnsafeCell<T> {
    /// Wraps `value`.
    pub fn new(value: T) -> Self {
        UnsafeCell(std::cell::UnsafeCell::new(value))
    }

    /// Immutable access through a raw pointer (loom API shape).
    ///
    /// # Safety contract (checked by loom under `--features loom`)
    ///
    /// The caller must guarantee no concurrent mutable access.
    pub fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
        f(self.0.get())
    }

    /// Mutable access through a raw pointer (loom API shape).
    ///
    /// # Safety contract (checked by loom under `--features loom`)
    ///
    /// The caller must guarantee exclusive access.
    pub fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
        f(self.0.get())
    }
}
