//! # ROLP — Runtime Object Lifetime Profiler
//!
//! A from-scratch Rust reproduction of *Runtime Object Lifetime Profiler
//! for Latency Sensitive Big Data Applications* (EuroSys '19). ROLP
//! profiles allocation contexts online — allocation-site id plus an
//! incrementally maintained thread-stack-state hash, stored in the spare
//! 32 header bits of every object — infers per-context object lifetimes
//! from age histograms, and feeds the estimates to a pretenuring collector
//! (NG2C) so objects with similar lifetimes are co-located and die
//! together, cutting GC tail latency at negligible throughput and memory
//! cost.
//!
//! Module map (paper section in parentheses):
//!
//! - [`context`] — the 32-bit allocation context (§3.1).
//! - [`geometry`] — the shared §7.5 table shape and the [`LifetimeTable`]
//!   backend trait the profiler data plane is written against.
//! - [`old_table`] — the Object Lifetime Distribution table (§3.3, §7.5,
//!   §7.6), sequential/exact backend.
//! - [`shared_table`] — its concurrent twin with relaxed-atomic age-0
//!   increments (§7.6's unsynchronized fast path, for real).
//! - [`sharded_table`] — the horizontally partitioned backend: N locked
//!   shards, parallel merge/inference fan-out, deterministic cross-shard
//!   reduction.
//! - [`fleet`] — multi-runtime profile aggregation: confidence-weighted
//!   consensus over `rolp-profile-v1` exports.
//! - [`concurrent`] — mutator/GC-worker thread harness, safepoint merge
//!   protocol, measured-loss reconciliation (§5.2, §7.6).
//! - [`inference`] — lifetime inference and conflict detection (§4).
//! - [`conflicts`] — the call-site-enabling conflict resolver (§5).
//! - [`filters`] — package filters (§7.3).
//! - [`survivor`] — survivor-tracking shutdown (§7.4).
//! - [`governor`] — the overhead governor: graceful degradation when a
//!   profiling budget blows (Full → Reduced → SitesOnly → Off).
//! - [`profiler`] — the assembled profiler (§3, §6, §7).
//! - [`leak`] — the leak-detection use-case (§2.2).
//! - [`runtime`] — the five evaluated runtime configurations (§8).
//!
//! ## Quickstart
//!
//! ```
//! use rolp::runtime::{CollectorKind, JvmRuntime, RuntimeConfig};
//! use rolp_heap::HeapConfig;
//! use rolp_vm::{ProgramBuilder, ThreadId};
//!
//! // Declare a guest program: one hot method with one allocation site.
//! let mut b = ProgramBuilder::new();
//! let main = b.method("app.Main::run", 100, false);
//! let worker = b.method("app.Worker::step", 80, false);
//! let call = b.call_site(main, worker);
//! let site = b.alloc_site(worker, 1);
//! let program = b.build();
//!
//! // Assemble the ROLP + NG2C runtime.
//! let config = RuntimeConfig {
//!     collector: CollectorKind::RolpNg2c,
//!     heap: HeapConfig { region_bytes: 4096, max_heap_bytes: 1 << 20 },
//!     ..Default::default()
//! };
//! let mut rt = JvmRuntime::new(config, program);
//! let class = rt.vm.env.heap.classes.register("app.Item");
//!
//! // Run guest code: allocate through the profiled site.
//! for _ in 0..1_000 {
//!     let mut ctx = rt.ctx(ThreadId(0));
//!     ctx.call(call, |ctx| {
//!         let h = ctx.alloc(site, class, 0, 4);
//!         ctx.release(h);
//!         ctx.complete_ops(1);
//!     });
//! }
//! let report = rt.report();
//! assert!(report.ops == 1_000);
//! ```

pub mod concurrent;
pub mod conflicts;
pub mod context;
pub mod filters;
pub mod fleet;
pub mod geometry;
pub mod governor;
pub mod inference;
pub mod leak;
pub mod offline;
pub mod old_table;
pub mod profiler;
pub mod report;
pub mod runtime;
pub mod sharded_table;
pub mod shared_table;
pub mod survivor;
pub mod sync_compat;

pub use concurrent::PublishSlot;
pub use conflicts::{
    worst_case_resolution_time_ms, ConflictConfig, ConflictResolver, ConflictStats,
};
pub use filters::PackageFilters;
pub use fleet::{FleetAggregator, FleetConsensus, SubmissionOutcome};
pub use geometry::{LifetimeTable, TableGeometry, FULL_SCALE_ROWS};
pub use governor::{
    CostSource, EpochCost, Governor, GovernorConfig, GovernorState, GovernorTransition,
};
pub use inference::{classify_row, find_peaks, infer, InferenceOutcome, RowVerdict};
pub use leak::{LeakReport, LeakSuspect};
pub use offline::{
    program_fingerprint, CallSiteEntry, DecisionProfile, ProfileEntry, ProfileParseError,
    ProfileValidation, ResolvedProfile, PROFILE_FORMAT_V1,
};
pub use old_table::{merge_worker_tables, MergeSummary, OldTable, WorkerTable, AGE_COLUMNS};
pub use profiler::{
    backend_for, backend_for_threads, ProfilingLevel, RolpConfig, RolpProfiler, RolpStats,
    TableBackend,
};
pub use report::{render_decisions, render_summary, render_telemetry, stats_json};
pub use runtime::{CollectorKind, JvmRuntime, RunReport, RuntimeConfig};
pub use sharded_table::ShardedOldTable;
pub use shared_table::SharedOldTable;
pub use survivor::SurvivorTracking;
