//! Object-lifetime inference (paper §4).
//!
//! Every 16 GC cycles (the maximum object age in HotSpot), ROLP analyzes
//! each allocation context's age histogram. The curves are typically
//! triangular (Jones & Ryder's demographics): the peak is the age at which
//! most objects die, which becomes the context's estimated lifetime and
//! the target generation for pretenuring. A curve with *multiple* peaks is
//! an allocation-context conflict — one allocation site reached through
//! call paths with different lifetimes — handed to the conflict-resolution
//! machinery of §5.

use crate::geometry::LifetimeTable;
use crate::old_table::AGE_COLUMNS;

/// Minimum samples in a row before inference trusts it.
pub const MIN_SAMPLES: u32 = 32;
/// A local maximum must hold at least this fraction of the row total to
/// count as a peak (absolute noise floor).
pub const PEAK_FLOOR_FRACTION: f64 = 0.05;
/// ... and at least this fraction of the tallest column (relative floor),
/// so a dominant die-young spike cannot mask a genuine secondary cohort.
pub const PEAK_RELATIVE_FRACTION: f64 = 0.20;
/// Valley-to-peak ratio: two maxima are distinct peaks only if the curve
/// dips below this fraction of the smaller peak between them.
pub const VALLEY_FRACTION: f64 = 0.5;
/// Quantile of the age mass used as the lifetime estimate of a unimodal
/// row. The paper reads the triangle's maximum; for sharp triangles this
/// quantile lands on (or one past) that maximum, and it remains defined
/// for the decaying-plateau curves produced by uniformly-born epochal
/// cohorts (objects born throughout a memtable window all dying at its
/// flush), where the raw argmax degenerates to age 0. Overestimates are
/// corrected by the paper's §6 fragmentation demotion.
pub const DECISION_QUANTILE: f64 = 0.85;

/// The verdict on one row of the OLD table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RowVerdict {
    /// Not enough samples; no decision.
    Insufficient,
    /// Unimodal: the estimated lifetime (modal death age, 0..=15).
    Lifetime(u8),
    /// Multimodal: an allocation-context conflict; the peak ages found.
    Conflict(Vec<u8>),
}

/// Finds the peaks of an age histogram.
///
/// A peak is a strict-or-plateau local maximum at or above the noise
/// floor; adjacent maxima separated by a shallow valley merge into one
/// peak (triangular curves are noisy in practice).
pub fn find_peaks(hist: &[u32; AGE_COLUMNS]) -> Vec<u8> {
    let total: u64 = hist.iter().map(|&c| c as u64).sum();
    if total == 0 {
        return Vec::new();
    }
    let max = *hist.iter().max().expect("non-empty");
    let abs_floor = (total as f64 * PEAK_FLOOR_FRACTION).ceil() as u64;
    let rel_floor = (max as f64 * PEAK_RELATIVE_FRACTION).ceil() as u64;
    let floor = abs_floor.max(rel_floor).min(max as u64).max(1);

    // Candidate local maxima.
    let mut candidates: Vec<usize> = Vec::new();
    for i in 0..AGE_COLUMNS {
        let c = hist[i] as u64;
        if c < floor {
            continue;
        }
        let left = if i == 0 { 0 } else { hist[i - 1] };
        let right = if i == AGE_COLUMNS - 1 { 0 } else { hist[i + 1] };
        if hist[i] >= left
            && hist[i] >= right
            && (hist[i] > left || hist[i] > right || (i == 0 && right == 0) || hist[i] == max)
        {
            // Plateau handling: take only the first column of a plateau.
            if i > 0 && hist[i] == left && candidates.last() == Some(&(i - 1)) {
                continue;
            }
            candidates.push(i);
        }
    }

    // Merge candidates not separated by a deep valley.
    let mut peaks: Vec<usize> = Vec::new();
    for &c in &candidates {
        match peaks.last() {
            None => peaks.push(c),
            Some(&prev) => {
                let valley = (prev + 1..c).map(|i| hist[i]).min().unwrap_or(hist[c]);
                let smaller = hist[prev].min(hist[c]);
                if (valley as f64) < smaller as f64 * VALLEY_FRACTION {
                    peaks.push(c);
                } else if hist[c] > hist[prev] {
                    // Same mound; keep the taller side.
                    *peaks.last_mut().expect("non-empty") = c;
                }
            }
        }
    }
    peaks.into_iter().map(|i| i as u8).collect()
}

/// The [`DECISION_QUANTILE`] age of a histogram: the smallest age at or
/// below which that fraction of the mass lies.
pub fn quantile_age(hist: &[u32; AGE_COLUMNS], q: f64) -> u8 {
    let total: u64 = hist.iter().map(|&c| c as u64).sum();
    if total == 0 {
        return 0;
    }
    let target = (total as f64 * q).ceil() as u64;
    let mut cum = 0u64;
    for (i, &c) in hist.iter().enumerate() {
        cum += c as u64;
        if cum >= target {
            return i as u8;
        }
    }
    (AGE_COLUMNS - 1) as u8
}

/// Classifies one row.
pub fn classify_row(hist: &[u32; AGE_COLUMNS]) -> RowVerdict {
    let total: u64 = hist.iter().map(|&c| c as u64).sum();
    if total < MIN_SAMPLES as u64 {
        return RowVerdict::Insufficient;
    }
    let peaks = find_peaks(hist);
    match peaks.len() {
        0 => RowVerdict::Insufficient,
        1 => RowVerdict::Lifetime(quantile_age(hist, DECISION_QUANTILE).max(peaks[0])),
        _ => RowVerdict::Conflict(peaks),
    }
}

/// The outcome of a full inference pass over the OLD table.
#[derive(Debug, Default, Clone)]
pub struct InferenceOutcome {
    /// Per row key: the estimated lifetime (target generation).
    pub decisions: Vec<(u32, u8)>,
    /// Sites whose (still unexpanded) row was multimodal: freshly detected
    /// conflicts.
    pub new_conflicts: Vec<u16>,
    /// Expanded sites that still show a multimodal sub-row: unresolved
    /// conflicts.
    pub unresolved_conflicts: Vec<u16>,
    /// Rows examined.
    pub rows_examined: usize,
}

/// Runs inference over every touched row of the table (the §4 periodic
/// pass). Does not clear the table — the caller does, after acting on the
/// outcome. Written once against [`LifetimeTable`]; the trait's sorted
/// `touched_rows` contract makes the outcome backend-independent.
pub fn infer<T: LifetimeTable + ?Sized>(table: &T) -> InferenceOutcome {
    let mut out = InferenceOutcome::default();
    for key in table.touched_rows() {
        out.rows_examined += 1;
        let hist = table.histogram(key);
        let site = crate::context::site_of(key);
        match classify_row(&hist) {
            RowVerdict::Insufficient => {}
            RowVerdict::Lifetime(age) => out.decisions.push((key, age)),
            RowVerdict::Conflict(peaks) => {
                if table.is_expanded(site) {
                    if !out.unresolved_conflicts.contains(&site) {
                        out.unresolved_conflicts.push(site);
                    }
                } else if !out.new_conflicts.contains(&site) {
                    out.new_conflicts.push(site);
                }
                // Even while conflicted, pretenure by the *last* (oldest)
                // peak is unsafe; the paper leaves such contexts in the
                // young generation until resolved, so no decision is
                // emitted. The peaks are kept for diagnostics.
                let _ = peaks;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::pack;
    use crate::old_table::OldTable;

    fn hist(pairs: &[(usize, u32)]) -> [u32; AGE_COLUMNS] {
        let mut h = [0u32; AGE_COLUMNS];
        for &(i, c) in pairs {
            h[i] = c;
        }
        h
    }

    #[test]
    fn triangular_curve_yields_near_its_peak() {
        // Most objects die at age 3; the decision quantile lands on the
        // triangle's right shoulder.
        let h = hist(&[(0, 5), (1, 20), (2, 60), (3, 100), (4, 40), (5, 10)]);
        match classify_row(&h) {
            RowVerdict::Lifetime(age) => assert!((3..=4).contains(&age), "got {age}"),
            v => panic!("expected lifetime, got {v:?}"),
        }
    }

    #[test]
    fn decaying_plateau_estimates_the_tail_not_zero() {
        // Uniformly-born epochal cohort: flat-ish death ages 0..5 with the
        // transient spike at 0. The argmax is 0, but pretenuring must use
        // the cohort's real extent.
        let h = hist(&[(0, 30), (1, 12), (2, 11), (3, 11), (4, 10), (5, 9)]);
        match classify_row(&h) {
            RowVerdict::Lifetime(age) => assert!((4..=5).contains(&age), "got {age}"),
            v => panic!("expected lifetime, got {v:?}"),
        }
    }

    #[test]
    fn quantile_age_basics() {
        let h = hist(&[(0, 90), (5, 10)]);
        assert_eq!(quantile_age(&h, 0.85), 0);
        assert_eq!(quantile_age(&h, 0.95), 5);
        assert_eq!(quantile_age(&hist(&[]), 0.85), 0);
    }

    #[test]
    fn die_young_curve_yields_zero() {
        let h = hist(&[(0, 500), (1, 30), (2, 4)]);
        assert_eq!(classify_row(&h), RowVerdict::Lifetime(0));
    }

    #[test]
    fn pure_transient_row_stays_young_even_with_noise() {
        let h = hist(&[(0, 10_000), (1, 300)]);
        assert_eq!(classify_row(&h), RowVerdict::Lifetime(0));
    }

    #[test]
    fn immortal_curve_yields_fifteen() {
        let h = hist(&[(14, 10), (15, 900)]);
        assert_eq!(classify_row(&h), RowVerdict::Lifetime(15));
    }

    #[test]
    fn bimodal_curve_is_a_conflict() {
        // A factory allocating both request buffers (die at 0) and cached
        // entries (die at ~12).
        let h = hist(&[(0, 400), (1, 30), (11, 50), (12, 300), (13, 40)]);
        match classify_row(&h) {
            RowVerdict::Conflict(peaks) => assert_eq!(peaks, vec![0, 12]),
            v => panic!("expected conflict, got {v:?}"),
        }
    }

    #[test]
    fn shallow_noise_does_not_split_a_peak() {
        // One mound with a tiny dip — not a conflict.
        let h = hist(&[(2, 100), (3, 95), (4, 98), (5, 40)]);
        assert!(matches!(classify_row(&h), RowVerdict::Lifetime(_)));
    }

    #[test]
    fn sparse_rows_are_insufficient() {
        let h = hist(&[(0, 3), (5, 2)]);
        assert_eq!(classify_row(&h), RowVerdict::Insufficient);
    }

    #[test]
    fn infer_separates_new_and_unresolved_conflicts() {
        let mut t = OldTable::new();
        // Site 1: clean long-lived context.
        for _ in 0..100 {
            t.record_allocation(pack(1, 0));
        }
        for _ in 0..90 {
            t.record_survival(pack(1, 0), 0);
        }
        // Site 2: bimodal (conflict), unexpanded.
        for _ in 0..200 {
            t.record_allocation(pack(2, 0));
        }
        for _ in 0..80 {
            t.record_survival(pack(2, 0), 0);
            t.record_survival(pack(2, 0), 1);
            t.record_survival(pack(2, 0), 2);
        }
        // Now site 2 row: age0=120, age3=80 -> two peaks.
        let out = infer(&t);
        assert!(out.decisions.iter().any(|&(k, age)| k == pack(1, 0) && age == 1));
        assert_eq!(out.new_conflicts, vec![2]);
        assert!(out.unresolved_conflicts.is_empty());

        // After expansion, a still-bimodal sub-row is "unresolved".
        t.clear_counts();
        t.expand_site(2);
        for _ in 0..200 {
            t.record_allocation(pack(2, 7));
        }
        for _ in 0..80 {
            t.record_survival(pack(2, 7), 0);
            t.record_survival(pack(2, 7), 1);
            t.record_survival(pack(2, 7), 2);
        }
        let out2 = infer(&t);
        assert_eq!(out2.unresolved_conflicts, vec![2]);
        assert!(out2.new_conflicts.is_empty());
    }
}
