//! Offline decision profiles (POLM2-style warm start).
//!
//! The paper's §10 notes that NG2C (annotations), POLM2 (offline
//! profiling), and ROLP (online profiling) share the same JVM and
//! collector and can be combined. This module is that combination point:
//! a [`DecisionProfile`] captures ROLP's learned state in a
//! run-independent form (keyed by source location, not by the dynamic
//! 16-bit profile ids) so a later run can start pretenuring *immediately*,
//! skipping the warmup the paper measures in Fig. 10 — exactly what an
//! offline profile buys.
//!
//! # The `rolp-profile-v1` on-disk format
//!
//! Line-oriented text, one keyword per line:
//!
//! ```text
//! rolp-profile-v1
//! fingerprint 0123456789abcdef
//! epochs 12
//! geometry 1024 64
//! entries 2
//! decision pkg.Class::method@bci <gen> <confidence>
//! callsite pkg.Caller::m->pkg.Callee::n
//! ```
//!
//! - `fingerprint` — FNV-1a 64 over the program shape (method names,
//!   call-site edges, allocation-site locations). A loader checks it
//!   against [`program_fingerprint`] of the running program; a mismatch
//!   means the profile came from a different program version and entries
//!   are applied only where their location still resolves (partially
//!   applied, counted — see [`ProfileValidation`]).
//! - `epochs` — inference epochs the exporting run completed (how much
//!   evidence backs the profile).
//! - `geometry` — the exporting run's OLD-table shape
//!   (`site_rows tss_rows`), recorded for diagnostics.
//! - `entries` — declared decision count; a truncated file fails to parse
//!   instead of silently importing a prefix.
//! - `decision` — one pretenuring decision with a confidence in
//!   `0..=100`, the starting weight for the importing run's
//!   confidence-weighted decay (see `RolpProfiler`).
//! - `callsite` — one frozen distinguishing call site (§5), keyed by
//!   caller and callee method names so the importing run can re-enable
//!   its conflict separation from epoch 0.
//!
//! The PR-1-era headerless format (`pkg.Class::method@bci <gen>` lines)
//! still parses: entries get confidence 100 and no fingerprint, so only
//! per-entry location validation applies.
//!
//! Decisions keyed by a conflicted context (nonzero thread stack state)
//! are not exported — stack-state hashes are not stable across runs (the
//! JIT assigns call-site identifiers randomly); the online profiler
//! re-derives them quickly since the distinguishing call sites *are*
//! exported and re-frozen on import.

use std::collections::HashMap;
use std::fmt;
use std::str::FromStr;

use rolp_vm::{AllocSiteId, CallSiteId, JitState, Program};

use crate::context::{site_of, tss_of};
use crate::profiler::RolpProfiler;

/// The current on-disk format version line.
pub const PROFILE_FORMAT_V1: &str = "rolp-profile-v1";

/// Confidence assigned to entries from headerless (legacy) profiles.
pub const DEFAULT_CONFIDENCE: u8 = 100;

/// One exported decision: a source location, its target generation, and
/// the confidence (0..=100) the importing run's blend decay starts from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileEntry {
    /// Method name, e.g. `"cassandra.db.Memtable::insert"`.
    pub method: String,
    /// Bytecode index of the allocation site within the method.
    pub bci: u32,
    /// Target generation (0..=15).
    pub generation: u8,
    /// Confidence weight (0..=100).
    pub confidence: u8,
}

/// One frozen distinguishing call site (§5), keyed by method names.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct CallSiteEntry {
    /// Caller method name.
    pub caller: String,
    /// Callee method name; `None` for virtual call sites with no static
    /// target (serialized as `?`).
    pub callee: Option<String>,
}

/// A run-independent capture of ROLP's learned state: pretenuring
/// decisions, frozen conflict-resolver call sites, and the exporting
/// run's provenance (fingerprint, epoch count, OLD-table geometry).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DecisionProfile {
    /// Program-shape fingerprint of the exporting run (`None` for legacy
    /// headerless profiles).
    pub fingerprint: Option<u64>,
    /// Inference epochs the exporting run completed.
    pub epochs: u64,
    /// OLD-table geometry `(site_rows, tss_rows)` of the exporting run.
    pub geometry: Option<(usize, usize)>,
    /// Entries, sorted by (method, bci) for stable output.
    pub entries: Vec<ProfileEntry>,
    /// Frozen distinguishing call sites, sorted by (caller, callee).
    pub call_sites: Vec<CallSiteEntry>,
}

/// Why parsing a profile failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileParseError {
    /// 1-based line number.
    pub line: usize,
    /// What was wrong.
    pub reason: String,
}

impl fmt::Display for ProfileParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for ProfileParseError {}

/// FNV-1a 64 over the program shape: every method name, every call-site
/// edge, every allocation-site location. Two program versions that moved,
/// added, or removed any of those fingerprint differently.
pub fn program_fingerprint(program: &Program) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut mix = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
        // Field separator so concatenations can't collide.
        h ^= 0xff;
        h = h.wrapping_mul(PRIME);
    };
    for m in program.methods() {
        mix(b"m");
        mix(program.method(m).name.as_bytes());
    }
    for cs in program.call_sites() {
        let decl = program.call_site(cs);
        mix(b"c");
        mix(program.method(decl.caller).name.as_bytes());
        match decl.callee {
            Some(callee) => mix(program.method(callee).name.as_bytes()),
            None => mix(b"?"),
        }
    }
    for s in program.alloc_sites() {
        let decl = program.alloc_site(s);
        mix(b"a");
        mix(program.method(decl.method).name.as_bytes());
        mix(&decl.bci.to_le_bytes());
    }
    h
}

/// What survived load-time validation of a profile against a program.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProfileValidation {
    /// The profile carried a fingerprint (v1 profiles do; legacy ones
    /// don't, leaving only per-entry validation).
    pub fingerprint_checked: bool,
    /// The fingerprint matched the running program (meaningful only when
    /// `fingerprint_checked`).
    pub fingerprint_matched: bool,
    /// Decision entries in the profile.
    pub entries_total: usize,
    /// Entries whose location resolved to a live allocation site.
    pub entries_applied: usize,
    /// Entries rejected (no such method/bci in this program).
    pub entries_rejected: usize,
    /// Frozen call sites in the profile.
    pub call_sites_total: usize,
    /// Call sites whose caller→callee edge resolved.
    pub call_sites_applied: usize,
    /// Call sites rejected (edge absent from this program).
    pub call_sites_rejected: usize,
}

impl ProfileValidation {
    /// True when every entry and call site resolved (and the fingerprint,
    /// if present, matched).
    pub fn fully_applied(&self) -> bool {
        self.entries_rejected == 0
            && self.call_sites_rejected == 0
            && (!self.fingerprint_checked || self.fingerprint_matched)
    }

    /// True when nothing in the profile applies to this program — the
    /// partial-apply path degenerated to a rejection.
    pub fn nothing_applied(&self) -> bool {
        self.entries_applied == 0
            && self.call_sites_applied == 0
            && (self.entries_total > 0 || self.call_sites_total > 0)
    }
}

/// A profile resolved against a concrete program.
#[derive(Debug, Clone, Default)]
pub struct ResolvedProfile {
    /// Allocation-site id → (target generation, confidence).
    pub decisions: HashMap<AllocSiteId, (u8, u8)>,
    /// Resolved frozen distinguishing call sites.
    pub call_sites: Vec<CallSiteId>,
    /// What was applied and what was rejected.
    pub validation: ProfileValidation,
}

impl DecisionProfile {
    /// Exports the profiler's current learned state. Only decisions with
    /// a zero thread-stack-state key are portable (see module docs); the
    /// frozen distinguishing call sites that separate the others are
    /// exported by name instead.
    pub fn from_profiler<T: crate::geometry::LifetimeTable>(
        profiler: &RolpProfiler<T>,
        program: &Program,
        jit: &JitState,
    ) -> Self {
        let _ = jit;
        let mut entries = Vec::new();
        for (&ctx, &generation) in profiler.decisions() {
            if tss_of(ctx) != 0 {
                continue;
            }
            let Some(&site) = profiler.pid_to_site.get(&site_of(ctx)) else {
                continue;
            };
            let decl = program.alloc_site(site);
            entries.push(ProfileEntry {
                method: program.method(decl.method).name.clone(),
                bci: decl.bci,
                generation,
                confidence: profiler.confidence_of(ctx),
            });
        }
        entries.sort_by(|a, b| (&a.method, a.bci).cmp(&(&b.method, b.bci)));

        let mut call_sites: Vec<CallSiteEntry> = profiler
            .frozen_call_sites()
            .iter()
            .map(|&cs| {
                let decl = program.call_site(cs);
                CallSiteEntry {
                    caller: program.method(decl.caller).name.clone(),
                    callee: decl.callee.map(|m| program.method(m).name.clone()),
                }
            })
            .collect();
        call_sites.sort();
        call_sites.dedup();

        let geometry = {
            let g = profiler.old.geometry();
            Some((g.site_rows(), g.tss_rows()))
        };
        DecisionProfile {
            fingerprint: Some(program_fingerprint(program)),
            epochs: profiler.inferences(),
            geometry,
            entries,
            call_sites,
        }
    }

    /// Resolves the profile against a program with full validation:
    /// fingerprint check, per-entry location matching, and call-site edge
    /// matching. Entries that don't resolve are counted, never applied —
    /// a profile from a different program partially applies (or applies
    /// nothing) instead of silently mis-pretenuring.
    pub fn resolve_validated(&self, program: &Program) -> ResolvedProfile {
        let mut v = ProfileValidation {
            fingerprint_checked: self.fingerprint.is_some(),
            fingerprint_matched: self.fingerprint == Some(program_fingerprint(program)),
            entries_total: self.entries.len(),
            call_sites_total: self.call_sites.len(),
            ..Default::default()
        };

        let by_loc: HashMap<(&str, u32), (u8, u8)> = self
            .entries
            .iter()
            .map(|e| ((e.method.as_str(), e.bci), (e.generation, e.confidence)))
            .collect();
        let mut decisions = HashMap::new();
        for site in program.alloc_sites() {
            let decl = program.alloc_site(site);
            let name = program.method(decl.method).name.as_str();
            if let Some(&(gen, conf)) = by_loc.get(&(name, decl.bci)) {
                decisions.insert(site, (gen, conf));
            }
        }
        // Count per *entry* (duplicates in the program apply one entry to
        // several sites; an entry is applied if any site matched it).
        let applied_locs: std::collections::HashSet<(&str, u32)> = decisions
            .keys()
            .map(|&site| {
                let decl = program.alloc_site(site);
                (program.method(decl.method).name.as_str(), decl.bci)
            })
            .collect();
        for e in &self.entries {
            if applied_locs.contains(&(e.method.as_str(), e.bci)) {
                v.entries_applied += 1;
            } else {
                v.entries_rejected += 1;
            }
        }

        let mut by_edge: HashMap<(&str, Option<&str>), Vec<CallSiteId>> = HashMap::new();
        for cs in program.call_sites() {
            let decl = program.call_site(cs);
            let caller = program.method(decl.caller).name.as_str();
            let callee = decl.callee.map(|m| program.method(m).name.as_str());
            by_edge.entry((caller, callee)).or_default().push(cs);
        }
        let mut call_sites = Vec::new();
        for e in &self.call_sites {
            match by_edge.get(&(e.caller.as_str(), e.callee.as_deref())) {
                Some(ids) => {
                    call_sites.extend_from_slice(ids);
                    v.call_sites_applied += 1;
                }
                None => v.call_sites_rejected += 1,
            }
        }
        call_sites.sort();
        call_sites.dedup();

        ResolvedProfile { decisions, call_sites, validation: v }
    }

    /// Resolves the profile against a program: allocation-site id → target
    /// generation, for sites whose location matches an entry. The
    /// validation-free view of [`DecisionProfile::resolve_validated`].
    pub fn resolve(&self, program: &Program) -> HashMap<AllocSiteId, u8> {
        self.resolve_validated(program)
            .decisions
            .into_iter()
            .map(|(site, (gen, _conf))| (site, gen))
            .collect()
    }

    /// Number of decision entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the profile has no decision entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl fmt::Display for DecisionProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{PROFILE_FORMAT_V1}")?;
        if let Some(fp) = self.fingerprint {
            writeln!(f, "fingerprint {fp:016x}")?;
        }
        writeln!(f, "epochs {}", self.epochs)?;
        if let Some((site_rows, tss_rows)) = self.geometry {
            writeln!(f, "geometry {site_rows} {tss_rows}")?;
        }
        writeln!(f, "entries {}", self.entries.len())?;
        for e in &self.entries {
            writeln!(f, "decision {}@{} {} {}", e.method, e.bci, e.generation, e.confidence)?;
        }
        for c in &self.call_sites {
            writeln!(f, "callsite {}->{}", c.caller, c.callee.as_deref().unwrap_or("?"))?;
        }
        Ok(())
    }
}

fn parse_legacy(s: &str) -> Result<DecisionProfile, ProfileParseError> {
    let mut entries = Vec::new();
    for (i, raw) in s.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |reason: &str| ProfileParseError { line: i + 1, reason: reason.into() };
        let (loc, gen) = line.rsplit_once(' ').ok_or_else(|| err("missing generation"))?;
        let (method, bci) = loc.rsplit_once('@').ok_or_else(|| err("missing @bci"))?;
        let bci: u32 = bci.parse().map_err(|_| err("bci is not a number"))?;
        let generation: u8 = gen.trim().parse().map_err(|_| err("generation is not a number"))?;
        if generation > 15 {
            return Err(err("generation out of range (0..=15)"));
        }
        entries.push(ProfileEntry {
            method: method.to_string(),
            bci,
            generation,
            confidence: DEFAULT_CONFIDENCE,
        });
    }
    entries.sort_by(|a, b| (&a.method, a.bci).cmp(&(&b.method, b.bci)));
    Ok(DecisionProfile { entries, ..Default::default() })
}

fn parse_v1(s: &str) -> Result<DecisionProfile, ProfileParseError> {
    let mut profile = DecisionProfile::default();
    let mut declared_entries: Option<usize> = None;
    let mut saw_version = false;
    let mut last_line = 0usize;
    for (i, raw) in s.lines().enumerate() {
        last_line = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |reason: String| ProfileParseError { line: i + 1, reason };
        if !saw_version {
            // First significant line is the version (checked by the caller).
            saw_version = true;
            continue;
        }
        let (keyword, rest) = line.split_once(' ').unwrap_or((line, ""));
        match keyword {
            "fingerprint" => {
                let fp = u64::from_str_radix(rest.trim(), 16)
                    .map_err(|_| err("fingerprint is not a hex number".into()))?;
                profile.fingerprint = Some(fp);
            }
            "epochs" => {
                profile.epochs =
                    rest.trim().parse().map_err(|_| err("epochs is not a number".into()))?;
            }
            "geometry" => {
                let mut it = rest.split_whitespace();
                let parse_rows = |v: Option<&str>| {
                    v.and_then(|v| v.parse::<usize>().ok())
                        .ok_or_else(|| err("geometry needs two row counts".into()))
                };
                let site_rows = parse_rows(it.next())?;
                let tss_rows = parse_rows(it.next())?;
                profile.geometry = Some((site_rows, tss_rows));
            }
            "entries" => {
                declared_entries =
                    Some(rest.trim().parse().map_err(|_| err("entries is not a number".into()))?);
            }
            "decision" => {
                let mut it = rest.split_whitespace();
                let loc = it.next().ok_or_else(|| err("missing location".into()))?;
                let gen = it.next().ok_or_else(|| err("missing generation".into()))?;
                let conf = it.next().ok_or_else(|| err("missing confidence".into()))?;
                if it.next().is_some() {
                    return Err(err("trailing fields after confidence".into()));
                }
                let (method, bci) =
                    loc.rsplit_once('@').ok_or_else(|| err("missing @bci".into()))?;
                let bci: u32 = bci.parse().map_err(|_| err("bci is not a number".into()))?;
                let generation: u8 =
                    gen.parse().map_err(|_| err("generation is not a number".into()))?;
                if generation > 15 {
                    return Err(err("generation out of range (0..=15)".into()));
                }
                let confidence: u8 =
                    conf.parse().map_err(|_| err("confidence is not a number".into()))?;
                if confidence > 100 {
                    return Err(err("confidence out of range (0..=100)".into()));
                }
                if method.is_empty() {
                    return Err(err("empty method name".into()));
                }
                profile.entries.push(ProfileEntry {
                    method: method.to_string(),
                    bci,
                    generation,
                    confidence,
                });
            }
            "callsite" => {
                let (caller, callee) =
                    rest.rsplit_once("->").ok_or_else(|| err("missing ->callee".into()))?;
                if caller.is_empty() || callee.is_empty() {
                    return Err(err("empty caller or callee".into()));
                }
                profile.call_sites.push(CallSiteEntry {
                    caller: caller.to_string(),
                    callee: (callee != "?").then(|| callee.to_string()),
                });
            }
            other => {
                return Err(err(format!("unknown profile keyword `{other}`")));
            }
        }
    }
    if let Some(declared) = declared_entries {
        if profile.entries.len() != declared {
            return Err(ProfileParseError {
                line: last_line,
                reason: format!(
                    "truncated profile: header declares {declared} decision(s), found {}",
                    profile.entries.len()
                ),
            });
        }
    }
    profile.entries.sort_by(|a, b| (&a.method, a.bci).cmp(&(&b.method, b.bci)));
    profile.call_sites.sort();
    Ok(profile)
}

impl FromStr for DecisionProfile {
    type Err = ProfileParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        // Dispatch on the first significant line: a version header selects
        // the v1 parser, an unknown `rolp-profile-*` version is rejected,
        // anything else falls back to the legacy headerless format.
        for (i, raw) in s.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == PROFILE_FORMAT_V1 {
                return parse_v1(s);
            }
            if line.starts_with("rolp-profile-") {
                return Err(ProfileParseError {
                    line: i + 1,
                    reason: format!(
                        "unsupported profile version `{line}` (this build reads {PROFILE_FORMAT_V1})"
                    ),
                });
            }
            break;
        }
        parse_legacy(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rolp_vm::ProgramBuilder;

    fn sample() -> DecisionProfile {
        DecisionProfile {
            fingerprint: Some(0xDEAD_BEEF_1234_5678),
            epochs: 9,
            geometry: Some((1024, 64)),
            entries: vec![
                ProfileEntry { method: "a.B::c".into(), bci: 3, generation: 7, confidence: 100 },
                ProfileEntry { method: "x.Y::z".into(), bci: 11, generation: 15, confidence: 25 },
            ],
            call_sites: vec![
                CallSiteEntry { caller: "a.B::c".into(), callee: Some("x.Y::z".into()) },
                CallSiteEntry { caller: "x.Y::z".into(), callee: None },
            ],
        }
    }

    #[test]
    fn render_parse_roundtrip() {
        let p = sample();
        let text = p.to_string();
        assert!(text.starts_with(PROFILE_FORMAT_V1), "{text}");
        let back: DecisionProfile = text.parse().expect("parses");
        assert_eq!(back, p);
    }

    #[test]
    fn legacy_headerless_profiles_still_parse() {
        let text = "# comment\n\n a.B::c@3 7 \n";
        let p: DecisionProfile = text.parse().expect("parses");
        assert_eq!(p.len(), 1);
        assert_eq!(p.entries[0].generation, 7);
        assert_eq!(p.entries[0].confidence, DEFAULT_CONFIDENCE);
        assert_eq!(p.fingerprint, None, "legacy profiles carry no fingerprint");
    }

    #[test]
    fn parser_reports_line_numbers() {
        let text = "a.B::c@3 7\nbroken line\n";
        let err = text.parse::<DecisionProfile>().expect_err("must fail");
        assert_eq!(err.line, 2);
        let text2 = "a.B::c@3 99\n";
        let err2 = text2.parse::<DecisionProfile>().expect_err("must fail");
        assert!(err2.reason.contains("out of range"));
    }

    #[test]
    fn v1_parser_rejects_malformed_lines() {
        for (text, needle) in [
            ("rolp-profile-v1\ndecision a.B::c@3 7\n", "missing confidence"),
            ("rolp-profile-v1\ndecision a.B::c@3 7 200\n", "out of range"),
            ("rolp-profile-v1\ndecision a.B::c 7 50\n", "missing @bci"),
            ("rolp-profile-v1\nfingerprint zzz\n", "not a hex number"),
            ("rolp-profile-v1\ngeometry 1024\n", "two row counts"),
            ("rolp-profile-v1\ncallsite a.B::c\n", "missing ->callee"),
            ("rolp-profile-v1\nfrobnicate 3\n", "unknown profile keyword"),
            ("rolp-profile-v2\n", "unsupported profile version"),
        ] {
            let err = text.parse::<DecisionProfile>().expect_err(text);
            assert!(err.reason.contains(needle), "{text:?} -> {err}");
        }
    }

    #[test]
    fn truncated_profiles_fail_cleanly() {
        let full = sample().to_string();
        // Cut after the header + first decision: the declared count no
        // longer matches.
        let cut: String = full.lines().take(5).map(|l| format!("{l}\n")).collect();
        let err = cut.parse::<DecisionProfile>().expect_err("truncation detected");
        assert!(err.reason.contains("truncated"), "{err}");
    }

    #[test]
    fn fingerprint_is_shape_sensitive() {
        let build = |bci: u32| {
            let mut b = ProgramBuilder::new();
            let m = b.method("a.B::c", 50, false);
            let w = b.method("x.Y::z", 40, false);
            b.call_site(m, w);
            b.alloc_site(m, bci);
            b.build()
        };
        let p1 = build(3);
        let p2 = build(4);
        assert_eq!(program_fingerprint(&p1), program_fingerprint(&p1), "deterministic");
        assert_ne!(program_fingerprint(&p1), program_fingerprint(&p2), "bci moved");
    }

    #[test]
    fn resolve_matches_by_location() {
        let mut b = ProgramBuilder::new();
        let m = b.method("a.B::c", 50, false);
        let hit = b.alloc_site(m, 3);
        let miss = b.alloc_site(m, 4);
        let program = b.build();
        let resolved = sample().resolve(&program);
        assert_eq!(resolved.get(&hit), Some(&7));
        assert_eq!(resolved.get(&miss), None);
    }

    #[test]
    fn validation_counts_partial_application() {
        let mut b = ProgramBuilder::new();
        let m = b.method("a.B::c", 50, false);
        let w = b.method("x.Y::z", 40, false);
        b.call_site(m, w);
        let hit = b.alloc_site(m, 3);
        let program = b.build();

        let resolved = sample().resolve_validated(&program);
        let v = resolved.validation;
        assert!(v.fingerprint_checked);
        assert!(!v.fingerprint_matched, "sample fingerprint is synthetic");
        assert_eq!(v.entries_total, 2);
        assert_eq!(v.entries_applied, 1, "only a.B::c@3 resolves");
        assert_eq!(v.entries_rejected, 1);
        assert_eq!(v.call_sites_applied, 1, "a.B::c -> x.Y::z resolves");
        assert_eq!(v.call_sites_rejected, 1, "the virtual x.Y::z edge does not");
        assert_eq!(resolved.decisions.get(&hit), Some(&(7, 100)));
        assert_eq!(resolved.call_sites.len(), 1);
        assert!(!v.fully_applied());
        assert!(!v.nothing_applied());
    }

    #[test]
    fn foreign_profile_applies_nothing() {
        let mut b = ProgramBuilder::new();
        let m = b.method("other.Program::main", 50, false);
        b.alloc_site(m, 1);
        let program = b.build();
        let resolved = sample().resolve_validated(&program);
        assert!(resolved.validation.nothing_applied());
        assert!(resolved.decisions.is_empty());
        assert!(resolved.call_sites.is_empty());
    }
}
