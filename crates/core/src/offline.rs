//! Offline decision profiles (POLM2-style warm start).
//!
//! The paper's §10 notes that NG2C (annotations), POLM2 (offline
//! profiling), and ROLP (online profiling) share the same JVM and
//! collector and can be combined. This module is that combination point:
//! a [`DecisionProfile`] captures ROLP's learned pretenuring decisions in
//! a run-independent form (keyed by source location, not by the dynamic
//! 16-bit profile ids) so a later run can start pretenuring *immediately*,
//! skipping the warmup the paper measures in Fig. 10 — exactly what an
//! offline profile buys.
//!
//! The format is one line per decision: `pkg.Class::method@bci <gen>`.
//! Decisions keyed by a conflicted context (nonzero thread stack state)
//! are not exported — stack-state hashes are not stable across runs (the
//! JIT assigns call-site identifiers randomly); the online profiler
//! re-derives them quickly since the distinguishing call sites are also
//! re-learned.

use std::collections::HashMap;
use std::fmt;
use std::str::FromStr;

use rolp_vm::{AllocSiteId, JitState, Program};

use crate::context::{site_of, tss_of};
use crate::profiler::RolpProfiler;

/// One exported decision: a source location and its target generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileEntry {
    /// Method name, e.g. `"cassandra.db.Memtable::insert"`.
    pub method: String,
    /// Bytecode index of the allocation site within the method.
    pub bci: u32,
    /// Target generation (0..=15).
    pub generation: u8,
}

/// A run-independent set of pretenuring decisions.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DecisionProfile {
    /// Entries, sorted by (method, bci) for stable output.
    pub entries: Vec<ProfileEntry>,
}

/// Why parsing a profile failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileParseError {
    /// 1-based line number.
    pub line: usize,
    /// What was wrong.
    pub reason: String,
}

impl fmt::Display for ProfileParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for ProfileParseError {}

impl DecisionProfile {
    /// Exports the profiler's current decisions. Only decisions with a
    /// zero thread-stack-state key are portable (see module docs).
    pub fn from_profiler<T: crate::geometry::LifetimeTable>(
        profiler: &RolpProfiler<T>,
        program: &Program,
        jit: &JitState,
    ) -> Self {
        let _ = jit;
        let mut entries = Vec::new();
        for (&ctx, &generation) in profiler.decisions() {
            if tss_of(ctx) != 0 {
                continue;
            }
            let Some(&site) = profiler.pid_to_site.get(&site_of(ctx)) else {
                continue;
            };
            let decl = program.alloc_site(site);
            entries.push(ProfileEntry {
                method: program.method(decl.method).name.clone(),
                bci: decl.bci,
                generation,
            });
        }
        entries.sort_by(|a, b| (&a.method, a.bci).cmp(&(&b.method, b.bci)));
        DecisionProfile { entries }
    }

    /// Resolves the profile against a program: allocation-site id → target
    /// generation, for sites whose location matches an entry. Used by the
    /// profiler at startup.
    pub fn resolve(&self, program: &Program) -> HashMap<AllocSiteId, u8> {
        let by_loc: HashMap<(&str, u32), u8> =
            self.entries.iter().map(|e| ((e.method.as_str(), e.bci), e.generation)).collect();
        let mut out = HashMap::new();
        for site in program.alloc_sites() {
            let decl = program.alloc_site(site);
            let name = program.method(decl.method).name.as_str();
            if let Some(&gen) = by_loc.get(&(name, decl.bci)) {
                out.insert(site, gen);
            }
        }
        out
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the profile has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl fmt::Display for DecisionProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in &self.entries {
            writeln!(f, "{}@{} {}", e.method, e.bci, e.generation)?;
        }
        Ok(())
    }
}

impl FromStr for DecisionProfile {
    type Err = ProfileParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut entries = Vec::new();
        for (i, raw) in s.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let err = |reason: &str| ProfileParseError { line: i + 1, reason: reason.into() };
            let (loc, gen) = line.rsplit_once(' ').ok_or_else(|| err("missing generation"))?;
            let (method, bci) = loc.rsplit_once('@').ok_or_else(|| err("missing @bci"))?;
            let bci: u32 = bci.parse().map_err(|_| err("bci is not a number"))?;
            let generation: u8 =
                gen.trim().parse().map_err(|_| err("generation is not a number"))?;
            if generation > 15 {
                return Err(err("generation out of range (0..=15)"));
            }
            entries.push(ProfileEntry { method: method.to_string(), bci, generation });
        }
        entries.sort_by(|a, b| (&a.method, a.bci).cmp(&(&b.method, b.bci)));
        Ok(DecisionProfile { entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DecisionProfile {
        DecisionProfile {
            entries: vec![
                ProfileEntry { method: "a.B::c".into(), bci: 3, generation: 7 },
                ProfileEntry { method: "x.Y::z".into(), bci: 11, generation: 15 },
            ],
        }
    }

    #[test]
    fn render_parse_roundtrip() {
        let p = sample();
        let text = p.to_string();
        let back: DecisionProfile = text.parse().expect("parses");
        assert_eq!(back, p);
    }

    #[test]
    fn parser_skips_comments_and_blanks() {
        let text = "# comment\n\n a.B::c@3 7 \n";
        let p: DecisionProfile = text.parse().expect("parses");
        assert_eq!(p.len(), 1);
        assert_eq!(p.entries[0].generation, 7);
    }

    #[test]
    fn parser_reports_line_numbers() {
        let text = "a.B::c@3 7\nbroken line\n";
        let err = text.parse::<DecisionProfile>().expect_err("must fail");
        assert_eq!(err.line, 2);
        let text2 = "a.B::c@3 99\n";
        let err2 = text2.parse::<DecisionProfile>().expect_err("must fail");
        assert!(err2.reason.contains("out of range"));
    }

    #[test]
    fn resolve_matches_by_location() {
        use rolp_vm::ProgramBuilder;
        let mut b = ProgramBuilder::new();
        let m = b.method("a.B::c", 50, false);
        let hit = b.alloc_site(m, 3);
        let miss = b.alloc_site(m, 4);
        let program = b.build();
        let resolved = sample().resolve(&program);
        assert_eq!(resolved.get(&hit), Some(&7));
        assert_eq!(resolved.get(&miss), None);
    }
}
