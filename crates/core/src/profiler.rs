//! The ROLP profiler.
//!
//! [`RolpProfiler`] is the paper's contribution assembled: it implements
//! the VM-side hooks (`rolp_vm::VmProfiler` — what the JIT-installed
//! profiling code does) and the GC-side hooks (`rolp_gc::GcHooks` — what
//! the modified collector does), tying together the OLD table (§3.3,
//! §7.5, §7.6), lifetime inference (§4), conflict resolution (§5),
//! profiling-decision updates under workload change (§6), package filters
//! (§7.3), survivor-tracking shutdown (§7.4), the exception-rethrow fixup
//! (§7.2.2), and the end-of-GC thread-stack-state reconciliation that
//! covers OSR and toggle corruption (§7.2.3).
//!
//! # The epoch pipeline
//!
//! The profiler is one explicit pipeline, generic over the
//! [`LifetimeTable`] backend:
//!
//! 1. **record** — mutators bump age-0 cells ([`VmProfiler::on_alloc`]);
//!    GC workers buffer survivals into private [`WorkerTable`]s
//!    ([`GcHooks::on_survivor`]).
//! 2. **safepoint merge** — every pause ends with the deterministic
//!    worker-table merge and the §7.2.3 stack-state reconciliation
//!    ([`GcHooks::on_gc_end`]).
//! 3. **infer** — every [`RolpConfig::inference_period`] cycles, classify
//!    the touched rows (§4).
//! 4. **resolve conflicts** — expand conflicted sites (§7.5), engage the
//!    call-site resolver (§5), fold the verdicts into the decision
//!    working set, apply §6 demotion.
//! 5. **publish** — compile the working set into an immutable, versioned
//!    `DecisionTable` snapshot and atomically swap it into the shared
//!    [`DecisionStore`], where the mutator allocation path and the GC's
//!    pretenuring placement read it lock-free.
//!
//! The working set itself is a sorted map keyed by table row key; the
//! flat-array snapshot is rebuilt from it at each publication, so readers
//! never observe a half-updated epoch.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use rolp_gc::{GcCycleInfo, GcHooks};
use rolp_heap::{ObjectHeader, RegionKind};
use rolp_telemetry::{Bucket, CounterId, HistId};
use rolp_vm::{
    AllocSiteId, CallSiteId, DecisionStore, DecisionTable, JitState, MethodId, Program, ThreadId,
    VmEnv, VmProfiler,
};

use rolp_faults::{CycleFaults, FaultInjector, FaultPlan};

use crate::conflicts::{ConflictConfig, ConflictResolver, ConflictStats};
use crate::context::pack;
use crate::filters::PackageFilters;
use crate::geometry::LifetimeTable;
use crate::governor::{EpochCost, Governor, GovernorConfig, GovernorState};
use crate::inference::InferenceOutcome;
use crate::offline::ProfileValidation;
use crate::old_table::{OldTable, WorkerTable};
use crate::shared_table::SharedOldTable;
use crate::survivor::SurvivorTracking;

/// Remaining confidence below which an imported row's offline prior is
/// released: the row is dropped from the published table (so
/// mis-pretenuring stops immediately) and live inference owns it from
/// then on.
const CONFIDENCE_FLOOR: u8 = 16;

/// Consecutive canary-confirmed epochs after which an imported row
/// *graduates* from probation: the canary flag is dropped and the row is
/// trusted exactly like a live-learned decision (§7.4 semantics — once
/// the workload has re-confirmed the prior, re-measuring it forever
/// would only keep survivor tracking alive and let late, noisy
/// inference perturb an otherwise stable table).
const CONFIRMATIONS_TO_GRADUATE: u8 = 3;

/// The profiling level, matching the paper's Fig. 6 experiment arms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProfilingLevel {
    /// Only allocation sites are profiled; no call-profiling code is
    /// emitted at all (pair with `JitConfig::install_call_profiling =
    /// false`).
    NoCallProfiling,
    /// Call-profiling code is emitted but never enabled: every call takes
    /// the fast branch.
    FastCallProfiling,
    /// Normal operation: conflict resolution enables the call sites it
    /// needs.
    Real,
    /// Worst case: every non-inlined jitted call site is enabled — all
    /// calls take the slow branch.
    SlowCallProfiling,
}

/// ROLP configuration (all paper defaults).
#[derive(Debug, Clone)]
pub struct RolpConfig {
    /// Profiling level (Fig. 6).
    pub level: ProfilingLevel,
    /// Package filters (§7.3).
    pub filters: PackageFilters,
    /// GC cycles between inference passes (§4: the max object age, 16).
    pub inference_period: u64,
    /// Conflict-resolution tunables (§5).
    pub conflict: ConflictConfig,
    /// Survivor-tracking shutdown enabled (§7.4).
    pub survivor_shutdown: bool,
    /// Exception-rethrow stack-state fixup installed (§7.2.2).
    pub exception_hook: bool,
    /// Tenured fragmentation above which estimates get demoted (§6).
    pub demotion_threshold: f64,
    /// Optional offline decision profile (POLM2-style warm start; see
    /// [`crate::offline`]). Matching allocation sites start pretenuring
    /// the moment they are JIT-compiled, skipping the learning warmup.
    pub offline_profile: Option<crate::offline::DecisionProfile>,
    /// Blend the imported profile with live observation: imported rows
    /// are published canary-flagged (a 1-in-[`CANARY_STRIDE`] sample of
    /// their allocations stays young so survivor tracking keeps seeing
    /// them), and each inference epoch decays or re-confirms the row's
    /// confidence from that evidence. `false` = frozen POLM2-style
    /// replay: the profile is trusted verbatim forever.
    ///
    /// [`CANARY_STRIDE`]: rolp_vm::CANARY_STRIDE
    pub blend: bool,
    /// Seed for the conflict resolver's random batches.
    pub seed: u64,
    /// GC worker count — one private [`WorkerTable`] each (§5.2, §7.6),
    /// merged deterministically at the safepoint ending every pause.
    pub gc_workers: usize,
    /// Overhead governor (`None` = ungoverned: the pre-governor behavior,
    /// bit for bit). See [`crate::governor`].
    pub governor: Option<GovernorConfig>,
    /// Deterministic fault-injection plan (`None` = no injection). See
    /// [`rolp_faults`].
    pub fault_plan: Option<FaultPlan>,
    /// Partition the OLD table into this many independently locked shards
    /// (power of two; see [`crate::sharded_table`]). `None` keeps the
    /// thread-count-selected unsharded backend — bit-compatible with
    /// every prior release.
    pub table_shards: Option<usize>,
    /// Batch age-0 recording: [`VmProfiler::on_alloc`] appends the
    /// context to a per-thread delta buffer instead of touching the
    /// shared OLD table, and the buffers are flushed (sorted, run-length
    /// encoded, applied via [`LifetimeTable::record_allocations`]) at the
    /// safepoint opening every pause. Increments are commutative between
    /// safepoints, so the table state at every read point (inference,
    /// blend decay, reconciliation — all safepoint-side) is identical to
    /// the per-allocation path; what changes is that the §7.6 racy
    /// increment window disappears. `false` restores the per-allocation
    /// reference path the differential suite compares against.
    pub batch_age0: bool,
}

impl Default for RolpConfig {
    fn default() -> Self {
        RolpConfig {
            level: ProfilingLevel::Real,
            filters: PackageFilters::all(),
            inference_period: 16,
            conflict: ConflictConfig::default(),
            survivor_shutdown: true,
            exception_hook: true,
            demotion_threshold: 0.5,
            offline_profile: None,
            blend: true,
            seed: 0x0517,
            gc_workers: 4,
            governor: None,
            fault_plan: None,
            table_shards: None,
            batch_age0: true,
        }
    }
}

/// Snapshot of profiler counters (feeds Tables 1 and 2).
#[derive(Debug, Clone, Default)]
pub struct RolpStats {
    /// Allocation sites carrying profiling code.
    pub profiled_alloc_sites: usize,
    /// All declared allocation sites.
    pub total_alloc_sites: usize,
    /// Call sites currently enabled (slow branch).
    pub enabled_call_sites: usize,
    /// Call sites with profiling code installed (compiled, non-inlined).
    pub installed_call_sites: usize,
    /// All declared call sites.
    pub total_call_sites: usize,
    /// Conflict-resolution counters.
    pub conflicts: ConflictStats,
    /// Inference passes run.
    pub inferences: u64,
    /// Active pretenuring decisions.
    pub decisions: usize,
    /// Version of the last published decision snapshot.
    pub decision_version: u64,
    /// OLD table footprint (§7.5).
    pub old_table_bytes: u64,
    /// Profiled allocations recorded.
    pub profiled_allocations: u64,
    /// Allocations at unprofiled (cold/filtered) sites.
    pub unprofiled_allocations: u64,
    /// Survivor records fed to the OLD table.
    pub survivor_records: u64,
    /// Thread-stack-state corruptions repaired at GC end (§7.2.3).
    pub reconciliations: u64,
    /// Estimates demoted due to fragmentation (§6).
    pub demotions: u64,
    /// Survivor-tracking shutdowns / reactivations (§7.4).
    pub survivor_shutdowns: u64,
    /// Times survivor tracking was turned back on.
    pub survivor_reactivations: u64,
    /// Governor state label (`None` when running ungoverned).
    pub governor_state: Option<&'static str>,
    /// Governor state transitions taken.
    pub governor_transitions: u64,
    /// Overhead signal driving the governor — `measured` (telemetry) or
    /// `estimated` (cost model); `None` when running ungoverned.
    pub governor_cost_source: Option<&'static str>,
    /// Profile-id requests refused after the 16-bit id space saturated.
    pub profile_id_overflows: u64,
    /// Synthetic record-path events charged by the fault injector.
    pub injected_fault_events: u64,
    /// Survivor records discarded by injected merge drops.
    pub dropped_merge_records: u64,
    /// Safepoint merges postponed by injected merge delays.
    pub delayed_merges: u64,
    /// Offline-profile import validation (`None` when no profile was
    /// imported this run).
    pub profile_import: Option<ProfileValidation>,
    /// Imported rows whose confidence halved under the blend decay.
    pub profile_blend_decays: u64,
    /// Imported rows released to live inference (confidence fell below
    /// the floor).
    pub profile_rows_released: u64,
    /// Imported rows still governing their decision (probationary,
    /// graduated, and generation-0-exempt rows alike).
    pub profile_rows_active: u64,
    /// Imported rows that graduated from canary probation to full trust.
    pub profile_rows_graduated: u64,
    /// Inference epoch that last changed the published decision table
    /// (0 = the published decisions never changed after startup — a
    /// fully-warm start is stable from epoch 0).
    pub last_change_epoch: u64,
}

/// The OLD-table backend a runtime-assembled profiler runs on: the
/// sequential/exact table, or the relaxed-atomic one real mutator threads
/// share. Selected by `rolp::runtime` from the configured thread count.
pub enum TableBackend {
    /// [`OldTable`]: exact, single-threaded reference.
    Sequential(OldTable),
    /// [`SharedOldTable`]: the §7.6 concurrent table.
    Concurrent(SharedOldTable),
    /// [`crate::ShardedOldTable`]: N locked shards, parallel
    /// merge/inference fan-out, deterministic cross-shard reduction.
    Sharded(crate::sharded_table::ShardedOldTable),
}

macro_rules! backend_dispatch {
    ($self:expr, $t:ident => $body:expr) => {
        match $self {
            TableBackend::Sequential($t) => $body,
            TableBackend::Concurrent($t) => $body,
            TableBackend::Sharded($t) => $body,
        }
    };
}

impl LifetimeTable for TableBackend {
    fn geometry(&self) -> &crate::geometry::TableGeometry {
        backend_dispatch!(self, t => t.geometry())
    }

    fn record_allocation(&mut self, context: u32) {
        backend_dispatch!(self, t => LifetimeTable::record_allocation(t, context))
    }

    fn record_allocations(&mut self, context: u32, n: u32) {
        backend_dispatch!(self, t => LifetimeTable::record_allocations(t, context, n))
    }

    fn record_survival(&mut self, context: u32, age: u8) {
        backend_dispatch!(self, t => LifetimeTable::record_survival(t, context, age))
    }

    fn expand_site(&mut self, site: u16) {
        backend_dispatch!(self, t => LifetimeTable::expand_site(t, site))
    }

    fn is_expanded(&self, site: u16) -> bool {
        backend_dispatch!(self, t => LifetimeTable::is_expanded(t, site))
    }

    fn expansions(&self) -> usize {
        backend_dispatch!(self, t => LifetimeTable::expansions(t))
    }

    fn expanded_sites(&self) -> Vec<u16> {
        backend_dispatch!(self, t => t.expanded_sites())
    }

    fn histogram(&self, context: u32) -> [u32; crate::old_table::AGE_COLUMNS] {
        backend_dispatch!(self, t => LifetimeTable::histogram(t, context))
    }

    fn touched_rows(&self) -> Vec<u32> {
        backend_dispatch!(self, t => t.touched_rows())
    }

    fn age0_total(&self) -> u64 {
        backend_dispatch!(self, t => LifetimeTable::age0_total(t))
    }

    fn clear_counts(&mut self) {
        backend_dispatch!(self, t => LifetimeTable::clear_counts(t))
    }

    fn merge_workers(
        &mut self,
        workers: &mut [WorkerTable],
        parallelism: usize,
    ) -> crate::old_table::MergeSummary {
        backend_dispatch!(self, t => LifetimeTable::merge_workers(t, workers, parallelism))
    }

    fn run_inference_pass(&self, parallelism: usize) -> InferenceOutcome {
        backend_dispatch!(self, t => LifetimeTable::run_inference_pass(t, parallelism))
    }

    fn table_shards(&self) -> Option<usize> {
        backend_dispatch!(self, t => LifetimeTable::table_shards(t))
    }

    fn shard_lock_waits(&self) -> u64 {
        backend_dispatch!(self, t => LifetimeTable::shard_lock_waits(t))
    }

    fn last_shard_merge_counts(&self) -> Option<Vec<u64>> {
        backend_dispatch!(self, t => LifetimeTable::last_shard_merge_counts(t))
    }
}

/// The runtime object lifetime profiler, generic over the OLD-table
/// backend (see the module-level pipeline description).
pub struct RolpProfiler<T: LifetimeTable = OldTable> {
    config: RolpConfig,
    /// The global OLD table.
    pub old: T,
    workers: Vec<WorkerTable>,
    resolver: ConflictResolver,
    /// Decision working set: row key → estimated lifetime (target
    /// generation). Safepoint-side only; readers use the published
    /// snapshot in [`RolpProfiler::decision_store`].
    decisions: BTreeMap<u32, u8>,
    /// The lock-free publication point for decision snapshots.
    store: Arc<DecisionStore>,
    survivor: SurvivorTracking,
    /// Profile id → allocation site (for leak reports and diagnostics).
    pub(crate) pid_to_site: HashMap<u16, AllocSiteId>,
    /// Recent per-context live-object censuses from marking passes,
    /// oldest first (the §2.2 leak-detection signal).
    pub(crate) liveness_history: std::collections::VecDeque<HashMap<u32, u64>>,
    /// Offline-profile `(generation, confidence)` pairs awaiting their
    /// site's JIT compilation.
    pending_offline: Option<HashMap<AllocSiteId, (u8, u8)>>,
    /// Imported rows still holding their offline prior: row key →
    /// remaining confidence. The max-merge skips these until the blend
    /// decay releases them or they graduate to full trust.
    imported: HashMap<u32, u8>,
    /// Consecutive canary-confirmed epochs per probationary row; at
    /// [`CONFIRMATIONS_TO_GRADUATE`] the row graduates out of
    /// `imported`.
    confirm_streak: HashMap<u32, u8>,
    /// Imported rows that graduated to full trust (still governing their
    /// decision, no longer probationary).
    profile_rows_graduated: u64,
    /// What the import applied and rejected (set at first resolution).
    import_validation: Option<ProfileValidation>,
    /// An import happened but its trace event / counter bump is still
    /// pending (no trace handle inside `on_jit_compile`).
    import_pending_note: bool,
    max_profile_id: u16,
    /// The overhead governor, if configured.
    governor: Option<Governor>,
    /// The fault injector, if a plan is configured.
    faults: Option<FaultInjector>,
    /// Sticky adversarial TSS forced by a `TssCollision` fault.
    fault_tss: Option<u16>,
    /// Per-thread age-0 delta buffers (contexts recorded since the last
    /// safepoint), indexed by thread id; grown on demand. Drained by
    /// [`Self::flush_age0`] at the safepoint opening every pause.
    pending_age0: Vec<Vec<u32>>,
    // Governor state effects, cached as flags for the hot hooks.
    /// `Reduced` and below: call-site profiling shed, resolver frozen.
    call_shed: bool,
    /// `SitesOnly` and below: stack-state hashing off (TSS forced to 0).
    strip_tss: bool,
    /// `Off`: nothing recorded; the store publishes the all-gen-0 table.
    profiling_off: bool,
    // counters
    governor_transitions: u64,
    injected_records: u64,
    dropped_merge_records: u64,
    delayed_merges: u64,
    /// Shard-lock contention total already bumped into telemetry (the
    /// backend reports a cumulative count; the counter wants deltas).
    shard_waits_seen: u64,
    // epoch bases for the governor's per-epoch cost deltas
    epoch_record_base: u64,
    epoch_invocation_base: u64,
    /// Telemetry `mutator_profiling` total at the last epoch boundary.
    epoch_profiling_base: u64,
    /// Telemetry busy-mutator total at the last epoch boundary.
    epoch_busy_base: u64,
    profiled_allocations: u64,
    unprofiled_allocations: u64,
    survivor_records: u64,
    reconciliations: u64,
    demotions: u64,
    inferences: u64,
    // blend-decay counters: lifetime totals and the closing epoch's share
    profile_blend_decays: u64,
    profile_rows_released: u64,
    epoch_blend_decays: u64,
    epoch_blend_released: u64,
    /// Inference epoch that last changed the published decision table.
    last_change_epoch: u64,
    // pause window for the survivor controller
    window_pause_ms: f64,
    window_pauses: u64,
}

impl RolpProfiler<OldTable> {
    /// Creates a profiler on the sequential (exact) table.
    pub fn new(config: RolpConfig) -> Self {
        Self::with_table(config, OldTable::new())
    }
}

impl RolpProfiler<TableBackend> {
    /// Creates a profiler on a runtime-selected backend.
    pub fn with_backend(config: RolpConfig, backend: TableBackend) -> Self {
        Self::with_table(config, backend)
    }
}

impl<T: LifetimeTable> RolpProfiler<T> {
    /// Creates a profiler on an explicit table backend.
    pub fn with_table(config: RolpConfig, table: T) -> Self {
        let resolver = ConflictResolver::new(config.conflict.clone(), config.seed);
        let survivor = SurvivorTracking::new();
        let gc_workers = config.gc_workers.max(1);
        let geometry = *table.geometry();
        let store = DecisionStore::with_initial(DecisionTable::empty_with_geometry(
            geometry.site_rows(),
            geometry.tss_rows(),
        ));
        let governor = config.governor.clone().map(Governor::new);
        let faults = config.fault_plan.clone().map(FaultInjector::new);
        // A forced start state (tests, CLI overrides) must gate the hooks
        // from the very first allocation, not the first transition.
        let start = governor.as_ref().map(|g| g.state()).unwrap_or(GovernorState::Full);
        RolpProfiler {
            config,
            old: table,
            workers: (0..gc_workers).map(|_| WorkerTable::new()).collect(),
            resolver,
            decisions: BTreeMap::new(),
            store: Arc::new(store),
            survivor,
            pid_to_site: HashMap::new(),
            liveness_history: std::collections::VecDeque::new(),
            pending_offline: None,
            imported: HashMap::new(),
            confirm_streak: HashMap::new(),
            profile_rows_graduated: 0,
            import_validation: None,
            import_pending_note: false,
            max_profile_id: 0,
            governor,
            faults,
            fault_tss: None,
            pending_age0: Vec::new(),
            call_shed: start != GovernorState::Full,
            strip_tss: matches!(start, GovernorState::SitesOnly | GovernorState::Off),
            profiling_off: start == GovernorState::Off,
            governor_transitions: 0,
            injected_records: 0,
            dropped_merge_records: 0,
            delayed_merges: 0,
            shard_waits_seen: 0,
            epoch_record_base: 0,
            epoch_invocation_base: 0,
            epoch_profiling_base: 0,
            epoch_busy_base: 0,
            profiled_allocations: 0,
            unprofiled_allocations: 0,
            survivor_records: 0,
            reconciliations: 0,
            demotions: 0,
            inferences: 0,
            profile_blend_decays: 0,
            profile_rows_released: 0,
            epoch_blend_decays: 0,
            epoch_blend_released: 0,
            last_change_epoch: 0,
            window_pause_ms: 0.0,
            window_pauses: 0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &RolpConfig {
        &self.config
    }

    /// Number of per-GC-worker private tables (paper §5.2).
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Turns flight-recorder logging of conflict-batch transitions on or
    /// off (the events are drained into the trace after each inference).
    pub fn set_trace_logging(&mut self, enabled: bool) {
        self.resolver.set_batch_logging(enabled);
    }

    /// The decision working set (row key → generation), safepoint-side.
    pub fn decisions(&self) -> &BTreeMap<u32, u8> {
        &self.decisions
    }

    /// Inference epochs completed.
    pub fn inferences(&self) -> u64 {
        self.inferences
    }

    /// The §5 resolver's frozen distinguishing call sites (exported into
    /// profiles so a warm start separates conflicts from epoch 0).
    pub fn frozen_call_sites(&self) -> Vec<CallSiteId> {
        self.resolver.frozen_sites().to_vec()
    }

    /// Export confidence for a decision row: imported rows carry what is
    /// left of their offline prior; live-learned rows export at full
    /// confidence.
    pub fn confidence_of(&self, context: u32) -> u8 {
        self.imported.get(&context).copied().unwrap_or(crate::offline::DEFAULT_CONFIDENCE)
    }

    /// True while any imported row is still canary-probationary.
    /// Generation-0 priors are exempt from probation: they say the
    /// object dies around its first collection, so a surviving canary is
    /// structurally not expected (zero survivals cannot contradict the
    /// prior), and misprediction cost is bounded — a wrong gen-0 region
    /// dies wholesale and is reclaimed without copying.
    fn any_probationary(&self) -> bool {
        self.imported.keys().any(|&k| self.decisions.get(&k).is_some_and(|&g| g > 0))
    }

    /// What the offline-profile import applied and rejected (`None` when
    /// no profile was configured or no method has been compiled yet).
    pub fn import_validation(&self) -> Option<ProfileValidation> {
        self.import_validation
    }

    /// The shared publication point for decision snapshots: the mutator
    /// allocation path and the GC's pretenuring placement read it
    /// lock-free; this profiler publishes a new version at the end of
    /// each inference epoch (and on offline warm starts).
    pub fn decision_store(&self) -> Arc<DecisionStore> {
        Arc::clone(&self.store)
    }

    /// Counter snapshot; `jit`/`program` provide the site denominators.
    pub fn stats(&self, program: &Program, jit: &JitState) -> RolpStats {
        RolpStats {
            profiled_alloc_sites: jit.profiled_alloc_sites(),
            total_alloc_sites: program.num_alloc_sites(),
            enabled_call_sites: jit.enabled_call_sites(),
            installed_call_sites: jit.profilable_call_sites(program).len(),
            total_call_sites: program.num_call_sites(),
            conflicts: self.resolver.stats(),
            inferences: self.inferences,
            decisions: self.decisions.len(),
            decision_version: self.store.version(),
            old_table_bytes: self.old.memory_bytes(),
            profiled_allocations: self.profiled_allocations,
            unprofiled_allocations: self.unprofiled_allocations,
            survivor_records: self.survivor_records,
            reconciliations: self.reconciliations,
            demotions: self.demotions,
            survivor_shutdowns: self.survivor.shutdowns,
            survivor_reactivations: self.survivor.reactivations,
            governor_state: self.governor.as_ref().map(|g| g.state().label()),
            governor_transitions: self.governor_transitions,
            governor_cost_source: self.config.governor.as_ref().map(|c| c.cost_source.label()),
            profile_id_overflows: jit.profile_id_overflows(),
            injected_fault_events: self.injected_records,
            dropped_merge_records: self.dropped_merge_records,
            delayed_merges: self.delayed_merges,
            profile_import: self.import_validation,
            profile_blend_decays: self.profile_blend_decays,
            profile_rows_released: self.profile_rows_released,
            profile_rows_active: self.imported.len() as u64 + self.profile_rows_graduated,
            profile_rows_graduated: self.profile_rows_graduated,
            last_change_epoch: self.last_change_epoch,
        }
    }

    /// Current governor state (`None` when running ungoverned).
    pub fn governor_state(&self) -> Option<GovernorState> {
        self.governor.as_ref().map(|g| g.state())
    }

    /// Applies the hook-side effects of a governor state, in order of
    /// severity: shed (or restore) call-site profiling, strip TSS, gate
    /// the allocation fast path. Idempotent per state.
    fn apply_governor_state(&mut self, env: &mut VmEnv, to: GovernorState) {
        let shed = to != GovernorState::Full;
        if shed && !self.call_shed {
            // Reduced entry: zero every call-site delta. The resolver's
            // frozen/probing sets are preserved untouched and re-applied
            // verbatim on recovery, so conflicted contexts keep their
            // meaning while shed.
            let program = std::rc::Rc::clone(&env.program);
            for cs in program.call_sites() {
                env.jit.disable_call_profiling(cs);
            }
        } else if !shed && self.call_shed {
            // Full recovery: restore exactly the deltas the resolver owns.
            self.resolver.reapply_to_jit(&mut env.jit);
        }
        self.call_shed = shed;
        self.strip_tss = matches!(to, GovernorState::SitesOnly | GovernorState::Off);
        self.profiling_off = to == GovernorState::Off;
        // In `Off` the JIT patches the profiling instructions out: the
        // mutator fast path is one branch (`alloc_profiling_enabled`).
        env.jit.set_alloc_profiling(!self.profiling_off);
        let encoded = match to {
            GovernorState::Full => 0,
            GovernorState::Reduced => 1,
            GovernorState::SitesOnly => 2,
            GovernorState::Off => 3,
        };
        env.telemetry.registry().set_gauge(rolp_telemetry::GaugeId::GovernorState, encoded);
    }

    /// Pipeline stage 3 (§4): classify every touched row. Partitioned
    /// backends fan the classification out across shards; the outcome is
    /// identical to the sequential [`infer`] either way.
    fn stage_infer(&self) -> InferenceOutcome {
        self.old.run_inference_pass(self.config.gc_workers.max(1))
    }

    /// Pipeline stage 4: grow the table for fresh conflicts (§7.5),
    /// engage the §5 resolver, fold the verdicts into the working set,
    /// and apply §6 fragmentation demotion.
    fn stage_resolve(&mut self, env: &mut VmEnv, info: &GcCycleInfo, outcome: &InferenceOutcome) {
        for &site in &outcome.new_conflicts {
            self.old.expand_site(site);
        }
        if self.config.level == ProfilingLevel::Real && !self.call_shed {
            let program = std::rc::Rc::clone(&env.program);
            self.resolver.on_inference(
                &program,
                &mut env.jit,
                &outcome.new_conflicts,
                &outcome.unresolved_conflicts,
            );
        } else {
            // Other levels — and a governor-`Reduced` profiler, whose
            // call-site profiling is shed — only count conflicts; no
            // resolution.
            self.resolver.note_detected_only(&outcome.new_conflicts);
        }

        // Merge decisions *upward*: inference raises estimates; only
        // the §6 fragmentation path lowers them. A pretenured context
        // produces no young survivals anymore, so its fresh window
        // degenerates to an age-0 spike — replacing instead of merging
        // would bounce the context back to the young generation every
        // other inference.
        for &(key, gen) in &outcome.decisions {
            // Imported rows hold their offline prior until the blend
            // decay releases them; then live evidence owns the row.
            if self.imported.contains_key(&key) {
                continue;
            }
            let slot = self.decisions.entry(key).or_insert(gen);
            *slot = (*slot).max(gen);
        }

        // §6: under fragmentation, demote estimates feeding the most
        // fragmented dynamic generations.
        if info.tenured_fragmentation > self.config.demotion_threshold {
            for (_, gen) in self.decisions.iter_mut() {
                let g = *gen as usize;
                if (1..=14).contains(&g)
                    && info.dynamic_gen_garbage[g] > self.config.demotion_threshold
                {
                    *gen -= 1;
                    self.demotions += 1;
                }
            }
        }
    }

    /// Pipeline stage 5: compile the working set into the next immutable
    /// snapshot and atomically publish it. Returns `(version,
    /// changed_rows)`. Rows still backed by an imported offline prior are
    /// published canary-flagged (unless blending is off), so the
    /// allocation fast path keeps a small young-generation sample flowing
    /// for the blend decay to judge them by. Generation-0 priors are not
    /// flagged — they are exempt from probation (see
    /// [`Self::any_probationary`]).
    fn stage_publish(&mut self) -> (u64, u32) {
        let blend = self.config.blend;
        let imported = &self.imported;
        let decisions = &self.decisions;
        let next = DecisionTable::next_from_blended(
            self.store.load(),
            decisions,
            self.old.expanded_sites(),
            |key| {
                blend && imported.contains_key(&key) && decisions.get(&key).is_some_and(|&g| g > 0)
            },
        );
        let changed = next.changed_rows();
        let version = self.store.publish(next);
        (version, changed)
    }

    /// Runs one inference epoch: infer → resolve conflicts → publish,
    /// plus the §7.4 survivor switch and the end-of-epoch table clear.
    fn run_inference(&mut self, env: &mut VmEnv, info: &GcCycleInfo) {
        let tracing = env.trace.is_enabled();
        let decisions_before = if tracing { self.decisions.clone() } else { BTreeMap::new() };
        let survivor_before = self.survivor.enabled();
        let mut new_conflicts = 0u64;
        let mut unresolved_conflicts = 0u64;

        // Governor: meter the closing epoch and apply any state change
        // before the pipeline stages run, so a blown budget degrades this
        // epoch's publication, not the next one's.
        if self.governor.is_some() {
            let record_total =
                self.profiled_allocations + self.survivor_records + self.injected_records;
            let invocations = env.jit.total_invocations();
            // Self-observed signal from the telemetry plane: profiling
            // time and busy mutator time this epoch, as deltas of the
            // live per-thread cell totals (no snapshot publish needed).
            let registry = env.telemetry.registry();
            let prof_now = registry.total_time(Bucket::MutatorProfiling);
            let busy_now = registry.total_time(Bucket::MutatorApp)
                + prof_now
                + registry.total_time(Bucket::JitCompile);
            let cost = EpochCost {
                record_events: record_total - self.epoch_record_base,
                table_bytes: self.old.memory_bytes(),
                // Estimate: each invocation crosses call sites in
                // proportion to the enabled fraction; an enabled crossing
                // costs the slow branch twice (enter + exit).
                call_overhead_ns: {
                    let delta = invocations - self.epoch_invocation_base;
                    let enabled = env.jit.enabled_call_sites() as u64;
                    let total = env.program.num_call_sites().max(1) as u64;
                    2 * env.cost.profile_call_slow_ns * enabled * delta / total
                },
                measured_profiling_ns: prof_now - self.epoch_profiling_base,
                measured_mutator_ns: busy_now - self.epoch_busy_base,
            };
            self.epoch_record_base = record_total;
            self.epoch_invocation_base = invocations;
            self.epoch_profiling_base = prof_now;
            self.epoch_busy_base = busy_now;
            let transition = self.governor.as_mut().and_then(|g| g.evaluate(&cost));
            if let Some(tr) = transition {
                self.apply_governor_state(env, tr.to);
                self.governor_transitions += 1;
                if tracing {
                    env.trace.emit_global(
                        env.clock.now(),
                        rolp_trace::EventKind::GovernorTransition {
                            from: tr.from.label(),
                            to: tr.to.label(),
                            reason: tr.reason,
                            record_events: cost.record_events,
                            table_bytes: cost.table_bytes,
                            call_overhead_ns: cost.call_overhead_ns,
                        },
                    );
                }
            }
        }
        let off = self.profiling_off;

        // With survivor tracking off (§7.4), the window's table holds only
        // age-0 allocation counts — no lifetime information. Decisions are
        // left frozen (the workload was judged stable) and conflict
        // machinery idles; only the pause-growth reactivation check runs.
        // A governor-`Off` profiler skips the learning stages outright.
        let tracking_active = !off && (self.survivor.enabled() || !self.config.survivor_shutdown);

        // Modeled stage costs (the inference pipeline runs at safepoints
        // and does not advance the simulated clock, so these buckets are
        // `Bucket::is_modeled`: work counts priced by the cost model).
        let mut infer_ns = 0u64;
        let mut resolve_ns = 0u64;

        if tracking_active {
            let touched = self.old.touched_rows().len() as u64;
            let outcome = self.stage_infer();
            new_conflicts = outcome.new_conflicts.len() as u64;
            unresolved_conflicts = outcome.unresolved_conflicts.len() as u64;
            infer_ns = touched * env.cost.profile_alloc_ns;
            resolve_ns = (new_conflicts + unresolved_conflicts) * env.cost.profile_call_slow_ns;
            self.stage_resolve(env, info, &outcome);
        }

        // Confidence-weighted decay of the imported prior, judged on
        // live canary evidence. A pretenured context produces no young
        // survivals on its own, so imported rows are published
        // canary-flagged: one in `CANARY_STRIDE` of their allocations
        // stays young and ages through the survivor spaces like any
        // other object. The closing epoch's OLD-table row then tells the
        // truth about current traffic: canaries that survive confirm the
        // prior (confidence restored); an epoch whose canaries all died
        // before their first collection contradicts it (confidence
        // halves). Below the floor the prior is released and the row
        // handed back to live inference — every allocation young again,
        // fully observable. After `CONFIRMATIONS_TO_GRADUATE` confirming
        // epochs in a row the prior graduates instead: probation ends,
        // the canary flag is dropped, and the row is trusted like a
        // live-learned decision.
        self.epoch_blend_decays = 0;
        self.epoch_blend_released = 0;
        if tracking_active && self.config.blend && !self.imported.is_empty() {
            let mut released = Vec::new();
            let mut graduated = Vec::new();
            for (&key, conf) in self.imported.iter_mut() {
                // Generation-0 priors are exempt (`any_probationary`).
                if self.decisions.get(&key).is_none_or(|&g| g == 0) {
                    continue;
                }
                let hist = self.old.histogram(key);
                let allocs = hist[0] as u64;
                let survivals: u64 = hist[1..].iter().map(|&c| c as u64).sum();
                // Too few allocations to expect canaries in the sample:
                // no evidence either way this epoch.
                if allocs < 2 * rolp_vm::CANARY_STRIDE as u64 {
                    continue;
                }
                if survivals > 0 {
                    *conf = crate::offline::DEFAULT_CONFIDENCE;
                    let streak = self.confirm_streak.entry(key).or_insert(0);
                    *streak += 1;
                    if *streak >= CONFIRMATIONS_TO_GRADUATE {
                        graduated.push(key);
                    }
                    continue;
                }
                self.confirm_streak.insert(key, 0);
                *conf /= 2;
                self.epoch_blend_decays += 1;
                self.profile_blend_decays += 1;
                if *conf < CONFIDENCE_FLOOR {
                    released.push(key);
                }
            }
            for key in released {
                self.imported.remove(&key);
                self.confirm_streak.remove(&key);
                self.decisions.remove(&key);
                self.epoch_blend_released += 1;
                self.profile_rows_released += 1;
            }
            for key in graduated {
                self.imported.remove(&key);
                self.confirm_streak.remove(&key);
                self.profile_rows_graduated += 1;
            }
        }

        // §7.4: stable (non-trivial) decisions → survivor tracking off;
        // >10% average-pause growth while off → back on. Never shut down
        // while a conflict is still being resolved — the resolver needs
        // age data to judge its probing batches — nor while blended
        // imported priors remain: their canary samples are the only live
        // evidence the decay has, and it flows through the survivor path.
        if self.config.survivor_shutdown
            && !off
            && !self.decisions.is_empty()
            && self.resolver.open_conflicts() == 0
            && (!self.config.blend || !self.any_probationary())
        {
            // The working set iterates in key order, as the hash expects.
            let sorted: Vec<(u32, u8)> = self.decisions.iter().map(|(&k, &v)| (k, v)).collect();
            let hash = SurvivorTracking::hash_decisions(&sorted);
            let mean = if self.window_pauses == 0 {
                0.0
            } else {
                self.window_pause_ms / self.window_pauses as f64
            };
            self.survivor.on_inference(hash, mean);
        }
        self.window_pause_ms = 0.0;
        self.window_pauses = 0;

        let (version, changed_rows) = if off {
            // `Off` publishes the all-gen-0 (empty) table: every context
            // falls back to NG2C's unprofiled semantics. The working set
            // is retained untouched for recovery — contexts are demoted,
            // never remapped.
            let next = DecisionTable::next_from(
                self.store.load(),
                &BTreeMap::new(),
                std::iter::empty::<u16>(),
            );
            let changed = next.changed_rows();
            (self.store.publish(next), changed)
        } else {
            self.stage_publish()
        };
        if changed_rows > 0 {
            // Stability marker for warmup measurement: a fully-warm run's
            // published table never changes, so this stays 0 (the
            // mid-epoch warm-start publish in `on_jit_compile`
            // deliberately does not count).
            self.last_change_epoch = self.inferences + 1;
        }

        // Attribute the epoch's modeled stage costs and close its
        // telemetry record.
        let publish_ns = changed_rows as u64 * env.cost.profile_alloc_ns;
        let t = &env.telemetry;
        t.add(Bucket::ProfilerInfer, infer_ns);
        t.add(Bucket::ProfilerResolve, resolve_ns);
        t.add(Bucket::ProfilerPublish, publish_ns);
        t.bump(CounterId::EpochsInferred, 1);
        if self.epoch_blend_decays > 0 {
            t.bump(CounterId::ProfileBlendDecays, self.epoch_blend_decays);
        }
        t.record(HistId::ProfilerEpochNs, infer_ns + resolve_ns + publish_ns);
        t.registry().set_gauge(rolp_telemetry::GaugeId::DecisionVersion, version);

        if tracing {
            use rolp_trace::EventKind;
            let now = env.clock.now();
            for (action, size) in self.resolver.take_batch_log() {
                env.trace.emit_global(now, EventKind::ConflictBatch { action, size });
            }
            // The working set iterates sorted, so the event stream is
            // deterministic.
            for (&key, &gen) in &self.decisions {
                if decisions_before.get(&key) == Some(&gen) {
                    continue;
                }
                let from_gen = decisions_before.get(&key).copied().unwrap_or(0);
                let reason = if gen >= from_gen { "inferred" } else { "demoted" };
                env.trace.emit_global(
                    now,
                    EventKind::DecisionChange { context: key, from_gen, to_gen: gen, reason },
                );
            }
            if self.survivor.enabled() != survivor_before {
                env.trace.emit_global(
                    now,
                    EventKind::SurvivorTracking { enabled: self.survivor.enabled() },
                );
            }
            env.trace.emit_global(
                now,
                EventKind::ProfilerInference {
                    epoch: self.inferences + 1,
                    old_rows: self.old.touched_rows().len() as u64,
                    old_bytes: self.old.memory_bytes(),
                    new_conflicts,
                    unresolved_conflicts,
                    decisions: self.decisions.len() as u64,
                    demotions: self.demotions,
                },
            );
            env.trace.emit_global(
                now,
                EventKind::DecisionPublish {
                    version,
                    changed_rows: changed_rows as u64,
                    decisions: self.decisions.len() as u64,
                },
            );
            if self.epoch_blend_decays > 0 || self.epoch_blend_released > 0 {
                env.trace.emit_global(
                    now,
                    EventKind::ProfileBlend {
                        epoch: self.inferences + 1,
                        decayed: self.epoch_blend_decays,
                        released: self.epoch_blend_released,
                        remaining: self.imported.len() as u64,
                    },
                );
            }
        }

        self.old.clear_counts();
        self.inferences += 1;
    }

    /// Drains every thread's age-0 delta buffer into the OLD table:
    /// contexts are sorted and run-length encoded, then applied through
    /// [`LifetimeTable::record_allocations`] — one row lookup (and, on
    /// the sharded backend, one lock acquisition) per distinct context
    /// instead of one per allocation. Age-0 increments commute, so the
    /// table state every safepoint-side reader sees is identical to the
    /// per-allocation path regardless of how threads interleaved since
    /// the last flush. Returns the number of records applied.
    pub fn flush_age0(&mut self) -> u64 {
        let mut batch: Vec<u32> = Vec::new();
        for buf in &mut self.pending_age0 {
            batch.append(buf);
        }
        if batch.is_empty() {
            return 0;
        }
        batch.sort_unstable();
        let total = batch.len() as u64;
        let mut i = 0;
        while i < batch.len() {
            let ctx = batch[i];
            let mut j = i + 1;
            while j < batch.len() && batch[j] == ctx {
                j += 1;
            }
            self.old.record_allocations(ctx, (j - i) as u32);
            i = j;
        }
        total
    }

    /// Age-0 records buffered since the last safepoint flush.
    pub fn pending_age0_records(&self) -> u64 {
        self.pending_age0.iter().map(|b| b.len() as u64).sum()
    }
}

impl<T: LifetimeTable> VmProfiler for RolpProfiler<T> {
    fn on_jit_compile(&mut self, program: &Program, jit: &mut JitState, method: MethodId) {
        // Keep the JIT's allocation-profiling gate in sync with the
        // governor state (idempotent; covers an `Off` start state before
        // the first transition ever fires).
        jit.set_alloc_profiling(!self.profiling_off);
        // Resolve the offline profile against the program once, with full
        // shape validation: entries whose location no longer resolves are
        // counted and skipped, never blindly applied (both `--profile-in`
        // and the legacy `--import-profile` alias land here).
        if self.pending_offline.is_none() {
            let resolved = match self.config.offline_profile.as_ref() {
                Some(p) => {
                    let r = p.resolve_validated(program);
                    self.import_validation = Some(r.validation);
                    self.import_pending_note = true;
                    if !r.call_sites.is_empty() {
                        // Re-freeze the exporting run's distinguishing
                        // call sites so conflicted contexts separate from
                        // epoch 0 instead of re-probing.
                        self.resolver.import_frozen(r.call_sites.iter().copied());
                        if self.config.level == ProfilingLevel::Real && !self.call_shed {
                            self.resolver.reapply_to_jit(jit);
                        }
                    }
                    r.decisions
                }
                None => HashMap::new(),
            };
            self.pending_offline = Some(resolved);
        }
        let decl = program.method(method);
        if !self.config.filters.matches(decl.package()) {
            return;
        }
        let mut warm_started = false;
        for &site in program.alloc_sites_of(method) {
            if let Some(pid) = jit.assign_profile_id(site) {
                self.pid_to_site.insert(pid, site);
                self.max_profile_id = self.max_profile_id.max(pid);
                // POLM2-style warm start: a matching offline entry becomes
                // a decision the moment the site is compiled, carrying its
                // confidence into the blend decay.
                if let Some(&(gen, conf)) = self.pending_offline.as_ref().and_then(|m| m.get(&site))
                {
                    let key = pack(pid, 0);
                    self.decisions.entry(key).or_insert(gen);
                    self.imported.insert(key, conf);
                    warm_started = true;
                }
            }
        }
        if warm_started {
            // Mid-epoch republish (no trace handle here): the allocation
            // fast path must see warm-start decisions immediately, not at
            // the next inference epoch.
            self.stage_publish();
        }
        if self.config.level == ProfilingLevel::SlowCallProfiling && !self.call_shed {
            for &cs in program.call_sites_of(method) {
                jit.enable_call_profiling(cs);
            }
        }
    }

    fn on_alloc(&mut self, site_profile_id: u16, tss: u16, thread: ThreadId) -> u32 {
        // `SitesOnly` and below: stack-state hashing is off, contexts are
        // site-id-only. A `TssCollision` fault instead forces every
        // context into one adversarial TSS row.
        let tss = if self.strip_tss { 0 } else { self.fault_tss.unwrap_or(tss) };
        let context = pack(site_profile_id, tss);
        // `Off` normally never reaches here (the JIT gate patches the
        // profiling instructions out); direct-driven calls still must not
        // feed the table.
        if !self.profiling_off {
            if self.config.batch_age0 {
                // Batched path: append to the thread's private delta
                // buffer; the shared table is untouched until the next
                // safepoint flush.
                let t = thread.0 as usize;
                if t >= self.pending_age0.len() {
                    self.pending_age0.resize_with(t + 1, Vec::new);
                }
                self.pending_age0[t].push(context);
            } else {
                self.old.record_allocation(context);
            }
            self.profiled_allocations += 1;
        }
        context
    }

    fn exception_hook_installed(&self) -> bool {
        self.config.exception_hook
    }

    fn on_unprofiled_alloc(&mut self) {
        self.unprofiled_allocations += 1;
    }
}

impl<T: LifetimeTable> GcHooks for RolpProfiler<T> {
    fn advise(&self, context: u32) -> Option<u8> {
        // One lock-free read of the published snapshot — the same data
        // plane the mutator fast path uses.
        self.store.load().advise(context)
    }

    fn survivor_tracking_enabled(&self) -> bool {
        self.survivor.enabled()
    }

    fn on_survivor(&mut self, header: ObjectHeader, from: RegionKind, worker: u32) {
        // Only young-generation survivals carry age information (see
        // `GcHooks::on_survivor`); tenured/dynamic copies are skipped.
        if !from.is_young() {
            return;
        }
        // Governor `Off`: the window's survivals carry no usable signal
        // (nothing was recorded at allocation), so skip the table work.
        if self.profiling_off {
            return;
        }
        // Biased-locked objects and corrupted contexts are discarded
        // (§3.2.2).
        let Some(context) = header.allocation_context() else {
            return;
        };
        if !self.old.context_known(context, self.max_profile_id) {
            return;
        }
        let idx = (worker as usize) % self.workers.len();
        self.workers[idx].record_survival(context, header.age());
        self.survivor_records += 1;
    }

    fn on_liveness(&mut self, context_live: &HashMap<u32, u64>) {
        self.liveness_history.push_back(context_live.clone());
        while self.liveness_history.len() > 6 {
            self.liveness_history.pop_front();
        }
    }

    fn on_gc_end(&mut self, env: &mut VmEnv, info: &GcCycleInfo) {
        // Safepoint flush of the batched age-0 deltas — before anything
        // this pause reads from or merges into the OLD table.
        let flushed = self.flush_age0();
        if flushed > 0 {
            env.telemetry.bump(CounterId::Age0Flushed, flushed);
        }
        // Flush the import note recorded at JIT-compile time (no trace or
        // telemetry handle exists inside `on_jit_compile`).
        if self.import_pending_note {
            self.import_pending_note = false;
            if let Some(v) = self.import_validation {
                env.telemetry.bump(CounterId::ProfileEntriesImported, v.entries_applied as u64);
                if env.trace.is_enabled() {
                    env.trace.emit_global(
                        env.clock.now(),
                        rolp_trace::EventKind::ProfileImport {
                            entries: v.entries_total as u64,
                            applied: v.entries_applied as u64,
                            rejected: v.entries_rejected as u64,
                            call_sites: v.call_sites_applied as u64,
                            had_fingerprint: v.fingerprint_checked,
                            fingerprint_matched: v.fingerprint_matched,
                        },
                    );
                }
            }
        }
        // Fault injection (deterministic, seedable): applied at the
        // safepoint, before the merge, so every injected record is part of
        // the same epoch a real record of that cycle would land in.
        let cycle_faults = match self.faults.as_mut() {
            Some(f) => f.on_cycle(info.cycle),
            None => CycleFaults::default(),
        };
        if cycle_faults.exhaust_site_ids {
            env.jit.force_profile_id_exhaustion();
        }
        if cycle_faults.forced_tss.is_some() {
            self.fault_tss = cycle_faults.forced_tss;
        }
        for &ctx in &cycle_faults.flood_contexts {
            if !self.profiling_off {
                self.old.record_allocation(ctx);
            }
        }
        // Floods and bursts charge the governor's record budget whether or
        // not profiling is currently off — sustained pressure must keep a
        // degraded profiler degraded.
        let injected = cycle_faults.flood_contexts.len() as u64 + cycle_faults.burst_events;
        self.injected_records += injected;
        // The synthetic records stand in for record-path work the
        // simulation never executes, so their modeled cost lands in the
        // profiling bucket — that is what pushes the *measured* overhead
        // signal over budget under a pressure-spike plan.
        env.telemetry.add(Bucket::MutatorProfiling, injected * env.cost.profile_alloc_ns);

        // Pipeline stage 2 (§7.6): merge the GC workers' private tables at
        // the safepoint, sorted by (context, age) so the end-state is
        // independent of how survivor work was split across workers. A
        // `drop-merge` fault discards the workers' records instead; a
        // `delay-merge` fault leaves them buffered until the next cycle.
        let merge = if cycle_faults.drop_merge {
            let mut discard = OldTable::new();
            let dropped = crate::old_table::merge_worker_tables(&mut self.workers, &mut discard);
            self.dropped_merge_records += dropped.total;
            None
        } else if cycle_faults.delay_merge {
            self.delayed_merges += 1;
            None
        } else {
            let parallelism = self.config.gc_workers.max(1);
            Some(self.old.merge_workers(&mut self.workers, parallelism))
        };
        // `shard_merge_ns` is the *modeled* critical path of the
        // fanned-out apply — the busiest shard's records at the
        // survivor-path price. Wall-clocking the fan-out would make
        // repeat runs byte-different (the repo's determinism contract)
        // and is unavailable under Miri anyway.
        let mut shard_merge_ns = 0u64;
        if self.old.table_shards().is_some() {
            if merge.is_some() {
                let critical = self
                    .old
                    .last_shard_merge_counts()
                    .and_then(|per_shard| per_shard.iter().copied().max())
                    .unwrap_or(0);
                shard_merge_ns = critical * env.cost.profile_survivor_ns;
            }
            env.telemetry.bump(CounterId::ShardMergeNs, shard_merge_ns);
            let waits = self.old.shard_lock_waits();
            env.telemetry.bump(CounterId::ShardLockWaits, waits - self.shard_waits_seen);
            self.shard_waits_seen = waits;
        }
        if let Some(merge) = &merge {
            // Modeled merge cost: the safepoint-side fold is priced per
            // record like the survivor path that produced them.
            env.telemetry.add(Bucket::ProfilerMerge, merge.total * env.cost.profile_survivor_ns);
            if env.trace.is_enabled() && merge.total > 0 {
                // Per-worker record counts, workers ≥ 8 folded into the
                // last slot (the event payload is fixed-size).
                let mut records = [0u64; 8];
                for (w, &n) in merge.per_worker.iter().enumerate() {
                    records[w.min(7)] += n;
                }
                env.trace.emit_global(
                    env.clock.now(),
                    rolp_trace::EventKind::OldTableMerge {
                        cycle: info.cycle,
                        workers: merge.per_worker.len() as u32,
                        records,
                        total_records: merge.total,
                    },
                );
                // Sharded backends additionally report how the apply
                // fanned out across shards.
                if let (Some(shards), Some(per_shard)) =
                    (self.old.table_shards(), self.old.last_shard_merge_counts())
                {
                    let mut records = [0u64; 8];
                    for (s, &n) in per_shard.iter().enumerate() {
                        records[s.min(7)] += n;
                    }
                    env.trace.emit_global(
                        env.clock.now(),
                        rolp_trace::EventKind::ShardMerge {
                            cycle: info.cycle,
                            shards: shards as u32,
                            records,
                            total_records: merge.total,
                            merge_ns: shard_merge_ns,
                        },
                    );
                }
            }
        }

        // §7.2.3: verify/repair every thread's stack state against the
        // real execution stack, while the world is still stopped.
        for t_idx in 0..env.threads.len() {
            let expected = {
                let t = &env.threads[t_idx];
                t.expected_tss(|cs| env.jit.call_site(cs).delta)
            };
            let t = &mut env.threads[t_idx];
            if t.tss != expected {
                t.reconcile_tss(expected);
                self.reconciliations += 1;
            }
        }

        self.window_pause_ms += info.duration.as_millis_f64();
        self.window_pauses += 1;

        // Pipeline stages 3–5: inference once every 16 GC cycles (§4).
        if info.cycle.is_multiple_of(self.config.inference_period) {
            self.run_inference(env, info);
        }

        // Flight recorder: publish the call-profiling toggles this cycle's
        // resolution (or a SlowCallProfiling compile) performed. Drained
        // after inference so the batch just enabled appears in-stream.
        if env.trace.is_enabled() {
            let now = env.clock.now();
            for (cs, enabled) in env.jit.take_toggle_log() {
                env.trace.emit_global(
                    now,
                    rolp_trace::EventKind::CallProfiling { call_site: cs.0, enabled },
                );
            }
        }
    }
}

/// Builds the runtime backend for a thread count: one mutator thread gets
/// the exact sequential table; real parallelism gets the concurrent one.
pub fn backend_for_threads(threads: u32) -> TableBackend {
    backend_for(threads, None)
}

/// Builds the runtime backend from the thread count and an optional
/// shard-count override. `None` keeps the historical thread-count
/// selection bit for bit; `Some(n)` selects the sharded table with `n`
/// shards (`n` must be a power of two — the CLI normalizes user input).
pub fn backend_for(threads: u32, table_shards: Option<usize>) -> TableBackend {
    match table_shards {
        Some(shards) => TableBackend::Sharded(crate::sharded_table::ShardedOldTable::new(shards)),
        None if threads > 1 => TableBackend::Concurrent(SharedOldTable::new()),
        None => TableBackend::Sequential(OldTable::new()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rolp_metrics::{PauseKind, SimTime};
    use rolp_vm::{CostModel, JitConfig, ProgramBuilder};

    fn env_with_program() -> (VmEnv, MethodId, AllocSiteId) {
        let mut b = ProgramBuilder::new();
        let m = b.method("app.data.Maker::make", 100, false);
        let site = b.alloc_site(m, 1);
        let program = b.build();
        let heap = rolp_heap::Heap::new(rolp_heap::HeapConfig {
            region_bytes: 4096,
            max_heap_bytes: 1 << 20,
        });
        let env = VmEnv::new(heap, CostModel::default(), program, JitConfig::default(), 1);
        (env, m, site)
    }

    fn cycle_info(cycle: u64) -> GcCycleInfo {
        GcCycleInfo {
            cycle,
            kind: PauseKind::Young,
            bytes_copied: 0,
            survivors: 0,
            duration: SimTime::from_millis(5),
            tenured_fragmentation: 0.0,
            dynamic_gen_garbage: [0.0; 16],
        }
    }

    #[test]
    fn jit_compile_assigns_profile_ids_respecting_filters() {
        let (mut env, m, site) = env_with_program();
        let program = std::rc::Rc::clone(&env.program);

        let mut p = RolpProfiler::new(RolpConfig {
            filters: PackageFilters::include(&["app.data"]),
            ..Default::default()
        });
        p.on_jit_compile(&program, &mut env.jit, m);
        assert!(env.jit.alloc_site(site).profile_id.is_some());

        let mut env2 = env_with_program().0;
        let mut p2 = RolpProfiler::new(RolpConfig {
            filters: PackageFilters::include(&["other.pkg"]),
            ..Default::default()
        });
        p2.on_jit_compile(&program, &mut env2.jit, m);
        assert!(env2.jit.alloc_site(site).profile_id.is_none(), "filtered out");
    }

    #[test]
    fn allocation_and_survival_produce_decisions() {
        let (mut env, m, _site) = env_with_program();
        let program = std::rc::Rc::clone(&env.program);
        let mut p = RolpProfiler::new(RolpConfig::default());
        p.on_jit_compile(&program, &mut env.jit, m);

        // Simulate 16 GC cycles where objects from this context reliably
        // survive two collections then die.
        let pid = 1u16;
        for cycle in 1..=16u64 {
            for _ in 0..20 {
                let ctx = p.on_alloc(pid, 0, ThreadId(0));
                // Each object survives twice.
                let h = ObjectHeader::new(1).with_allocation_context(ctx);
                p.on_survivor(h, RegionKind::Eden, 0);
                p.on_survivor(h.with_age(1), RegionKind::Eden, 1);
            }
            p.on_gc_end(&mut env, &cycle_info(cycle));
        }
        assert_eq!(p.stats(&program, &env.jit).inferences, 1);
        let advised = p.advise(pack(pid, 0));
        assert_eq!(advised, Some(2), "objects dying at age 2 pretenure to gen 2");
    }

    #[test]
    fn the_concurrent_backend_reaches_the_same_decisions() {
        let (mut env, m, _site) = env_with_program();
        let program = std::rc::Rc::clone(&env.program);
        let mut p = RolpProfiler::with_backend(RolpConfig::default(), backend_for_threads(4));
        assert!(matches!(p.old, TableBackend::Concurrent(_)));
        p.on_jit_compile(&program, &mut env.jit, m);
        for cycle in 1..=16u64 {
            for _ in 0..20 {
                let ctx = p.on_alloc(1, 0, ThreadId(0));
                let h = ObjectHeader::new(1).with_allocation_context(ctx);
                p.on_survivor(h, RegionKind::Eden, 0);
                p.on_survivor(h.with_age(1), RegionKind::Eden, 1);
            }
            p.on_gc_end(&mut env, &cycle_info(cycle));
        }
        assert_eq!(p.advise(pack(1, 0)), Some(2), "same verdict as the sequential backend");
    }

    #[test]
    fn inference_publishes_versioned_snapshots() {
        let (mut env, m, _site) = env_with_program();
        let program = std::rc::Rc::clone(&env.program);
        let mut p = RolpProfiler::new(RolpConfig::default());
        p.on_jit_compile(&program, &mut env.jit, m);
        let store = p.decision_store();
        assert_eq!(store.version(), 0, "starts on the empty snapshot");
        assert_eq!(store.load().advise(pack(1, 0)), None);

        // A mutator pins the pre-epoch snapshot...
        let held = store.snapshot();

        for cycle in 1..=16u64 {
            for _ in 0..20 {
                let ctx = p.on_alloc(1, 0, ThreadId(0));
                let h = ObjectHeader::new(1).with_allocation_context(ctx);
                p.on_survivor(h, RegionKind::Eden, 0);
                p.on_survivor(h.with_age(1), RegionKind::Eden, 1);
            }
            p.on_gc_end(&mut env, &cycle_info(cycle));
        }

        // ...the epoch published version 1 with the new decision...
        assert_eq!(store.version(), 1);
        assert_eq!(store.load().advise(pack(1, 0)), Some(2));
        assert!(store.load().changed_rows() >= 1);
        // ...while the held snapshot still reads the old, consistent view.
        assert_eq!(held.version(), 0);
        assert_eq!(held.advise(pack(1, 0)), None);
    }

    #[test]
    fn survivors_with_biased_headers_are_discarded() {
        let (_env, _m, _site) = env_with_program();
        let mut p = RolpProfiler::new(RolpConfig::default());
        let ctx = p.on_alloc(1, 0, ThreadId(0));
        let biased = ObjectHeader::new(1).with_allocation_context(ctx).with_bias(3);
        p.on_survivor(biased, RegionKind::Eden, 0);
        assert_eq!(p.survivor_records, 0);
    }

    #[test]
    fn unknown_contexts_are_discarded() {
        let mut p = RolpProfiler::new(RolpConfig::default());
        // No profile id was ever assigned; upper bits look like garbage.
        let h = ObjectHeader::new(1).with_allocation_context(pack(999, 4));
        p.on_survivor(h, RegionKind::Eden, 0);
        assert_eq!(p.survivor_records, 0);
    }

    #[test]
    fn gc_end_reconciles_corrupted_stack_state() {
        let (mut env, _m, _site) = env_with_program();
        let mut p = RolpProfiler::new(RolpConfig::default());
        // Corrupt thread 0's TSS with no frames on its stack.
        env.threads[0].tss = 1234;
        p.on_gc_end(&mut env, &cycle_info(1));
        assert_eq!(env.threads[0].tss, 0);
        assert_eq!(p.reconciliations, 1);
    }

    #[test]
    fn fragmentation_demotes_estimates() {
        let (mut env, m, _site) = env_with_program();
        let program = std::rc::Rc::clone(&env.program);
        let mut p = RolpProfiler::new(RolpConfig::default());
        p.on_jit_compile(&program, &mut env.jit, m);

        // Build a decision for generation 5 (objects die at age 5).
        for cycle in 1..=16u64 {
            for _ in 0..20 {
                let ctx = p.on_alloc(1, 0, ThreadId(0));
                let mut h = ObjectHeader::new(1).with_allocation_context(ctx);
                for age in 0..5 {
                    p.on_survivor(h, RegionKind::Eden, 0);
                    h = h.with_age(age + 1);
                }
            }
            let mut info = cycle_info(cycle);
            if cycle == 16 {
                // Fragmentation in generation 5 on the inference cycle.
                info.tenured_fragmentation = 0.8;
                info.dynamic_gen_garbage[5] = 0.9;
            }
            p.on_gc_end(&mut env, &info);
        }
        assert_eq!(p.advise(pack(1, 0)), Some(4), "demoted from 5 to 4");
        assert!(p.demotions >= 1);
    }

    #[test]
    fn survivor_tracking_shuts_down_when_stable() {
        let (mut env, m, _site) = env_with_program();
        let program = std::rc::Rc::clone(&env.program);
        let mut p = RolpProfiler::new(RolpConfig::default());
        p.on_jit_compile(&program, &mut env.jit, m);
        assert!(p.survivor_tracking_enabled());

        // Three inference rounds with identical, *non-empty* decisions:
        // objects from one context reliably survive once.
        for cycle in 1..=48u64 {
            for _ in 0..10 {
                let ctx = p.on_alloc(1, 0, ThreadId(0));
                let h = ObjectHeader::new(1).with_allocation_context(ctx);
                p.on_survivor(h, RegionKind::Eden, 0);
            }
            p.on_gc_end(&mut env, &cycle_info(cycle));
        }
        assert!(!p.survivor_tracking_enabled());
        let stats = p.stats(&program, &env.jit);
        assert_eq!(stats.survivor_shutdowns, 1);
        assert!(stats.decisions > 0, "frozen decisions survive the shutdown");
    }

    fn tight_governor() -> GovernorConfig {
        GovernorConfig {
            max_record_events_per_epoch: 10,
            calm_epochs_to_recover: 2,
            ..Default::default()
        }
    }

    /// One hot epoch: 20 allocations surviving twice per cycle.
    fn drive_hot_epoch(
        p: &mut RolpProfiler,
        env: &mut VmEnv,
        cycles: std::ops::RangeInclusive<u64>,
    ) {
        for cycle in cycles {
            for _ in 0..20 {
                let ctx = p.on_alloc(1, 0, ThreadId(0));
                let h = ObjectHeader::new(1).with_allocation_context(ctx);
                p.on_survivor(h, RegionKind::Eden, 0);
                p.on_survivor(h.with_age(1), RegionKind::Eden, 1);
            }
            p.on_gc_end(env, &cycle_info(cycle));
        }
    }

    #[test]
    fn governor_degrades_to_off_then_recovers_without_remapping() {
        let (mut env, m, _site) = env_with_program();
        let program = std::rc::Rc::clone(&env.program);
        let mut p = RolpProfiler::new(RolpConfig {
            governor: Some(tight_governor()),
            survivor_shutdown: false,
            ..Default::default()
        });
        p.on_jit_compile(&program, &mut env.jit, m);

        // Epoch 1 learns the decision *and* blows the record budget.
        drive_hot_epoch(&mut p, &mut env, 1..=16);
        assert_eq!(p.governor_state(), Some(GovernorState::Reduced));
        assert_eq!(p.advise(pack(1, 0)), Some(2), "decision published before degrading further");

        // Two more hot epochs walk the machine down to Off.
        drive_hot_epoch(&mut p, &mut env, 17..=48);
        assert_eq!(p.governor_state(), Some(GovernorState::Off));
        assert!(!env.jit.alloc_profiling_enabled(), "fast path gated in Off");
        assert_eq!(p.advise(pack(1, 0)), None, "Off publishes the all-gen-0 table");
        assert!(!p.decisions().is_empty(), "working set retained for recovery");

        // Calm epochs: hysteresis climbs back and republishes the same
        // decision — the context was demoted, never remapped.
        for cycle in 49..=80u64 {
            p.on_gc_end(&mut env, &cycle_info(cycle));
        }
        assert!(p.governor_state() < Some(GovernorState::Off));
        assert!(env.jit.alloc_profiling_enabled());
        assert_eq!(p.advise(pack(1, 0)), Some(2), "same decision back after recovery");
        let stats = p.stats(&program, &env.jit);
        assert!(stats.governor_transitions >= 4);
        assert_eq!(stats.governor_state, Some(p.governor_state().unwrap().label()));
    }

    #[test]
    fn sites_only_state_strips_the_stack_state_hash() {
        let (_env, _m, _site) = env_with_program();
        let mut p = RolpProfiler::new(RolpConfig {
            governor: Some(GovernorConfig {
                start_state: GovernorState::SitesOnly,
                ..Default::default()
            }),
            ..Default::default()
        });
        assert_eq!(p.on_alloc(7, 0x1234, ThreadId(0)), pack(7, 0), "TSS forced to 0");
    }

    #[test]
    fn fault_plan_forces_id_exhaustion_and_tss_collisions() {
        use rolp_faults::{FaultKind, FaultPlan};
        let (mut env, m, _site) = env_with_program();
        let program = std::rc::Rc::clone(&env.program);
        let mut p = RolpProfiler::new(RolpConfig {
            fault_plan: Some(FaultPlan {
                name: "test".into(),
                seed: 1,
                faults: vec![
                    FaultKind::SiteIdExhaustion { at_cycle: 1 },
                    FaultKind::TssCollision { from_cycle: 2, tss: 0xAA },
                ],
            }),
            ..Default::default()
        });
        p.on_jit_compile(&program, &mut env.jit, m);
        p.on_gc_end(&mut env, &cycle_info(1));
        assert!(env.jit.profile_ids_exhausted());
        p.on_gc_end(&mut env, &cycle_info(2));
        assert_eq!(p.on_alloc(1, 0x5555, ThreadId(0)), pack(1, 0xAA), "collided TSS is sticky");
    }

    #[test]
    fn merge_chaos_drops_and_delays_without_panicking() {
        use rolp_faults::FaultPlan;
        let (mut env, m, _site) = env_with_program();
        let program = std::rc::Rc::clone(&env.program);
        let mut p = RolpProfiler::new(RolpConfig {
            fault_plan: Some(FaultPlan::named("merge-chaos").unwrap()),
            governor: Some(GovernorConfig::default()),
            ..Default::default()
        });
        p.on_jit_compile(&program, &mut env.jit, m);
        drive_hot_epoch(&mut p, &mut env, 1..=64);
        let stats = p.stats(&program, &env.jit);
        assert!(stats.dropped_merge_records > 0, "drop-merge%3 fired");
        assert!(stats.delayed_merges > 0, "delay-merge%5 fired");
        assert!(stats.injected_fault_events > 0, "burst charged the record budget");
        assert!(stats.governor_state.is_some());
    }

    #[test]
    fn imported_profile_warm_starts_with_validation() {
        let (mut env, m, _site) = env_with_program();
        let program = std::rc::Rc::clone(&env.program);
        let profile: crate::offline::DecisionProfile = format!(
            "rolp-profile-v1\nfingerprint {:016x}\nepochs 5\nentries 2\n\
             decision app.data.Maker::make@1 5 80\ndecision gone.Method::x@9 3 50\n",
            crate::offline::program_fingerprint(&program)
        )
        .parse()
        .unwrap();
        let mut p =
            RolpProfiler::new(RolpConfig { offline_profile: Some(profile), ..Default::default() });
        p.on_jit_compile(&program, &mut env.jit, m);
        assert_eq!(p.advise(pack(1, 0)), Some(5), "published before the first epoch");
        let v = p.import_validation().expect("validated at first compile");
        assert!(v.fingerprint_checked && v.fingerprint_matched);
        assert_eq!(v.entries_applied, 1);
        assert_eq!(v.entries_rejected, 1, "the stale entry was rejected, not applied");
        assert_eq!(p.confidence_of(pack(1, 0)), 80);

        // A quiet run never changes the published table: stable from
        // epoch 0.
        for cycle in 1..=32u64 {
            p.on_gc_end(&mut env, &cycle_info(cycle));
        }
        let stats = p.stats(&program, &env.jit);
        assert_eq!(stats.last_change_epoch, 0, "warm start is stable from epoch 0");
        assert_eq!(stats.profile_rows_active, 1);
        assert_eq!(stats.profile_import.unwrap().entries_applied, 1);
    }

    #[test]
    fn blend_decay_releases_drifted_imported_rows() {
        let (mut env, m, _site) = env_with_program();
        let program = std::rc::Rc::clone(&env.program);
        let profile: crate::offline::DecisionProfile =
            "rolp-profile-v1\nentries 1\ndecision app.data.Maker::make@1 5 40\n".parse().unwrap();
        let mut p =
            RolpProfiler::new(RolpConfig { offline_profile: Some(profile), ..Default::default() });
        p.on_jit_compile(&program, &mut env.jit, m);
        assert_eq!(p.advise(pack(1, 0)), Some(5));

        // One epoch = one inference window (16 cycles). Each epoch sees
        // well over 2*CANARY_STRIDE allocations from the imported
        // context, so the canary sample is large enough to count as
        // evidence; `surviving_canaries` is how many of them live past
        // their first young collection.
        let mut cycle = 0u64;
        let mut drive_epoch = |p: &mut RolpProfiler, env: &mut VmEnv, surviving_canaries: u32| {
            for _ in 0..16 {
                cycle += 1;
                for i in 0..20u32 {
                    let ctx = p.on_alloc(1, 0, ThreadId(0));
                    if cycle % 16 == 1 && i < surviving_canaries {
                        let h = ObjectHeader::new(1).with_allocation_context(ctx);
                        p.on_survivor(h, RegionKind::Eden, 0);
                    }
                }
                p.on_gc_end(env, &cycle_info(cycle));
            }
        };

        // Matching traffic: canaries survive, so the prior is confirmed
        // and its confidence restored to full.
        drive_epoch(&mut p, &mut env, 3);
        assert_eq!(p.confidence_of(pack(1, 0)), crate::offline::DEFAULT_CONFIDENCE);
        assert_eq!(p.stats(&program, &env.jit).profile_blend_decays, 0);

        // Drifted traffic: every canary dies before its first
        // collection. 100 -> 50 -> 25 -> 12 (< floor): released on the
        // third contradicting epoch.
        drive_epoch(&mut p, &mut env, 0);
        drive_epoch(&mut p, &mut env, 0);
        assert_eq!(p.advise(pack(1, 0)), Some(5), "still holding the prior");
        drive_epoch(&mut p, &mut env, 0);
        assert_eq!(p.advise(pack(1, 0)), None, "released: the row is live inference's again");
        let stats = p.stats(&program, &env.jit);
        assert_eq!(stats.profile_blend_decays, 3);
        assert_eq!(stats.profile_rows_released, 1);
        assert_eq!(stats.profile_rows_active, 0);
        assert_eq!(stats.last_change_epoch, 4, "the release changed the table");
    }

    /// A prior confirmed for `CONFIRMATIONS_TO_GRADUATE` consecutive
    /// epochs graduates out of probation: the canary flag is dropped,
    /// the decision stays, survivor tracking is free to shut down again
    /// (§7.4), and none of it counts as a table change.
    #[test]
    fn confirmed_priors_graduate_to_full_trust() {
        let (mut env, m, _site) = env_with_program();
        let program = std::rc::Rc::clone(&env.program);
        let profile: crate::offline::DecisionProfile =
            "rolp-profile-v1\nentries 1\ndecision app.data.Maker::make@1 5 100\n".parse().unwrap();
        let mut p =
            RolpProfiler::new(RolpConfig { offline_profile: Some(profile), ..Default::default() });
        p.on_jit_compile(&program, &mut env.jit, m);
        assert!(p.store.load().is_canary(pack(1, 0)), "probationary rows are canary-flagged");

        // Confirming traffic: every epoch some canaries survive their
        // first young collection.
        let mut cycle = 0u64;
        for _ in 0..CONFIRMATIONS_TO_GRADUATE {
            for _ in 0..16 {
                cycle += 1;
                for i in 0..20u32 {
                    let ctx = p.on_alloc(1, 0, ThreadId(0));
                    if i < 3 {
                        let h = ObjectHeader::new(1).with_allocation_context(ctx);
                        p.on_survivor(h, RegionKind::Eden, 0);
                    }
                }
                p.on_gc_end(&mut env, &cycle_info(cycle));
            }
        }
        assert_eq!(p.advise(pack(1, 0)), Some(5), "the graduated prior still governs");
        assert!(!p.store.load().is_canary(pack(1, 0)), "graduation drops the canary flag");
        assert!(!p.any_probationary(), "nothing left to probe -> §7.4 shutdown applies again");
        let stats = p.stats(&program, &env.jit);
        assert_eq!(stats.profile_rows_graduated, 1);
        assert_eq!(stats.profile_rows_active, 1, "graduated rows still count as active");
        assert_eq!(stats.profile_blend_decays, 0);
        assert_eq!(stats.last_change_epoch, 0, "graduation is not a table change");
    }

    /// A generation-0 prior says the object dies around its first
    /// collection — surviving canaries are structurally not expected, so
    /// zero survivals cannot contradict it and the row must never decay
    /// (a warm start importing such a row stays stable from epoch 0).
    #[test]
    fn generation_zero_priors_are_exempt_from_canary_decay() {
        let (mut env, m, _site) = env_with_program();
        let program = std::rc::Rc::clone(&env.program);
        let profile: crate::offline::DecisionProfile =
            "rolp-profile-v1\nentries 1\ndecision app.data.Maker::make@1 0 100\n".parse().unwrap();
        let mut p =
            RolpProfiler::new(RolpConfig { offline_profile: Some(profile), ..Default::default() });
        p.on_jit_compile(&program, &mut env.jit, m);
        assert_eq!(p.advise(pack(1, 0)), Some(0));
        assert!(!p.store.load().is_canary(pack(1, 0)), "gen-0 rows are not canary-flagged");

        // Heavy allocation with zero survivals, epoch after epoch — the
        // evidence that releases a gen>=1 prior.
        let mut cycle = 0u64;
        for _ in 0..4 {
            for _ in 0..16 {
                cycle += 1;
                for _ in 0..20 {
                    p.on_alloc(1, 0, ThreadId(0));
                }
                p.on_gc_end(&mut env, &cycle_info(cycle));
            }
        }
        assert_eq!(p.advise(pack(1, 0)), Some(0), "the gen-0 prior holds");
        let stats = p.stats(&program, &env.jit);
        assert_eq!(stats.profile_blend_decays, 0);
        assert_eq!(stats.profile_rows_released, 0);
        assert_eq!(stats.profile_rows_active, 1);
        assert_eq!(stats.last_change_epoch, 0, "stable from epoch 0");
    }

    #[test]
    fn empty_decisions_never_shut_tracking_down() {
        let (mut env, _m, _site) = env_with_program();
        let mut p = RolpProfiler::new(RolpConfig::default());
        for cycle in 1..=64u64 {
            p.on_gc_end(&mut env, &cycle_info(cycle));
        }
        assert!(p.survivor_tracking_enabled(), "no decisions -> keep learning");
        let program = std::rc::Rc::clone(&env.program);
        assert_eq!(p.stats(&program, &env.jit).survivor_shutdowns, 0);
    }
}
