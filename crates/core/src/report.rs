//! Human-readable profiler reports and the machine-readable run summary.
//!
//! Renders the profiler's current state — decisions, conflict-resolution
//! progress, OLD-table occupancy — the way `-XX:+PrintROLPStatistics`
//! style diagnostics would, plus [`stats_json`], the `--stats-json`
//! end-of-run summary (pause percentiles, throughput, profiler counters).

use std::fmt::Write as _;

use rolp_metrics::PauseRecorder;
use rolp_trace::json::JsonObject;
use rolp_vm::{JitState, Program};

use crate::context::{site_of, tss_of};
use crate::geometry::LifetimeTable;
use crate::profiler::RolpProfiler;
use crate::runtime::RunReport;

/// Renders the profiler's lifetime decisions with resolved source
/// locations, sorted by generation (oldest first) then location.
pub fn render_decisions<T: LifetimeTable>(profiler: &RolpProfiler<T>, program: &Program) -> String {
    let mut rows: Vec<(u8, String, u16)> = profiler
        .decisions()
        .iter()
        .map(|(&ctx, &gen)| {
            let site = site_of(ctx);
            let location = profiler
                .pid_to_site
                .get(&site)
                .map(|&s| {
                    let decl = program.alloc_site(s);
                    format!("{} @bci {}", program.method(decl.method).name, decl.bci)
                })
                .unwrap_or_else(|| format!("<site {site}>"));
            (gen, location, tss_of(ctx))
        })
        .collect();
    rows.sort_by(|a, b| {
        (std::cmp::Reverse(a.0), &a.1, a.2).cmp(&(std::cmp::Reverse(b.0), &b.1, b.2))
    });

    if rows.is_empty() {
        return "no lifetime decisions yet (still learning)".to_string();
    }
    let mut out = String::from("lifetime decisions (generation <- allocation context):\n");
    for (gen, location, tss) in rows {
        let target = match gen {
            0 => "young".to_string(),
            15 => "old".to_string(),
            g => format!("gen {g:>2}"),
        };
        if tss == 0 {
            let _ = writeln!(out, "  {target:>7} <- {location}");
        } else {
            let _ = writeln!(out, "  {target:>7} <- {location} [call path {tss:#06x}]");
        }
    }
    out
}

/// Renders a one-screen profiler summary.
pub fn render_summary<T: LifetimeTable>(
    profiler: &RolpProfiler<T>,
    program: &Program,
    jit: &JitState,
) -> String {
    let stats = profiler.stats(program, jit);
    let mut out = String::new();
    let _ = writeln!(out, "ROLP profiler summary");
    let _ = writeln!(
        out,
        "  allocation sites: {}/{} profiled",
        stats.profiled_alloc_sites, stats.total_alloc_sites
    );
    let _ = writeln!(
        out,
        "  call sites:       {} installed, {} enabled (of {})",
        stats.installed_call_sites, stats.enabled_call_sites, stats.total_call_sites
    );
    let _ = writeln!(
        out,
        "  allocations:      {} profiled, {} unprofiled (cold/filtered)",
        stats.profiled_allocations, stats.unprofiled_allocations
    );
    let _ = writeln!(
        out,
        "  inference:        {} passes, {} active decisions, {} demotions",
        stats.inferences, stats.decisions, stats.demotions
    );
    let _ = writeln!(
        out,
        "  conflicts:        {} detected, {} resolved, {} exhausted, {} frozen sites",
        stats.conflicts.detected,
        stats.conflicts.resolved,
        stats.conflicts.exhausted,
        stats.conflicts.frozen_sites
    );
    let _ = writeln!(
        out,
        "  survivor records: {} (tracking shutdowns {}, reactivations {})",
        stats.survivor_records, stats.survivor_shutdowns, stats.survivor_reactivations
    );
    let _ = writeln!(
        out,
        "  OLD table:        {} ({} expansion blocks)",
        rolp_metrics::table::fmt_bytes(stats.old_table_bytes),
        profiler.old.expansions()
    );
    let _ = writeln!(out, "  stack repairs:    {}", stats.reconciliations);
    if let Some(state) = stats.governor_state {
        let source = stats.governor_cost_source.unwrap_or("estimated");
        let _ = writeln!(
            out,
            "  governor:         state {state} ({} transitions, {source} cost source)",
            stats.governor_transitions
        );
    }
    if stats.profile_id_overflows > 0 {
        let _ = writeln!(
            out,
            "  id overflows:     {} profile-id requests refused (16-bit space saturated)",
            stats.profile_id_overflows
        );
    }
    if stats.injected_fault_events > 0
        || stats.dropped_merge_records > 0
        || stats.delayed_merges > 0
    {
        let _ = writeln!(
            out,
            "  faults injected:  {} events, {} merge records dropped, {} merges delayed",
            stats.injected_fault_events, stats.dropped_merge_records, stats.delayed_merges
        );
    }
    if let Some(v) = stats.profile_import {
        let fp = if !v.fingerprint_checked {
            "no fingerprint (legacy profile)"
        } else if v.fingerprint_matched {
            "fingerprint matched"
        } else {
            "FINGERPRINT MISMATCH"
        };
        let _ = writeln!(
            out,
            "  profile import:   {}/{} entries applied ({} rejected), {}/{} call sites, {fp}",
            v.entries_applied,
            v.entries_total,
            v.entries_rejected,
            v.call_sites_applied,
            v.call_sites_total
        );
        let _ = writeln!(
            out,
            "  profile blend:    {} rows holding prior, {} decays, {} released to live inference",
            stats.profile_rows_active, stats.profile_blend_decays, stats.profile_rows_released
        );
        if v.nothing_applied() {
            let _ = writeln!(
                out,
                "  WARNING: imported profile applied nothing — it came from a different program"
            );
        } else if !v.fully_applied() {
            let _ = writeln!(
                out,
                "  WARNING: imported profile only partially applied (program shape changed)"
            );
        }
    }
    out
}

/// Renders the live-telemetry section of `--report`: where every
/// simulated nanosecond went (per-bucket decomposition), the
/// self-measured profiling overhead, and the live histogram percentiles.
pub fn render_telemetry(snapshot: &rolp_telemetry::MetricsSnapshot) -> String {
    use rolp_telemetry::{Bucket, HistId};
    let mut out = String::new();
    let _ =
        writeln!(out, "telemetry (snapshot v{} at {} ns)", snapshot.version(), snapshot.at_ns());
    let total: u64 = Bucket::ALL.iter().map(|&b| snapshot.time(b)).sum();
    let _ = writeln!(out, "  time decomposition:");
    for b in Bucket::ALL {
        let ns = snapshot.time(b);
        if ns == 0 {
            continue;
        }
        let share = if total == 0 { 0.0 } else { ns as f64 / total as f64 * 100.0 };
        let modeled = if b.is_modeled() { " (modeled)" } else { "" };
        let _ = writeln!(out, "    {:<20} {:>15} ns  {share:>5.1}%{modeled}", b.label(), ns);
    }
    let _ = writeln!(
        out,
        "  profiling overhead: {:.3}% of busy mutator time",
        snapshot.profiling_overhead() * 100.0
    );
    let _ = writeln!(out, "  event counters:");
    for c in rolp_telemetry::CounterId::ALL {
        let n = snapshot.counter(c);
        if n == 0 {
            continue;
        }
        let _ = writeln!(out, "    {:<24} {n}", c.label());
    }
    let _ = writeln!(out, "  live percentiles (ns):");
    for h in HistId::ALL {
        let hist = snapshot.histogram(h);
        let _ = writeln!(
            out,
            "    {:<20} n={:<8} p50={} p90={} p99={} max={}",
            h.label(),
            hist.count(),
            hist.value_at_quantile(0.5),
            hist.value_at_quantile(0.9),
            hist.value_at_quantile(0.99),
            hist.max()
        );
    }
    out
}

/// Renders the end-of-run summary as a JSON object (the `--stats-json`
/// payload): run totals, throughput, pause percentiles, and — when the
/// profiler was active — the ROLP counters behind Tables 1 and 2.
/// `trace_dropped` is the flight recorder's ring-overflow count (0 when
/// tracing was off).
pub fn stats_json(report: &RunReport, pauses: &PauseRecorder, trace_dropped: u64) -> String {
    let mut pause_obj = JsonObject::new();
    pause_obj
        .u64("count", pauses.count() as u64)
        .f64("total_ms", report.total_paused.as_millis_f64())
        .f64("mean_ms", pauses.mean_ms())
        .f64("p50_ms", pauses.percentile_ms(50.0))
        .f64("p90_ms", pauses.percentile_ms(90.0))
        .f64("p99_ms", pauses.percentile_ms(99.0))
        .f64("p999_ms", pauses.percentile_ms(99.9))
        .f64("max_ms", pauses.percentile_ms(100.0));

    let mut obj = JsonObject::new();
    obj.str("collector", report.collector)
        .f64("elapsed_ms", report.elapsed.as_millis_f64())
        .u64("ops", report.ops)
        .f64("ops_per_sec", report.ops_per_sec)
        .f64("ops_per_busy_sec", report.ops_per_busy_sec)
        .u64("max_used_bytes", report.max_used_bytes)
        .u64("max_committed_bytes", report.max_committed_bytes)
        .u64("gc_cycles", report.gc_cycles)
        .u64("trace_dropped_events", trace_dropped)
        .f64("profiling_overhead", report.profiling_overhead)
        .raw("pauses", &pause_obj.finish())
        // The final metrics snapshot, embedded as the same flat object
        // the `--metrics-out` JSONL stream emits per window.
        .raw("telemetry", &report.telemetry.to_jsonl());

    if let Some(s) = &report.rolp {
        let mut rolp = JsonObject::new();
        rolp.u64("profiled_alloc_sites", s.profiled_alloc_sites as u64)
            .u64("total_alloc_sites", s.total_alloc_sites as u64)
            .u64("enabled_call_sites", s.enabled_call_sites as u64)
            .u64("installed_call_sites", s.installed_call_sites as u64)
            .u64("total_call_sites", s.total_call_sites as u64)
            .u64("conflicts_detected", s.conflicts.detected)
            .u64("conflicts_resolved", s.conflicts.resolved)
            .u64("conflicts_exhausted", s.conflicts.exhausted)
            .u64("probe_rounds", s.conflicts.probe_rounds)
            .u64("frozen_sites", s.conflicts.frozen_sites)
            .u64("inferences", s.inferences)
            .u64("decisions", s.decisions as u64)
            .u64("decision_version", s.decision_version)
            .u64("old_table_bytes", s.old_table_bytes)
            .u64("profiled_allocations", s.profiled_allocations)
            .u64("unprofiled_allocations", s.unprofiled_allocations)
            .u64("survivor_records", s.survivor_records)
            .u64("reconciliations", s.reconciliations)
            .u64("demotions", s.demotions)
            .u64("survivor_shutdowns", s.survivor_shutdowns)
            .u64("survivor_reactivations", s.survivor_reactivations)
            .u64("governor_transitions", s.governor_transitions)
            .u64("profile_id_overflows", s.profile_id_overflows)
            .u64("injected_fault_events", s.injected_fault_events)
            .u64("dropped_merge_records", s.dropped_merge_records)
            .u64("delayed_merges", s.delayed_merges)
            .u64("profile_blend_decays", s.profile_blend_decays)
            .u64("profile_rows_released", s.profile_rows_released)
            .u64("profile_rows_active", s.profile_rows_active)
            .u64("last_change_epoch", s.last_change_epoch);
        if let Some(v) = s.profile_import {
            rolp.u64("profile_entries_applied", v.entries_applied as u64)
                .u64("profile_entries_rejected", v.entries_rejected as u64)
                .u64("profile_call_sites_applied", v.call_sites_applied as u64)
                .u64("profile_call_sites_rejected", v.call_sites_rejected as u64)
                .bool("profile_fingerprint_checked", v.fingerprint_checked)
                .bool("profile_fingerprint_matched", v.fingerprint_matched);
        }
        if let Some(state) = s.governor_state {
            rolp.str("governor_state", state);
        }
        if let Some(source) = s.governor_cost_source {
            rolp.str("governor_cost_source", source);
        }
        obj.raw("rolp", &rolp.finish());
    }
    let mut out = obj.finish();
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiler::RolpConfig;
    use rolp_vm::{JitConfig, ProgramBuilder, ThreadId, VmProfiler};

    fn world() -> (Program, JitState, RolpProfiler) {
        let mut b = ProgramBuilder::new();
        let m = b.method("pkg.Maker::make", 80, false);
        let _site = b.alloc_site(m, 4);
        let program = b.build();
        let mut jit = JitState::new(&program, JitConfig::default());
        let mut p = RolpProfiler::new(RolpConfig::default());
        p.on_jit_compile(&program, &mut jit, rolp_vm::MethodId(0));
        (program, jit, p)
    }

    #[test]
    fn empty_decisions_render_a_hint() {
        let (program, _jit, p) = world();
        assert!(render_decisions(&p, &program).contains("still learning"));
    }

    #[test]
    fn decisions_render_with_locations_and_targets() {
        let (program, jit, p) = world();
        // Fabricate decisions through the public surfaces: allocate and
        // survive until inference would set them — here we inject via the
        // offline path instead, which is public.
        let profile: crate::offline::DecisionProfile =
            "pkg.Maker::make@4 7\n".parse().expect("parses");
        let cfg = RolpConfig { offline_profile: Some(profile), ..Default::default() };
        let mut p2 = RolpProfiler::new(cfg);
        let mut jit2 = JitState::new(&program, JitConfig::default());
        p2.on_jit_compile(&program, &mut jit2, rolp_vm::MethodId(0));
        let text = render_decisions(&p2, &program);
        assert!(text.contains("gen  7"), "got: {text}");
        assert!(text.contains("pkg.Maker::make @bci 4"));
        drop((p, jit));
    }

    #[test]
    fn stats_json_includes_percentiles_throughput_and_rolp_block() {
        use crate::runtime::{CollectorKind, JvmRuntime, RuntimeConfig};
        let mut b = ProgramBuilder::new();
        let main = b.method("t.Main::run", 100, false);
        let _ = b.alloc_site(main, 0);
        let cfg = RuntimeConfig {
            collector: CollectorKind::RolpNg2c,
            heap: rolp_heap::HeapConfig { region_bytes: 4096, max_heap_bytes: 1 << 20 },
            ..Default::default()
        };
        let mut rt = JvmRuntime::new(cfg, b.build());
        let report = rt.report();
        let json = stats_json(&report, &rt.vm.env.pauses, 0);
        for needle in [
            "\"collector\":\"ROLP\"",
            "\"p50_ms\":",
            "\"p99_ms\":",
            "\"p999_ms\":",
            "\"ops_per_sec\":",
            "\"pauses\":{",
            "\"rolp\":{",
            "\"decisions\":",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
        assert!(json.ends_with("}\n"));
    }

    #[test]
    fn governed_runs_report_governor_state_in_json_and_summary() {
        use crate::governor::GovernorConfig;
        use crate::runtime::{CollectorKind, JvmRuntime, RuntimeConfig};
        let mut b = ProgramBuilder::new();
        let main = b.method("t.Main::run", 100, false);
        let _ = b.alloc_site(main, 0);
        let mut cfg = RuntimeConfig {
            collector: CollectorKind::RolpNg2c,
            heap: rolp_heap::HeapConfig { region_bytes: 4096, max_heap_bytes: 1 << 20 },
            ..Default::default()
        };
        cfg.rolp.governor = Some(GovernorConfig::default());
        cfg.rolp.fault_plan = Some(rolp_faults::FaultPlan::named("pressure-spike").unwrap());
        let mut rt = JvmRuntime::new(cfg, b.build());
        let report = rt.report();
        let json = stats_json(&report, &rt.vm.env.pauses, 0);
        for needle in [
            "\"governor_state\":\"full\"",
            "\"governor_transitions\":",
            "\"profile_id_overflows\":",
            "\"injected_fault_events\":",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
        let p = rt.profiler.as_ref().unwrap().borrow();
        let s = render_summary(&p, &rt.vm.env.program, &rt.vm.env.jit);
        assert!(s.contains("governor:         state full"), "got: {s}");
    }

    #[test]
    fn summary_renders_every_section() {
        let (program, jit, mut p) = world();
        p.on_alloc(1, 0, ThreadId(0));
        let s = render_summary(&p, &program, &jit);
        for needle in ["allocation sites", "call sites", "inference", "conflicts", "OLD table"] {
            assert!(s.contains(needle), "missing {needle} in: {s}");
        }
    }
}
