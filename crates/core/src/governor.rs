//! The overhead governor: graceful degradation under profiling pressure.
//!
//! ROLP's headline numbers (§8) hold only while profiling stays cheap:
//! record-path work bounded, OLD-table memory within its §7.5 budget, and
//! call-site profiling limited to the small distinguishing sets §5
//! converges to. When any of those budgets blows — adversarial call
//! patterns, site-id saturation, allocation bursts — a production
//! profiler must shed load rather than sink the application (the
//! always-on discipline DJXPerf argues for, and the unprofiled-goes-to-
//! gen-0 fallback NG2C builds in).
//!
//! The [`Governor`] tracks one [`EpochCost`] per inference epoch against
//! configurable budgets and drives an explicit four-state machine, one
//! step per epoch:
//!
//! ```text
//! Full  ->  Reduced  ->  SitesOnly  ->  Off
//!   (call-site       (stack-state      (all-gen-0 table;
//!    profiling shed,   hashing off,      allocation fast path
//!    conflicts frozen) site-id-only)     is one branch)
//! ```
//!
//! Hysteresis works the other way: after `calm_epochs_to_recover`
//! consecutive under-budget epochs the governor climbs back one step, so
//! a transient burst does not strand the profiler in `Off`. Every
//! transition is emitted as a `governor_transition` trace event by the
//! profiler.
//!
//! Degradation never *remaps* an allocation context: a context either
//! keeps its meaning (site id assignments are saturating and permanent)
//! or is demoted to gen-0 semantics (no decision published for it). That
//! invariant is what `tests/prop_governor.rs` checks under arbitrary
//! fault plans.

/// The degradation states, most to least profiling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum GovernorState {
    /// Everything on: call-site profiling, stack-state hashing, full
    /// decision publication.
    Full,
    /// Call-site profiling shed (all deltas zeroed, conflict resolution
    /// frozen at detection-only); contexts keep site id + current TSS.
    Reduced,
    /// Stack-state hashing off: contexts are site-id-only (TSS forced to
    /// 0), so conflicted sites collapse to their site row.
    SitesOnly,
    /// Profiling off: the decision store publishes an all-gen-0 (empty)
    /// table and the allocation fast path degenerates to one branch.
    Off,
}

impl GovernorState {
    /// Stable label used in trace events and reports.
    pub fn label(&self) -> &'static str {
        match self {
            GovernorState::Full => "full",
            GovernorState::Reduced => "reduced",
            GovernorState::SitesOnly => "sites-only",
            GovernorState::Off => "off",
        }
    }

    /// One step more degraded (saturates at `Off`).
    fn degraded(self) -> GovernorState {
        match self {
            GovernorState::Full => GovernorState::Reduced,
            GovernorState::Reduced => GovernorState::SitesOnly,
            _ => GovernorState::Off,
        }
    }

    /// One step less degraded (saturates at `Full`).
    fn recovered(self) -> GovernorState {
        match self {
            GovernorState::Off => GovernorState::SitesOnly,
            GovernorState::SitesOnly => GovernorState::Reduced,
            _ => GovernorState::Full,
        }
    }
}

/// Where the governor's overhead signal comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CostSource {
    /// Self-observed profiling time from the telemetry plane: the
    /// fraction of busy mutator time the run actually spent in
    /// profiling buckets this epoch. Falls back to the estimate when
    /// no mutator time elapsed in the epoch.
    #[default]
    Measured,
    /// The cost-model estimate (`2 * slow-branch ns * enabled sites *
    /// invocation delta / total sites`) — the pre-telemetry behavior.
    Estimated,
}

impl CostSource {
    /// Stable label used in reports and `--stats-json`.
    pub fn label(&self) -> &'static str {
        match self {
            CostSource::Measured => "measured",
            CostSource::Estimated => "estimated",
        }
    }
}

/// Per-epoch budgets and hysteresis.
#[derive(Debug, Clone)]
pub struct GovernorConfig {
    /// Record-path events (profiled allocations + survivor records +
    /// injected synthetics) allowed per inference epoch.
    pub max_record_events_per_epoch: u64,
    /// OLD-table footprint allowed, in bytes (§7.5 accounting).
    pub max_table_bytes: u64,
    /// Estimated call-site-profiling overhead allowed per epoch, in
    /// simulated nanoseconds (`rolp_vm::cost` slow-branch pricing).
    /// Checked when `cost_source` is [`CostSource::Estimated`], or as
    /// the measured-mode fallback for epochs with no mutator time.
    pub max_call_overhead_ns_per_epoch: u64,
    /// Measured profiling overhead allowed per epoch, as a fraction of
    /// busy mutator time (paper §8.2 targets ~5%). Checked when
    /// `cost_source` is [`CostSource::Measured`].
    pub max_measured_overhead: f64,
    /// Which overhead signal drives the call/overhead budget.
    pub cost_source: CostSource,
    /// Consecutive under-budget epochs before climbing back one state.
    pub calm_epochs_to_recover: u32,
    /// State to start in (`Full` normally; tests force `Off` to compare
    /// against a profiler-disabled run bit-for-bit).
    pub start_state: GovernorState,
}

impl Default for GovernorConfig {
    fn default() -> Self {
        GovernorConfig {
            // Generous: a healthy run (fig. 8 scale) stays well under
            // these, so the governed bench row tracks the plain ROLP row.
            max_record_events_per_epoch: 2_000_000,
            max_table_bytes: 8 << 20,
            max_call_overhead_ns_per_epoch: 50_000_000,
            max_measured_overhead: 0.05,
            cost_source: CostSource::Measured,
            calm_epochs_to_recover: 2,
            start_state: GovernorState::Full,
        }
    }
}

/// What one inference epoch cost, measured by the profiler.
#[derive(Debug, Clone, Copy, Default)]
pub struct EpochCost {
    /// Record-path events charged to the epoch.
    pub record_events: u64,
    /// OLD-table footprint at evaluation time, in bytes.
    pub table_bytes: u64,
    /// Estimated call-site-profiling overhead for the epoch, in ns.
    pub call_overhead_ns: u64,
    /// Self-measured profiling time this epoch (telemetry
    /// `mutator_profiling` delta), in ns.
    pub measured_profiling_ns: u64,
    /// Busy mutator time this epoch (telemetry `mutator_app +
    /// mutator_profiling + jit_compile` delta), in ns. Zero means "no
    /// measurement available" and falls back to the estimate.
    pub measured_mutator_ns: u64,
}

impl EpochCost {
    /// Measured profiling overhead as a fraction of busy mutator time,
    /// or `None` when no mutator time was observed this epoch.
    pub fn measured_overhead(&self) -> Option<f64> {
        if self.measured_mutator_ns == 0 {
            None
        } else {
            Some(self.measured_profiling_ns as f64 / self.measured_mutator_ns as f64)
        }
    }
}

/// A state change the profiler must apply and trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GovernorTransition {
    /// State before.
    pub from: GovernorState,
    /// State after.
    pub to: GovernorState,
    /// `record-budget` / `table-budget` / `call-budget` on degradation,
    /// `recovered` on hysteresis climb-back.
    pub reason: &'static str,
}

/// The budget-tracking state machine.
#[derive(Debug, Clone)]
pub struct Governor {
    config: GovernorConfig,
    state: GovernorState,
    calm_epochs: u32,
    transitions: u64,
}

impl Governor {
    /// A governor starting in `config.start_state`.
    pub fn new(config: GovernorConfig) -> Self {
        let state = config.start_state;
        Governor { config, state, calm_epochs: 0, transitions: 0 }
    }

    /// Current state.
    pub fn state(&self) -> GovernorState {
        self.state
    }

    /// Transitions taken so far.
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// The first budget `cost` exceeds, if any.
    fn tripped_budget(&self, cost: &EpochCost) -> Option<&'static str> {
        if cost.record_events > self.config.max_record_events_per_epoch {
            return Some("record-budget");
        }
        if cost.table_bytes > self.config.max_table_bytes {
            return Some("table-budget");
        }
        // Overhead: the measured signal when configured and available,
        // the cost-model estimate otherwise.
        if self.config.cost_source == CostSource::Measured {
            if let Some(overhead) = cost.measured_overhead() {
                return (overhead > self.config.max_measured_overhead).then_some("overhead-budget");
            }
        }
        (cost.call_overhead_ns > self.config.max_call_overhead_ns_per_epoch)
            .then_some("call-budget")
    }

    /// Feeds one epoch's cost; returns the transition to apply, if the
    /// state changed. Over budget: degrade one step immediately (and
    /// reset the calm streak). Under budget: count a calm epoch and climb
    /// one step back once the hysteresis threshold is met.
    pub fn evaluate(&mut self, cost: &EpochCost) -> Option<GovernorTransition> {
        let from = self.state;
        match self.tripped_budget(cost) {
            Some(reason) => {
                self.calm_epochs = 0;
                let to = from.degraded();
                if to == from {
                    return None;
                }
                self.state = to;
                self.transitions += 1;
                Some(GovernorTransition { from, to, reason })
            }
            None => {
                if from == GovernorState::Full {
                    return None;
                }
                self.calm_epochs += 1;
                if self.calm_epochs < self.config.calm_epochs_to_recover {
                    return None;
                }
                self.calm_epochs = 0;
                let to = from.recovered();
                self.state = to;
                self.transitions += 1;
                Some(GovernorTransition { from, to, reason: "recovered" })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tight() -> GovernorConfig {
        GovernorConfig {
            max_record_events_per_epoch: 100,
            max_table_bytes: 1 << 20,
            max_call_overhead_ns_per_epoch: 1_000,
            calm_epochs_to_recover: 2,
            start_state: GovernorState::Full,
            ..Default::default()
        }
    }

    fn hot() -> EpochCost {
        EpochCost { record_events: 1_000, ..Default::default() }
    }

    fn calm() -> EpochCost {
        EpochCost::default()
    }

    #[test]
    fn degrades_one_step_per_hot_epoch_and_saturates_at_off() {
        let mut g = Governor::new(tight());
        let t1 = g.evaluate(&hot()).unwrap();
        assert_eq!(
            (t1.from, t1.to, t1.reason),
            (GovernorState::Full, GovernorState::Reduced, "record-budget")
        );
        assert_eq!(g.evaluate(&hot()).unwrap().to, GovernorState::SitesOnly);
        assert_eq!(g.evaluate(&hot()).unwrap().to, GovernorState::Off);
        assert_eq!(g.evaluate(&hot()), None, "already Off");
        assert_eq!(g.state(), GovernorState::Off);
        assert_eq!(g.transitions(), 3);
    }

    #[test]
    fn each_budget_reports_its_own_reason() {
        let mut g = Governor::new(tight());
        let t = g.evaluate(&EpochCost { table_bytes: 2 << 20, ..Default::default() }).unwrap();
        assert_eq!(t.reason, "table-budget");
        let t = g.evaluate(&EpochCost { call_overhead_ns: 2_000, ..Default::default() }).unwrap();
        assert_eq!(t.reason, "call-budget");
    }

    #[test]
    fn hysteresis_requires_consecutive_calm_epochs() {
        let mut g = Governor::new(tight());
        g.evaluate(&hot());
        g.evaluate(&hot());
        assert_eq!(g.state(), GovernorState::SitesOnly);
        assert_eq!(g.evaluate(&calm()), None, "one calm epoch is not enough");
        // A hot epoch resets the streak (and degrades further).
        assert_eq!(g.evaluate(&hot()).unwrap().to, GovernorState::Off);
        assert_eq!(g.evaluate(&calm()), None);
        let t = g.evaluate(&calm()).unwrap();
        assert_eq!(
            (t.from, t.to, t.reason),
            (GovernorState::Off, GovernorState::SitesOnly, "recovered")
        );
        // Full recovery takes two more calm pairs.
        g.evaluate(&calm());
        assert_eq!(g.evaluate(&calm()).unwrap().to, GovernorState::Reduced);
        g.evaluate(&calm());
        assert_eq!(g.evaluate(&calm()).unwrap().to, GovernorState::Full);
        assert_eq!(g.evaluate(&calm()), None, "Full and calm: steady state");
    }

    #[test]
    fn measured_overhead_trips_its_own_budget() {
        let mut g = Governor::new(tight());
        // 8% of busy mutator time spent profiling > the 5% default cap.
        let t = g
            .evaluate(&EpochCost {
                measured_profiling_ns: 8_000,
                measured_mutator_ns: 100_000,
                ..Default::default()
            })
            .unwrap();
        assert_eq!(t.reason, "overhead-budget");
        assert_eq!(t.to, GovernorState::Reduced);
    }

    #[test]
    fn measured_signal_overrides_the_estimate_when_available() {
        let mut g = Governor::new(tight());
        // Estimate says hot (2_000 > 1_000 budget) but the measurement
        // says 1% — measured wins, no transition.
        let cost = EpochCost {
            call_overhead_ns: 2_000,
            measured_profiling_ns: 1_000,
            measured_mutator_ns: 100_000,
            ..Default::default()
        };
        assert_eq!(g.evaluate(&cost), None);
        assert_eq!(g.state(), GovernorState::Full);
    }

    #[test]
    fn measured_mode_falls_back_to_estimate_without_mutator_time() {
        let mut g = Governor::new(tight());
        // No measurement (measured_mutator_ns == 0): the estimate rules.
        let t = g.evaluate(&EpochCost { call_overhead_ns: 2_000, ..Default::default() }).unwrap();
        assert_eq!(t.reason, "call-budget");
    }

    #[test]
    fn estimated_mode_ignores_the_measurement() {
        let mut g = Governor::new(GovernorConfig { cost_source: CostSource::Estimated, ..tight() });
        // Measurement says 50% overhead, but estimated mode only looks
        // at the cost-model estimate (under budget here).
        let cost = EpochCost {
            call_overhead_ns: 500,
            measured_profiling_ns: 50_000,
            measured_mutator_ns: 100_000,
            ..Default::default()
        };
        assert_eq!(g.evaluate(&cost), None);
    }

    #[test]
    fn forced_off_start_state_stays_off_while_hot() {
        let mut g = Governor::new(GovernorConfig {
            start_state: GovernorState::Off,
            max_record_events_per_epoch: 0,
            max_table_bytes: 0,
            max_call_overhead_ns_per_epoch: 0,
            ..tight()
        });
        assert_eq!(g.state(), GovernorState::Off);
        // Zero budgets: any nonzero cost keeps it pinned.
        assert_eq!(g.evaluate(&EpochCost { record_events: 1, ..Default::default() }), None);
        assert_eq!(g.state(), GovernorState::Off);
    }
}
