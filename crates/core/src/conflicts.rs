//! Allocation-context conflict resolution (paper §5).
//!
//! A conflict means one allocation site is reached through call paths with
//! different object lifetimes. ROLP resolves it by enabling thread-stack-
//! state tracking on *some* call sites so the contexts separate — but
//! profiling every call would cost too much throughput, so the algorithm
//! searches for a small distinguishing set `S`:
//!
//! 1. At startup no call site is profiled.
//! 2. When a conflict is detected, a random batch of `P` (a fraction,
//!    recommended ≤ 20%, of the jitted call sites) starts tracking.
//! 3. At the next inference: if the conflict resolved, `S` is inside the
//!    batch — start turning call sites off again to shrink towards `S`.
//!    If not, pick a fresh batch (avoiding repeats) and continue until
//!    every call site has been tried.
//!
//! Convergence is linear in `jitted_call_sites / P` rounds of 16 GC cycles
//! each, which is what the paper's Fig. 7 plots as the worst case.

use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use rolp_vm::{CallSiteId, JitState, Program};

/// Resolver tunables.
#[derive(Debug, Clone)]
pub struct ConflictConfig {
    /// Fraction of jitted call sites enabled per probing round (`P`).
    pub p_fraction: f64,
    /// Whether to shrink the batch towards a minimal set after resolution
    /// (disable-and-watch halving).
    pub shrink: bool,
}

impl Default for ConflictConfig {
    fn default() -> Self {
        ConflictConfig { p_fraction: 0.20, shrink: true }
    }
}

/// Resolver statistics (feeds Tables 1 and 2).
#[derive(Debug, Clone, Copy, Default)]
pub struct ConflictStats {
    /// Conflicts detected (sites that ever went multimodal).
    pub detected: u64,
    /// Conflicts whose contexts separated after enabling tracking.
    pub resolved: u64,
    /// Conflicts abandoned after exhausting every call site.
    pub exhausted: u64,
    /// Probing rounds executed.
    pub probe_rounds: u64,
    /// Call sites currently kept enabled as part of a distinguishing set.
    pub frozen_sites: u64,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Phase {
    /// No open conflict.
    Idle,
    /// A batch is enabled; waiting for the next inference verdict.
    Probing,
    /// Conflict resolved; halving the batch to find a minimal set. The
    /// vector holds the most recently *disabled* half (re-enabled and
    /// frozen if the conflict reappears).
    Shrinking(Vec<CallSiteId>),
}

/// The §5 conflict-resolution state machine. One resolver instance serves
/// all conflicts. Parallel conflicts are worked *sequentially* — one
/// active conflict at a time with the others queued — which is the
/// conservative instance of the paper's "multiple sets of P methods" with
/// P divided down to one set (the paper itself recommends reducing P as
/// parallel conflicts increase).
pub struct ConflictResolver {
    config: ConflictConfig,
    rng: StdRng,
    /// Call sites already tried *for the active conflict*.
    tried: HashSet<CallSiteId>,
    active_batch: Vec<CallSiteId>,
    frozen: Vec<CallSiteId>,
    /// The conflict currently being worked.
    active_conflict: Option<u16>,
    /// Conflicts waiting their turn.
    queue: Vec<u16>,
    /// Sites ever reported conflicted (dedupe for the `detected` counter).
    seen: HashSet<u16>,
    phase: Phase,
    stats: ConflictStats,
    /// When set, batch transitions are appended to `batch_log` for the
    /// flight recorder (drained by the profiler after each inference).
    log_batches: bool,
    batch_log: Vec<(&'static str, u64)>,
}

impl ConflictResolver {
    /// Creates a resolver.
    pub fn new(config: ConflictConfig, seed: u64) -> Self {
        ConflictResolver {
            config,
            rng: StdRng::seed_from_u64(seed),
            tried: HashSet::new(),
            active_batch: Vec::new(),
            frozen: Vec::new(),
            active_conflict: None,
            queue: Vec::new(),
            seen: HashSet::new(),
            phase: Phase::Idle,
            stats: ConflictStats::default(),
            log_batches: false,
            batch_log: Vec::new(),
        }
    }

    /// Turns batch-transition logging on or off (kept off unless a trace
    /// recorder will drain [`ConflictResolver::take_batch_log`]).
    pub fn set_batch_logging(&mut self, enabled: bool) {
        self.log_batches = enabled;
    }

    /// Drains the logged batch transitions: `(action, sites affected)`
    /// with action one of `enable`, `shrink`, `disable`, `freeze`.
    pub fn take_batch_log(&mut self) -> Vec<(&'static str, u64)> {
        std::mem::take(&mut self.batch_log)
    }

    fn log_batch(&mut self, action: &'static str, size: usize) {
        if self.log_batches && size > 0 {
            self.batch_log.push((action, size as u64));
        }
    }

    /// Counts freshly detected conflicts without engaging resolution —
    /// used by profiling levels that measure but never enable call-site
    /// tracking (the Fig. 6 no-call / fast-call / slow-call arms).
    pub fn note_detected_only(&mut self, sites: &[u16]) {
        for &site in sites {
            if self.seen.insert(site) {
                self.stats.detected += 1;
            }
        }
    }

    /// Current statistics.
    pub fn stats(&self) -> ConflictStats {
        let mut s = self.stats;
        s.frozen_sites = self.frozen.len() as u64;
        s
    }

    /// Sites with an open (unresolved) conflict (active + queued).
    pub fn open_conflicts(&self) -> usize {
        self.active_conflict.is_some() as usize + self.queue.len()
    }

    /// Call sites currently enabled by the resolver (probing batch +
    /// frozen distinguishing sets).
    pub fn enabled_sites(&self) -> usize {
        self.active_batch.len() + self.frozen.len()
    }

    /// The frozen distinguishing sets (§5): call sites kept enabled
    /// because disabling them re-conflated separated contexts. These are
    /// what an offline profile exports by name.
    pub fn frozen_sites(&self) -> &[CallSiteId] {
        &self.frozen
    }

    /// Warm-starts the frozen distinguishing sets from an imported
    /// profile (deduplicated against what is already frozen). The caller
    /// re-applies the resolver state to the JIT afterwards so the sites
    /// actually start tracking.
    pub fn import_frozen(&mut self, sites: impl IntoIterator<Item = CallSiteId>) {
        for cs in sites {
            if !self.frozen.contains(&cs) {
                self.frozen.push(cs);
            }
        }
    }

    /// Re-applies the resolver's intended call-site-profiling state to the
    /// JIT after the governor bulk-disabled it (`Reduced` and below shed
    /// all call-site profiling): frozen distinguishing sets (§5) and the
    /// in-flight probe batch are re-enabled so resolution resumes exactly
    /// where it paused.
    pub fn reapply_to_jit(&self, jit: &mut JitState) {
        for &cs in self.frozen.iter().chain(&self.active_batch) {
            jit.enable_call_profiling(cs);
        }
    }

    /// Feeds one inference round's verdicts into the state machine,
    /// enabling/disabling call-site profiling as the §5 algorithm
    /// prescribes. `new_conflicts` are sites that just went multimodal
    /// (their OLD rows must already be expanded by the caller);
    /// `unresolved` are expanded sites still multimodal.
    pub fn on_inference(
        &mut self,
        program: &Program,
        jit: &mut JitState,
        new_conflicts: &[u16],
        unresolved: &[u16],
    ) {
        for &site in new_conflicts {
            if self.seen.insert(site) {
                self.stats.detected += 1;
            }
            if self.active_conflict != Some(site) && !self.queue.contains(&site) {
                self.queue.push(site);
            }
        }

        match std::mem::replace(&mut self.phase, Phase::Idle) {
            Phase::Idle => {
                self.next_conflict(program, jit);
            }
            Phase::Probing => {
                let active = self.active_conflict.expect("probing without a conflict");
                if unresolved.contains(&active) {
                    // Batch failed for the active conflict: swap it.
                    self.disable_batch(jit);
                    self.start_probe(program, jit);
                } else {
                    // The active conflict's contexts separated: S is
                    // inside the active batch.
                    self.stats.resolved += 1;
                    self.active_conflict = None;
                    if self.config.shrink {
                        self.shrink_step(jit);
                    } else {
                        self.freeze_batch();
                        self.next_conflict(program, jit);
                    }
                }
            }
            Phase::Shrinking(last_disabled) => {
                let reappeared = unresolved.iter().any(|s| !self.queue.contains(s));
                if reappeared {
                    // The disabled half contained part of S: bring it back
                    // and freeze everything still needed.
                    for &cs in &last_disabled {
                        jit.enable_call_profiling(cs);
                    }
                    self.active_batch.extend(last_disabled);
                    self.freeze_batch();
                    self.next_conflict(program, jit);
                } else {
                    // The disabled half was unnecessary; keep halving.
                    self.shrink_step(jit);
                }
            }
        }
    }

    /// Picks the next queued conflict (if any) and starts probing for it.
    fn next_conflict(&mut self, program: &Program, jit: &mut JitState) {
        debug_assert!(self.active_batch.is_empty(), "batch must be frozen or disabled first");
        if self.active_conflict.is_none() {
            if self.queue.is_empty() {
                self.phase = Phase::Idle;
                return;
            }
            self.active_conflict = Some(self.queue.remove(0));
            self.tried.clear(); // per-conflict candidate pool
        }
        self.start_probe(program, jit);
    }

    fn start_probe(&mut self, program: &Program, jit: &mut JitState) {
        let candidates: Vec<CallSiteId> = jit
            .profilable_call_sites(program)
            .into_iter()
            .filter(|cs| !self.tried.contains(cs) && !self.frozen.contains(cs))
            .collect();
        if candidates.is_empty() {
            // Exhausted: give up on the active conflict (paper: "until all
            // method calls are exhausted") and move on.
            self.stats.exhausted += 1;
            self.active_conflict = None;
            self.next_conflict(program, jit);
            return;
        }
        let total = jit.profilable_call_sites(program).len();
        let batch_size =
            ((total as f64 * self.config.p_fraction).ceil() as usize).clamp(1, candidates.len());
        let mut pool = candidates;
        pool.shuffle(&mut self.rng);
        pool.truncate(batch_size);
        for &cs in &pool {
            jit.enable_call_profiling(cs);
            self.tried.insert(cs);
        }
        self.log_batch("enable", pool.len());
        self.active_batch = pool;
        self.stats.probe_rounds += 1;
        self.phase = Phase::Probing;
    }

    fn disable_batch(&mut self, jit: &mut JitState) {
        self.log_batch("disable", self.active_batch.len());
        for &cs in &self.active_batch {
            jit.disable_call_profiling(cs);
        }
        self.active_batch.clear();
    }

    fn shrink_step(&mut self, jit: &mut JitState) {
        if self.active_batch.len() <= 1 {
            self.freeze_batch();
            // The next queued conflict (if any) starts at the next
            // inference round, once fresh age data exists.
            self.phase = Phase::Idle;
            return;
        }
        let half = self.active_batch.split_off(self.active_batch.len() / 2);
        self.log_batch("shrink", half.len());
        for &cs in &half {
            jit.disable_call_profiling(cs);
        }
        self.phase = Phase::Shrinking(half);
    }

    fn freeze_batch(&mut self) {
        self.log_batch("freeze", self.active_batch.len());
        self.frozen.append(&mut self.active_batch);
    }
}

/// The paper's Fig. 7 model: worst-case conflict-resolution time. With
/// `n` jitted call sites probed `P`-fraction at a time, at most
/// `ceil(1/P)` rounds of `inference_period` GC cycles are needed, each GC
/// `avg_gc_interval` apart.
pub fn worst_case_resolution_time_ms(
    jitted_call_sites: usize,
    p_fraction: f64,
    avg_gc_interval_ms: f64,
    inference_period: u64,
) -> f64 {
    if jitted_call_sites == 0 || p_fraction <= 0.0 {
        return 0.0;
    }
    let batch = ((jitted_call_sites as f64 * p_fraction).ceil()).max(1.0);
    let rounds = (jitted_call_sites as f64 / batch).ceil();
    rounds * inference_period as f64 * avg_gc_interval_ms
}

#[cfg(test)]
mod tests {
    use super::*;
    use rolp_vm::{JitConfig, ProgramBuilder};

    /// A program with one hot caller and `n` profilable call sites.
    fn world(n: usize) -> (Program, JitState) {
        let mut b = ProgramBuilder::new();
        let caller = b.method("app.Main::run", 500, false);
        let mut callees = Vec::new();
        for i in 0..n {
            let callee = b.method(format!("app.W{i}::go"), 200, false);
            callees.push(b.call_site(caller, callee));
        }
        let program = b.build();
        let mut jit =
            JitState::new(&program, JitConfig { compile_threshold: 1, ..Default::default() });
        let mut rng = StdRng::seed_from_u64(1);
        jit.note_entry(&program, caller, &mut rng);
        (program, jit)
    }

    #[test]
    fn probe_enables_p_fraction_of_sites() {
        let (program, mut jit) = world(20);
        let mut r = ConflictResolver::new(ConflictConfig::default(), 7);
        r.on_inference(&program, &mut jit, &[5], &[]);
        assert_eq!(jit.enabled_call_sites(), 4, "20 sites * 20% = 4");
        assert_eq!(r.stats().detected, 1);
        assert_eq!(r.stats().probe_rounds, 1);
    }

    #[test]
    fn failed_probes_try_fresh_batches_until_exhausted() {
        let (program, mut jit) = world(10);
        let mut r = ConflictResolver::new(ConflictConfig::default(), 7);
        r.on_inference(&program, &mut jit, &[5], &[]);
        let mut seen: HashSet<usize> = HashSet::new();
        // Keep reporting "unresolved" until the candidate pool drains.
        for _ in 0..10 {
            for cs in program.call_sites() {
                if jit.call_site(cs).delta != 0 {
                    seen.insert(cs.0 as usize);
                }
            }
            r.on_inference(&program, &mut jit, &[], &[5]);
        }
        assert_eq!(seen.len(), 10, "every site got tried exactly once overall");
        assert_eq!(r.stats().exhausted, 1);
        assert_eq!(r.open_conflicts(), 0);
        assert_eq!(jit.enabled_call_sites(), 0, "gave up: everything off");
    }

    #[test]
    fn resolution_then_shrink_converges_to_small_frozen_set() {
        let (program, mut jit) = world(16);
        let mut r = ConflictResolver::new(ConflictConfig::default(), 7);
        r.on_inference(&program, &mut jit, &[3], &[]);
        assert!(jit.enabled_call_sites() > 0);
        // Conflict resolves immediately; shrink rounds all report "still
        // resolved", so the batch halves away to one frozen site.
        for _ in 0..10 {
            r.on_inference(&program, &mut jit, &[], &[]);
        }
        assert_eq!(r.stats().resolved, 1);
        assert!(
            r.stats().frozen_sites <= 2,
            "shrink should converge to a small S, got {}",
            r.stats().frozen_sites
        );
        assert_eq!(jit.enabled_call_sites(), r.stats().frozen_sites as usize);
    }

    #[test]
    fn shrink_restores_half_when_conflict_reappears() {
        let (program, mut jit) = world(16);
        let mut r = ConflictResolver::new(ConflictConfig::default(), 7);
        r.on_inference(&program, &mut jit, &[3], &[]);
        let batch = jit.enabled_call_sites();
        // Resolved -> first shrink step happens (half disabled).
        r.on_inference(&program, &mut jit, &[], &[]);
        assert!(jit.enabled_call_sites() < batch);
        // Conflict reappears -> the half comes back and everything
        // enabled freezes.
        r.on_inference(&program, &mut jit, &[], &[3]);
        assert_eq!(jit.enabled_call_sites(), batch);
        assert_eq!(r.stats().frozen_sites as usize, batch);
        assert_eq!(r.open_conflicts(), 0);
    }

    #[test]
    fn without_shrink_the_whole_batch_freezes() {
        let (program, mut jit) = world(10);
        let cfg = ConflictConfig { shrink: false, ..Default::default() };
        let mut r = ConflictResolver::new(cfg, 7);
        r.on_inference(&program, &mut jit, &[1], &[]);
        let batch = jit.enabled_call_sites();
        r.on_inference(&program, &mut jit, &[], &[]);
        assert_eq!(r.stats().frozen_sites as usize, batch);
        assert_eq!(jit.enabled_call_sites(), batch);
    }

    #[test]
    fn batch_log_records_probe_shrink_and_freeze_transitions() {
        let (program, mut jit) = world(16);
        let mut r = ConflictResolver::new(ConflictConfig::default(), 7);
        r.set_batch_logging(true);
        r.on_inference(&program, &mut jit, &[3], &[]);
        // Failed probe -> disable + fresh enable; then resolution ->
        // shrink rounds down to a frozen singleton.
        r.on_inference(&program, &mut jit, &[], &[3]);
        for _ in 0..10 {
            r.on_inference(&program, &mut jit, &[], &[]);
        }
        let log = r.take_batch_log();
        let actions: Vec<&str> = log.iter().map(|&(a, _)| a).collect();
        assert_eq!(&actions[..3], &["enable", "disable", "enable"]);
        assert!(actions.contains(&"shrink"));
        assert_eq!(*actions.last().unwrap(), "freeze");
        assert!(log.iter().all(|&(_, n)| n > 0));
        assert!(r.take_batch_log().is_empty(), "drained");

        // Off by default: nothing accumulates.
        let (program2, mut jit2) = world(8);
        let mut quiet = ConflictResolver::new(ConflictConfig::default(), 7);
        quiet.on_inference(&program2, &mut jit2, &[1], &[]);
        assert!(quiet.take_batch_log().is_empty());
    }

    #[test]
    fn reapply_restores_probe_batch_and_frozen_sets_after_bulk_disable() {
        let (program, mut jit) = world(16);
        let mut r = ConflictResolver::new(ConflictConfig::default(), 7);
        r.on_inference(&program, &mut jit, &[3], &[]);
        let enabled = jit.enabled_call_sites();
        assert!(enabled > 0);
        // Governor sheds all call-site profiling (Reduced state)...
        for cs in program.call_sites() {
            jit.disable_call_profiling(cs);
        }
        assert_eq!(jit.enabled_call_sites(), 0);
        // ...then recovery re-applies the resolver's intent exactly.
        r.reapply_to_jit(&mut jit);
        assert_eq!(jit.enabled_call_sites(), enabled);
    }

    #[test]
    fn imported_frozen_sets_dedupe_and_reapply() {
        let (program, mut jit) = world(4);
        let mut r = ConflictResolver::new(ConflictConfig::default(), 7);
        let sites: Vec<CallSiteId> = program.call_sites().collect();
        r.import_frozen([sites[0], sites[1], sites[0]]);
        assert_eq!(r.frozen_sites(), &[sites[0], sites[1]]);
        r.import_frozen([sites[1], sites[2]]);
        assert_eq!(r.frozen_sites().len(), 3, "dedupe against existing frozen sites");
        assert_eq!(r.stats().frozen_sites, 3);
        r.reapply_to_jit(&mut jit);
        assert_eq!(jit.enabled_call_sites(), 3);
    }

    #[test]
    fn worst_case_model_matches_paper_shape() {
        // Larger P means fewer rounds: 20% -> 5 rounds, 50% -> 2 rounds.
        let t20 = worst_case_resolution_time_ms(1_000, 0.20, 500.0, 16);
        let t50 = worst_case_resolution_time_ms(1_000, 0.50, 500.0, 16);
        assert!((t20 / t50 - 2.5).abs() < 0.01);
        // 1000 sites at 20% = 5 rounds of 16 GCs at 500 ms = 40 s.
        assert!((t20 - 40_000.0).abs() < 1.0);
        assert_eq!(worst_case_resolution_time_ms(0, 0.2, 500.0, 16), 0.0);
    }
}
