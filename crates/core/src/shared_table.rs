//! The shared (concurrent) Object Lifetime Distribution table.
//!
//! [`SharedOldTable`] is the multi-threaded twin of [`crate::OldTable`]:
//! the same §7.5 [`TableGeometry`] (a base block of one row per
//! allocation-site id, plus one expansion block per conflicted site), but
//! with every age cell an [`AtomicU32`] so real mutator threads can bump
//! age-0 cells while GC worker threads and the safepoint merger operate
//! on the same storage.
//!
//! Fidelity to the paper's §7.6 concurrency story:
//!
//! - **Application threads increment age-0 cells with no locks and no
//!   read-modify-write.** [`SharedOldTable::record_allocation`] is a
//!   relaxed load followed by a relaxed store — the Rust-legal rendering
//!   of the paper's *unsynchronized* `incl` (HotSpot omits the `lock`
//!   prefix to keep the allocation fast path cheap). Two threads hitting
//!   the same cell can overlap and **lose counts**, exactly as §7.6
//!   describes. Because both halves are atomic ops, this is benign
//!   imprecision, not UB — ThreadSanitizer stays quiet while the lost
//!   counts remain measurable.
//! - **Loss is measured, not simulated.** The old `loss_probability` knob
//!   is gone: a per-epoch reconciliation compares the age-0 counts that
//!   actually landed in the table against the exact per-thread allocation
//!   tallies (see [`crate::concurrent::EpochReconciliation`]), so the §7.6
//!   imprecision is an *observed* quantity of a real race.
//! - **GC-side updates go through private per-worker tables**
//!   ([`crate::WorkerTable`]) merged at the safepoint, never through racy
//!   read-modify-write cycles on the shared cells.
//!
//! The safepoint-side surface (merge, inference, clear) is the
//! [`LifetimeTable`] impl, shared with the sequential backend; the
//! genuinely concurrent entry points are the inherent `&self` methods the
//! trait impl delegates to.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::sync::OnceLock;

use crate::geometry::{LifetimeTable, TableGeometry};
use crate::old_table::AGE_COLUMNS;

/// The concurrent Object Lifetime Distribution table.
pub struct SharedOldTable {
    geometry: TableGeometry,
    /// Base block: one row of [`AGE_COLUMNS`] cells per site row, flat.
    base: Box<[AtomicU32]>,
    /// Per-site expansion blocks, installed at safepoints. `OnceLock::get`
    /// is a single atomic load, keeping the mutator path lock-free.
    expanded: Box<[OnceLock<Box<[AtomicU32]>>]>,
    expansions: AtomicUsize,
}

fn zeroed_cells(n: usize) -> Box<[AtomicU32]> {
    (0..n).map(|_| AtomicU32::new(0)).collect()
}

impl SharedOldTable {
    /// A full-scale table: 2^16 site rows, 2^16 stack states per expansion
    /// block (4 MB + 4 MB per conflict, as §7.5 sizes it).
    pub fn new() -> Self {
        Self::with_geometry(TableGeometry::full_scale())
    }

    /// A table with an explicit geometry; ids alias into rows by masking.
    pub fn with_geometry(geometry: TableGeometry) -> Self {
        SharedOldTable {
            geometry,
            base: zeroed_cells(geometry.site_rows() * AGE_COLUMNS),
            expanded: (0..geometry.site_rows()).map(|_| OnceLock::new()).collect(),
            expansions: AtomicUsize::new(0),
        }
    }

    /// The cell backing `(context, age)` under the current expansion
    /// state.
    #[inline]
    fn cell(&self, context: u32, age: usize) -> &AtomicU32 {
        let site = self.geometry.site_row(context);
        match self.expanded[site].get() {
            Some(block) => &block[self.geometry.tss_row(context) * AGE_COLUMNS + age],
            None => &self.base[site * AGE_COLUMNS + age],
        }
    }

    /// Application-thread fast path: bump the age-0 cell with the paper's
    /// unsynchronized increment (relaxed load + relaxed store, no lock, no
    /// RMW). Concurrent callers on the same cell may lose counts — that is
    /// the §7.6 trade, and the per-epoch reconciliation measures it.
    #[inline]
    pub fn record_allocation(&self, context: u32) {
        let cell = self.cell(context, 0);
        let v = cell.load(Ordering::Relaxed);
        cell.store(v.saturating_add(1), Ordering::Relaxed);
    }

    /// Lossless variant (`lock xadd`): what the paper rejects for the hot
    /// path. Kept for the contention ablation, which compares the measured
    /// loss of [`SharedOldTable::record_allocation`] against this.
    #[inline]
    pub fn record_allocation_atomic(&self, context: u32) {
        self.cell(context, 0).fetch_add(1, Ordering::Relaxed);
    }

    /// Batched age-0 ingest: one load/store pair covers the whole
    /// run-length. Flushed at safepoints (single thread, world stopped),
    /// which is exactly how batching shrinks the §7.6 loss window — the
    /// racy per-allocation increments this replaces could interleave and
    /// lose counts; one safepoint-side read-modify-write per context
    /// cannot.
    pub fn record_allocations(&self, context: u32, n: u32) {
        if n == 0 {
            return;
        }
        let cell = self.cell(context, 0);
        let v = cell.load(Ordering::Relaxed);
        cell.store(v.saturating_add(n), Ordering::Relaxed);
    }

    /// Safepoint-side survival move (`age` → `age + 1`). Called only by
    /// the single merger thread while the world is stopped (GC workers
    /// buffer into private [`crate::WorkerTable`]s instead of calling
    /// this), so plain load/store is exact here.
    pub fn record_survival(&self, context: u32, age: u8) {
        let age = (age as usize).min(AGE_COLUMNS - 1);
        let next = (age + 1).min(AGE_COLUMNS - 1);
        let from = self.cell(context, age);
        let v = from.load(Ordering::Relaxed);
        from.store(v.saturating_sub(1), Ordering::Relaxed);
        let to = self.cell(context, next);
        let v = to.load(Ordering::Relaxed);
        to.store(v.saturating_add(1), Ordering::Relaxed);
    }

    /// Grows the table with a private block for a conflicted site (§7.5).
    /// Safepoint-only: aliased counts already in the base row stay there
    /// until the next periodic clear, as in the sequential table.
    pub fn expand_site(&self, site: u16) {
        let row = self.geometry.site_row((site as u32) << 16);
        let mut installed = false;
        self.expanded[row].get_or_init(|| {
            installed = true;
            zeroed_cells(self.geometry.tss_rows() * AGE_COLUMNS)
        });
        if installed {
            self.expansions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// True if `site` has its own per-stack-state expansion block.
    pub fn is_expanded(&self, site: u16) -> bool {
        self.expanded[self.geometry.site_row((site as u32) << 16)].get().is_some()
    }

    /// Number of expansion blocks.
    pub fn expansions(&self) -> usize {
        self.expansions.load(Ordering::Relaxed)
    }

    /// The age histogram of a context's row.
    pub fn histogram(&self, context: u32) -> [u32; AGE_COLUMNS] {
        let mut out = [0u32; AGE_COLUMNS];
        for (age, slot) in out.iter_mut().enumerate() {
            *slot = self.cell(context, age).load(Ordering::Relaxed);
        }
        out
    }

    /// Sum of all age-0 cells — the reconciliation counter's observed
    /// side. Safepoint-side scan (the mutators are stopped).
    pub fn age0_total(&self) -> u64 {
        let mut sum = 0u64;
        for row in 0..self.geometry.site_rows() {
            sum += self.base[row * AGE_COLUMNS].load(Ordering::Relaxed) as u64;
            if let Some(block) = self.expanded[row].get() {
                for trow in 0..self.geometry.tss_rows() {
                    sum += block[trow * AGE_COLUMNS].load(Ordering::Relaxed) as u64;
                }
            }
        }
        sum
    }

    /// All rows with at least one nonzero cell, keyed like
    /// [`LifetimeTable::row_key`]. Safepoint-side scan. Every record
    /// leaves at least one nonzero cell behind (allocation bumps age 0;
    /// survival's destination column saturates *up*), so nonzero-ness is
    /// exactly "touched since the last clear".
    pub fn snapshot(&self) -> BTreeMap<u32, [u32; AGE_COLUMNS]> {
        let mut out = BTreeMap::new();
        let read_row = |cells: &[AtomicU32], start: usize| {
            let mut h = [0u32; AGE_COLUMNS];
            let mut nonzero = false;
            for (age, slot) in h.iter_mut().enumerate() {
                *slot = cells[start + age].load(Ordering::Relaxed);
                nonzero |= *slot != 0;
            }
            nonzero.then_some(h)
        };
        for row in 0..self.geometry.site_rows() {
            if let Some(h) = read_row(&self.base, row * AGE_COLUMNS) {
                out.insert((row as u32) << 16, h);
            }
            if let Some(block) = self.expanded[row].get() {
                for trow in 0..self.geometry.tss_rows() {
                    if let Some(h) = read_row(block, trow * AGE_COLUMNS) {
                        out.insert(((row as u32) << 16) | trow as u32, h);
                    }
                }
            }
        }
        out
    }

    /// Clears all counts (the §4 freshness reset) per the
    /// [`crate::geometry`] contract; expansion blocks stay. Safepoint-only.
    pub fn clear_counts(&self) {
        for cell in self.base.iter() {
            cell.store(0, Ordering::Relaxed);
        }
        for block in self.expanded.iter().filter_map(|b| b.get()) {
            for cell in block.iter() {
                cell.store(0, Ordering::Relaxed);
            }
        }
    }
}

impl LifetimeTable for SharedOldTable {
    fn geometry(&self) -> &TableGeometry {
        &self.geometry
    }

    fn record_allocation(&mut self, context: u32) {
        SharedOldTable::record_allocation(self, context);
    }

    fn record_allocations(&mut self, context: u32, n: u32) {
        SharedOldTable::record_allocations(self, context, n);
    }

    fn record_survival(&mut self, context: u32, age: u8) {
        SharedOldTable::record_survival(self, context, age);
    }

    fn expand_site(&mut self, site: u16) {
        SharedOldTable::expand_site(self, site);
    }

    fn is_expanded(&self, site: u16) -> bool {
        SharedOldTable::is_expanded(self, site)
    }

    fn expansions(&self) -> usize {
        SharedOldTable::expansions(self)
    }

    fn expanded_sites(&self) -> Vec<u16> {
        (0..self.geometry.site_rows())
            .filter(|&row| self.expanded[row].get().is_some())
            .map(|row| row as u16)
            .collect()
    }

    fn histogram(&self, context: u32) -> [u32; AGE_COLUMNS] {
        SharedOldTable::histogram(self, context)
    }

    fn touched_rows(&self) -> Vec<u32> {
        // BTreeMap keys iterate in ascending order, satisfying the
        // trait's sorted contract.
        self.snapshot().into_keys().collect()
    }

    fn age0_total(&self) -> u64 {
        SharedOldTable::age0_total(self)
    }

    fn clear_counts(&mut self) {
        SharedOldTable::clear_counts(self);
    }
}

impl Default for SharedOldTable {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::pack;

    fn small() -> SharedOldTable {
        SharedOldTable::with_geometry(TableGeometry::new(64, 16))
    }

    /// Trait-qualified row key (the inherent methods shadow the trait's
    /// provided ones in method resolution).
    fn key(t: &SharedOldTable, c: u32) -> u32 {
        LifetimeTable::row_key(t, c)
    }

    #[test]
    fn allocations_land_in_age_zero() {
        let t = small();
        let c = pack(10, 0);
        t.record_allocation(c);
        t.record_allocation(c);
        t.record_allocation_atomic(c);
        assert_eq!(t.histogram(c)[0], 3);
        assert_eq!(t.age0_total(), 3);
    }

    #[test]
    fn unexpanded_sites_alias_stack_states_and_masked_geometry_aliases_sites() {
        let t = small();
        t.record_allocation(pack(5, 111));
        t.record_allocation(pack(5, 222));
        assert_eq!(t.histogram(pack(5, 0))[0], 2);
        assert_eq!(key(&t, pack(5, 111)), key(&t, pack(5, 222)));
        // 64-row geometry: site 69 aliases site 5's row.
        t.record_allocation(pack(69, 0));
        assert_eq!(t.histogram(pack(5, 0))[0], 3);
        assert_eq!(key(&t, pack(69, 0)), key(&t, pack(5, 0)), "row keys mask too");
    }

    #[test]
    fn expansion_splits_stack_states() {
        let t = small();
        t.expand_site(5);
        assert!(t.is_expanded(5));
        assert_eq!(t.expansions(), 1);
        t.expand_site(5); // idempotent
        assert_eq!(t.expansions(), 1);
        t.record_allocation(pack(5, 1));
        t.record_allocation(pack(5, 2));
        assert_eq!(t.histogram(pack(5, 1))[0], 1);
        assert_eq!(t.histogram(pack(5, 2))[0], 1);
        assert_ne!(key(&t, pack(5, 1)), key(&t, pack(5, 2)));
    }

    #[test]
    fn survival_moves_between_age_columns_and_saturates() {
        let t = small();
        let c = pack(3, 0);
        t.record_allocation(c);
        t.record_survival(c, 0);
        let h = t.histogram(c);
        assert_eq!((h[0], h[1]), (0, 1));
        for age in 1..40u8 {
            t.record_survival(c, age.min(15));
        }
        assert_eq!(t.histogram(c)[15], 1);
        // Underflow saturates instead of wrapping.
        t.record_survival(pack(9, 0), 3);
        assert_eq!(t.histogram(pack(9, 0))[3], 0);
        assert_eq!(t.histogram(pack(9, 0))[4], 1);
    }

    #[test]
    fn snapshot_reports_nonzero_rows_with_row_keys() {
        let t = small();
        t.expand_site(7);
        t.record_allocation(pack(7, 3));
        t.record_allocation(pack(2, 9)); // aliases to site row 2
        let snap = t.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[&pack(2, 0)][0], 1);
        assert_eq!(snap[&pack(7, 3)][0], 1);
        assert_eq!(LifetimeTable::touched_rows(&t), vec![pack(2, 0), pack(7, 3)]);
    }

    #[test]
    fn clear_resets_counts_but_keeps_expansions() {
        let t = small();
        t.expand_site(4);
        t.record_allocation(pack(4, 9));
        t.record_allocation(pack(8, 0));
        t.clear_counts();
        assert!(t.snapshot().is_empty());
        assert!(t.is_expanded(4));
        assert_eq!(t.age0_total(), 0);
    }

    #[test]
    fn memory_accounting_matches_geometry() {
        let t = small();
        let base = (64 * AGE_COLUMNS * 4) as u64;
        let block = (16 * AGE_COLUMNS * 4) as u64;
        assert_eq!(t.memory_bytes(), base);
        t.expand_site(1);
        assert_eq!(t.memory_bytes(), base + block);
    }

    #[test]
    fn full_scale_geometry_matches_the_paper() {
        let t = SharedOldTable::new();
        assert_eq!(t.memory_bytes(), 4 * 1024 * 1024, "2^16 rows x 16 x 4 B");
    }

    #[test]
    fn concurrent_unsynchronized_increments_lose_at_most_the_deficit() {
        // 4 threads x 20k increments on one contended cell: the final
        // count never exceeds the intended total, and the deficit is the
        // measured §7.6 loss.
        let t = std::sync::Arc::new(small());
        let c = pack(1, 0);
        let threads = 4;
        let per = 20_000u32;
        std::thread::scope(|s| {
            for _ in 0..threads {
                let t = std::sync::Arc::clone(&t);
                s.spawn(move || {
                    for _ in 0..per {
                        t.record_allocation(c);
                    }
                });
            }
        });
        let recorded = t.histogram(c)[0];
        assert!(recorded <= threads * per);
        assert!(recorded > 0);
    }
}
