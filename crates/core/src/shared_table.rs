//! The shared (concurrent) Object Lifetime Distribution table.
//!
//! [`SharedOldTable`] is the multi-threaded twin of [`crate::OldTable`]:
//! the same §7.5 geometry (a base block of one row per allocation-site id,
//! plus one expansion block per conflicted site), but with every age cell
//! an [`AtomicU32`] so real mutator threads can bump age-0 cells while GC
//! worker threads and the safepoint merger operate on the same storage.
//!
//! Fidelity to the paper's §7.6 concurrency story:
//!
//! - **Application threads increment age-0 cells with no locks and no
//!   read-modify-write.** [`SharedOldTable::record_allocation`] is a
//!   relaxed load followed by a relaxed store — the Rust-legal rendering
//!   of the paper's *unsynchronized* `incl` (HotSpot omits the `lock`
//!   prefix to keep the allocation fast path cheap). Two threads hitting
//!   the same cell can overlap and **lose counts**, exactly as §7.6
//!   describes. Because both halves are atomic ops, this is benign
//!   imprecision, not UB — ThreadSanitizer stays quiet while the lost
//!   counts remain measurable.
//! - **Loss is measured, not simulated.** The old `loss_probability` knob
//!   is gone: a per-epoch reconciliation compares the age-0 counts that
//!   actually landed in the table against the exact per-thread allocation
//!   tallies (see [`crate::concurrent::EpochReconciliation`]), so the §7.6
//!   imprecision is an *observed* quantity of a real race.
//! - **GC-side updates go through private per-worker tables**
//!   ([`crate::WorkerTable`]) merged at the safepoint, never through racy
//!   read-modify-write cycles on the shared cells.
//!
//! Geometry is parameterizable so scaled-down tests (and Miri, which
//! would crawl over a 4 MB table) can use small power-of-two row counts;
//! site and stack-state ids then *alias* into rows by masking, which is
//! also how every thread stack state shares its site's row before a
//! conflict expands it.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::sync::OnceLock;

use crate::context::{site_of, tss_of};
use crate::old_table::AGE_COLUMNS;

/// Rows in the full-scale base table / expansion blocks (§7.5: 2^16).
pub const FULL_SCALE_ROWS: usize = 1 << 16;

/// The concurrent Object Lifetime Distribution table.
pub struct SharedOldTable {
    site_rows: usize,
    site_mask: u16,
    tss_rows: usize,
    tss_mask: u16,
    /// Base block: `site_rows` rows of [`AGE_COLUMNS`] cells, flat.
    base: Box<[AtomicU32]>,
    /// Per-site expansion blocks, installed at safepoints. `OnceLock::get`
    /// is a single atomic load, keeping the mutator path lock-free.
    expanded: Box<[OnceLock<Box<[AtomicU32]>>]>,
    expansions: AtomicUsize,
}

fn zeroed_cells(n: usize) -> Box<[AtomicU32]> {
    (0..n).map(|_| AtomicU32::new(0)).collect()
}

impl SharedOldTable {
    /// A full-scale table: 2^16 site rows, 2^16 stack states per expansion
    /// block (4 MB + 4 MB per conflict, as §7.5 sizes it).
    pub fn new() -> Self {
        Self::with_geometry(FULL_SCALE_ROWS, FULL_SCALE_ROWS)
    }

    /// A table with explicit power-of-two row counts. Site ids alias into
    /// `site_rows` rows and stack states into `tss_rows` expansion rows by
    /// masking.
    pub fn with_geometry(site_rows: usize, tss_rows: usize) -> Self {
        assert!(site_rows.is_power_of_two() && site_rows <= FULL_SCALE_ROWS);
        assert!(tss_rows.is_power_of_two() && tss_rows <= FULL_SCALE_ROWS);
        SharedOldTable {
            site_rows,
            site_mask: (site_rows - 1) as u16,
            tss_rows,
            tss_mask: (tss_rows - 1) as u16,
            base: zeroed_cells(site_rows * AGE_COLUMNS),
            expanded: (0..site_rows).map(|_| OnceLock::new()).collect(),
            expansions: AtomicUsize::new(0),
        }
    }

    #[inline]
    fn site_row(&self, context: u32) -> usize {
        (site_of(context) & self.site_mask) as usize
    }

    /// The cell backing `(context, age)` under the current expansion
    /// state.
    #[inline]
    fn cell(&self, context: u32, age: usize) -> &AtomicU32 {
        let site = self.site_row(context);
        match self.expanded[site].get() {
            Some(block) => {
                let row = (tss_of(context) & self.tss_mask) as usize;
                &block[row * AGE_COLUMNS + age]
            }
            None => &self.base[site * AGE_COLUMNS + age],
        }
    }

    /// Application-thread fast path: bump the age-0 cell with the paper's
    /// unsynchronized increment (relaxed load + relaxed store, no lock, no
    /// RMW). Concurrent callers on the same cell may lose counts — that is
    /// the §7.6 trade, and the per-epoch reconciliation measures it.
    #[inline]
    pub fn record_allocation(&self, context: u32) {
        let cell = self.cell(context, 0);
        let v = cell.load(Ordering::Relaxed);
        cell.store(v.saturating_add(1), Ordering::Relaxed);
    }

    /// Lossless variant (`lock xadd`): what the paper rejects for the hot
    /// path. Kept for the contention ablation, which compares the measured
    /// loss of [`SharedOldTable::record_allocation`] against this.
    #[inline]
    pub fn record_allocation_atomic(&self, context: u32) {
        self.cell(context, 0).fetch_add(1, Ordering::Relaxed);
    }

    /// Safepoint-side survival move (`age` → `age + 1`). Called only by
    /// the single merger thread while the world is stopped (GC workers
    /// buffer into private [`crate::WorkerTable`]s instead of calling
    /// this), so plain load/store is exact here.
    pub fn record_survival(&self, context: u32, age: u8) {
        let age = (age as usize).min(AGE_COLUMNS - 1);
        let next = (age + 1).min(AGE_COLUMNS - 1);
        let from = self.cell(context, age);
        let v = from.load(Ordering::Relaxed);
        from.store(v.saturating_sub(1), Ordering::Relaxed);
        let to = self.cell(context, next);
        let v = to.load(Ordering::Relaxed);
        to.store(v.saturating_add(1), Ordering::Relaxed);
    }

    /// Grows the table with a private block for a conflicted site (§7.5).
    /// Safepoint-only: aliased counts already in the base row stay there
    /// until the next periodic clear, as in the sequential table.
    pub fn expand_site(&self, site: u16) {
        let row = (site & self.site_mask) as usize;
        let mut installed = false;
        self.expanded[row].get_or_init(|| {
            installed = true;
            zeroed_cells(self.tss_rows * AGE_COLUMNS)
        });
        if installed {
            self.expansions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// True if `site` has its own per-stack-state expansion block.
    pub fn is_expanded(&self, site: u16) -> bool {
        self.expanded[(site & self.site_mask) as usize].get().is_some()
    }

    /// Number of expansion blocks.
    pub fn expansions(&self) -> usize {
        self.expansions.load(Ordering::Relaxed)
    }

    /// The *row key* a context resolves to (site-aliased unless expanded),
    /// matching [`crate::OldTable::row_key`] so decisions transfer.
    pub fn row_key(&self, context: u32) -> u32 {
        if self.is_expanded(site_of(context)) {
            context
        } else {
            (site_of(context) as u32) << 16
        }
    }

    /// Memory footprint per §7.5: one base block plus one per conflict.
    pub fn memory_bytes(&self) -> u64 {
        let base = self.site_rows * AGE_COLUMNS * std::mem::size_of::<u32>();
        let per_block = self.tss_rows * AGE_COLUMNS * std::mem::size_of::<u32>();
        (base + self.expansions() * per_block) as u64
    }

    /// The age histogram of a context's row.
    pub fn histogram(&self, context: u32) -> [u32; AGE_COLUMNS] {
        let mut out = [0u32; AGE_COLUMNS];
        for (age, slot) in out.iter_mut().enumerate() {
            *slot = self.cell(context, age).load(Ordering::Relaxed);
        }
        out
    }

    /// Sum of all age-0 cells — the reconciliation counter's observed
    /// side. Safepoint-side scan (the mutators are stopped).
    pub fn age0_total(&self) -> u64 {
        let mut sum = 0u64;
        for row in 0..self.site_rows {
            sum += self.base[row * AGE_COLUMNS].load(Ordering::Relaxed) as u64;
            if let Some(block) = self.expanded[row].get() {
                for trow in 0..self.tss_rows {
                    sum += block[trow * AGE_COLUMNS].load(Ordering::Relaxed) as u64;
                }
            }
        }
        sum
    }

    /// All rows with at least one nonzero cell, keyed like
    /// [`SharedOldTable::row_key`]. Safepoint-side scan.
    pub fn snapshot(&self) -> BTreeMap<u32, [u32; AGE_COLUMNS]> {
        let mut out = BTreeMap::new();
        let read_row = |cells: &[AtomicU32], start: usize| {
            let mut h = [0u32; AGE_COLUMNS];
            let mut nonzero = false;
            for (age, slot) in h.iter_mut().enumerate() {
                *slot = cells[start + age].load(Ordering::Relaxed);
                nonzero |= *slot != 0;
            }
            nonzero.then_some(h)
        };
        for row in 0..self.site_rows {
            if let Some(h) = read_row(&self.base, row * AGE_COLUMNS) {
                out.insert((row as u32) << 16, h);
            }
            if let Some(block) = self.expanded[row].get() {
                for trow in 0..self.tss_rows {
                    if let Some(h) = read_row(block, trow * AGE_COLUMNS) {
                        out.insert(((row as u32) << 16) | trow as u32, h);
                    }
                }
            }
        }
        out
    }

    /// Clears all counts (the §4 freshness reset); expansion blocks stay.
    /// Safepoint-only.
    pub fn clear_counts(&self) {
        for cell in self.base.iter() {
            cell.store(0, Ordering::Relaxed);
        }
        for block in self.expanded.iter().filter_map(|b| b.get()) {
            for cell in block.iter() {
                cell.store(0, Ordering::Relaxed);
            }
        }
    }
}

impl Default for SharedOldTable {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::pack;

    fn small() -> SharedOldTable {
        SharedOldTable::with_geometry(64, 16)
    }

    #[test]
    fn allocations_land_in_age_zero() {
        let t = small();
        let c = pack(10, 0);
        t.record_allocation(c);
        t.record_allocation(c);
        t.record_allocation_atomic(c);
        assert_eq!(t.histogram(c)[0], 3);
        assert_eq!(t.age0_total(), 3);
    }

    #[test]
    fn unexpanded_sites_alias_stack_states_and_masked_geometry_aliases_sites() {
        let t = small();
        t.record_allocation(pack(5, 111));
        t.record_allocation(pack(5, 222));
        assert_eq!(t.histogram(pack(5, 0))[0], 2);
        assert_eq!(t.row_key(pack(5, 111)), t.row_key(pack(5, 222)));
        // 64-row geometry: site 69 aliases site 5's row.
        t.record_allocation(pack(69, 0));
        assert_eq!(t.histogram(pack(5, 0))[0], 3);
    }

    #[test]
    fn expansion_splits_stack_states() {
        let t = small();
        t.expand_site(5);
        assert!(t.is_expanded(5));
        assert_eq!(t.expansions(), 1);
        t.expand_site(5); // idempotent
        assert_eq!(t.expansions(), 1);
        t.record_allocation(pack(5, 1));
        t.record_allocation(pack(5, 2));
        assert_eq!(t.histogram(pack(5, 1))[0], 1);
        assert_eq!(t.histogram(pack(5, 2))[0], 1);
        assert_ne!(t.row_key(pack(5, 1)), t.row_key(pack(5, 2)));
    }

    #[test]
    fn survival_moves_between_age_columns_and_saturates() {
        let t = small();
        let c = pack(3, 0);
        t.record_allocation(c);
        t.record_survival(c, 0);
        let h = t.histogram(c);
        assert_eq!((h[0], h[1]), (0, 1));
        for age in 1..40u8 {
            t.record_survival(c, age.min(15));
        }
        assert_eq!(t.histogram(c)[15], 1);
        // Underflow saturates instead of wrapping.
        t.record_survival(pack(9, 0), 3);
        assert_eq!(t.histogram(pack(9, 0))[3], 0);
        assert_eq!(t.histogram(pack(9, 0))[4], 1);
    }

    #[test]
    fn snapshot_reports_nonzero_rows_with_row_keys() {
        let t = small();
        t.expand_site(7);
        t.record_allocation(pack(7, 3));
        t.record_allocation(pack(2, 9)); // aliases to site row 2
        let snap = t.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[&pack(2, 0)][0], 1);
        assert_eq!(snap[&pack(7, 3)][0], 1);
    }

    #[test]
    fn clear_resets_counts_but_keeps_expansions() {
        let t = small();
        t.expand_site(4);
        t.record_allocation(pack(4, 9));
        t.record_allocation(pack(8, 0));
        t.clear_counts();
        assert!(t.snapshot().is_empty());
        assert!(t.is_expanded(4));
        assert_eq!(t.age0_total(), 0);
    }

    #[test]
    fn memory_accounting_matches_geometry() {
        let t = SharedOldTable::with_geometry(64, 16);
        let base = (64 * AGE_COLUMNS * 4) as u64;
        let block = (16 * AGE_COLUMNS * 4) as u64;
        assert_eq!(t.memory_bytes(), base);
        t.expand_site(1);
        assert_eq!(t.memory_bytes(), base + block);
    }

    #[test]
    fn full_scale_geometry_matches_the_paper() {
        let t = SharedOldTable::new();
        assert_eq!(t.memory_bytes(), 4 * 1024 * 1024, "2^16 rows x 16 x 4 B");
    }

    #[test]
    fn concurrent_unsynchronized_increments_lose_at_most_the_deficit() {
        // 4 threads x 20k increments on one contended cell: the final
        // count never exceeds the intended total, and the deficit is the
        // measured §7.6 loss.
        let t = std::sync::Arc::new(small());
        let c = pack(1, 0);
        let threads = 4;
        let per = 20_000u32;
        std::thread::scope(|s| {
            for _ in 0..threads {
                let t = std::sync::Arc::clone(&t);
                s.spawn(move || {
                    for _ in 0..per {
                        t.record_allocation(c);
                    }
                });
            }
        });
        let recorded = t.histogram(c)[0];
        assert!(recorded <= threads * per);
        assert!(recorded > 0);
    }
}
