//! Fleet profile aggregation: multi-runtime lifetime consensus.
//!
//! The paper profiles one JVM; the arXiv version of ROLP motivates
//! sharing learned profiles across runs, and Deca-style distributed
//! systems show lifetime knowledge aggregates naturally across executors
//! running the same job. This module is the aggregation point: many
//! runtime instances export [`DecisionProfile`]s (`rolp-profile-v1`) at
//! epoch cadence into one [`FleetAggregator`], which merges them into a
//! consensus profile a newly joining instance imports through the
//! ordinary `--profile-in` canary-blend path — so a fresh instance
//! pretenures from its first allocation instead of re-learning from zero.
//!
//! # Protocol
//!
//! - **Identity & validation.** Every submission carries the exporter's
//!   program-shape fingerprint ([`crate::offline::program_fingerprint`]).
//!   The first accepted submission pins the fleet's fingerprint; later
//!   submissions with a different (or missing) fingerprint are rejected
//!   and counted — a fleet only aggregates instances provably running the
//!   same program shape.
//! - **Epoch cadence.** Instances re-submit as they learn; a submission
//!   under an already-seen instance name *replaces* that instance's
//!   previous profile, so the aggregator always holds each instance's
//!   latest view, never a mixture of stale and fresh epochs.
//! - **Consensus.** Decisions are keyed by source location
//!   `(method, bci)`. Each instance's entry votes for its generation with
//!   its confidence as the weight; the generation with the greatest total
//!   weight wins (ties break toward the *younger* generation — the safe
//!   direction, since under-tenuring costs copying while over-tenuring
//!   costs fragmentation). Conflicting locations are thus resolved by
//!   confidence-weighted majority. The consensus entry's confidence is
//!
//!   ```text
//!   agreement · mean-supporter-confidence
//!     = (winner_weight / total_weight) · (winner_weight / supporters)
//!   ```
//!
//!   so a unanimous, fully confident fleet exports 100 and a split vote
//!   starts the importer's canary-blend decay from proportionally lower
//!   trust. Frozen distinguishing call sites are included when a strict
//!   majority of instances froze them.
//! - **Determinism.** Submissions live in name-ordered maps and consensus
//!   walks locations in sorted order, so the published profile is a pure
//!   function of the submitted set — independent of arrival order.

use std::collections::BTreeMap;

use crate::offline::{CallSiteEntry, DecisionProfile, ProfileEntry};

/// What [`FleetAggregator::submit`] did with a profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmissionOutcome {
    /// Stored as a new instance's profile.
    Accepted,
    /// Replaced the same instance's earlier (staler-epoch) profile.
    Replaced,
    /// Rejected: the profile's fingerprint differs from the fleet's.
    FingerprintMismatch,
    /// Rejected: the profile carries no fingerprint (legacy format) — a
    /// fleet cannot verify it profiled the same program.
    MissingFingerprint,
}

impl SubmissionOutcome {
    /// True when the submission was stored.
    pub fn accepted(self) -> bool {
        matches!(self, SubmissionOutcome::Accepted | SubmissionOutcome::Replaced)
    }
}

/// The aggregated fleet view published to joining instances.
#[derive(Debug, Clone)]
pub struct FleetConsensus {
    /// The consensus profile (importable via the `--profile-in` path).
    pub profile: DecisionProfile,
    /// Instances that contributed.
    pub instances: usize,
    /// Locations where every contributing instance voted for the same
    /// generation.
    pub unanimous: usize,
    /// Locations where instances disagreed (resolved by weighted
    /// majority).
    pub contested: usize,
}

/// The central aggregator of a runtime fleet (see module docs for the
/// protocol).
#[derive(Debug, Default)]
pub struct FleetAggregator {
    fingerprint: Option<u64>,
    submissions: BTreeMap<String, DecisionProfile>,
    rejected: u64,
}

impl FleetAggregator {
    /// An empty aggregator; the first accepted submission pins the fleet
    /// fingerprint.
    pub fn new() -> Self {
        Self::default()
    }

    /// An aggregator pinned to a known program-shape fingerprint.
    pub fn for_fingerprint(fingerprint: u64) -> Self {
        FleetAggregator { fingerprint: Some(fingerprint), ..Default::default() }
    }

    /// Offers one instance's latest profile. Re-submitting under the same
    /// instance name replaces the earlier profile (epoch-cadence update);
    /// fingerprint mismatches are rejected and counted.
    pub fn submit(&mut self, instance: &str, profile: DecisionProfile) -> SubmissionOutcome {
        let Some(fp) = profile.fingerprint else {
            self.rejected += 1;
            return SubmissionOutcome::MissingFingerprint;
        };
        match self.fingerprint {
            Some(pinned) if pinned != fp => {
                self.rejected += 1;
                return SubmissionOutcome::FingerprintMismatch;
            }
            Some(_) => {}
            None => self.fingerprint = Some(fp),
        }
        match self.submissions.insert(instance.to_string(), profile) {
            Some(_) => SubmissionOutcome::Replaced,
            None => SubmissionOutcome::Accepted,
        }
    }

    /// Instances currently contributing.
    pub fn instances(&self) -> usize {
        self.submissions.len()
    }

    /// Submissions rejected by fingerprint validation.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// The fleet's pinned program-shape fingerprint, once known.
    pub fn fingerprint(&self) -> Option<u64> {
        self.fingerprint
    }

    /// Builds the consensus profile from every instance's latest
    /// submission (see module docs for the vote).
    pub fn consensus(&self) -> FleetConsensus {
        // location -> per-instance (generation, confidence) votes, in
        // instance-name order.
        let mut votes: BTreeMap<(&str, u32), Vec<(u8, u8)>> = BTreeMap::new();
        let mut frozen: BTreeMap<&CallSiteEntry, usize> = BTreeMap::new();
        let mut epochs = 0u64;
        let mut geometry = None;
        for profile in self.submissions.values() {
            for e in &profile.entries {
                votes
                    .entry((e.method.as_str(), e.bci))
                    .or_default()
                    .push((e.generation, e.confidence));
            }
            for cs in &profile.call_sites {
                *frozen.entry(cs).or_default() += 1;
            }
            epochs = epochs.max(profile.epochs);
            geometry = geometry.or(profile.geometry);
        }

        let mut entries = Vec::new();
        let (mut unanimous, mut contested) = (0usize, 0usize);
        for ((method, bci), vs) in votes {
            let mut by_gen: BTreeMap<u8, (u64, u64)> = BTreeMap::new();
            let mut total = 0u64;
            for &(generation, confidence) in &vs {
                let w = confidence.max(1) as u64;
                let slot = by_gen.entry(generation).or_default();
                slot.0 += w;
                slot.1 += 1;
                total += w;
            }
            if by_gen.len() == 1 {
                unanimous += 1;
            } else {
                contested += 1;
            }
            // Ascending generation order + strict `>` — ties go young.
            let (&generation, &(weight, supporters)) = by_gen
                .iter()
                .reduce(|best, cur| if cur.1 .0 > best.1 .0 { cur } else { best })
                .expect("at least one vote");
            let confidence = ((weight * weight) / (total * supporters)).clamp(1, 100) as u8;
            entries.push(ProfileEntry { method: method.to_string(), bci, generation, confidence });
        }

        let n = self.submissions.len();
        let call_sites: Vec<CallSiteEntry> = frozen
            .into_iter()
            .filter(|&(_, count)| count * 2 > n)
            .map(|(cs, _)| cs.clone())
            .collect();

        FleetConsensus {
            profile: DecisionProfile {
                fingerprint: self.fingerprint,
                epochs,
                geometry,
                entries,
                call_sites,
            },
            instances: n,
            unanimous,
            contested,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(fp: u64, epochs: u64, entries: &[(&str, u32, u8, u8)]) -> DecisionProfile {
        DecisionProfile {
            fingerprint: Some(fp),
            epochs,
            geometry: Some((1024, 64)),
            entries: entries
                .iter()
                .map(|&(method, bci, generation, confidence)| ProfileEntry {
                    method: method.into(),
                    bci,
                    generation,
                    confidence,
                })
                .collect(),
            call_sites: Vec::new(),
        }
    }

    #[test]
    fn first_submission_pins_the_fingerprint() {
        let mut agg = FleetAggregator::new();
        assert_eq!(agg.submit("a", profile(7, 1, &[])), SubmissionOutcome::Accepted);
        assert_eq!(agg.fingerprint(), Some(7));
        assert_eq!(agg.submit("b", profile(8, 1, &[])), SubmissionOutcome::FingerprintMismatch);
        assert_eq!(
            agg.submit("c", DecisionProfile::default()),
            SubmissionOutcome::MissingFingerprint
        );
        assert_eq!(agg.instances(), 1);
        assert_eq!(agg.rejected(), 2);
    }

    #[test]
    fn resubmission_replaces_the_instance_profile() {
        let mut agg = FleetAggregator::new();
        agg.submit("a", profile(7, 1, &[("m::f", 0, 3, 50)]));
        assert_eq!(
            agg.submit("a", profile(7, 5, &[("m::f", 0, 4, 90)])),
            SubmissionOutcome::Replaced
        );
        assert_eq!(agg.instances(), 1);
        let c = agg.consensus();
        assert_eq!(c.profile.epochs, 5);
        assert_eq!(c.profile.entries[0].generation, 4, "latest epoch wins, not a blend with stale");
    }

    #[test]
    fn unanimous_fleet_exports_full_confidence() {
        let mut agg = FleetAggregator::new();
        for name in ["a", "b", "c"] {
            agg.submit(name, profile(7, 3, &[("m::f", 0, 2, 100)]));
        }
        let c = agg.consensus();
        assert_eq!(c.instances, 3);
        assert_eq!((c.unanimous, c.contested), (1, 0));
        assert_eq!(c.profile.entries[0].generation, 2);
        assert_eq!(c.profile.entries[0].confidence, 100);
        assert_eq!(c.profile.fingerprint, Some(7));
    }

    #[test]
    fn conflicts_resolve_by_confidence_weighted_majority() {
        let mut agg = FleetAggregator::new();
        agg.submit("a", profile(7, 3, &[("m::f", 0, 2, 100)]));
        agg.submit("b", profile(7, 3, &[("m::f", 0, 2, 100)]));
        agg.submit("c", profile(7, 3, &[("m::f", 0, 9, 100)]));
        let c = agg.consensus();
        assert_eq!((c.unanimous, c.contested), (0, 1));
        let e = &c.profile.entries[0];
        assert_eq!(e.generation, 2, "2-of-3 majority");
        assert_eq!(e.confidence, 66, "split vote lowers trust: (200/300)*(200/2)");
    }

    #[test]
    fn confidence_weights_can_outvote_a_headcount_majority() {
        let mut agg = FleetAggregator::new();
        agg.submit("a", profile(7, 3, &[("m::f", 0, 2, 10)]));
        agg.submit("b", profile(7, 3, &[("m::f", 0, 2, 10)]));
        agg.submit("c", profile(7, 3, &[("m::f", 0, 9, 100)]));
        let c = agg.consensus();
        assert_eq!(c.profile.entries[0].generation, 9, "100 outweighs 10+10");
    }

    #[test]
    fn weight_ties_break_toward_the_younger_generation() {
        let mut agg = FleetAggregator::new();
        agg.submit("a", profile(7, 3, &[("m::f", 0, 9, 80)]));
        agg.submit("b", profile(7, 3, &[("m::f", 0, 2, 80)]));
        assert_eq!(agg.consensus().profile.entries[0].generation, 2, "under-tenuring is safer");
    }

    #[test]
    fn consensus_is_arrival_order_independent_and_sorted() {
        let entries_a = [("x.Y::z", 4u32, 5u8, 90u8), ("a.B::c", 1, 1, 70)];
        let entries_b = [("a.B::c", 1u32, 1u8, 60u8), ("m.N::o", 2, 3, 80)];
        let mut fwd = FleetAggregator::new();
        fwd.submit("a", profile(7, 2, &entries_a));
        fwd.submit("b", profile(7, 2, &entries_b));
        let mut rev = FleetAggregator::new();
        rev.submit("b", profile(7, 2, &entries_b));
        rev.submit("a", profile(7, 2, &entries_a));
        assert_eq!(fwd.consensus().profile, rev.consensus().profile);
        let locs: Vec<_> =
            fwd.consensus().profile.entries.iter().map(|e| (e.method.clone(), e.bci)).collect();
        let mut sorted = locs.clone();
        sorted.sort();
        assert_eq!(locs, sorted, "entries come out location-sorted");
    }

    #[test]
    fn call_sites_need_a_strict_majority() {
        let cs = |caller: &str| CallSiteEntry { caller: caller.into(), callee: None };
        let with_cs = |fp, names: &[&str]| {
            let mut p = profile(fp, 1, &[]);
            p.call_sites = names.iter().map(|&n| cs(n)).collect();
            p
        };
        let mut agg = FleetAggregator::new();
        agg.submit("a", with_cs(7, &["hot::path", "rare::path"]));
        agg.submit("b", with_cs(7, &["hot::path"]));
        agg.submit("c", with_cs(7, &["hot::path"]));
        let sites = agg.consensus().profile.call_sites;
        assert_eq!(sites.len(), 1, "1-of-3 freeze does not propagate");
        assert_eq!(sites[0].caller, "hot::path");
    }

    #[test]
    fn consensus_profile_round_trips_through_the_v1_format() {
        let mut agg = FleetAggregator::new();
        agg.submit("a", profile(7, 4, &[("m::f", 0, 2, 100), ("m::g", 3, 7, 80)]));
        agg.submit("b", profile(7, 6, &[("m::f", 0, 2, 90)]));
        let consensus = agg.consensus().profile;
        let text = consensus.to_string();
        let back: DecisionProfile = text.parse().expect("consensus parses as rolp-profile-v1");
        assert_eq!(back, consensus);
        assert_eq!(back.epochs, 6, "deepest evidence is reported");
    }
}
