//! Real-thread concurrency harness: mutator threads racing on the shared
//! OLD table, GC workers with private tables, and the safepoint merge.
//!
//! This module is where the paper's §5.2/§7.6 concurrency story stops
//! being simulated and actually runs on OS threads:
//!
//! 1. **Mutator epochs.** `--mutator-threads N` OS threads each replay a
//!    seed-deterministic allocation schedule against one
//!    [`crate::SharedOldTable`], bumping age-0 cells with the unsynchronized
//!    relaxed increment. Joining the threads is the safepoint that ends
//!    the epoch.
//! 2. **Reconciliation.** At each safepoint the coordinator compares the
//!    exact per-thread allocation tallies against the age-0 counts that
//!    actually landed in the table — the difference is the *measured*
//!    §7.6 increment loss ([`EpochReconciliation`]), replacing the old
//!    `loss_probability` simulation.
//! 3. **Parallel GC pause.** `--gc-workers N` worker threads claim chunks
//!    of the live-object list from a shared cursor, buffer survivor age
//!    moves into private [`crate::WorkerTable`]s, and hand them to the
//!    coordinator through a [`PublishSlot`] (the protocol the loom CI job
//!    model-checks). The coordinator merges all records **sorted by
//!    `(context, age)`**, so the merged histograms are identical no
//!    matter how the chunk race distributed work.
//! 4. **Loss bound.** [`run_reference`] replays the same schedules on the
//!    exact single-threaded [`crate::OldTable`]; [`compare_to_reference`] checks
//!    the §7.6 bound the CLI's `--verify-determinism` mode asserts:
//!    every parallel cell ≤ its reference cell, and the total deviation
//!    ≤ the reconciliation-reported loss. (Lost increments only *remove*
//!    age-0 counts, and the survival pipeline's saturating decrements can
//!    only shrink — never grow — a deficit, so the bound is exact.)

use crate::sync_compat::{AtomicBool, Ordering, UnsafeCell};

/// A single-producer single-consumer hand-off slot for a GC worker's
/// private table.
///
/// Protocol (per pause): the worker writes its value and `publish`es it
/// with a release store; the safepoint merger spins on `try_take`, whose
/// acquire load makes the value's writes visible before it is taken. The
/// slot then resets to empty for the next pause. Built on
/// [`crate::sync_compat`] so `--features loom` model-checks exactly this
/// code.
#[derive(Debug, Default)]
pub struct PublishSlot<T> {
    ready: AtomicBool,
    value: UnsafeCell<Option<T>>,
}

// SAFETY: the `ready` flag transfers exclusive ownership of `value`:
// writes happen only while `ready` is false (publisher side), reads only
// after an acquire load observes true (consumer side).
unsafe impl<T: Send> Sync for PublishSlot<T> {}

impl<T> PublishSlot<T> {
    /// An empty slot.
    pub fn new() -> Self {
        PublishSlot { ready: AtomicBool::new(false), value: UnsafeCell::new(None) }
    }

    /// Producer side: stores `value` and makes it visible to `try_take`.
    /// Must not be called again before the consumer took the value.
    pub fn publish(&self, value: T) {
        assert!(!self.ready.load(Ordering::Relaxed), "publish into a full slot");
        // SAFETY: `ready` is false, so the consumer will not touch the
        // cell until the release store below.
        self.value.with_mut(|p| unsafe { *p = Some(value) });
        self.ready.store(true, Ordering::Release);
    }

    /// Consumer side: takes the published value if there is one, and
    /// resets the slot.
    pub fn try_take(&self) -> Option<T> {
        if !self.ready.load(Ordering::Acquire) {
            return None;
        }
        // SAFETY: the acquire load above synchronizes with the publisher's
        // release store; the publisher will not write again until the
        // relaxed reset below is visible to it.
        let value = self.value.with_mut(|p| unsafe { (*p).take() });
        self.ready.store(false, Ordering::Relaxed);
        value
    }

    /// Whether a value is currently published.
    pub fn is_ready(&self) -> bool {
        self.ready.load(Ordering::Acquire)
    }
}

#[cfg(not(feature = "loom"))]
pub use harness::*;

/// The std-thread harness. Compiled out under `--features loom`, whose
/// instrumented atomics only run inside `loom::model` (the loom job
/// checks [`PublishSlot`] in isolation instead).
#[cfg(not(feature = "loom"))]
mod harness {
    use super::*;
    use std::collections::BTreeMap;
    use std::sync::atomic::AtomicUsize;

    use crate::geometry::{LifetimeTable, TableGeometry};
    use crate::old_table::{merge_worker_tables, MergeSummary, OldTable, WorkerTable, AGE_COLUMNS};
    use crate::sharded_table::ShardedOldTable;
    use crate::shared_table::SharedOldTable;

    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    use crate::context::pack;

    /// Shape of a concurrent profiling run.
    #[derive(Debug, Clone)]
    pub struct ConcurrentConfig {
        /// Application (mutator) OS threads.
        pub mutator_threads: usize,
        /// GC worker OS threads per pause.
        pub gc_workers: usize,
        /// Mutator-phase + GC-pause rounds.
        pub epochs: usize,
        /// Allocations per mutator thread per epoch.
        pub allocs_per_thread_per_epoch: usize,
        /// Allocation-site ids drawn from `1..=sites`.
        pub sites: u16,
        /// Thread-stack-state values drawn from `0..tss_values`.
        pub tss_values: u16,
        /// Maximum GC pauses an object survives (`dies_after` is drawn
        /// from `0..=max_survivals`).
        pub max_survivals: u8,
        /// Sites given private expansion blocks up front (so the run
        /// exercises both aliased and expanded rows).
        pub expand_sites: Vec<u16>,
        /// Shared-table geometry (power of two; must exceed `sites` so
        /// masking never aliases distinct sites).
        pub site_rows: usize,
        /// Expansion-block rows (power of two; must exceed `tss_values`).
        pub tss_rows: usize,
        /// Seed for the deterministic allocation schedules.
        pub seed: u64,
    }

    impl Default for ConcurrentConfig {
        fn default() -> Self {
            ConcurrentConfig {
                mutator_threads: 4,
                gc_workers: 4,
                epochs: 8,
                allocs_per_thread_per_epoch: 5_000,
                sites: 200,
                tss_values: 48,
                max_survivals: 4,
                expand_sites: vec![3, 7, 11],
                site_rows: 1 << 10,
                tss_rows: 64,
                seed: 0xEC0_5E19,
            }
        }
    }

    impl ConcurrentConfig {
        fn validate(&self) {
            assert!(self.mutator_threads >= 1 && self.gc_workers >= 1);
            assert!(
                (self.sites as usize) < self.site_rows,
                "sites must fit the table geometry without aliasing"
            );
            assert!((self.tss_values as usize) <= self.tss_rows);
        }
    }

    /// One scheduled allocation: the context it goes through and how many
    /// GC pauses it survives.
    #[derive(Debug, Clone, Copy)]
    struct LiveObj {
        context: u32,
        age: u8,
        dies_after: u8,
    }

    /// A mutator thread's allocation schedule for one epoch — a pure
    /// function of `(seed, thread, epoch)`, so the concurrent run and the
    /// single-threaded reference replay byte-identical workloads.
    fn thread_schedule(config: &ConcurrentConfig, thread: usize, epoch: usize) -> Vec<LiveObj> {
        let mix = config
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((thread as u64) << 32)
            .wrapping_add(epoch as u64);
        let mut rng = StdRng::seed_from_u64(mix);
        (0..config.allocs_per_thread_per_epoch)
            .map(|_| LiveObj {
                context: pack(rng.gen_range(1..=config.sites), rng.gen_range(0..config.tss_values)),
                age: 0,
                dies_after: rng.gen_range(0..=config.max_survivals),
            })
            .collect()
    }

    /// The safepoint ledger for one epoch: what the mutators meant to
    /// record vs. what survived the unsynchronized increments (§7.6).
    #[derive(Debug, Clone, Copy)]
    pub struct EpochReconciliation {
        /// Epoch index.
        pub epoch: usize,
        /// Σ of exact per-thread allocation counters.
        pub intended: u64,
        /// Age-0 counts that actually landed in the shared table.
        pub recorded: u64,
        /// `intended - recorded`: increments lost to the race.
        pub lost: u64,
    }

    /// Everything a concurrent run produced.
    #[derive(Debug)]
    pub struct ConcurrentRunResult {
        /// Final merged histograms, keyed by row key.
        pub histograms: BTreeMap<u32, [u32; AGE_COLUMNS]>,
        /// Per-epoch measured increment loss.
        pub reconciliations: Vec<EpochReconciliation>,
        /// Σ lost across epochs — the §7.6 deviation bound.
        pub total_lost: u64,
        /// Σ intended across epochs.
        pub total_intended: u64,
        /// Per-pause merge summaries (worker record counts).
        pub merges: Vec<MergeSummary>,
    }

    /// A table backend the concurrent harness can race mutator threads
    /// on: the epoch-pipeline surface of [`LifetimeTable`] plus a
    /// shared-reference allocation path callable from many threads at
    /// once. Implemented by the lossy relaxed-atomic
    /// [`SharedOldTable`] and the exact [`ShardedOldTable`].
    pub trait MutatorSharedTable: LifetimeTable + Sync {
        /// The application-thread allocation fast path (`&self`; racing
        /// mutators call this concurrently).
        fn record_allocation_shared(&self, context: u32);

        /// All rows with at least one nonzero cell, keyed by row key.
        fn nonzero_rows(&self) -> BTreeMap<u32, [u32; AGE_COLUMNS]>;
    }

    impl MutatorSharedTable for SharedOldTable {
        fn record_allocation_shared(&self, context: u32) {
            SharedOldTable::record_allocation(self, context);
        }

        fn nonzero_rows(&self) -> BTreeMap<u32, [u32; AGE_COLUMNS]> {
            self.snapshot()
        }
    }

    impl MutatorSharedTable for ShardedOldTable {
        fn record_allocation_shared(&self, context: u32) {
            ShardedOldTable::record_allocation(self, context);
        }

        fn nonzero_rows(&self) -> BTreeMap<u32, [u32; AGE_COLUMNS]> {
            self.snapshot()
        }
    }

    /// Runs the full concurrent pipeline on the default
    /// [`SharedOldTable`] backend: real mutator threads, real GC worker
    /// threads, safepoint merges, per-epoch reconciliation.
    pub fn run_concurrent(config: &ConcurrentConfig) -> ConcurrentRunResult {
        config.validate();
        let table =
            SharedOldTable::with_geometry(TableGeometry::new(config.site_rows, config.tss_rows));
        run_concurrent_on(config, table)
    }

    /// Runs the same pipeline on a [`ShardedOldTable`] with `shards`
    /// shards. Because shard cells are updated under a lock, the
    /// reconciliation must measure **zero** loss and the end state is
    /// bit-identical to [`run_reference`] — the property the CLI's
    /// `--verify-determinism --table-shards N` arm asserts.
    pub fn run_concurrent_sharded(config: &ConcurrentConfig, shards: usize) -> ConcurrentRunResult {
        config.validate();
        let table = ShardedOldTable::with_geometry(
            TableGeometry::new(config.site_rows, config.tss_rows),
            shards,
        );
        run_concurrent_on(config, table)
    }

    /// The backend-generic concurrent pipeline both entry points share.
    pub fn run_concurrent_on<T: MutatorSharedTable>(
        config: &ConcurrentConfig,
        mut table: T,
    ) -> ConcurrentRunResult {
        config.validate();
        for &site in &config.expand_sites {
            table.expand_site(site);
        }

        let mut live: Vec<LiveObj> = Vec::new();
        let mut reconciliations = Vec::new();
        let mut merges = Vec::new();
        let mut total_lost = 0u64;
        let mut total_intended = 0u64;
        let mut age0_baseline = 0u64;

        for epoch in 0..config.epochs {
            // Mutator phase: each thread replays its schedule with the
            // racy age-0 increment and returns (allocations, exact tally).
            // The scope join is the safepoint: it gives the coordinator a
            // happens-before edge over every mutator store.
            let per_thread: Vec<(Vec<LiveObj>, u64)> = std::thread::scope(|s| {
                let handles: Vec<_> = (0..config.mutator_threads)
                    .map(|t| {
                        let table = &table;
                        s.spawn(move || {
                            let schedule = thread_schedule(config, t, epoch);
                            let mut exact = 0u64;
                            for obj in &schedule {
                                table.record_allocation_shared(obj.context);
                                exact += 1;
                            }
                            (schedule, exact)
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("mutator panicked")).collect()
            });

            // Reconciliation: exact tallies vs. what landed in age 0.
            let intended: u64 = per_thread.iter().map(|(_, exact)| exact).sum();
            let recorded = table.age0_total().saturating_sub(age0_baseline);
            let lost = intended.saturating_sub(recorded);
            reconciliations.push(EpochReconciliation { epoch, intended, recorded, lost });
            total_lost += lost;
            total_intended += intended;

            // Deterministic live-list order: thread-index order.
            for (schedule, _) in per_thread {
                live.extend(schedule);
            }

            // GC pause: workers claim chunks of the live list from a
            // shared cursor, buffer survivals privately, and publish.
            const CHUNK: usize = 256;
            let cursor = AtomicUsize::new(0);
            let slots: Vec<PublishSlot<WorkerTable>> =
                (0..config.gc_workers).map(|_| PublishSlot::new()).collect();
            std::thread::scope(|s| {
                for slot in &slots {
                    let cursor = &cursor;
                    let live = &live;
                    s.spawn(move || {
                        let mut private = WorkerTable::new();
                        loop {
                            let start =
                                cursor.fetch_add(CHUNK, std::sync::atomic::Ordering::Relaxed);
                            if start >= live.len() {
                                break;
                            }
                            let end = (start + CHUNK).min(live.len());
                            for obj in &live[start..end] {
                                if obj.age < obj.dies_after {
                                    private.record_survival(obj.context, obj.age);
                                }
                            }
                        }
                        slot.publish(private);
                    });
                }
            });

            // Safepoint merge: take every worker's table through its
            // publish slot, then apply all records sorted.
            let mut workers: Vec<WorkerTable> = slots
                .iter()
                .map(|slot| loop {
                    if let Some(table) = slot.try_take() {
                        break table;
                    }
                    std::thread::yield_now();
                })
                .collect();
            merges.push(table.merge_workers(&mut workers, config.gc_workers.max(1)));

            // Advance survivor ages; drop the dead.
            live.retain_mut(|obj| {
                if obj.age < obj.dies_after {
                    obj.age += 1;
                    true
                } else {
                    false
                }
            });
            age0_baseline = table.age0_total();
        }

        ConcurrentRunResult {
            histograms: table.nonzero_rows(),
            reconciliations,
            total_lost,
            total_intended,
            merges,
        }
    }

    /// Replays the identical schedules single-threaded on the exact
    /// [`OldTable`] — the deterministic reference the §7.6 bound is
    /// checked against. Survivor records still round-robin through
    /// `gc_workers` private tables and go through the sorted merge, so
    /// the only difference from [`run_concurrent`] is the absence of
    /// races.
    pub fn run_reference(config: &ConcurrentConfig) -> BTreeMap<u32, [u32; AGE_COLUMNS]> {
        config.validate();
        let mut table =
            OldTable::with_geometry(TableGeometry::new(config.site_rows, config.tss_rows));
        for &site in &config.expand_sites {
            table.expand_site(site);
        }
        let mut live: Vec<LiveObj> = Vec::new();
        for epoch in 0..config.epochs {
            for t in 0..config.mutator_threads {
                let schedule = thread_schedule(config, t, epoch);
                for obj in &schedule {
                    table.record_allocation(obj.context);
                }
                live.extend(schedule);
            }
            let mut workers = vec![WorkerTable::new(); config.gc_workers];
            for (i, obj) in live.iter().enumerate() {
                if obj.age < obj.dies_after {
                    workers[i % config.gc_workers].record_survival(obj.context, obj.age);
                }
            }
            merge_worker_tables(&mut workers, &mut table);
            live.retain_mut(|obj| {
                if obj.age < obj.dies_after {
                    obj.age += 1;
                    true
                } else {
                    false
                }
            });
        }
        let mut out = BTreeMap::new();
        for key in table.touched_rows() {
            let h = table.histogram(key);
            if h.iter().any(|&c| c != 0) {
                out.insert(key, h);
            }
        }
        out
    }

    /// How far a concurrent end-state drifted from the reference.
    #[derive(Debug, Clone, Copy)]
    pub struct DeviationReport {
        /// Σ |reference − parallel| over all cells.
        pub total_abs_dev: u64,
        /// Cells where the parallel count *exceeds* the reference (must
        /// be 0: lost increments can only remove counts).
        pub cells_exceeding: u64,
        /// Rows compared.
        pub rows: usize,
    }

    impl DeviationReport {
        /// The §7.6 acceptance check: parallel ≤ reference cellwise, and
        /// total deviation within the measured increment loss.
        pub fn within_bound(&self, lost: u64) -> bool {
            self.cells_exceeding == 0 && self.total_abs_dev <= lost
        }
    }

    /// Compares merged histograms cell by cell against the reference.
    pub fn compare_to_reference(
        parallel: &BTreeMap<u32, [u32; AGE_COLUMNS]>,
        reference: &BTreeMap<u32, [u32; AGE_COLUMNS]>,
    ) -> DeviationReport {
        let mut keys: Vec<u32> = parallel.keys().chain(reference.keys()).copied().collect();
        keys.sort_unstable();
        keys.dedup();
        let zero = [0u32; AGE_COLUMNS];
        let mut report = DeviationReport { total_abs_dev: 0, cells_exceeding: 0, rows: keys.len() };
        for key in keys {
            let p = parallel.get(&key).unwrap_or(&zero);
            let r = reference.get(&key).unwrap_or(&zero);
            for age in 0..AGE_COLUMNS {
                report.total_abs_dev += u64::from(p[age].abs_diff(r[age]));
                if p[age] > r[age] {
                    report.cells_exceeding += 1;
                }
            }
        }
        report
    }
}

#[cfg(all(test, not(feature = "loom")))]
mod tests {
    use super::*;

    fn small_config() -> ConcurrentConfig {
        ConcurrentConfig {
            mutator_threads: 4,
            gc_workers: 4,
            epochs: 4,
            allocs_per_thread_per_epoch: 2_000,
            ..ConcurrentConfig::default()
        }
    }

    #[test]
    fn publish_slot_hands_off_and_resets() {
        let slot = PublishSlot::new();
        assert!(slot.try_take().is_none());
        slot.publish(41u32);
        assert!(slot.is_ready());
        assert_eq!(slot.try_take(), Some(41));
        assert!(!slot.is_ready());
        assert!(slot.try_take().is_none());
        slot.publish(42);
        assert_eq!(slot.try_take(), Some(42));
    }

    #[test]
    fn publish_slot_transfers_across_threads() {
        let slot = std::sync::Arc::new(PublishSlot::new());
        let producer = {
            let slot = std::sync::Arc::clone(&slot);
            std::thread::spawn(move || slot.publish(vec![1u32, 2, 3]))
        };
        let got = loop {
            if let Some(v) = slot.try_take() {
                break v;
            }
            std::thread::yield_now();
        };
        producer.join().unwrap();
        assert_eq!(got, vec![1, 2, 3]);
    }

    #[test]
    fn reconciliation_accounts_for_every_increment() {
        let result = run_concurrent(&small_config());
        for rec in &result.reconciliations {
            assert_eq!(rec.intended, rec.recorded + rec.lost, "epoch {}", rec.epoch);
            assert!(rec.recorded <= rec.intended);
        }
        assert_eq!(result.total_intended, 4 * 4 * 2_000);
        assert_eq!(result.total_lost, result.reconciliations.iter().map(|r| r.lost).sum());
    }

    #[test]
    fn concurrent_run_stays_within_the_measured_loss_bound() {
        let config = small_config();
        let result = run_concurrent(&config);
        let reference = run_reference(&config);
        let report = compare_to_reference(&result.histograms, &reference);
        assert!(
            report.within_bound(result.total_lost),
            "deviation {} exceeds measured loss {} (cells_exceeding {})",
            report.total_abs_dev,
            result.total_lost,
            report.cells_exceeding,
        );
    }

    #[test]
    fn merge_summaries_cover_all_survivals() {
        let config = small_config();
        let result = run_concurrent(&config);
        assert_eq!(result.merges.len(), config.epochs);
        for merge in &result.merges {
            assert_eq!(merge.per_worker.len(), config.gc_workers);
            assert_eq!(merge.per_worker.iter().sum::<u64>(), merge.total);
        }
        // The schedules are deterministic, so the number of survival
        // records per pause must match the reference replay exactly.
        assert!(result.merges[0].total > 0);
    }

    #[test]
    fn single_mutator_thread_is_lossless_and_exact() {
        // With one mutator thread there is no race: zero measured loss
        // and a histogram-identical match with the reference.
        let config = ConcurrentConfig {
            mutator_threads: 1,
            gc_workers: 4,
            epochs: 3,
            allocs_per_thread_per_epoch: 3_000,
            ..ConcurrentConfig::default()
        };
        let result = run_concurrent(&config);
        assert_eq!(result.total_lost, 0);
        let reference = run_reference(&config);
        assert_eq!(result.histograms, reference);
    }

    #[test]
    fn sharded_backend_is_exact_and_bit_identical_to_reference() {
        // The locked sharded backend trades §7.6 loss for lock traffic:
        // with real racing mutator threads it must measure zero loss and
        // reproduce the single-threaded reference byte for byte, at any
        // shard count.
        let config = small_config();
        let reference = run_reference(&config);
        for shards in [1, 8] {
            let result = run_concurrent_sharded(&config, shards);
            assert_eq!(result.total_lost, 0, "{shards} shards");
            assert_eq!(result.histograms, reference, "{shards} shards");
            let report = compare_to_reference(&result.histograms, &reference);
            assert!(report.within_bound(0));
        }
    }

    #[test]
    fn gc_worker_parallelism_is_deterministic() {
        // Same seed + same worker count: byte-identical merged
        // histograms across runs, even though chunk claiming races.
        let config = ConcurrentConfig {
            mutator_threads: 1,
            gc_workers: 4,
            epochs: 3,
            allocs_per_thread_per_epoch: 3_000,
            ..ConcurrentConfig::default()
        };
        let a = run_concurrent(&config);
        let b = run_concurrent(&config);
        assert_eq!(a.histograms, b.histograms);
    }
}
