//! The assembled managed runtime.
//!
//! [`JvmRuntime`] wires heap + VM + collector + profiler into the five
//! configurations the paper evaluates (§8): CMS, G1, ZGC, NG2C (hand
//! annotations), and ROLP (NG2C driven by the runtime profiler). This is
//! the facade workloads, examples, and bench harnesses run against.

use std::cell::RefCell;
use std::rc::Rc;

use rolp_gc::{CmsCollector, ConcurrentCollector, NullHooks, RegionalCollector};
use rolp_heap::{Heap, HeapConfig};
use rolp_metrics::SimTime;
use rolp_vm::{
    CollectorApi, CostModel, JitConfig, MutatorCtx, NullProfiler, Program, ThreadId, Vm, VmEnv,
};

use crate::geometry::LifetimeTable;
use crate::profiler::{
    backend_for, ProfilingLevel, RolpConfig, RolpProfiler, RolpStats, TableBackend,
};

/// The five evaluated runtime configurations (paper §8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CollectorKind {
    /// Concurrent mark-sweep baseline.
    Cms,
    /// The default collector baseline.
    G1,
    /// The fully concurrent collector (tiny pauses, throughput/memory
    /// tax).
    Zgc,
    /// Pretenuring collector with hand-placed annotations (the programmer-
    /// knowledge baseline).
    Ng2c,
    /// NG2C driven by ROLP — the paper's contribution.
    RolpNg2c,
}

impl CollectorKind {
    /// Display name matching the paper's plots.
    pub fn label(self) -> &'static str {
        match self {
            CollectorKind::Cms => "CMS",
            CollectorKind::G1 => "G1",
            CollectorKind::Zgc => "ZGC",
            CollectorKind::Ng2c => "NG2C",
            CollectorKind::RolpNg2c => "ROLP",
        }
    }

    /// All five, in the paper's presentation order.
    pub fn all() -> [CollectorKind; 5] {
        [
            CollectorKind::Cms,
            CollectorKind::G1,
            CollectorKind::Zgc,
            CollectorKind::Ng2c,
            CollectorKind::RolpNg2c,
        ]
    }
}

/// Full runtime configuration.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Which collector/profiler stack to assemble.
    pub collector: CollectorKind,
    /// Heap sizing.
    pub heap: HeapConfig,
    /// Cost model.
    pub cost: CostModel,
    /// JIT tunables (the call-profiling-install flag is overridden per
    /// collector/level).
    pub jit: JitConfig,
    /// ROLP tunables (used only by [`CollectorKind::RolpNg2c`]).
    pub rolp: RolpConfig,
    /// Regional-collector tunables (G1 / NG2C / ROLP configurations). The
    /// `pretenuring` flag is overridden per collector kind.
    pub regional: rolp_gc::RegionalConfig,
    /// Guest threads.
    pub threads: u32,
    /// Parallel GC workers. `Some(n)` overrides both the cost model's
    /// worker count and the profiler's private-table count in one place
    /// (the two must agree — each worker owns one
    /// [`rolp::WorkerTable`](crate::WorkerTable)); `None` keeps their
    /// individual defaults.
    pub gc_workers: Option<usize>,
    /// Seed for JIT identifier randomness.
    pub seed: u64,
    /// Divisor applied to side-table (OLD table) memory accounting. The
    /// table's 4 MB-per-block size is fixed by the 16-bit site-id space,
    /// so in scaled-down experiments it must be scaled too or it dwarfs
    /// the scaled heap (at full scale it is 0.07-0.26% of a 6 GB heap).
    pub side_table_scale: u64,
    /// Flight recorder: when set, every layer emits structured events
    /// into the [`rolp_trace::TraceRecorder`] (default off — the disabled
    /// recorder costs one branch per emit site and never allocates).
    pub trace_enabled: bool,
    /// Per-thread event ring capacity when tracing is on.
    pub trace_ring_capacity: usize,
    /// Per-thread allocation-buffer (TLAB) size in bytes; `0` disables
    /// the bump-pointer fast path entirely (every allocation takes the
    /// collector slow path — the differential suite's reference arm).
    pub tlab_bytes: usize,
    /// Route decision reads through the per-thread micro-cache (on by
    /// default; see [`rolp_vm::DecisionCache`]).
    pub microcache: bool,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            collector: CollectorKind::G1,
            heap: HeapConfig::default(),
            cost: CostModel::default(),
            jit: JitConfig::default(),
            rolp: RolpConfig::default(),
            regional: rolp_gc::RegionalConfig::default(),
            threads: 1,
            gc_workers: None,
            seed: 42,
            side_table_scale: 1,
            trace_enabled: false,
            trace_ring_capacity: rolp_trace::DEFAULT_RING_CAPACITY,
            tlab_bytes: rolp_heap::DEFAULT_TLAB_BYTES,
            microcache: true,
        }
    }
}

/// End-of-run summary.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Collector label.
    pub collector: &'static str,
    /// Total simulated run time.
    pub elapsed: SimTime,
    /// Total time stopped in GC pauses.
    pub total_paused: SimTime,
    /// Completed application operations.
    pub ops: u64,
    /// Operations per simulated second.
    pub ops_per_sec: f64,
    /// Operations per *busy* simulated second (idle/pacing time excluded):
    /// the machine's saturated capacity, where GC pauses, concurrent GC
    /// work, and barrier taxes all show up.
    pub ops_per_busy_sec: f64,
    /// Max used bytes (incl. side tables).
    pub max_used_bytes: u64,
    /// Max committed bytes (incl. side tables).
    pub max_committed_bytes: u64,
    /// GC cycles run.
    pub gc_cycles: u64,
    /// Number of recorded pauses.
    pub pauses: usize,
    /// ROLP statistics, when the profiler was active.
    pub rolp: Option<RolpStats>,
    /// Final published metrics snapshot: cumulative per-bucket time
    /// decomposition, event counters, and live histograms.
    pub telemetry: std::sync::Arc<rolp_telemetry::MetricsSnapshot>,
    /// Self-measured profiling overhead: mutator-attributed profiling
    /// time over busy mutator time (idle excluded). The paper's §8.2
    /// throughput claim holds when this stays in the low percent range.
    pub profiling_overhead: f64,
}

/// The assembled runtime.
pub struct JvmRuntime {
    /// The underlying VM (exposed for tests and advanced drivers).
    pub vm: Vm,
    /// The ROLP profiler instance, when the configuration uses one. The
    /// table backend follows `threads`: multi-threaded runs profile into
    /// the relaxed-atomic [`crate::SharedOldTable`], single-threaded runs
    /// into the exact [`crate::OldTable`].
    pub profiler: Option<Rc<RefCell<RolpProfiler<TableBackend>>>>,
    kind: CollectorKind,
    side_table_scale: u64,
}

impl JvmRuntime {
    /// Assembles a runtime for `program`.
    pub fn new(mut config: RuntimeConfig, program: Program) -> Self {
        let heap = Heap::new(config.heap.clone());

        if let Some(workers) = config.gc_workers {
            let workers = workers.max(1);
            config.cost.gc_workers = workers as u64;
            config.rolp.gc_workers = workers;
        }

        // Call-profiling code exists only under ROLP (and not at its
        // no-call level).
        config.jit.install_call_profiling = config.collector == CollectorKind::RolpNg2c
            && config.rolp.level != ProfilingLevel::NoCallProfiling;

        let mut env =
            VmEnv::new(heap, config.cost.clone(), program, config.jit.clone(), config.threads);
        env.heap.set_tlab_bytes(config.tlab_bytes);
        env.microcache_enabled = config.microcache;
        if config.trace_enabled {
            env.trace =
                rolp_trace::TraceRecorder::enabled(config.threads, config.trace_ring_capacity);
            env.jit.set_toggle_logging(true);
        }

        // A governor forced to start in `Off` must gate the allocation
        // fast path from the very first instruction, not the first JIT
        // compile (the bit-for-bit disabled-equivalence tests rely on it).
        if config.collector == CollectorKind::RolpNg2c {
            if let Some(g) = &config.rolp.governor {
                if g.start_state == crate::governor::GovernorState::Off {
                    env.jit.set_alloc_profiling(false);
                }
            }
        }

        let (profiler_rc, vm) = match config.collector {
            CollectorKind::RolpNg2c => {
                let mut prof = RolpProfiler::with_backend(
                    config.rolp.clone(),
                    backend_for(config.threads, config.rolp.table_shards),
                );
                prof.set_trace_logging(config.trace_enabled);
                // One decision plane: the same Arc-swapped snapshot store
                // feeds the mutator allocation fast path (via `env`) and
                // the GC's promotion placement (via the collector).
                let store = prof.decision_store();
                env.decisions = Some(store.clone());
                let rolp = Rc::new(RefCell::new(prof));
                let hooks: Rc<RefCell<dyn rolp_gc::GcHooks>> = rolp.clone();
                let mut regional = RegionalCollector::with_config(
                    rolp_gc::RegionalConfig { pretenuring: true, ..config.regional.clone() },
                    hooks,
                    "ROLP",
                );
                regional.set_decision_store(store);
                let collector: Box<dyn CollectorApi> = Box::new(regional);
                let profiler: Rc<RefCell<dyn rolp_vm::VmProfiler>> = rolp.clone();
                (Some(rolp), Vm::new(env, profiler, collector, config.seed))
            }
            CollectorKind::Ng2c => {
                let hooks: Rc<RefCell<dyn rolp_gc::GcHooks>> = Rc::new(RefCell::new(NullHooks));
                let collector: Box<dyn CollectorApi> = Box::new(RegionalCollector::with_config(
                    rolp_gc::RegionalConfig { pretenuring: true, ..config.regional.clone() },
                    hooks,
                    "NG2C",
                ));
                (None, Vm::new(env, null_profiler(), collector, config.seed))
            }
            CollectorKind::G1 => {
                let hooks: Rc<RefCell<dyn rolp_gc::GcHooks>> = Rc::new(RefCell::new(NullHooks));
                let collector: Box<dyn CollectorApi> = Box::new(RegionalCollector::with_config(
                    rolp_gc::RegionalConfig { pretenuring: false, ..config.regional.clone() },
                    hooks,
                    "G1",
                ));
                (None, Vm::new(env, null_profiler(), collector, config.seed))
            }
            CollectorKind::Cms => {
                let hooks: Rc<RefCell<dyn rolp_gc::GcHooks>> = Rc::new(RefCell::new(NullHooks));
                let collector: Box<dyn CollectorApi> = Box::new(CmsCollector::new(hooks));
                (None, Vm::new(env, null_profiler(), collector, config.seed))
            }
            CollectorKind::Zgc => {
                let hooks: Rc<RefCell<dyn rolp_gc::GcHooks>> = Rc::new(RefCell::new(NullHooks));
                let collector: Box<dyn CollectorApi> =
                    Box::new(ConcurrentCollector::new(hooks, &config.cost));
                (None, Vm::new(env, null_profiler(), collector, config.seed))
            }
        };

        JvmRuntime {
            vm,
            profiler: profiler_rc,
            kind: config.collector,
            side_table_scale: config.side_table_scale.max(1),
        }
    }

    /// The configured collector kind.
    pub fn kind(&self) -> CollectorKind {
        self.kind
    }

    /// A mutator context bound to `thread`.
    pub fn ctx(&mut self, thread: ThreadId) -> MutatorCtx<'_> {
        self.vm.ctx(thread)
    }

    /// Takes the flight-recorder event stream (merging any events still
    /// sitting in per-thread rings). Empty when tracing was off.
    pub fn take_trace(&mut self) -> Vec<rolp_trace::TraceEvent> {
        std::mem::take(&mut self.vm.env.trace).finish()
    }

    /// Keeps the OLD table's memory accounted in the memory watermarks.
    pub fn sample_side_tables(&mut self) {
        if let Some(p) = &self.profiler {
            let bytes = p.borrow().old.memory_bytes() / self.side_table_scale;
            self.vm.env.memory.set_side_tables(bytes);
        }
    }

    /// Aggregates every thread's metric cells at the current simulated
    /// time and publishes the result as the next immutable
    /// [`rolp_telemetry::MetricsSnapshot`] (lock-free for readers).
    /// Returns the published snapshot. Drivers call this at their
    /// reporting cadence; [`JvmRuntime::report`] publishes a final one.
    pub fn publish_metrics(&mut self) -> std::sync::Arc<rolp_telemetry::MetricsSnapshot> {
        let env = &self.vm.env;
        let registry = env.telemetry.registry();
        registry.publish(env.clock.now().as_nanos());
        registry.store().snapshot()
    }

    /// Builds the end-of-run report (publishes a final metrics
    /// snapshot).
    pub fn report(&mut self) -> RunReport {
        // End-of-run safepoint for the allocation fast path: retire every
        // TLAB (frontiers exact before the final memory sample), drain
        // the micro-cache counters, and land any still-buffered age-0
        // deltas so the final stats see every record.
        self.vm.env.safepoint_flush_alloc_path();
        if let Some(p) = &self.profiler {
            let flushed = p.borrow_mut().flush_age0();
            if flushed > 0 {
                self.vm.env.telemetry.bump(rolp_telemetry::CounterId::Age0Flushed, flushed);
            }
        }
        self.sample_side_tables();
        self.vm.env.sample_memory();
        let telemetry = self.publish_metrics();
        let env = &self.vm.env;
        let elapsed = env.clock.now();
        let rolp = self.profiler.as_ref().map(|p| p.borrow().stats(&env.program, &env.jit));
        let busy = env.clock.busy_time();
        RunReport {
            collector: self.vm.collector.name(),
            elapsed,
            total_paused: env.clock.total_paused(),
            ops: env.throughput.total_ops(),
            ops_per_sec: env.throughput.ops_per_sec(elapsed),
            ops_per_busy_sec: env.throughput.ops_per_sec(busy),
            max_used_bytes: env.memory.max_used(),
            max_committed_bytes: env.memory.max_committed(),
            gc_cycles: self.vm.collector.gc_cycles(),
            pauses: env.pauses.count(),
            rolp,
            profiling_overhead: telemetry.profiling_overhead(),
            telemetry,
        }
    }
}

fn null_profiler() -> Rc<RefCell<dyn rolp_vm::VmProfiler>> {
    Rc::new(RefCell::new(NullProfiler))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rolp_vm::ProgramBuilder;

    fn tiny_program() -> Program {
        let mut b = ProgramBuilder::new();
        let main = b.method("t.Main::run", 100, false);
        let _ = b.alloc_site(main, 0);
        b.build()
    }

    #[test]
    fn all_five_configurations_assemble() {
        for kind in CollectorKind::all() {
            let cfg = RuntimeConfig {
                collector: kind,
                heap: HeapConfig { region_bytes: 4096, max_heap_bytes: 1 << 20 },
                ..Default::default()
            };
            let mut rt = JvmRuntime::new(cfg, tiny_program());
            assert_eq!(rt.kind(), kind);
            let report = rt.report();
            assert_eq!(report.collector, kind.label());
            assert_eq!(report.rolp.is_some(), kind == CollectorKind::RolpNg2c);
        }
    }

    #[test]
    fn call_profiling_install_follows_collector_kind() {
        let cfg = |kind| RuntimeConfig {
            collector: kind,
            heap: HeapConfig { region_bytes: 4096, max_heap_bytes: 1 << 20 },
            ..Default::default()
        };
        let rt = JvmRuntime::new(cfg(CollectorKind::G1), tiny_program());
        assert!(!rt.vm.env.jit.config().install_call_profiling);
        let rt = JvmRuntime::new(cfg(CollectorKind::RolpNg2c), tiny_program());
        assert!(rt.vm.env.jit.config().install_call_profiling);

        let mut c = cfg(CollectorKind::RolpNg2c);
        c.rolp.level = ProfilingLevel::NoCallProfiling;
        let rt = JvmRuntime::new(c, tiny_program());
        assert!(!rt.vm.env.jit.config().install_call_profiling);
    }

    #[test]
    fn gc_workers_knob_reaches_cost_model_and_profiler() {
        let cfg = RuntimeConfig {
            collector: CollectorKind::RolpNg2c,
            heap: HeapConfig { region_bytes: 4096, max_heap_bytes: 1 << 20 },
            gc_workers: Some(8),
            ..Default::default()
        };
        let rt = JvmRuntime::new(cfg, tiny_program());
        assert_eq!(rt.vm.env.cost.gc_workers, 8);
        assert_eq!(rt.profiler.as_ref().unwrap().borrow().worker_count(), 8);

        // None keeps the individual defaults.
        let cfg = RuntimeConfig {
            heap: HeapConfig { region_bytes: 4096, max_heap_bytes: 1 << 20 },
            ..Default::default()
        };
        let rt = JvmRuntime::new(cfg, tiny_program());
        assert_eq!(rt.vm.env.cost.gc_workers, CostModel::default().gc_workers);
    }

    #[test]
    fn rolp_runtime_reports_side_table_memory() {
        let cfg = RuntimeConfig {
            collector: CollectorKind::RolpNg2c,
            heap: HeapConfig { region_bytes: 4096, max_heap_bytes: 1 << 20 },
            ..Default::default()
        };
        let mut rt = JvmRuntime::new(cfg, tiny_program());
        let report = rt.report();
        // The 4 MB base OLD table shows up in the watermark.
        assert!(report.max_committed_bytes >= 4 * 1024 * 1024);
    }
}
