//! Allocation contexts.
//!
//! An allocation context is the paper's 32-bit tuple (§3.1): the 16-bit
//! allocation-site identifier in the upper half and the 16-bit thread
//! stack state in the lower half. It is installed in the upper 32 bits of
//! the object header at allocation and read back during GC survivor
//! processing.
//!
//! The 16-bit halves are hard capacity limits (§7.5): a site-id counter
//! that *wrapped* past `u16::MAX` would silently alias two different
//! allocation sites into one packed context, corrupting every downstream
//! consumer (OLD-table rows, inference, published decisions). The id
//! space therefore **saturates**: [`SiteIdSpace`] hands out ids `1..=
//! u16::MAX` exactly once, refuses further requests, and counts the
//! refusals so the overflow is reported instead of hidden. Refused sites
//! simply stay unprofiled — NG2C semantics, allocation in generation 0 —
//! which is the graceful-degradation contract the governor relies on.

/// Largest assignable allocation-site id (id 0 is reserved for
/// "unprofiled").
pub const MAX_SITE_ID: u16 = u16::MAX;

/// Packs a site id and thread stack state into a 32-bit context.
#[inline]
pub fn pack(site_id: u16, tss: u16) -> u32 {
    ((site_id as u32) << 16) | tss as u32
}

/// The allocation-site half of a context.
#[inline]
pub fn site_of(context: u32) -> u16 {
    (context >> 16) as u16
}

/// The thread-stack-state half of a context.
#[inline]
pub fn tss_of(context: u32) -> u16 {
    context as u16
}

/// Saturating allocator for the 16-bit site-id space.
///
/// Ids are handed out sequentially starting at 1 and are never reused;
/// once `MAX_SITE_ID` has been assigned the space is exhausted and every
/// further request returns `None` (and is counted), rather than wrapping
/// back into ids that already name *other* sites.
#[derive(Debug, Clone, Default)]
pub struct SiteIdSpace {
    next: u16,
    exhausted: bool,
    overflow_requests: u64,
}

impl SiteIdSpace {
    /// A fresh id space (next id: 1; id 0 reserved for "unprofiled").
    pub fn new() -> Self {
        SiteIdSpace { next: 1, exhausted: false, overflow_requests: 0 }
    }

    /// Assigns the next site id, or `None` once the space is exhausted.
    pub fn assign(&mut self) -> Option<u16> {
        if self.exhausted {
            self.overflow_requests += 1;
            return None;
        }
        let id = self.next;
        if id == MAX_SITE_ID {
            self.exhausted = true;
        } else {
            self.next = id + 1;
        }
        Some(id)
    }

    /// True once every id in `1..=MAX_SITE_ID` has been assigned (or the
    /// space was force-exhausted).
    pub fn exhausted(&self) -> bool {
        self.exhausted
    }

    /// Requests refused after exhaustion — the reported (not silent)
    /// overflow.
    pub fn overflow_requests(&self) -> u64 {
        self.overflow_requests
    }

    /// Marks the space exhausted immediately (fault injection: "site-id
    /// exhaustion past 2^16" without allocating 65 535 real sites).
    pub fn force_exhaust(&mut self) {
        self.exhausted = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_roundtrip() {
        let c = pack(0xBEEF, 0x1234);
        assert_eq!(site_of(c), 0xBEEF);
        assert_eq!(tss_of(c), 0x1234);
    }

    #[test]
    fn zero_tss_keeps_site() {
        let c = pack(7, 0);
        assert_eq!(c, 7 << 16);
        assert_eq!(site_of(c), 7);
        assert_eq!(tss_of(c), 0);
    }

    /// Regression for the silent 16-bit wrap: a `wrapping_add(1)` id
    /// counter aliases site 65 536 onto site 1's packed context. The
    /// saturating allocator refuses instead, so no two assigned ids ever
    /// produce the same context.
    #[test]
    fn wrapping_id_assignment_would_alias_contexts() {
        // What the buggy allocator did: hand out `next` and wrap.
        let mut wrapped_next: u16 = MAX_SITE_ID; // 65 535 sites assigned
        let last_id = wrapped_next;
        wrapped_next = wrapped_next.wrapping_add(1); // silently back to 0
        let alias_id = wrapped_next.wrapping_add(1); // "new" site gets id 1
        assert_eq!(alias_id, 1, "the wrap re-issues the very first id");
        assert_eq!(
            pack(alias_id, 0x42),
            pack(1, 0x42),
            "two distinct sites now share one packed context"
        );
        assert_ne!(pack(last_id, 0x42), pack(alias_id, 0x42));

        // The fixed allocator saturates and reports.
        let mut space = SiteIdSpace::new();
        space.force_exhaust();
        assert_eq!(space.assign(), None);
        assert_eq!(space.assign(), None);
        assert_eq!(space.overflow_requests(), 2);
    }

    #[test]
    fn site_id_space_assigns_unique_ids_then_saturates() {
        let mut space = SiteIdSpace::new();
        assert_eq!(space.assign(), Some(1));
        assert_eq!(space.assign(), Some(2));
        assert!(!space.exhausted());

        // Walk the space to the end without allocating 64 Ki contexts.
        let mut space =
            SiteIdSpace { next: MAX_SITE_ID - 1, exhausted: false, overflow_requests: 0 };
        assert_eq!(space.assign(), Some(MAX_SITE_ID - 1));
        assert_eq!(space.assign(), Some(MAX_SITE_ID));
        assert!(space.exhausted());
        assert_eq!(space.assign(), None, "saturates instead of wrapping to 0/1");
        assert_eq!(space.overflow_requests(), 1);
    }
}
