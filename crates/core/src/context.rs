//! Allocation contexts.
//!
//! An allocation context is the paper's 32-bit tuple (§3.1): the 16-bit
//! allocation-site identifier in the upper half and the 16-bit thread
//! stack state in the lower half. It is installed in the upper 32 bits of
//! the object header at allocation and read back during GC survivor
//! processing.

/// Packs a site id and thread stack state into a 32-bit context.
#[inline]
pub fn pack(site_id: u16, tss: u16) -> u32 {
    ((site_id as u32) << 16) | tss as u32
}

/// The allocation-site half of a context.
#[inline]
pub fn site_of(context: u32) -> u16 {
    (context >> 16) as u16
}

/// The thread-stack-state half of a context.
#[inline]
pub fn tss_of(context: u32) -> u16 {
    context as u16
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_roundtrip() {
        let c = pack(0xBEEF, 0x1234);
        assert_eq!(site_of(c), 0xBEEF);
        assert_eq!(tss_of(c), 0x1234);
    }

    #[test]
    fn zero_tss_keeps_site() {
        let c = pack(7, 0);
        assert_eq!(c, 7 << 16);
        assert_eq!(site_of(c), 7);
        assert_eq!(tss_of(c), 0);
    }
}
