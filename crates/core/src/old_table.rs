//! The Object Lifetime Distribution (OLD) table.
//!
//! The paper's central data structure (§3.3, §7.5, §7.6): per allocation
//! context, the number of objects currently known at each age (0..=15).
//! Application threads bump the age-0 cell at allocation; GC workers move
//! survivors from age `a` to `a+1` through *private per-worker tables*
//! merged at the end of each collection.
//!
//! Sizing follows §7.5 exactly: the table starts with 2^16 rows — one per
//! possible allocation-site identifier, with every thread stack state
//! *aliasing* into its site's row (≈4 MB). When a conflict is detected on
//! a site, the table grows by another 2^16 rows for that site so each
//! thread stack state gets its own row (another 4 MB per conflict):
//! `4 * (1 + N) MB` for `N` conflicts.
//!
//! §7.6's unsynchronized application-thread increments can lose counts;
//! the simulation is single-threaded, so an optional loss probability
//! reproduces that imprecision for the ablation study.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::context::{site_of, tss_of};

/// Number of age columns (objects stop aging at 15; §4).
pub const AGE_COLUMNS: usize = 16;
/// Rows in the base table / in each expansion block.
const BLOCK_ROWS: usize = 1 << 16;

type Row = [u32; AGE_COLUMNS];

/// The global Object Lifetime Distribution table.
pub struct OldTable {
    /// Base block: one row per allocation-site id (tss aliases in).
    base: Vec<Row>,
    /// Expansion blocks for conflicted sites: full per-tss rows.
    expanded: HashMap<u16, Vec<Row>>,
    /// Contexts with at least one recorded count since the last clear
    /// (keyed by *row key*), kept so inference does not scan 64 K rows.
    touched: Vec<u32>,
    touched_set: std::collections::HashSet<u32>,
    /// Probability of losing an application-thread increment (§7.6
    /// ablation; 0.0 = the single-threaded ideal).
    loss_probability: f64,
    rng: StdRng,
    /// Increments dropped by the loss model.
    pub lost_increments: u64,
}

impl OldTable {
    /// Creates the table with its initial 2^16 site rows.
    pub fn new() -> Self {
        OldTable {
            base: vec![[0; AGE_COLUMNS]; BLOCK_ROWS],
            expanded: HashMap::new(),
            touched: Vec::new(),
            touched_set: std::collections::HashSet::new(),
            loss_probability: 0.0,
            rng: StdRng::seed_from_u64(0xD15EA5E),
            lost_increments: 0,
        }
    }

    /// Enables the §7.6 lost-increment model with the given probability.
    pub fn set_loss_probability(&mut self, p: f64, seed: u64) {
        self.loss_probability = p.clamp(0.0, 1.0);
        self.rng = StdRng::seed_from_u64(seed);
    }

    /// The *row key* a context resolves to: the full context for expanded
    /// (conflicted) sites, the site-only key otherwise.
    pub fn row_key(&self, context: u32) -> u32 {
        let site = site_of(context);
        if self.expanded.contains_key(&site) {
            context
        } else {
            (site as u32) << 16
        }
    }

    /// True if `site` has its own per-tss expansion block.
    pub fn is_expanded(&self, site: u16) -> bool {
        self.expanded.contains_key(&site)
    }

    /// Grows the table by 2^16 rows for a conflicted site (§7.5). Counts
    /// already aggregated in the site's base row stay there; they are
    /// discarded at the next periodic clear.
    pub fn expand_site(&mut self, site: u16) {
        self.expanded.entry(site).or_insert_with(|| vec![[0; AGE_COLUMNS]; BLOCK_ROWS]);
    }

    /// Number of expansion blocks (== resolved-or-pending conflicts).
    pub fn expansions(&self) -> usize {
        self.expanded.len()
    }

    /// Memory footprint per §7.5: `4 MB * (1 + N)`.
    pub fn memory_bytes(&self) -> u64 {
        ((1 + self.expanded.len()) * BLOCK_ROWS * std::mem::size_of::<Row>()) as u64
    }

    fn row_mut(&mut self, context: u32) -> &mut Row {
        let site = site_of(context);
        match self.expanded.get_mut(&site) {
            Some(block) => &mut block[tss_of(context) as usize],
            None => &mut self.base[site as usize],
        }
    }

    fn row(&self, context: u32) -> &Row {
        let site = site_of(context);
        match self.expanded.get(&site) {
            Some(block) => &block[tss_of(context) as usize],
            None => &self.base[site as usize],
        }
    }

    fn touch(&mut self, context: u32) {
        let key = self.row_key(context);
        if self.touched_set.insert(key) {
            self.touched.push(key);
        }
    }

    /// Application-thread path: one object allocated through `context`
    /// (age-0 increment, unsynchronized — may be lost under the §7.6
    /// model).
    pub fn record_allocation(&mut self, context: u32) {
        if self.loss_probability > 0.0 && self.rng.gen_bool(self.loss_probability) {
            self.lost_increments += 1;
            return;
        }
        self.touch(context);
        let row = self.row_mut(context);
        row[0] = row[0].saturating_add(1);
    }

    /// GC-side path (normally via a [`WorkerTable`]): one object allocated
    /// through `context` survived at `age`, moving to `age + 1`.
    pub fn record_survival(&mut self, context: u32, age: u8) {
        let age = (age as usize).min(AGE_COLUMNS - 1);
        let next = (age + 1).min(AGE_COLUMNS - 1);
        self.touch(context);
        let row = self.row_mut(context);
        row[age] = row[age].saturating_sub(1);
        row[next] = row[next].saturating_add(1);
    }

    /// The age histogram of a context's row.
    pub fn histogram(&self, context: u32) -> [u32; AGE_COLUMNS] {
        *self.row(context)
    }

    /// Row keys with recorded counts since the last clear.
    pub fn touched_rows(&self) -> &[u32] {
        &self.touched
    }

    /// Whether `context`'s site half is a plausible (assigned) profile id.
    /// Rows are dense, so this is a bound check against the id space the
    /// JIT has handed out.
    pub fn context_known(&self, context: u32, max_profile_id: u16) -> bool {
        let site = site_of(context);
        site != 0 && site <= max_profile_id
    }

    /// Clears all counts (the §4 freshness reset after inference);
    /// expansion blocks are kept.
    pub fn clear_counts(&mut self) {
        for key in &self.touched {
            let site = site_of(*key);
            match self.expanded.get_mut(&site) {
                Some(block) => block[tss_of(*key) as usize] = [0; AGE_COLUMNS],
                None => self.base[site as usize] = [0; AGE_COLUMNS],
            }
        }
        self.touched.clear();
        self.touched_set.clear();
    }
}

impl Default for OldTable {
    fn default() -> Self {
        Self::new()
    }
}

/// A GC worker's private table (§7.6): survival updates are buffered here
/// and merged into the global table after the collection, avoiding racy
/// GC-side updates.
#[derive(Debug, Default, Clone)]
pub struct WorkerTable {
    entries: Vec<(u32, u8)>,
}

impl WorkerTable {
    /// Creates an empty worker table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Buffers one survival record.
    pub fn record_survival(&mut self, context: u32, age: u8) {
        self.entries.push((context, age));
    }

    /// Buffered record count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Merges (and drains) the buffer into the global table.
    pub fn merge_into(&mut self, table: &mut OldTable) {
        for (context, age) in self.entries.drain(..) {
            table.record_survival(context, age);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::pack;

    #[test]
    fn allocation_counts_land_in_age_zero() {
        let mut t = OldTable::new();
        let c = pack(10, 0);
        t.record_allocation(c);
        t.record_allocation(c);
        assert_eq!(t.histogram(c)[0], 2);
    }

    #[test]
    fn unexpanded_sites_alias_all_stack_states() {
        let mut t = OldTable::new();
        t.record_allocation(pack(5, 111));
        t.record_allocation(pack(5, 222));
        // Both land in the site row.
        assert_eq!(t.histogram(pack(5, 0))[0], 2);
        assert_eq!(t.row_key(pack(5, 111)), t.row_key(pack(5, 222)));
    }

    #[test]
    fn expansion_splits_stack_states() {
        let mut t = OldTable::new();
        t.expand_site(5);
        t.record_allocation(pack(5, 111));
        t.record_allocation(pack(5, 222));
        assert_eq!(t.histogram(pack(5, 111))[0], 1);
        assert_eq!(t.histogram(pack(5, 222))[0], 1);
        assert_eq!(t.histogram(pack(5, 0))[0], 0);
        assert_ne!(t.row_key(pack(5, 111)), t.row_key(pack(5, 222)));
    }

    #[test]
    fn survival_moves_between_age_columns() {
        let mut t = OldTable::new();
        let c = pack(3, 0);
        t.record_allocation(c);
        t.record_survival(c, 0);
        let h = t.histogram(c);
        assert_eq!(h[0], 0);
        assert_eq!(h[1], 1);
        // Ages saturate at 15.
        for age in 1..40u8 {
            t.record_survival(c, age.min(15));
        }
        assert_eq!(t.histogram(c)[15], 1);
    }

    #[test]
    fn memory_grows_four_megabytes_per_conflict() {
        let mut t = OldTable::new();
        let base = t.memory_bytes();
        assert_eq!(base, 4 * 1024 * 1024);
        t.expand_site(9);
        assert_eq!(t.memory_bytes(), 2 * base);
        t.expand_site(9); // idempotent
        assert_eq!(t.memory_bytes(), 2 * base);
        t.expand_site(10);
        assert_eq!(t.memory_bytes(), 3 * base);
        assert_eq!(t.expansions(), 2);
    }

    #[test]
    fn clear_resets_counts_but_keeps_expansions() {
        let mut t = OldTable::new();
        t.expand_site(4);
        t.record_allocation(pack(4, 9));
        t.record_allocation(pack(8, 0));
        t.clear_counts();
        assert_eq!(t.histogram(pack(4, 9))[0], 0);
        assert_eq!(t.histogram(pack(8, 0))[0], 0);
        assert!(t.is_expanded(4));
        assert!(t.touched_rows().is_empty());
    }

    #[test]
    fn worker_tables_merge_after_collection() {
        let mut t = OldTable::new();
        let c = pack(2, 0);
        t.record_allocation(c);
        t.record_allocation(c);
        let mut w = WorkerTable::new();
        w.record_survival(c, 0);
        w.record_survival(c, 0);
        assert_eq!(t.histogram(c)[1], 0, "not visible until merge");
        w.merge_into(&mut t);
        assert!(w.is_empty());
        let h = t.histogram(c);
        assert_eq!(h[0], 0);
        assert_eq!(h[1], 2);
    }

    #[test]
    fn loss_model_drops_some_increments() {
        let mut t = OldTable::new();
        t.set_loss_probability(0.5, 42);
        let c = pack(1, 0);
        for _ in 0..1_000 {
            t.record_allocation(c);
        }
        let recorded = t.histogram(c)[0] as u64;
        assert_eq!(recorded + t.lost_increments, 1_000);
        assert!(t.lost_increments > 300 && t.lost_increments < 700);
    }

    #[test]
    fn context_known_bounds_check() {
        let t = OldTable::new();
        assert!(!t.context_known(pack(0, 0), 100));
        assert!(t.context_known(pack(100, 5), 100));
        assert!(!t.context_known(pack(101, 0), 100));
    }
}
