//! The Object Lifetime Distribution (OLD) table — sequential backend.
//!
//! The paper's central data structure (§3.3, §7.5, §7.6): per allocation
//! context, the number of objects currently known at each age (0..=15).
//! Application threads bump the age-0 cell at allocation; GC workers move
//! survivors from age `a` to `a+1` through *private per-worker tables*
//! merged at the end of each collection.
//!
//! Sizing follows §7.5 exactly via the shared [`TableGeometry`]: the
//! table starts with 2^16 rows — one per possible allocation-site
//! identifier, with every thread stack state *aliasing* into its site's
//! row (≈4 MB). When a conflict is detected on a site, the table grows by
//! another 2^16 rows for that site so each thread stack state gets its
//! own row (another 4 MB per conflict): `4 * (1 + N) MB` for `N`
//! conflicts.
//!
//! §7.6's unsynchronized application-thread increments can lose counts;
//! this single-threaded table is the exact *reference*. The concurrent
//! twin ([`crate::SharedOldTable`]) runs the real racy increments, and the
//! loss is *measured* against this reference by per-epoch reconciliation
//! (see [`crate::concurrent`]) instead of being simulated with a
//! probability knob. Both implement [`LifetimeTable`], so the profiler
//! pipeline is written once against the trait.

use std::collections::{HashMap, HashSet};

use crate::geometry::{LifetimeTable, TableGeometry};

/// Number of age columns (objects stop aging at 15; §4).
pub const AGE_COLUMNS: usize = 16;

type Row = [u32; AGE_COLUMNS];

/// The sequential (exact) Object Lifetime Distribution table.
pub struct OldTable {
    geometry: TableGeometry,
    /// Base block: one row per allocation-site id (tss aliases in).
    base: Vec<Row>,
    /// Expansion blocks for conflicted sites, keyed by base-block row.
    expanded: HashMap<u16, Vec<Row>>,
    /// Contexts with at least one recorded count since the last clear
    /// (keyed by *row key*), kept so inference does not scan 64 K rows.
    touched: Vec<u32>,
    touched_set: HashSet<u32>,
}

impl OldTable {
    /// Creates the table with the paper's full-scale geometry.
    pub fn new() -> Self {
        Self::with_geometry(TableGeometry::full_scale())
    }

    /// Creates the table with an explicit geometry (scaled-down tests
    /// alias ids into rows by masking, like the shared backend).
    pub fn with_geometry(geometry: TableGeometry) -> Self {
        OldTable {
            geometry,
            base: vec![[0; AGE_COLUMNS]; geometry.site_rows()],
            expanded: HashMap::new(),
            touched: Vec::new(),
            touched_set: HashSet::new(),
        }
    }

    fn row_mut(&mut self, context: u32) -> &mut Row {
        let site = self.geometry.site_row(context) as u16;
        match self.expanded.get_mut(&site) {
            Some(block) => &mut block[self.geometry.tss_row(context)],
            None => &mut self.base[site as usize],
        }
    }

    fn row(&self, context: u32) -> &Row {
        let site = self.geometry.site_row(context) as u16;
        match self.expanded.get(&site) {
            Some(block) => &block[self.geometry.tss_row(context)],
            None => &self.base[site as usize],
        }
    }

    fn touch(&mut self, context: u32) {
        let key = self.row_key(context);
        if self.touched_set.insert(key) {
            self.touched.push(key);
        }
    }
}

impl LifetimeTable for OldTable {
    fn geometry(&self) -> &TableGeometry {
        &self.geometry
    }

    /// Application-thread path: one object allocated through `context`
    /// (age-0 increment; exact here — the racy flavor lives in
    /// [`crate::SharedOldTable::record_allocation`]).
    fn record_allocation(&mut self, context: u32) {
        self.touch(context);
        let row = self.row_mut(context);
        row[0] = row[0].saturating_add(1);
    }

    /// Batched age-0 ingest: one row lookup for the whole run-length.
    fn record_allocations(&mut self, context: u32, n: u32) {
        if n == 0 {
            return;
        }
        self.touch(context);
        let row = self.row_mut(context);
        row[0] = row[0].saturating_add(n);
    }

    /// GC-side path (normally via a [`WorkerTable`]): one object allocated
    /// through `context` survived at `age`, moving to `age + 1`.
    fn record_survival(&mut self, context: u32, age: u8) {
        let age = (age as usize).min(AGE_COLUMNS - 1);
        let next = (age + 1).min(AGE_COLUMNS - 1);
        self.touch(context);
        let row = self.row_mut(context);
        row[age] = row[age].saturating_sub(1);
        row[next] = row[next].saturating_add(1);
    }

    /// Grows the table by an expansion block for a conflicted site
    /// (§7.5). Counts already aggregated in the site's base row stay
    /// there; they are discarded at the next periodic clear.
    fn expand_site(&mut self, site: u16) {
        let row = self.geometry.site_row((site as u32) << 16) as u16;
        let rows = self.geometry.tss_rows();
        self.expanded.entry(row).or_insert_with(|| vec![[0; AGE_COLUMNS]; rows]);
    }

    fn is_expanded(&self, site: u16) -> bool {
        self.expanded.contains_key(&(self.geometry.site_row((site as u32) << 16) as u16))
    }

    fn expansions(&self) -> usize {
        self.expanded.len()
    }

    fn expanded_sites(&self) -> Vec<u16> {
        let mut sites: Vec<u16> = self.expanded.keys().copied().collect();
        sites.sort_unstable();
        sites
    }

    fn histogram(&self, context: u32) -> [u32; AGE_COLUMNS] {
        *self.row(context)
    }

    fn touched_rows(&self) -> Vec<u32> {
        let mut rows = self.touched.clone();
        rows.sort_unstable();
        rows
    }

    fn age0_total(&self) -> u64 {
        // Row keys double as contexts, so each touched row reads back
        // through the normal lookup.
        self.touched.iter().map(|&key| self.row(key)[0] as u64).sum()
    }

    /// Clears all counts (the §4 freshness reset after inference) per the
    /// [`crate::geometry`] contract; expansion blocks are kept. Only rows
    /// tracked as touched can be nonzero, so only they are zeroed.
    fn clear_counts(&mut self) {
        for i in 0..self.touched.len() {
            let key = self.touched[i];
            *self.row_mut(key) = [0; AGE_COLUMNS];
        }
        self.touched.clear();
        self.touched_set.clear();
    }
}

impl Default for OldTable {
    fn default() -> Self {
        Self::new()
    }
}

/// A GC worker's private table (§7.6): survival updates are buffered here
/// and merged into the global table after the collection, avoiding racy
/// GC-side updates.
#[derive(Debug, Default, Clone)]
pub struct WorkerTable {
    entries: Vec<(u32, u8)>,
}

impl WorkerTable {
    /// Creates an empty worker table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Buffers one survival record.
    pub fn record_survival(&mut self, context: u32, age: u8) {
        self.entries.push((context, age));
    }

    /// Buffered record count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Merges (and drains) the buffer into a global table.
    pub fn merge_into<T: LifetimeTable + ?Sized>(&mut self, table: &mut T) {
        for (context, age) in self.entries.drain(..) {
            table.record_survival(context, age);
        }
    }

    /// Drains the buffered records (used by the deterministic merge).
    pub fn drain_entries(&mut self) -> Vec<(u32, u8)> {
        std::mem::take(&mut self.entries)
    }
}

/// What a safepoint merge of per-worker tables applied (§5.2): per-worker
/// record counts for the `rolp-trace` merge event, plus the total.
#[derive(Debug, Clone, Default)]
pub struct MergeSummary {
    /// Records each worker contributed, in worker-index order.
    pub per_worker: Vec<u64>,
    /// Total records merged this safepoint.
    pub total: u64,
}

/// Merges (and drains) every worker's private table into the global table
/// **deterministically**: all records are collected and sorted by
/// `(context, age)` before being applied, so the merged histograms do not
/// depend on how survivor work was distributed across GC workers. (The
/// apply order matters because under-counted rows saturate at zero.)
/// Written once against [`LifetimeTable`], so the sequential reference
/// and the concurrent backend share the safepoint protocol.
pub fn merge_worker_tables<T: LifetimeTable + ?Sized>(
    workers: &mut [WorkerTable],
    table: &mut T,
) -> MergeSummary {
    let mut summary = MergeSummary::default();
    let mut records: Vec<(u32, u8)> = Vec::new();
    for worker in workers.iter_mut() {
        let entries = worker.drain_entries();
        summary.per_worker.push(entries.len() as u64);
        summary.total += entries.len() as u64;
        records.extend(entries);
    }
    records.sort_unstable();
    for (context, age) in records {
        table.record_survival(context, age);
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::pack;

    #[test]
    fn allocation_counts_land_in_age_zero() {
        let mut t = OldTable::new();
        let c = pack(10, 0);
        t.record_allocation(c);
        t.record_allocation(c);
        assert_eq!(t.histogram(c)[0], 2);
        assert_eq!(t.age0_total(), 2);
    }

    #[test]
    fn unexpanded_sites_alias_all_stack_states() {
        let mut t = OldTable::new();
        t.record_allocation(pack(5, 111));
        t.record_allocation(pack(5, 222));
        // Both land in the site row.
        assert_eq!(t.histogram(pack(5, 0))[0], 2);
        assert_eq!(t.row_key(pack(5, 111)), t.row_key(pack(5, 222)));
    }

    #[test]
    fn expansion_splits_stack_states() {
        let mut t = OldTable::new();
        t.expand_site(5);
        t.record_allocation(pack(5, 111));
        t.record_allocation(pack(5, 222));
        assert_eq!(t.histogram(pack(5, 111))[0], 1);
        assert_eq!(t.histogram(pack(5, 222))[0], 1);
        assert_eq!(t.histogram(pack(5, 0))[0], 0);
        assert_ne!(t.row_key(pack(5, 111)), t.row_key(pack(5, 222)));
    }

    #[test]
    fn scaled_geometry_aliases_sites_by_masking() {
        let mut t = OldTable::with_geometry(TableGeometry::new(64, 16));
        t.record_allocation(pack(69, 0)); // 69 & 63 == 5
        t.record_allocation(pack(5, 3));
        assert_eq!(t.histogram(pack(5, 0))[0], 2);
        assert_eq!(t.memory_bytes(), (64 * 16 * 4) as u64);
    }

    #[test]
    fn survival_moves_between_age_columns() {
        let mut t = OldTable::new();
        let c = pack(3, 0);
        t.record_allocation(c);
        t.record_survival(c, 0);
        let h = t.histogram(c);
        assert_eq!(h[0], 0);
        assert_eq!(h[1], 1);
        // Ages saturate at 15.
        for age in 1..40u8 {
            t.record_survival(c, age.min(15));
        }
        assert_eq!(t.histogram(c)[15], 1);
    }

    #[test]
    fn memory_grows_four_megabytes_per_conflict() {
        let mut t = OldTable::new();
        let base = t.memory_bytes();
        assert_eq!(base, 4 * 1024 * 1024);
        t.expand_site(9);
        assert_eq!(t.memory_bytes(), 2 * base);
        t.expand_site(9); // idempotent
        assert_eq!(t.memory_bytes(), 2 * base);
        t.expand_site(10);
        assert_eq!(t.memory_bytes(), 3 * base);
        assert_eq!(t.expansions(), 2);
    }

    #[test]
    fn clear_resets_counts_but_keeps_expansions() {
        let mut t = OldTable::new();
        t.expand_site(4);
        t.record_allocation(pack(4, 9));
        t.record_allocation(pack(8, 0));
        t.clear_counts();
        assert_eq!(t.histogram(pack(4, 9))[0], 0);
        assert_eq!(t.histogram(pack(8, 0))[0], 0);
        assert!(t.is_expanded(4));
        assert!(t.touched_rows().is_empty());
        assert_eq!(t.age0_total(), 0);
    }

    #[test]
    fn touched_rows_are_sorted_regardless_of_record_order() {
        let mut t = OldTable::new();
        t.record_allocation(pack(9, 0));
        t.record_allocation(pack(2, 0));
        t.record_allocation(pack(5, 0));
        assert_eq!(t.touched_rows(), vec![2 << 16, 5 << 16, 9 << 16]);
    }

    #[test]
    fn worker_tables_merge_after_collection() {
        let mut t = OldTable::new();
        let c = pack(2, 0);
        t.record_allocation(c);
        t.record_allocation(c);
        let mut w = WorkerTable::new();
        w.record_survival(c, 0);
        w.record_survival(c, 0);
        assert_eq!(t.histogram(c)[1], 0, "not visible until merge");
        w.merge_into(&mut t);
        assert!(w.is_empty());
        let h = t.histogram(c);
        assert_eq!(h[0], 0);
        assert_eq!(h[1], 2);
    }

    #[test]
    fn sorted_merge_is_independent_of_worker_assignment() {
        // The same survival records split across workers two different
        // ways must produce identical histograms after the deterministic
        // merge — including rows that saturate at zero.
        let records = [
            (pack(2, 0), 0u8),
            (pack(2, 0), 1),
            (pack(7, 3), 0),
            (pack(2, 0), 0),
            (pack(7, 3), 5), // under-counted: saturates row 5 at zero
        ];
        let run = |assignment: &[usize]| {
            let mut t = OldTable::new();
            t.record_allocation(pack(2, 0));
            t.record_allocation(pack(2, 0));
            t.record_allocation(pack(7, 3));
            let mut workers = vec![WorkerTable::new(); 3];
            for (i, &(c, a)) in records.iter().enumerate() {
                workers[assignment[i]].record_survival(c, a);
            }
            let summary = merge_worker_tables(&mut workers, &mut t);
            assert_eq!(summary.total, records.len() as u64);
            assert!(workers.iter().all(WorkerTable::is_empty));
            (t.histogram(pack(2, 0)), t.histogram(pack(7, 3)), summary.per_worker)
        };
        let (a2, a7, a_per) = run(&[0, 0, 1, 2, 2]);
        let (b2, b7, b_per) = run(&[2, 1, 0, 1, 0]);
        assert_eq!(a2, b2);
        assert_eq!(a7, b7);
        assert_eq!(a_per, vec![2, 1, 2]);
        assert_eq!(b_per, vec![2, 2, 1]);
    }

    #[test]
    fn context_known_bounds_check() {
        let t = OldTable::new();
        assert!(!t.context_known(pack(0, 0), 100));
        assert!(t.context_known(pack(100, 5), 100));
        assert!(!t.context_known(pack(101, 0), 100));
    }
}
