//! Memory-leak detection from lifetime statistics (paper §2.2).
//!
//! The paper notes that ROLP's per-allocation-context lifetime statistics
//! enable additional use-cases, naming leak detection explicitly. Two
//! complementary signals are implemented:
//!
//! 1. *Live-population growth* (primary): each marking pass produces a
//!    census of live objects per allocation context; a context whose live
//!    population grows monotonically across consecutive censuses while it
//!    keeps allocating is the classic "collection that only grows".
//! 2. *Immortal-age pileup* (secondary): a context whose OLD-table window
//!    accumulates objects at the saturated maximum age while fresh
//!    allocations continue.

use std::collections::HashSet;

use rolp_vm::{JitState, Program};

use crate::context::site_of;
use crate::geometry::LifetimeTable;
use crate::old_table::AGE_COLUMNS;
use crate::profiler::RolpProfiler;

/// Relative growth between consecutive censuses for a context to count as
/// "still growing" (filters noise around stable populations).
const GROWTH_FACTOR: f64 = 1.05;

/// One leak suspect.
#[derive(Debug, Clone)]
pub struct LeakSuspect {
    /// The allocation context.
    pub context: u32,
    /// Source location, `"pkg.Class::method @bci N"`, when resolvable.
    pub location: String,
    /// Live objects at the most recent census.
    pub live_objects: u64,
    /// Live objects at the oldest census in the comparison window.
    pub live_objects_before: u64,
    /// Censuses over which the population grew monotonically.
    pub growing_for: usize,
}

/// A leak report.
#[derive(Debug, Clone, Default)]
pub struct LeakReport {
    /// Suspects, largest live population first.
    pub suspects: Vec<LeakSuspect>,
}

impl LeakReport {
    /// Builds a report from the profiler's recent liveness censuses:
    /// contexts whose live population is at least `min_live` and grew
    /// monotonically across all recorded censuses (at least three) are
    /// suspects. Falls back to the immortal-age heuristic when fewer than
    /// three censuses exist.
    pub fn gather<T: LifetimeTable>(
        profiler: &RolpProfiler<T>,
        program: &Program,
        jit: &JitState,
        min_live: u64,
    ) -> LeakReport {
        let _ = jit;
        let mut suspects = Vec::new();
        let history = &profiler.liveness_history;

        if history.len() >= 3 {
            let latest = history.back().expect("non-empty");
            let candidates: HashSet<u32> =
                latest.iter().filter(|(_, &n)| n >= min_live).map(|(&c, _)| c).collect();
            for ctx in candidates {
                let series: Vec<u64> =
                    history.iter().map(|h| h.get(&ctx).copied().unwrap_or(0)).collect();
                let growing = series
                    .windows(2)
                    .all(|w| w[1] as f64 >= w[0] as f64 * GROWTH_FACTOR || w[0] == 0);
                if !growing || series[0] == series[series.len() - 1] {
                    continue;
                }
                suspects.push(LeakSuspect {
                    context: ctx,
                    location: Self::locate(profiler, program, ctx),
                    live_objects: *series.last().expect("non-empty"),
                    live_objects_before: series[0],
                    growing_for: series.len(),
                });
            }
        } else {
            // Secondary signal: immortal-age pileup in the current window.
            for key in profiler.old.touched_rows() {
                let hist = profiler.old.histogram(key);
                let immortal = hist[AGE_COLUMNS - 1] as u64;
                if immortal >= min_live && hist[0] > 0 {
                    suspects.push(LeakSuspect {
                        context: key,
                        location: Self::locate(profiler, program, key),
                        live_objects: immortal,
                        live_objects_before: 0,
                        growing_for: 1,
                    });
                }
            }
        }
        suspects.sort_by_key(|s| std::cmp::Reverse(s.live_objects));
        LeakReport { suspects }
    }

    fn locate<T: LifetimeTable>(
        profiler: &RolpProfiler<T>,
        program: &Program,
        context: u32,
    ) -> String {
        let site_id = site_of(context);
        profiler
            .pid_to_site
            .get(&site_id)
            .map(|&s| {
                let decl = program.alloc_site(s);
                format!("{} @bci {}", program.method(decl.method).name, decl.bci)
            })
            .unwrap_or_else(|| format!("<site {site_id}>"))
    }

    /// Renders the report as text.
    pub fn render(&self) -> String {
        if self.suspects.is_empty() {
            return "no leak suspects".to_string();
        }
        let mut out = String::from("leak suspects (live population growing across GC censuses):\n");
        for s in &self.suspects {
            out.push_str(&format!(
                "  {:<50} {:>9} live (was {:>8} {} censuses ago)\n",
                s.location,
                s.live_objects,
                s.live_objects_before,
                s.growing_for.saturating_sub(1),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::pack;
    use crate::profiler::RolpConfig;
    use rolp_gc::GcHooks;
    use rolp_vm::{JitConfig, ProgramBuilder, ThreadId, VmProfiler};
    use std::collections::HashMap;

    fn census(entries: &[(u32, u64)]) -> HashMap<u32, u64> {
        entries.iter().copied().collect()
    }

    #[test]
    fn growing_context_is_flagged_and_stable_one_is_not() {
        let mut b = ProgramBuilder::new();
        let m = b.method("app.cache.Registry::put", 50, false);
        let _site = b.alloc_site(m, 7);
        let program = b.build();
        let mut jit = JitState::new(&program, JitConfig::default());

        let mut p = RolpProfiler::new(RolpConfig::default());
        p.on_jit_compile(&program, &mut jit, m);

        let leak = pack(1, 0);
        let healthy = pack(2, 0);
        p.on_liveness(&census(&[(leak, 1_000), (healthy, 5_000)]));
        p.on_liveness(&census(&[(leak, 2_000), (healthy, 5_100)]));
        p.on_liveness(&census(&[(leak, 3_000), (healthy, 4_900)]));

        let report = LeakReport::gather(&p, &program, &jit, 100);
        assert_eq!(report.suspects.len(), 1);
        let s = &report.suspects[0];
        assert_eq!(s.context, leak);
        assert_eq!(s.live_objects, 3_000);
        assert!(s.location.contains("app.cache.Registry::put"));
        assert!(report.render().contains("app.cache.Registry::put"));
    }

    #[test]
    fn short_history_falls_back_to_immortal_heuristic() {
        let program = ProgramBuilder::new().build();
        let jit = JitState::new(&program, JitConfig::default());
        let mut p = RolpProfiler::new(RolpConfig::default());
        for _ in 0..50 {
            p.on_alloc(3, 0, ThreadId(0));
        }
        // Leak reports are gathered at safepoints, after the batched
        // age-0 deltas have landed in the table.
        p.flush_age0();
        for _ in 0..40 {
            for age in 0..15 {
                p.old.record_survival(pack(3, 0), age);
            }
        }
        let report = LeakReport::gather(&p, &program, &jit, 10);
        assert_eq!(report.suspects.len(), 1);
        assert_eq!(report.suspects[0].live_objects, 40);
    }

    #[test]
    fn empty_history_and_table_report_nothing() {
        let program = ProgramBuilder::new().build();
        let jit = JitState::new(&program, JitConfig::default());
        let p = RolpProfiler::new(RolpConfig::default());
        let report = LeakReport::gather(&p, &program, &jit, 1);
        assert!(report.suspects.is_empty());
        assert_eq!(report.render(), "no leak suspects");
    }

    #[test]
    fn history_is_bounded() {
        let mut p = RolpProfiler::new(RolpConfig::default());
        for i in 0..20u64 {
            p.on_liveness(&census(&[(pack(1, 0), i)]));
        }
        assert!(p.liveness_history.len() <= 6);
    }
}
