//! The sharded Object Lifetime Distribution table.
//!
//! [`ShardedOldTable`] is the horizontal-scale backend of the
//! [`LifetimeTable`] family: the same §7.5 geometry as
//! [`crate::OldTable`] / [`crate::SharedOldTable`], but with rows
//! partitioned into `N` independently locked shards so per-thread
//! recording contends only per shard and the epoch pipeline's merge and
//! inference fan out across shards on the `rolp_gc` worker-pool idiom.
//!
//! # Partition function
//!
//! A context's shard is a pure function of its (masked) site row:
//!
//! ```text
//! shard_of(context) = site_row(context) & (N - 1)        (N power of two)
//! ```
//!
//! Keying by site row — never by stack state — means *every* context of
//! an allocation site, and therefore the site's entire §7.5 expansion
//! block, lives wholly inside one shard. Expansion state can then be
//! shard-local, and per-shard work (merge apply, row classification)
//! never needs to look across a shard boundary.
//!
//! # Deterministic cross-shard reduction
//!
//! Unlike [`crate::SharedOldTable`]'s unsynchronized increments, shard
//! cells are updated under the shard's lock, so counting is **exact**:
//! the §7.6 measured-loss reconciliation sees zero loss by construction
//! and the observable state is bit-identical to the sequential reference
//! for the same event stream (each shard stores its rows exactly like
//! [`crate::OldTable`] does — base rows, expansion blocks that shadow
//! them, a touched set). Cross-shard reads re-establish the trait's
//! global ordering contracts by sorting the per-shard results
//! (`touched_rows`, `expanded_sites`), and the parallel fan-outs preserve
//! the global sorted apply order within each shard while rows in
//! different shards never alias — so the merged table, the inference
//! outcome, and ultimately the published `DecisionTable` snapshots are
//! independent of both the shard count and the fan-out schedule.
//!
//! The per-shard lock is a hand-rolled spinlock on [`crate::sync_compat`]
//! primitives (an `AtomicBool` CAS guarding a `loom`-instrumented
//! `UnsafeCell`), so the `--features loom` model check genuinely verifies
//! the mutual-exclusion claim rather than trusting `std::sync::Mutex`.

use std::collections::{BTreeMap, HashMap, HashSet};

use crate::geometry::{LifetimeTable, TableGeometry};
use crate::inference::{classify_row, InferenceOutcome, RowVerdict};
use crate::old_table::{MergeSummary, WorkerTable, AGE_COLUMNS};
use crate::sync_compat::{yield_now, AtomicBool, AtomicU64, Ordering, UnsafeCell};

type Row = [u32; AGE_COLUMNS];

/// Below this many merge records the safepoint apply stays inline: the
/// fan-out's thread-scope setup would cost more than the work. The end
/// state is identical either way.
const PARALLEL_MERGE_MIN_RECORDS: usize = 1024;

/// Below this many touched rows inference classifies inline.
const PARALLEL_INFER_MIN_ROWS: usize = 64;

/// One shard's slice of the table, stored exactly like the sequential
/// reference so the observable semantics match bit for bit: sparse base
/// rows, expansion blocks that *shadow* a site's base row once present
/// (pre-expansion counts become unreachable, as in
/// [`crate::OldTable::expand_site`]), and the touched row-key set.
#[derive(Default)]
struct Shard {
    /// Masked site row → base histogram.
    base: HashMap<u16, Row>,
    /// Masked site row → (masked tss row → histogram). Block presence IS
    /// the site's expansion state.
    blocks: HashMap<u16, HashMap<u16, Row>>,
    /// Row keys with recorded counts since the last clear.
    touched: HashSet<u32>,
}

impl Shard {
    fn row_mut(&mut self, geometry: &TableGeometry, context: u32) -> &mut Row {
        let site = geometry.site_row(context) as u16;
        match self.blocks.get_mut(&site) {
            Some(block) => {
                block.entry(geometry.tss_row(context) as u16).or_insert([0; AGE_COLUMNS])
            }
            None => self.base.entry(site).or_insert([0; AGE_COLUMNS]),
        }
    }

    fn row(&self, geometry: &TableGeometry, context: u32) -> Row {
        let site = geometry.site_row(context) as u16;
        let row = match self.blocks.get(&site) {
            Some(block) => block.get(&(geometry.tss_row(context) as u16)),
            None => self.base.get(&site),
        };
        row.copied().unwrap_or([0; AGE_COLUMNS])
    }

    fn is_expanded(&self, geometry: &TableGeometry, context: u32) -> bool {
        self.blocks.contains_key(&(geometry.site_row(context) as u16))
    }

    fn touch(&mut self, geometry: &TableGeometry, context: u32) {
        let key = geometry.row_key(context, self.is_expanded(geometry, context));
        self.touched.insert(key);
    }
}

/// A spinlock-guarded shard. `contended` counts acquisitions that found
/// the lock held — the `shard_lock_wait` telemetry signal.
struct ShardLock {
    locked: AtomicBool,
    contended: AtomicU64,
    shard: UnsafeCell<Shard>,
}

// SAFETY: `shard` is only ever accessed inside `ShardLock::lock`, which
// establishes exclusive access via the `locked` CAS (verified by loom's
// instrumented `UnsafeCell` under `--features loom`).
unsafe impl Send for ShardLock {}
unsafe impl Sync for ShardLock {}

impl ShardLock {
    fn new() -> Self {
        ShardLock {
            locked: AtomicBool::new(false),
            contended: AtomicU64::new(0),
            shard: UnsafeCell::new(Shard::default()),
        }
    }

    /// Runs `f` with exclusive access to the shard.
    fn lock<R>(&self, f: impl FnOnce(&mut Shard) -> R) -> R {
        let mut contended = false;
        while self
            .locked
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            contended = true;
            yield_now();
        }
        if contended {
            self.contended.fetch_add(1, Ordering::Relaxed);
        }
        // SAFETY: the CAS above made this thread the unique lock holder;
        // every other accessor spins on the same flag, so the access is
        // exclusive until the release store below.
        let result = self.shard.with_mut(|p| f(unsafe { &mut *p }));
        self.locked.store(false, Ordering::Release);
        result
    }
}

/// The sharded Object Lifetime Distribution table (see the module docs
/// for the partition function and determinism argument).
pub struct ShardedOldTable {
    geometry: TableGeometry,
    shard_mask: usize,
    shards: Box<[ShardLock]>,
    /// Records the most recent safepoint merge applied per shard (set by
    /// [`LifetimeTable::merge_workers`], safepoint-side).
    last_merge_per_shard: Vec<u64>,
}

impl ShardedOldTable {
    /// A full-scale table split into `shards` shards (power of two).
    pub fn new(shards: usize) -> Self {
        Self::with_geometry(TableGeometry::full_scale(), shards)
    }

    /// A table with explicit geometry and shard count. `shards` must be a
    /// power of two no larger than the geometry's site-row count, so the
    /// partition mask maps every shard onto a nonempty row subset.
    pub fn with_geometry(geometry: TableGeometry, shards: usize) -> Self {
        assert!(
            shards.is_power_of_two() && shards <= geometry.site_rows(),
            "shard count must be a power of two <= site rows"
        );
        ShardedOldTable {
            geometry,
            shard_mask: shards - 1,
            shards: (0..shards).map(|_| ShardLock::new()).collect(),
            last_merge_per_shard: Vec::new(),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard a context's rows live in: a pure function of the masked
    /// site row, so a site's base row and its whole expansion block share
    /// one shard.
    #[inline]
    pub fn shard_of(&self, context: u32) -> usize {
        self.geometry.site_row(context) & self.shard_mask
    }

    /// Cumulative contended lock acquisitions across all shards.
    pub fn lock_contentions(&self) -> u64 {
        self.shards.iter().map(|s| s.contended.load(Ordering::Relaxed)).sum()
    }

    /// Application-thread path: exact, per-shard-locked age-0 increment.
    /// Unlike [`crate::SharedOldTable::record_allocation`] this loses no
    /// counts — the sharding trade is lock traffic on a 1/N subset
    /// instead of §7.6 imprecision.
    pub fn record_allocation(&self, context: u32) {
        let g = self.geometry;
        self.shards[self.shard_of(context)].lock(|s| {
            s.touch(&g, context);
            let row = s.row_mut(&g, context);
            row[0] = row[0].saturating_add(1);
        });
    }

    /// Batched age-0 ingest: one lock acquisition and one row lookup for
    /// the whole run-length — the sharding win compounds with batching
    /// (lock traffic drops from per-allocation to per-safepoint).
    pub fn record_allocations(&self, context: u32, n: u32) {
        if n == 0 {
            return;
        }
        let g = self.geometry;
        self.shards[self.shard_of(context)].lock(|s| {
            s.touch(&g, context);
            let row = s.row_mut(&g, context);
            row[0] = row[0].saturating_add(n);
        });
    }

    /// Survival move `age` → `age + 1` (same saturating semantics as the
    /// sequential reference).
    pub fn record_survival(&self, context: u32, age: u8) {
        let g = self.geometry;
        self.shards[self.shard_of(context)].lock(|s| {
            s.touch(&g, context);
            apply_survival(s.row_mut(&g, context), age);
        });
    }

    /// Grows the owning shard with an expansion block for a conflicted
    /// site (§7.5). Idempotent; counts already aggregated in the site's
    /// base row become unreachable, exactly as in the other backends.
    pub fn expand_site(&self, site: u16) {
        let context = (site as u32) << 16;
        let site_row = self.geometry.site_row(context) as u16;
        self.shards[self.shard_of(context)].lock(|s| {
            s.blocks.entry(site_row).or_default();
        });
    }

    /// True if `site` has its own expansion block.
    pub fn is_expanded(&self, site: u16) -> bool {
        let context = (site as u32) << 16;
        let g = self.geometry;
        self.shards[self.shard_of(context)].lock(|s| s.is_expanded(&g, context))
    }

    /// Number of expansion blocks across all shards.
    pub fn expansions(&self) -> usize {
        self.shards.iter().map(|s| s.lock(|shard| shard.blocks.len())).sum()
    }

    /// The age histogram of a context's row.
    pub fn histogram(&self, context: u32) -> Row {
        let g = self.geometry;
        self.shards[self.shard_of(context)].lock(|s| s.row(&g, context))
    }

    /// Sum of all age-0 cells (the reconciliation counter's observed
    /// side; exact here).
    pub fn age0_total(&self) -> u64 {
        let g = self.geometry;
        self.shards
            .iter()
            .map(|s| {
                s.lock(|shard| {
                    shard.touched.iter().map(|&k| shard.row(&g, k)[0] as u64).sum::<u64>()
                })
            })
            .sum()
    }

    /// All touched rows with at least one nonzero cell, keyed like
    /// [`LifetimeTable::row_key`] — the same shape as
    /// [`crate::SharedOldTable::snapshot`] for the reconciliation
    /// harness.
    pub fn snapshot(&self) -> BTreeMap<u32, Row> {
        let g = self.geometry;
        let mut out = BTreeMap::new();
        for shard in self.shards.iter() {
            shard.lock(|s| {
                for &key in &s.touched {
                    let row = s.row(&g, key);
                    if row.iter().any(|&c| c != 0) {
                        out.insert(key, row);
                    }
                }
            });
        }
        out
    }

    /// Clears all counts per the [`crate::geometry`] contract; expansion
    /// blocks stay. Safepoint-only.
    pub fn clear_counts(&self) {
        for shard in self.shards.iter() {
            shard.lock(|s| {
                s.base.clear();
                for block in s.blocks.values_mut() {
                    block.clear();
                }
                s.touched.clear();
            });
        }
    }

    /// The deterministic safepoint merge, fanned out across shards:
    /// records are drained from every worker, globally sorted by
    /// `(context, age)` exactly like
    /// [`crate::old_table::merge_worker_tables`], then partitioned by
    /// shard (preserving the sorted order within each shard's group) and
    /// applied with up to `parallelism` pool workers. Rows in different
    /// shards never alias, so the result is bit-identical to the
    /// sequential apply regardless of the fan-out schedule. Returns the
    /// merge summary plus per-shard record counts.
    pub fn merge_workers_sharded(
        &self,
        workers: &mut [WorkerTable],
        parallelism: usize,
    ) -> (MergeSummary, Vec<u64>) {
        let mut summary = MergeSummary::default();
        let mut records: Vec<(u32, u8)> = Vec::new();
        for worker in workers.iter_mut() {
            let entries = worker.drain_entries();
            summary.per_worker.push(entries.len() as u64);
            summary.total += entries.len() as u64;
            records.extend(entries);
        }
        records.sort_unstable();
        let mut groups: Vec<Vec<(u32, u8)>> = vec![Vec::new(); self.shards.len()];
        for &(context, age) in &records {
            groups[self.shard_of(context)].push((context, age));
        }
        let per_shard: Vec<u64> = groups.iter().map(|g| g.len() as u64).collect();
        let work: Vec<(usize, Vec<(u32, u8)>)> =
            groups.into_iter().enumerate().filter(|(_, g)| !g.is_empty()).collect();
        if parallelism > 1 && work.len() > 1 && records.len() >= PARALLEL_MERGE_MIN_RECORDS {
            rolp_gc::fan_out_indexed(&work, parallelism, |_, (shard, recs)| {
                self.apply_survivals(*shard, recs);
            });
        } else {
            for (shard, recs) in &work {
                self.apply_survivals(*shard, recs);
            }
        }
        (summary, per_shard)
    }

    /// Applies one shard's (pre-sorted) slice of a safepoint merge under
    /// its lock.
    fn apply_survivals(&self, shard: usize, records: &[(u32, u8)]) {
        let g = self.geometry;
        self.shards[shard].lock(|s| {
            for &(context, age) in records {
                s.touch(&g, context);
                apply_survival(s.row_mut(&g, context), age);
            }
        });
    }

    /// The §4 inference pass, fanned out across shards: each shard's
    /// touched rows are copied out under its lock (with their expansion
    /// state), classified lock-free in parallel, and the partial outcomes
    /// are reduced back into the sequential pass's global ordering
    /// (decisions ascending by row key; conflict site lists ascending) —
    /// identical to [`crate::inference::infer`] because every row
    /// classifies independently and a site's rows never span shards.
    pub fn infer_sharded(&self, parallelism: usize) -> InferenceOutcome {
        let g = self.geometry;
        let shard_rows: Vec<Vec<(u32, Row, bool)>> = self
            .shards
            .iter()
            .map(|shard| {
                shard.lock(|s| {
                    let mut rows: Vec<(u32, Row, bool)> = s
                        .touched
                        .iter()
                        .map(|&key| (key, s.row(&g, key), s.is_expanded(&g, key)))
                        .collect();
                    rows.sort_unstable_by_key(|&(key, _, _)| key);
                    rows
                })
            })
            .filter(|rows| !rows.is_empty())
            .collect();
        let total_rows: usize = shard_rows.iter().map(Vec::len).sum();
        let partials: Vec<InferenceOutcome> =
            if parallelism > 1 && shard_rows.len() > 1 && total_rows >= PARALLEL_INFER_MIN_ROWS {
                rolp_gc::fan_out_indexed(&shard_rows, parallelism, |_, rows| classify_shard(rows))
            } else {
                shard_rows.iter().map(|rows| classify_shard(rows)).collect()
            };
        let mut out = InferenceOutcome::default();
        for partial in partials {
            out.decisions.extend(partial.decisions);
            out.new_conflicts.extend(partial.new_conflicts);
            out.unresolved_conflicts.extend(partial.unresolved_conflicts);
            out.rows_examined += partial.rows_examined;
        }
        // Re-establish the sequential pass's global order: it walks row
        // keys ascending, and a site's key range is contiguous, so
        // sorting reproduces both the decision order and the
        // first-encounter order of the conflict lists.
        out.decisions.sort_unstable_by_key(|&(key, _)| key);
        out.new_conflicts.sort_unstable();
        out.new_conflicts.dedup();
        out.unresolved_conflicts.sort_unstable();
        out.unresolved_conflicts.dedup();
        out
    }
}

/// The saturating survival move shared by the record and merge paths
/// (identical to the sequential reference's cell arithmetic).
#[inline]
fn apply_survival(row: &mut Row, age: u8) {
    let age = (age as usize).min(AGE_COLUMNS - 1);
    let next = (age + 1).min(AGE_COLUMNS - 1);
    row[age] = row[age].saturating_sub(1);
    row[next] = row[next].saturating_add(1);
}

/// Classifies one shard's sorted rows — the per-shard body of the §4
/// pass, mirroring [`crate::inference::infer`]'s loop.
fn classify_shard(rows: &[(u32, Row, bool)]) -> InferenceOutcome {
    let mut out = InferenceOutcome::default();
    for &(key, hist, expanded) in rows {
        out.rows_examined += 1;
        let site = crate::context::site_of(key);
        match classify_row(&hist) {
            RowVerdict::Insufficient => {}
            RowVerdict::Lifetime(age) => out.decisions.push((key, age)),
            RowVerdict::Conflict(_) => {
                if expanded {
                    if !out.unresolved_conflicts.contains(&site) {
                        out.unresolved_conflicts.push(site);
                    }
                } else if !out.new_conflicts.contains(&site) {
                    out.new_conflicts.push(site);
                }
            }
        }
    }
    out
}

impl LifetimeTable for ShardedOldTable {
    fn geometry(&self) -> &TableGeometry {
        &self.geometry
    }

    fn record_allocation(&mut self, context: u32) {
        ShardedOldTable::record_allocation(self, context);
    }

    fn record_allocations(&mut self, context: u32, n: u32) {
        ShardedOldTable::record_allocations(self, context, n);
    }

    fn record_survival(&mut self, context: u32, age: u8) {
        ShardedOldTable::record_survival(self, context, age);
    }

    fn expand_site(&mut self, site: u16) {
        ShardedOldTable::expand_site(self, site);
    }

    fn is_expanded(&self, site: u16) -> bool {
        ShardedOldTable::is_expanded(self, site)
    }

    fn expansions(&self) -> usize {
        ShardedOldTable::expansions(self)
    }

    fn expanded_sites(&self) -> Vec<u16> {
        let mut sites: Vec<u16> = Vec::new();
        for shard in self.shards.iter() {
            shard.lock(|s| sites.extend(s.blocks.keys().copied()));
        }
        sites.sort_unstable();
        sites
    }

    fn histogram(&self, context: u32) -> Row {
        ShardedOldTable::histogram(self, context)
    }

    fn touched_rows(&self) -> Vec<u32> {
        // Deterministic cross-shard reduction: per-shard key sets are
        // disjoint; the global sort re-establishes the trait's ascending
        // contract.
        let mut keys: Vec<u32> = Vec::new();
        for shard in self.shards.iter() {
            shard.lock(|s| keys.extend(s.touched.iter().copied()));
        }
        keys.sort_unstable();
        keys
    }

    fn age0_total(&self) -> u64 {
        ShardedOldTable::age0_total(self)
    }

    fn clear_counts(&mut self) {
        ShardedOldTable::clear_counts(self);
    }

    fn merge_workers(&mut self, workers: &mut [WorkerTable], parallelism: usize) -> MergeSummary {
        let (summary, per_shard) = self.merge_workers_sharded(workers, parallelism);
        self.last_merge_per_shard = per_shard;
        summary
    }

    fn run_inference_pass(&self, parallelism: usize) -> InferenceOutcome {
        self.infer_sharded(parallelism)
    }

    fn table_shards(&self) -> Option<usize> {
        Some(self.shards.len())
    }

    fn shard_lock_waits(&self) -> u64 {
        self.lock_contentions()
    }

    fn last_shard_merge_counts(&self) -> Option<Vec<u64>> {
        Some(self.last_merge_per_shard.clone())
    }
}

#[cfg(all(test, not(feature = "loom")))]
mod tests {
    use super::*;
    use crate::context::pack;
    use crate::inference::infer;
    use crate::old_table::{merge_worker_tables, OldTable};

    fn small(shards: usize) -> ShardedOldTable {
        ShardedOldTable::with_geometry(TableGeometry::new(64, 16), shards)
    }

    /// Trait-qualified row key (the inherent methods shadow the trait's
    /// provided ones).
    fn key(t: &ShardedOldTable, c: u32) -> u32 {
        LifetimeTable::row_key(t, c)
    }

    #[test]
    fn allocations_land_in_age_zero_and_count_exactly() {
        let t = small(4);
        let c = pack(10, 0);
        t.record_allocation(c);
        t.record_allocation(c);
        assert_eq!(t.histogram(c)[0], 2);
        assert_eq!(t.age0_total(), 2);
    }

    #[test]
    fn sites_partition_by_site_row_and_expansions_stay_shard_local() {
        let t = small(4);
        assert_eq!(t.shard_of(pack(0, 9)), 0);
        assert_eq!(t.shard_of(pack(5, 0)), 1, "5 & 3");
        assert_eq!(t.shard_of(pack(69, 7)), 1, "(69 & 63) & 3");
        t.expand_site(5);
        assert!(t.is_expanded(5));
        assert!(LifetimeTable::is_expanded(&t, 69), "masked alias shares the block");
        assert_eq!(t.expansions(), 1);
        t.expand_site(5);
        assert_eq!(t.expansions(), 1, "idempotent");
        // Every context of the site stays in its shard after expansion.
        assert_eq!(t.shard_of(pack(5, 0)), t.shard_of(pack(5, 15)));
    }

    #[test]
    fn expansion_splits_stack_states_and_shadows_the_base_row() {
        let t = small(4);
        t.record_allocation(pack(5, 1));
        t.expand_site(5);
        assert_eq!(
            t.histogram(pack(5, 1))[0],
            0,
            "pre-expansion base counts are shadowed, as in OldTable"
        );
        t.record_allocation(pack(5, 1));
        t.record_allocation(pack(5, 2));
        assert_eq!(t.histogram(pack(5, 1))[0], 1);
        assert_eq!(t.histogram(pack(5, 2))[0], 1);
        assert_ne!(key(&t, pack(5, 1)), key(&t, pack(5, 2)));
    }

    #[test]
    fn survival_moves_between_age_columns_and_saturates() {
        let t = small(2);
        let c = pack(3, 0);
        t.record_allocation(c);
        t.record_survival(c, 0);
        let h = t.histogram(c);
        assert_eq!((h[0], h[1]), (0, 1));
        for age in 1..40u8 {
            t.record_survival(c, age.min(15));
        }
        assert_eq!(t.histogram(c)[15], 1);
        // Underflow saturates instead of wrapping.
        t.record_survival(pack(9, 0), 3);
        assert_eq!(t.histogram(pack(9, 0))[3], 0);
        assert_eq!(t.histogram(pack(9, 0))[4], 1);
    }

    #[test]
    fn touched_rows_sorted_across_shards_and_clear_keeps_expansions() {
        let t = small(8);
        t.record_allocation(pack(9, 0));
        t.record_allocation(pack(2, 0));
        t.record_allocation(pack(5, 0));
        assert_eq!(LifetimeTable::touched_rows(&t), vec![2 << 16, 5 << 16, 9 << 16]);
        t.expand_site(4);
        t.record_allocation(pack(4, 9));
        t.clear_counts();
        assert!(LifetimeTable::touched_rows(&t).is_empty());
        assert_eq!(t.age0_total(), 0);
        assert!(t.is_expanded(4));
        assert_eq!(t.histogram(pack(4, 9))[0], 0);
    }

    #[test]
    fn memory_accounting_matches_geometry() {
        let t = small(4);
        let base = (64 * AGE_COLUMNS * 4) as u64;
        let block = (16 * AGE_COLUMNS * 4) as u64;
        assert_eq!(t.memory_bytes(), base);
        t.expand_site(1);
        t.expand_site(2);
        assert_eq!(t.memory_bytes(), base + 2 * block);
    }

    /// Replays one event stream through the sequential reference and a
    /// sharded table, requiring identical observable state — the
    /// bit-identity claim the module docs make, in miniature.
    fn assert_matches_reference(shards: usize) {
        let mut reference = OldTable::with_geometry(TableGeometry::new(64, 16));
        let mut sharded = small(shards);
        let events: Vec<(u32, u8)> = (0..600u32)
            .map(|i| (pack((i * 7 % 64) as u16, (i * 13 % 16) as u16), (i % 6) as u8))
            .collect();
        for (i, &(c, age)) in events.iter().enumerate() {
            if i == 200 {
                LifetimeTable::expand_site(&mut reference, 5);
                LifetimeTable::expand_site(&mut sharded, 5);
            }
            LifetimeTable::record_allocation(&mut reference, c);
            LifetimeTable::record_allocation(&mut sharded, c);
            if i % 3 == 0 {
                LifetimeTable::record_survival(&mut reference, c, age);
                LifetimeTable::record_survival(&mut sharded, c, age);
            }
        }
        assert_eq!(LifetimeTable::touched_rows(&sharded), reference.touched_rows());
        for &k in &reference.touched_rows() {
            assert_eq!(LifetimeTable::histogram(&sharded, k), reference.histogram(k), "row {k:#x}");
        }
        assert_eq!(sharded.age0_total(), LifetimeTable::age0_total(&reference));
        let seq_out = infer(&reference);
        let sharded_out = sharded.infer_sharded(4);
        assert_eq!(sharded_out.decisions, seq_out.decisions);
        assert_eq!(sharded_out.new_conflicts, seq_out.new_conflicts);
        assert_eq!(sharded_out.unresolved_conflicts, seq_out.unresolved_conflicts);
        assert_eq!(sharded_out.rows_examined, seq_out.rows_examined);
    }

    #[test]
    fn observable_state_is_bit_identical_to_the_sequential_reference() {
        for shards in [1, 2, 4, 16, 64] {
            assert_matches_reference(shards);
        }
    }

    #[test]
    fn sharded_merge_matches_the_sequential_sorted_merge() {
        // The same worker records merged through `merge_worker_tables`
        // (global sorted apply) and through the sharded fan-out must
        // produce identical histograms — including saturating rows.
        let records: Vec<(u32, u8)> =
            (0..3000u32).map(|i| (pack((i % 64) as u16, (i % 16) as u16), (i % 5) as u8)).collect();
        let mut reference = OldTable::with_geometry(TableGeometry::new(64, 16));
        let sharded = small(8);
        for c in 0..64u16 {
            LifetimeTable::record_allocation(&mut reference, pack(c, 0));
            sharded.record_allocation(pack(c, 0));
        }
        let mut workers_a = vec![WorkerTable::new(); 4];
        let mut workers_b = vec![WorkerTable::new(); 4];
        for (i, &(c, age)) in records.iter().enumerate() {
            workers_a[i % 4].record_survival(c, age);
            workers_b[(i * 31) % 4].record_survival(c, age);
        }
        let seq = merge_worker_tables(&mut workers_a, &mut reference);
        let (par, per_shard) = sharded.merge_workers_sharded(&mut workers_b, 4);
        assert_eq!(seq.total, par.total);
        assert_eq!(per_shard.iter().sum::<u64>(), par.total);
        assert_eq!(per_shard.len(), 8);
        assert_eq!(LifetimeTable::touched_rows(&sharded), reference.touched_rows());
        for &k in &reference.touched_rows() {
            assert_eq!(LifetimeTable::histogram(&sharded, k), reference.histogram(k));
        }
    }

    #[test]
    fn concurrent_recording_is_exact_not_lossy() {
        // Unlike the §7.6 relaxed table, locked shards cannot lose
        // counts: 4 threads x 10k increments land exactly.
        let t = std::sync::Arc::new(small(4));
        let threads = 4u32;
        let per = 10_000u32;
        std::thread::scope(|s| {
            for k in 0..threads {
                let t = std::sync::Arc::clone(&t);
                s.spawn(move || {
                    for _ in 0..per {
                        t.record_allocation(pack((k % 4) as u16 + 1, 0));
                    }
                });
            }
        });
        assert_eq!(t.age0_total(), (threads * per) as u64, "locked counting is exact");
    }

    #[test]
    fn snapshot_reports_nonzero_rows_with_row_keys() {
        let t = small(4);
        t.expand_site(7);
        t.record_allocation(pack(7, 3));
        t.record_allocation(pack(2, 9));
        let snap = t.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[&pack(2, 0)][0], 1);
        assert_eq!(snap[&pack(7, 3)][0], 1);
    }
}
