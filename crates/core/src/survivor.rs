//! Survivor-tracking shutdown (paper §7.4).
//!
//! After pretenuring kicks in, the per-survivor OLD-table lookup becomes
//! the dominant cost of a young collection. ROLP therefore turns the
//! survivor-tracking code *off* once the workload is stable — profiling
//! decisions unchanged over a whole inference round — and turns it back on
//! if the average pause time grows more than a (configurable) 10% over the
//! last value recorded while tracking was active.

/// Controller for the survivor-tracking switch.
#[derive(Debug, Clone)]
pub struct SurvivorTracking {
    enabled: bool,
    /// Allowed average-pause growth before tracking re-enables.
    reactivation_threshold: f64,
    /// Mean pause (ms) recorded while tracking was last active.
    baseline_pause_ms: Option<f64>,
    /// Hash of the previous inference round's decisions.
    last_decisions_hash: Option<u64>,
    /// Times the switch turned off / back on (for reports).
    pub shutdowns: u64,
    /// Times tracking was re-enabled by pause growth.
    pub reactivations: u64,
}

impl SurvivorTracking {
    /// Creates the controller with the paper's default 10% threshold.
    pub fn new() -> Self {
        SurvivorTracking {
            enabled: true,
            reactivation_threshold: 0.10,
            baseline_pause_ms: None,
            last_decisions_hash: None,
            shutdowns: 0,
            reactivations: 0,
        }
    }

    /// Overrides the reactivation threshold.
    pub fn with_threshold(mut self, threshold: f64) -> Self {
        self.reactivation_threshold = threshold;
        self
    }

    /// Whether survivor tracking is currently on.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Feeds one inference round: the (order-independent) hash of current
    /// decisions and the mean pause over the round.
    pub fn on_inference(&mut self, decisions_hash: u64, mean_pause_ms: f64) {
        if self.enabled {
            let stable = self.last_decisions_hash == Some(decisions_hash);
            self.baseline_pause_ms = Some(mean_pause_ms);
            if stable {
                self.enabled = false;
                self.shutdowns += 1;
            }
        } else if let Some(base) = self.baseline_pause_ms {
            if base > 0.0 && mean_pause_ms > base * (1.0 + self.reactivation_threshold) {
                self.enabled = true;
                self.reactivations += 1;
            }
        }
        self.last_decisions_hash = Some(decisions_hash);
    }

    /// Order-independent hash of a decision set.
    pub fn hash_decisions(decisions: &[(u32, u8)]) -> u64 {
        // XOR of per-entry mixes: commutative, so iteration order of the
        // underlying map does not matter.
        decisions
            .iter()
            .map(|&(ctx, gen)| {
                let mut z = (ctx as u64) << 8 | gen as u64;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            })
            .fold(0u64, |a, b| a ^ b)
    }
}

impl Default for SurvivorTracking {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_decisions_shut_tracking_down() {
        let mut s = SurvivorTracking::new();
        assert!(s.enabled());
        s.on_inference(42, 5.0);
        assert!(s.enabled(), "first round only records the hash");
        s.on_inference(42, 5.0);
        assert!(!s.enabled(), "second identical round shuts tracking down");
        assert_eq!(s.shutdowns, 1);
    }

    #[test]
    fn changing_decisions_keep_tracking_on() {
        let mut s = SurvivorTracking::new();
        s.on_inference(1, 5.0);
        s.on_inference(2, 5.0);
        s.on_inference(3, 5.0);
        assert!(s.enabled());
    }

    #[test]
    fn pause_growth_reactivates() {
        let mut s = SurvivorTracking::new();
        s.on_inference(42, 5.0);
        s.on_inference(42, 5.0);
        assert!(!s.enabled());
        // Within 10%: stays off.
        s.on_inference(42, 5.4);
        assert!(!s.enabled());
        // Above 10% growth over the active-tracking baseline: back on.
        s.on_inference(42, 5.6);
        assert!(s.enabled());
        assert_eq!(s.reactivations, 1);
    }

    #[test]
    fn decision_hash_is_order_independent() {
        let a = SurvivorTracking::hash_decisions(&[(1, 2), (3, 4)]);
        let b = SurvivorTracking::hash_decisions(&[(3, 4), (1, 2)]);
        assert_eq!(a, b);
        let c = SurvivorTracking::hash_decisions(&[(1, 2), (3, 5)]);
        assert_ne!(a, c);
    }
}
