//! Package-based profiling filters (paper §7.3).
//!
//! Large applications can exceed the acceptable profiling overhead even
//! with all of ROLP's optimizations, so ROLP accepts package filters: only
//! methods in the named packages (and their sub-packages) are profiled.
//! The paper uses `cassandra.db`-style filters to focus on the packages
//! that manage application data. An exclude list handles the dual case
//! ("profile everything but this framework").

/// Include/exclude package filters.
#[derive(Debug, Clone, Default)]
pub struct PackageFilters {
    include: Vec<String>,
    exclude: Vec<String>,
}

impl PackageFilters {
    /// No filtering: every package is profiled.
    pub fn all() -> Self {
        PackageFilters::default()
    }

    /// Profile only the given packages (and their sub-packages).
    pub fn include(packages: &[&str]) -> Self {
        PackageFilters {
            include: packages.iter().map(|s| s.to_string()).collect(),
            exclude: Vec::new(),
        }
    }

    /// Adds an exclusion (wins over includes).
    pub fn and_exclude(mut self, package: &str) -> Self {
        self.exclude.push(package.to_string());
        self
    }

    /// Whether methods in `package` should be profiled.
    pub fn matches(&self, package: &str) -> bool {
        if self.exclude.iter().any(|p| Self::covers(p, package)) {
            return false;
        }
        self.include.is_empty() || self.include.iter().any(|p| Self::covers(p, package))
    }

    /// `filter` covers `package` if equal or `package` is a sub-package.
    fn covers(filter: &str, package: &str) -> bool {
        package == filter
            || (package.len() > filter.len()
                && package.starts_with(filter)
                && package.as_bytes()[filter.len()] == b'.')
    }

    /// True when no include filter is set.
    pub fn is_unfiltered(&self) -> bool {
        self.include.is_empty() && self.exclude.is_empty()
    }

    /// The union of two filters: a package profiled by either side is
    /// profiled by the union (the multi-tenant service case — each
    /// tenant contributes its own Table 1 filter).
    ///
    /// An unfiltered side absorbs the union (no restriction). Excludes
    /// survive only when *both* sides carry them: one tenant's exclusion
    /// must not mask packages another tenant asked to profile.
    pub fn union(&self, other: &PackageFilters) -> PackageFilters {
        let exclude: Vec<String> =
            self.exclude.iter().filter(|p| other.exclude.contains(p)).cloned().collect();
        if self.include.is_empty() || other.include.is_empty() {
            return PackageFilters { include: Vec::new(), exclude };
        }
        let mut include = self.include.clone();
        for p in &other.include {
            if !include.contains(p) {
                include.push(p.clone());
            }
        }
        PackageFilters { include, exclude }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_filter_matches_everything() {
        let f = PackageFilters::all();
        assert!(f.matches("anything.at.all"));
        assert!(f.matches(""));
        assert!(f.is_unfiltered());
    }

    #[test]
    fn include_covers_subpackages_only() {
        let f = PackageFilters::include(&["cassandra.db", "cassandra.utils"]);
        assert!(f.matches("cassandra.db"));
        assert!(f.matches("cassandra.db.memtable"));
        assert!(f.matches("cassandra.utils"));
        assert!(!f.matches("cassandra.net"));
        assert!(!f.matches("cassandra.dbx"), "prefix must end at a dot");
        assert!(!f.matches("lucene.store"));
    }

    #[test]
    fn union_merges_includes_and_intersects_excludes() {
        let a = PackageFilters::include(&["cassandra.db", "cassandra.utils"]);
        let b = PackageFilters::include(&["lucene.store", "cassandra.db"]);
        let u = a.union(&b);
        assert!(u.matches("cassandra.db.memtable"));
        assert!(u.matches("cassandra.utils"));
        assert!(u.matches("lucene.store"));
        assert!(!u.matches("lucene.search"));

        // An unfiltered side absorbs the union.
        let u2 = a.union(&PackageFilters::all());
        assert!(u2.is_unfiltered());

        // Excludes survive only when both sides agree.
        let c = PackageFilters::include(&["app"]).and_exclude("app.vendor");
        let d = PackageFilters::include(&["app.vendor"]);
        assert!(c.union(&d).matches("app.vendor"), "d profiles what c excluded");
        let e = PackageFilters::include(&["web"]).and_exclude("app.vendor");
        assert!(!c.union(&e).matches("app.vendor"), "both sides exclude it");
    }

    #[test]
    fn exclude_wins_over_include() {
        let f = PackageFilters::include(&["app"]).and_exclude("app.vendor");
        assert!(f.matches("app.core"));
        assert!(!f.matches("app.vendor"));
        assert!(!f.matches("app.vendor.json"));
    }
}
