//! Flight recorder: structured runtime telemetry for the ROLP reproduction.
//!
//! Every layer of the runtime emits [`TraceEvent`]s stamped with the
//! simulated clock: the collectors report stop-the-world pauses with their
//! cause and per-generation copy volumes, the profiler reports inference
//! epochs, conflict-resolution batches, and pretenuring-decision changes,
//! the JIT reports compilations and call-site-profiling toggles, and the
//! heap reports occupancy watermarks.
//!
//! ## Overhead discipline
//!
//! Tracing must never perturb the behaviour it observes, so the recorder
//! follows the same unsynchronized-then-merge discipline as the paper's
//! OLD table (§7.6):
//!
//! - **Default off.** A disabled [`TraceRecorder`] owns no buffers; every
//!   emit is a single branch and performs **zero allocations** (asserted
//!   by `tests/no_alloc.rs`).
//! - **Mutator-side events** (JIT compiles) go into a fixed-capacity
//!   per-thread [`RingBuffer`] with no synchronization and no allocation;
//!   on overflow the oldest events are overwritten (flight-recorder
//!   semantics) and counted in [`TraceRecorder::dropped`].
//! - **Safepoint-side events** (pauses, profiler epochs) are appended to
//!   the merged stream directly — the world is stopped, so the cost is
//!   attributed to the pause like any other GC bookkeeping.
//! - **At every GC safepoint** the per-thread buffers are drained into the
//!   merged stream in deterministic order (timestamp, then thread id, then
//!   per-thread sequence number), so a run's trace is bit-reproducible for
//!   a fixed seed.
//!
//! Exporters live in [`export`]: a JSONL event log (one object per line,
//! round-trippable through [`export::parse_jsonl`]) and the Chrome
//! `trace_event` format loadable in `chrome://tracing` or Perfetto.

pub mod export;
pub mod json;

use rolp_metrics::SimTime;

/// Thread id the recorder uses for safepoint-side (world-stopped) events.
pub const GLOBAL_THREAD: u32 = u32::MAX;

/// Default per-thread ring capacity (events between two safepoints).
pub const DEFAULT_RING_CAPACITY: usize = 4_096;

/// One structured telemetry event. All payload variants are `Copy` so ring
/// buffers never touch the allocator after construction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// A stop-the-world pause (young/mixed/full evacuation, or a
    /// concurrent collector's handshake), with the work it performed.
    GcPause {
        /// Pause kind label (`young` / `mixed` / `full` / `handshake`).
        kind: &'static str,
        /// Why the collector ran (`eden-full`, `alloc-failure`,
        /// `evac-failure`, `remark`, `initial-mark`, `relocate`, ...).
        cause: &'static str,
        /// Pause duration in simulated nanoseconds.
        duration_ns: u64,
        /// Bytes copied during the pause.
        bytes_copied: u64,
        /// Objects that survived (were copied).
        survivors: u64,
        /// Regions in the collection set.
        regions_in_cset: u64,
        /// Collection-set regions released.
        regions_released: u64,
        /// Regions reclaimed with zero survivors ("died together").
        regions_fully_dead: u64,
        /// Bytes copied per destination generation: index 0 = young
        /// (eden/survivor), 1..=14 = dynamic generations, 15 = old.
        gen_bytes: [u64; 16],
    },
    /// Heap occupancy watermark (sampled around pauses and windows).
    HeapWatermark {
        /// Bytes allocated in assigned regions.
        used_bytes: u64,
        /// Bytes committed (assigned regions x region size).
        committed_bytes: u64,
        /// Free regions.
        free_regions: u64,
        /// Total regions.
        total_regions: u64,
    },
    /// A method was JIT-compiled (entry counter or on-stack replacement).
    JitCompile {
        /// Method id.
        method: u32,
        /// True for on-stack replacement.
        osr: bool,
    },
    /// A call site's profiling cell was toggled (conflict resolution §5).
    CallProfiling {
        /// Call-site id.
        call_site: u32,
        /// True when the slow (profiled) branch was enabled.
        enabled: bool,
    },
    /// One §4 inference pass over the OLD table.
    ProfilerInference {
        /// Inference epoch (1-based).
        epoch: u64,
        /// Rows in the OLD table at the snapshot.
        old_rows: u64,
        /// OLD table footprint in bytes (§7.5).
        old_bytes: u64,
        /// Conflicted sites newly detected this pass.
        new_conflicts: u64,
        /// Conflicted sites still unresolved.
        unresolved_conflicts: u64,
        /// Active pretenuring decisions after the pass.
        decisions: u64,
        /// Total §6 fragmentation demotions so far.
        demotions: u64,
    },
    /// A §5 conflict-resolution batch transition.
    ConflictBatch {
        /// `enable` (probe started), `shrink` (half disabled), `disable`
        /// (batch failed), or `freeze` (batch kept permanently).
        action: &'static str,
        /// Call sites affected by the transition.
        size: u64,
    },
    /// A pretenuring decision changed for one allocation context.
    DecisionChange {
        /// The packed 32-bit allocation context's row key.
        context: u32,
        /// Previous target generation (0 = young / none).
        from_gen: u8,
        /// New target generation.
        to_gen: u8,
        /// `inferred` (§4), `demoted` (§6), or `offline` (warm start).
        reason: &'static str,
    },
    /// Survivor tracking was switched on or off (§7.4).
    SurvivorTracking {
        /// New state.
        enabled: bool,
    },
    /// Per-worker OLD tables merged into the global table at the
    /// safepoint ending a pause (§5.2, §7.6).
    OldTableMerge {
        /// GC cycle the merge closed.
        cycle: u64,
        /// GC workers whose private tables were merged.
        workers: u32,
        /// Records contributed per worker; workers ≥ 8 fold into the
        /// last slot (payloads are fixed-size `Copy`).
        records: [u64; 8],
        /// Total survival records merged.
        total_records: u64,
    },
    /// A new immutable decision snapshot was atomically published at the
    /// end of an inference epoch (or an offline warm start).
    DecisionPublish {
        /// Snapshot version (0 = the initial empty table).
        version: u64,
        /// Row keys whose resolved decision differs from the previous
        /// version.
        changed_rows: u64,
        /// Active decisions in the snapshot.
        decisions: u64,
    },
    /// The overhead governor changed its degradation state.
    GovernorTransition {
        /// State before the transition (`full` / `reduced` / `sites-only`
        /// / `off`).
        from: &'static str,
        /// State after the transition.
        to: &'static str,
        /// Budget that tripped (`record-budget` / `table-budget` /
        /// `call-budget` / `overhead-budget`) or `recovered` when
        /// pressure subsided.
        reason: &'static str,
        /// Record-path events charged to the closing epoch.
        record_events: u64,
        /// OLD-table footprint in bytes at evaluation time.
        table_bytes: u64,
        /// Estimated call-site-profiling overhead (ns) for the epoch.
        call_overhead_ns: u64,
    },
    /// An offline decision profile was imported and validated against the
    /// running program at startup (warm start).
    ProfileImport {
        /// Decision entries in the profile.
        entries: u64,
        /// Entries whose source location resolved in this program.
        applied: u64,
        /// Entries rejected by shape validation.
        rejected: u64,
        /// Frozen distinguishing call sites re-applied (§5).
        call_sites: u64,
        /// The profile carried a program-shape fingerprint.
        had_fingerprint: bool,
        /// The fingerprint matched the running program.
        fingerprint_matched: bool,
    },
    /// One epoch's confidence-weighted decay of imported decisions:
    /// imported rows whose target generation accumulates garbage lose
    /// confidence and are eventually released to live learning.
    ProfileBlend {
        /// Inference epoch (1-based).
        epoch: u64,
        /// Imported rows whose confidence decayed this epoch.
        decayed: u64,
        /// Imported rows released to live learning this epoch.
        released: u64,
        /// Imported rows still held after this epoch.
        remaining: u64,
    },
    /// A sharded OLD table applied a safepoint merge across its shards
    /// (the partitioned twin of [`EventKind::OldTableMerge`]).
    ShardMerge {
        /// GC cycle the merge closed.
        cycle: u64,
        /// Shards in the table.
        shards: u32,
        /// Records applied per shard; shards ≥ 8 fold into the last
        /// slot (payloads are fixed-size `Copy`).
        records: [u64; 8],
        /// Total survival records merged.
        total_records: u64,
        /// Modeled critical path of the fanned-out apply: the busiest
        /// shard's records at cost-model price. Deterministic — wall
        /// time would break byte-identical repeat runs.
        merge_ns: u64,
    },
    /// A fleet instance submitted (or refreshed) its profile to the
    /// aggregator.
    FleetSubmission {
        /// Instance index within the simulated fleet.
        instance: u32,
        /// Inference epochs backing the submitted profile.
        epochs: u64,
        /// Decision entries in the submitted profile.
        entries: u64,
        /// The aggregator's fingerprint validation accepted it.
        accepted: bool,
    },
    /// The fleet aggregator published a consensus profile.
    FleetConsensus {
        /// Instances that contributed.
        instances: u32,
        /// Decision entries in the consensus profile.
        entries: u64,
        /// Locations resolved by weighted majority (instances disagreed).
        contested: u64,
    },
    /// The open-loop service harness (`rolp-serve`) entered a new traffic
    /// phase (diurnal rate ramp and/or hot-tenant migration).
    ServePhaseShift {
        /// Phase index (0-based) within the schedule.
        phase: u32,
        /// Offered arrival rate for the phase, requests per second.
        rate_rps: u64,
        /// Requests fired before the shift.
        requests_before: u64,
    },
}

impl EventKind {
    /// Stable machine name, used as the JSONL `type` discriminator and the
    /// Chrome trace category.
    pub fn type_name(&self) -> &'static str {
        match self {
            EventKind::GcPause { .. } => "gc_pause",
            EventKind::HeapWatermark { .. } => "heap_watermark",
            EventKind::JitCompile { .. } => "jit_compile",
            EventKind::CallProfiling { .. } => "call_profiling",
            EventKind::ProfilerInference { .. } => "profiler_inference",
            EventKind::ConflictBatch { .. } => "conflict_batch",
            EventKind::DecisionChange { .. } => "decision_change",
            EventKind::SurvivorTracking { .. } => "survivor_tracking",
            EventKind::OldTableMerge { .. } => "old_table_merge",
            EventKind::DecisionPublish { .. } => "decision_publish",
            EventKind::GovernorTransition { .. } => "governor_transition",
            EventKind::ProfileImport { .. } => "profile_import",
            EventKind::ProfileBlend { .. } => "profile_blend",
            EventKind::ShardMerge { .. } => "shard_merge",
            EventKind::FleetSubmission { .. } => "fleet_submission",
            EventKind::FleetConsensus { .. } => "fleet_consensus",
            EventKind::ServePhaseShift { .. } => "serve_phase_shift",
        }
    }
}

/// A timestamped event with its origin thread and per-thread sequence
/// number (the merge tiebreaker).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Simulated time of the event.
    pub ts: SimTime,
    /// Emitting guest thread, or [`GLOBAL_THREAD`] for safepoint events.
    pub thread: u32,
    /// Per-thread monotonic sequence number.
    pub seq: u64,
    /// Payload.
    pub kind: EventKind,
}

/// Fixed-capacity ring of events. Pushes never allocate after
/// construction; when full, the oldest event is overwritten and counted.
#[derive(Debug)]
pub struct RingBuffer {
    buf: Vec<TraceEvent>,
    capacity: usize,
    /// Index of the oldest event (valid when `len == capacity`).
    head: usize,
    dropped: u64,
}

impl RingBuffer {
    /// Creates a ring holding at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        RingBuffer { buf: Vec::with_capacity(capacity), capacity, head: 0, dropped: 0 }
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Appends an event, overwriting the oldest one when full.
    #[inline]
    pub fn push(&mut self, event: TraceEvent) {
        if self.buf.len() < self.capacity {
            self.buf.push(event);
        } else {
            self.buf[self.head] = event;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Drains all buffered events in emission order into `out`.
    pub fn drain_into(&mut self, out: &mut Vec<TraceEvent>) {
        let n = self.buf.len();
        for i in 0..n {
            out.push(self.buf[(self.head + i) % n.max(1)]);
        }
        self.buf.clear();
        self.head = 0;
    }
}

/// The per-run flight recorder.
///
/// Construct with [`TraceRecorder::disabled`] (the default: no buffers, no
/// allocations, every emit is a branch) or [`TraceRecorder::enabled`].
#[derive(Debug, Default)]
pub struct TraceRecorder {
    enabled: bool,
    threads: Vec<RingBuffer>,
    thread_seq: Vec<u64>,
    merged: Vec<TraceEvent>,
    global_seq: u64,
    /// Cause annotation the collector sets before entering shared
    /// evacuation machinery; consumed by the next pause emission.
    gc_cause: Option<&'static str>,
}

impl TraceRecorder {
    /// A recorder that drops everything and never allocates.
    pub fn disabled() -> Self {
        TraceRecorder::default()
    }

    /// A recorder with one `capacity`-event ring per guest thread.
    pub fn enabled(num_threads: u32, capacity: usize) -> Self {
        TraceRecorder {
            enabled: true,
            threads: (0..num_threads).map(|_| RingBuffer::new(capacity)).collect(),
            thread_seq: vec![0; num_threads as usize],
            merged: Vec::new(),
            global_seq: 0,
            gc_cause: None,
        }
    }

    /// Whether events are being recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Emits a mutator-side event into `thread`'s ring buffer. Never
    /// allocates; a no-op (single branch) when disabled.
    #[inline]
    pub fn emit_thread(&mut self, thread: u32, ts: SimTime, kind: EventKind) {
        if !self.enabled {
            return;
        }
        let t = thread as usize;
        if t >= self.threads.len() {
            return;
        }
        let seq = self.thread_seq[t];
        self.thread_seq[t] = seq + 1;
        self.threads[t].push(TraceEvent { ts, thread, seq, kind });
    }

    /// Emits a safepoint-side event directly into the merged stream (the
    /// world is stopped; appending here is GC bookkeeping).
    #[inline]
    pub fn emit_global(&mut self, ts: SimTime, kind: EventKind) {
        if !self.enabled {
            return;
        }
        let seq = self.global_seq;
        self.global_seq += 1;
        self.merged.push(TraceEvent { ts, thread: GLOBAL_THREAD, seq, kind });
    }

    /// Annotates the cause of the next GC pause (set by the collector's
    /// policy code, consumed by the shared evacuation machinery).
    #[inline]
    pub fn set_gc_cause(&mut self, cause: &'static str) {
        if self.enabled {
            self.gc_cause = Some(cause);
        }
    }

    /// Takes the pending pause cause, defaulting to `"allocation"`.
    #[inline]
    pub fn take_gc_cause(&mut self) -> &'static str {
        self.gc_cause.take().unwrap_or("allocation")
    }

    /// Merges all per-thread ring buffers into the global stream.
    ///
    /// Called at GC safepoints (the world is stopped, so no thread is
    /// mid-emit). Drained events are ordered deterministically by
    /// `(timestamp, thread id, per-thread sequence)` regardless of drain
    /// order, so traces are bit-reproducible.
    pub fn merge_safepoint(&mut self) {
        if !self.enabled {
            return;
        }
        let mut batch: Vec<TraceEvent> = Vec::new();
        for ring in &mut self.threads {
            ring.drain_into(&mut batch);
        }
        if batch.is_empty() {
            return;
        }
        batch.sort_by_key(|e| (e.ts, e.thread, e.seq));
        self.merged.extend(batch);
    }

    /// Events overwritten in ring buffers before they could be merged.
    pub fn dropped(&self) -> u64 {
        self.threads.iter().map(|r| r.dropped()).sum()
    }

    /// The merged stream so far (call [`TraceRecorder::merge_safepoint`]
    /// first to include buffered mutator events).
    pub fn events(&self) -> &[TraceEvent] {
        &self.merged
    }

    /// Final drain: merges outstanding buffers and returns all events,
    /// globally ordered by `(timestamp, thread id, sequence)`.
    ///
    /// Safepoint merges only order each drained batch internally; a batch
    /// of mutator events can carry timestamps older than global events
    /// already in the stream. The final sort removes those inversions so
    /// exported traces are monotone in time (and still bit-reproducible:
    /// the key is total within a thread because `seq` is monotone).
    pub fn finish(mut self) -> Vec<TraceEvent> {
        self.merge_safepoint();
        self.merged.sort_by_key(|e| (e.ts, e.thread, e.seq));
        self.merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ns: u64) -> EventKind {
        EventKind::JitCompile { method: ns as u32, osr: false }
    }

    #[test]
    fn ring_overflow_overwrites_oldest_and_counts_drops() {
        let mut ring = RingBuffer::new(3);
        for i in 0..5u64 {
            ring.push(TraceEvent { ts: SimTime::from_nanos(i), thread: 0, seq: i, kind: ev(i) });
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 2, "two oldest events overwritten");
        let mut out = Vec::new();
        ring.drain_into(&mut out);
        // Flight-recorder semantics: the *newest* three survive, in order.
        let seqs: Vec<u64> = out.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4]);
        assert!(ring.is_empty());
        // A drained ring starts fresh (no stale head offset).
        ring.push(TraceEvent { ts: SimTime::ZERO, thread: 0, seq: 9, kind: ev(9) });
        let mut out2 = Vec::new();
        ring.drain_into(&mut out2);
        assert_eq!(out2.len(), 1);
        assert_eq!(out2[0].seq, 9);
    }

    #[test]
    fn safepoint_merge_orders_deterministically() {
        // Two recorders fed the same events through different thread
        // interleavings must produce identical merged streams.
        let mut a = TraceRecorder::enabled(3, 16);
        let mut b = TraceRecorder::enabled(3, 16);
        let t = SimTime::from_nanos;
        // Same (thread, ts) pairs, emitted in different wall orders.
        let feed = [(2u32, 50u64), (0, 10), (1, 10), (0, 50), (2, 10)];
        for &(thread, ts) in &feed {
            a.emit_thread(thread, t(ts), ev(ts));
        }
        for &(thread, ts) in feed.iter().rev() {
            b.emit_thread(thread, t(ts), ev(ts));
        }
        a.merge_safepoint();
        b.merge_safepoint();
        let order_a: Vec<(u64, u32)> =
            a.events().iter().map(|e| (e.ts.as_nanos(), e.thread)).collect();
        let order_b: Vec<(u64, u32)> =
            b.events().iter().map(|e| (e.ts.as_nanos(), e.thread)).collect();
        // Ordered by (ts, thread, seq) in both.
        assert_eq!(order_a, vec![(10, 0), (10, 1), (10, 2), (50, 0), (50, 2)]);
        assert_eq!(order_b, order_a);
    }

    #[test]
    fn merge_interleaves_with_global_stream_by_arrival() {
        let mut r = TraceRecorder::enabled(1, 8);
        r.emit_thread(0, SimTime::from_nanos(5), ev(5));
        r.emit_global(SimTime::from_nanos(7), EventKind::SurvivorTracking { enabled: false });
        r.merge_safepoint();
        r.emit_global(SimTime::from_nanos(9), EventKind::SurvivorTracking { enabled: true });
        let types: Vec<&str> = r.events().iter().map(|e| e.kind.type_name()).collect();
        assert_eq!(types, vec!["survivor_tracking", "jit_compile", "survivor_tracking"]);
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let mut r = TraceRecorder::disabled();
        r.emit_thread(0, SimTime::ZERO, ev(1));
        r.emit_global(SimTime::ZERO, ev(2));
        r.set_gc_cause("eden-full");
        assert_eq!(r.take_gc_cause(), "allocation", "cause not latched when disabled");
        r.merge_safepoint();
        assert!(r.events().is_empty());
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn gc_cause_is_consumed_once() {
        let mut r = TraceRecorder::enabled(1, 8);
        r.set_gc_cause("eden-full");
        assert_eq!(r.take_gc_cause(), "eden-full");
        assert_eq!(r.take_gc_cause(), "allocation");
    }

    #[test]
    fn emit_to_unknown_thread_is_ignored() {
        let mut r = TraceRecorder::enabled(1, 8);
        r.emit_thread(5, SimTime::ZERO, ev(1));
        r.merge_safepoint();
        assert!(r.events().is_empty());
    }
}
