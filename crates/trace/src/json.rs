//! Minimal hand-rolled JSON support.
//!
//! The build environment is offline, so instead of `serde` the exporters
//! use a tiny flat-object writer plus a parser for the same subset
//! (strings, unsigned integers, floats, bools, and arrays of unsigned
//! integers). This is all the event log and run-summary formats need.

use std::collections::BTreeMap;

/// Escapes `s` into `out` as JSON string contents (no surrounding quotes).
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Incremental writer for one JSON object.
#[derive(Debug)]
pub struct JsonObject {
    buf: String,
    first: bool,
}

impl Default for JsonObject {
    fn default() -> Self {
        Self::new()
    }
}

impl JsonObject {
    /// Starts an empty object.
    pub fn new() -> Self {
        JsonObject { buf: String::from("{"), first: true }
    }

    fn key(&mut self, key: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        self.buf.push('"');
        escape_into(&mut self.buf, key);
        self.buf.push_str("\":");
    }

    /// Adds a string field.
    pub fn str(&mut self, key: &str, value: &str) -> &mut Self {
        self.key(key);
        self.buf.push('"');
        escape_into(&mut self.buf, value);
        self.buf.push('"');
        self
    }

    /// Adds an unsigned integer field.
    pub fn u64(&mut self, key: &str, value: u64) -> &mut Self {
        self.key(key);
        self.buf.push_str(&value.to_string());
        self
    }

    /// Adds a float field (non-finite values become `null`).
    pub fn f64(&mut self, key: &str, value: f64) -> &mut Self {
        self.key(key);
        if value.is_finite() {
            self.buf.push_str(&format!("{value}"));
        } else {
            self.buf.push_str("null");
        }
        self
    }

    /// Adds a boolean field.
    pub fn bool(&mut self, key: &str, value: bool) -> &mut Self {
        self.key(key);
        self.buf.push_str(if value { "true" } else { "false" });
        self
    }

    /// Adds an array of unsigned integers.
    pub fn u64_array(&mut self, key: &str, values: &[u64]) -> &mut Self {
        self.key(key);
        self.buf.push('[');
        for (i, v) in values.iter().enumerate() {
            if i > 0 {
                self.buf.push(',');
            }
            self.buf.push_str(&v.to_string());
        }
        self.buf.push(']');
        self
    }

    /// Adds a field whose value is pre-rendered JSON (nested object/array).
    pub fn raw(&mut self, key: &str, rendered: &str) -> &mut Self {
        self.key(key);
        self.buf.push_str(rendered);
        self
    }

    /// Closes the object and returns the rendered JSON.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// A value the flat-object parser can represent.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// A string.
    Str(String),
    /// An unsigned integer.
    Uint(u64),
    /// A float (anything with `.`, `e`, or a sign).
    Float(f64),
    /// A boolean.
    Bool(bool),
    /// An array of unsigned integers.
    UintArray(Vec<u64>),
}

impl JsonValue {
    /// The value as `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `u64`, if it is an unsigned integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Uint(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as `bool`, if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        self.skip_ws();
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self.peek().ok_or("unterminated string")?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self.peek().ok_or("truncated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("unsupported escape \\{}", other as char)),
                    }
                }
                b => {
                    // Re-assemble multi-byte UTF-8 sequences.
                    if b < 0x80 {
                        out.push(b as char);
                    } else {
                        let start = self.pos - 1;
                        let len = match b {
                            0xC0..=0xDF => 2,
                            0xE0..=0xEF => 3,
                            _ => 4,
                        };
                        let chunk = self.bytes.get(start..start + len).ok_or("truncated UTF-8")?;
                        out.push_str(std::str::from_utf8(chunk).map_err(|_| "bad UTF-8")?);
                        self.pos = start + len;
                    }
                }
            }
        }
    }

    fn parse_number_token(&mut self) -> Result<&'a str, String> {
        self.skip_ws();
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if start == self.pos {
            return Err(format!("expected number at byte {start}"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| "bad number".into())
    }

    fn parse_value(&mut self) -> Result<JsonValue, String> {
        self.skip_ws();
        match self.peek().ok_or("unexpected end of input")? {
            b'"' => Ok(JsonValue::Str(self.parse_string()?)),
            b't' => {
                self.take_literal("true")?;
                Ok(JsonValue::Bool(true))
            }
            b'f' => {
                self.take_literal("false")?;
                Ok(JsonValue::Bool(false))
            }
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(JsonValue::UintArray(items));
                }
                loop {
                    let tok = self.parse_number_token()?;
                    items.push(tok.parse::<u64>().map_err(|_| "non-u64 array element")?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(JsonValue::UintArray(items));
                        }
                        _ => return Err("expected ',' or ']' in array".into()),
                    }
                }
            }
            _ => {
                let tok = self.parse_number_token()?;
                if let Ok(v) = tok.parse::<u64>() {
                    Ok(JsonValue::Uint(v))
                } else {
                    tok.parse::<f64>()
                        .map(JsonValue::Float)
                        .map_err(|_| format!("bad number '{tok}'"))
                }
            }
        }
    }

    fn take_literal(&mut self, lit: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(format!("expected '{lit}' at byte {}", self.pos))
        }
    }
}

/// Parses one flat JSON object (no nested objects) into a key → value map.
pub fn parse_flat_object(input: &str) -> Result<BTreeMap<String, JsonValue>, String> {
    let mut cur = Cursor { bytes: input.as_bytes(), pos: 0 };
    cur.expect(b'{')?;
    let mut map = BTreeMap::new();
    cur.skip_ws();
    if cur.peek() == Some(b'}') {
        return Ok(map);
    }
    loop {
        cur.skip_ws();
        let key = cur.parse_string()?;
        cur.expect(b':')?;
        let value = cur.parse_value()?;
        map.insert(key, value);
        cur.skip_ws();
        match cur.peek() {
            Some(b',') => cur.pos += 1,
            Some(b'}') => return Ok(map),
            _ => return Err("expected ',' or '}' in object".into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_renders_all_field_kinds() {
        let mut obj = JsonObject::new();
        obj.str("name", "a \"quoted\"\nvalue")
            .u64("count", u64::MAX)
            .f64("ratio", 0.5)
            .bool("ok", true)
            .u64_array("xs", &[1, 2, 3])
            .raw("nested", "{\"k\":1}");
        let s = obj.finish();
        assert_eq!(
            s,
            "{\"name\":\"a \\\"quoted\\\"\\nvalue\",\"count\":18446744073709551615,\
             \"ratio\":0.5,\"ok\":true,\"xs\":[1,2,3],\"nested\":{\"k\":1}}"
        );
    }

    #[test]
    fn parser_round_trips_writer_output() {
        let mut obj = JsonObject::new();
        obj.str("s", "tab\there")
            .u64("n", 12345678901234567890)
            .bool("b", false)
            .u64_array("a", &[9, 8]);
        let rendered = obj.finish();
        let map = parse_flat_object(&rendered).expect("parse");
        assert_eq!(map["s"].as_str(), Some("tab\there"));
        assert_eq!(map["n"].as_u64(), Some(12345678901234567890));
        assert_eq!(map["b"].as_bool(), Some(false));
        assert_eq!(map["a"], JsonValue::UintArray(vec![9, 8]));
    }

    #[test]
    fn parser_handles_empty_object_and_whitespace() {
        assert!(parse_flat_object("{ }").expect("parse").is_empty());
        let map = parse_flat_object("{ \"k\" : 7 , \"u\" : \"\\u0041\" }").expect("parse");
        assert_eq!(map["k"].as_u64(), Some(7));
        assert_eq!(map["u"].as_str(), Some("A"));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_flat_object("not json").is_err());
        assert!(parse_flat_object("{\"k\":}").is_err());
        assert!(parse_flat_object("{\"k\":1").is_err());
    }
}
