//! Trace exporters: JSONL event log and Chrome `trace_event` format.
//!
//! - [`to_jsonl`] writes one flat JSON object per event per line; the log
//!   round-trips through [`parse_jsonl`] (used by tests and analysis
//!   scripts).
//! - [`to_chrome_trace`] writes the Trace Event Format consumed by
//!   `chrome://tracing` and Perfetto: GC pauses become complete (`"X"`)
//!   slices with real durations, heap watermarks become counter (`"C"`)
//!   tracks, and everything else becomes instant (`"i"`) markers.

use crate::json::{parse_flat_object, JsonObject, JsonValue};
use crate::{EventKind, TraceEvent, GLOBAL_THREAD};
use rolp_metrics::SimTime;
use std::collections::BTreeMap;

/// Renders one event as a flat JSON object.
pub fn event_to_json(event: &TraceEvent) -> String {
    let mut obj = JsonObject::new();
    obj.str("type", event.kind.type_name())
        .u64("ts_ns", event.ts.as_nanos())
        .u64("thread", event.thread as u64)
        .u64("seq", event.seq);
    match &event.kind {
        EventKind::GcPause {
            kind,
            cause,
            duration_ns,
            bytes_copied,
            survivors,
            regions_in_cset,
            regions_released,
            regions_fully_dead,
            gen_bytes,
        } => {
            obj.str("kind", kind)
                .str("cause", cause)
                .u64("duration_ns", *duration_ns)
                .u64("bytes_copied", *bytes_copied)
                .u64("survivors", *survivors)
                .u64("regions_in_cset", *regions_in_cset)
                .u64("regions_released", *regions_released)
                .u64("regions_fully_dead", *regions_fully_dead)
                .u64_array("gen_bytes", gen_bytes);
        }
        EventKind::HeapWatermark { used_bytes, committed_bytes, free_regions, total_regions } => {
            obj.u64("used_bytes", *used_bytes)
                .u64("committed_bytes", *committed_bytes)
                .u64("free_regions", *free_regions)
                .u64("total_regions", *total_regions);
        }
        EventKind::JitCompile { method, osr } => {
            obj.u64("method", *method as u64).bool("osr", *osr);
        }
        EventKind::CallProfiling { call_site, enabled } => {
            obj.u64("call_site", *call_site as u64).bool("enabled", *enabled);
        }
        EventKind::ProfilerInference {
            epoch,
            old_rows,
            old_bytes,
            new_conflicts,
            unresolved_conflicts,
            decisions,
            demotions,
        } => {
            obj.u64("epoch", *epoch)
                .u64("old_rows", *old_rows)
                .u64("old_bytes", *old_bytes)
                .u64("new_conflicts", *new_conflicts)
                .u64("unresolved_conflicts", *unresolved_conflicts)
                .u64("decisions", *decisions)
                .u64("demotions", *demotions);
        }
        EventKind::ConflictBatch { action, size } => {
            obj.str("action", action).u64("size", *size);
        }
        EventKind::DecisionChange { context, from_gen, to_gen, reason } => {
            obj.u64("context", *context as u64)
                .u64("from_gen", *from_gen as u64)
                .u64("to_gen", *to_gen as u64)
                .str("reason", reason);
        }
        EventKind::SurvivorTracking { enabled } => {
            obj.bool("enabled", *enabled);
        }
        EventKind::OldTableMerge { cycle, workers, records, total_records } => {
            obj.u64("cycle", *cycle)
                .u64("workers", *workers as u64)
                .u64_array("records", records)
                .u64("total_records", *total_records);
        }
        EventKind::DecisionPublish { version, changed_rows, decisions } => {
            obj.u64("version", *version)
                .u64("changed_rows", *changed_rows)
                .u64("decisions", *decisions);
        }
        EventKind::GovernorTransition {
            from,
            to,
            reason,
            record_events,
            table_bytes,
            call_overhead_ns,
        } => {
            obj.str("from", from)
                .str("to", to)
                .str("reason", reason)
                .u64("record_events", *record_events)
                .u64("table_bytes", *table_bytes)
                .u64("call_overhead_ns", *call_overhead_ns);
        }
        EventKind::ProfileImport {
            entries,
            applied,
            rejected,
            call_sites,
            had_fingerprint,
            fingerprint_matched,
        } => {
            obj.u64("entries", *entries)
                .u64("applied", *applied)
                .u64("rejected", *rejected)
                .u64("call_sites", *call_sites)
                .bool("had_fingerprint", *had_fingerprint)
                .bool("fingerprint_matched", *fingerprint_matched);
        }
        EventKind::ProfileBlend { epoch, decayed, released, remaining } => {
            obj.u64("epoch", *epoch)
                .u64("decayed", *decayed)
                .u64("released", *released)
                .u64("remaining", *remaining);
        }
        EventKind::ShardMerge { cycle, shards, records, total_records, merge_ns } => {
            obj.u64("cycle", *cycle)
                .u64("shards", *shards as u64)
                .u64_array("records", records)
                .u64("total_records", *total_records)
                .u64("merge_ns", *merge_ns);
        }
        EventKind::FleetSubmission { instance, epochs, entries, accepted } => {
            obj.u64("instance", *instance as u64)
                .u64("epochs", *epochs)
                .u64("entries", *entries)
                .bool("accepted", *accepted);
        }
        EventKind::FleetConsensus { instances, entries, contested } => {
            obj.u64("instances", *instances as u64)
                .u64("entries", *entries)
                .u64("contested", *contested);
        }
        EventKind::ServePhaseShift { phase, rate_rps, requests_before } => {
            obj.u64("phase", *phase as u64)
                .u64("rate_rps", *rate_rps)
                .u64("requests_before", *requests_before);
        }
    }
    obj.finish()
}

/// Renders the event stream as JSONL (one object per line).
pub fn to_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&event_to_json(e));
        out.push('\n');
    }
    out
}

/// Maps a parsed label back to the `&'static str` the event model uses.
///
/// All labels the runtime emits are in the table; an unknown label (e.g. a
/// hand-edited log) is leaked once so parsing still succeeds.
fn intern(s: &str) -> &'static str {
    const KNOWN: &[&str] = &[
        "young",
        "mixed",
        "full",
        "handshake",
        "eden-full",
        "alloc-failure",
        "evac-failure",
        "heap-full",
        "initial-mark",
        "remark",
        "relocate",
        "occupancy",
        "mixed-followup",
        "allocation",
        "enable",
        "shrink",
        "disable",
        "freeze",
        "inferred",
        "demoted",
        "offline",
        "reduced",
        "sites-only",
        "off",
        "record-budget",
        "table-budget",
        "call-budget",
        "recovered",
        "forced",
    ];
    for k in KNOWN {
        if *k == s {
            return k;
        }
    }
    Box::leak(s.to_owned().into_boxed_str())
}

fn get_u64(map: &BTreeMap<String, JsonValue>, key: &str) -> Result<u64, String> {
    map.get(key).and_then(JsonValue::as_u64).ok_or_else(|| format!("missing u64 field '{key}'"))
}

fn get_bool(map: &BTreeMap<String, JsonValue>, key: &str) -> Result<bool, String> {
    map.get(key).and_then(JsonValue::as_bool).ok_or_else(|| format!("missing bool field '{key}'"))
}

fn get_label(map: &BTreeMap<String, JsonValue>, key: &str) -> Result<&'static str, String> {
    map.get(key)
        .and_then(JsonValue::as_str)
        .map(intern)
        .ok_or_else(|| format!("missing string field '{key}'"))
}

/// Parses a JSONL event log back into events (inverse of [`to_jsonl`]).
pub fn parse_jsonl(input: &str) -> Result<Vec<TraceEvent>, String> {
    let mut events = Vec::new();
    for (lineno, line) in input.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let map = parse_flat_object(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let ty = map
            .get("type")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("line {}: missing 'type'", lineno + 1))?
            .to_owned();
        let kind = (|| -> Result<EventKind, String> {
            Ok(match ty.as_str() {
                "gc_pause" => {
                    let mut gen_bytes = [0u64; 16];
                    if let Some(JsonValue::UintArray(xs)) = map.get("gen_bytes") {
                        for (i, v) in xs.iter().take(16).enumerate() {
                            gen_bytes[i] = *v;
                        }
                    }
                    EventKind::GcPause {
                        kind: get_label(&map, "kind")?,
                        cause: get_label(&map, "cause")?,
                        duration_ns: get_u64(&map, "duration_ns")?,
                        bytes_copied: get_u64(&map, "bytes_copied")?,
                        survivors: get_u64(&map, "survivors")?,
                        regions_in_cset: get_u64(&map, "regions_in_cset")?,
                        regions_released: get_u64(&map, "regions_released")?,
                        regions_fully_dead: get_u64(&map, "regions_fully_dead")?,
                        gen_bytes,
                    }
                }
                "heap_watermark" => EventKind::HeapWatermark {
                    used_bytes: get_u64(&map, "used_bytes")?,
                    committed_bytes: get_u64(&map, "committed_bytes")?,
                    free_regions: get_u64(&map, "free_regions")?,
                    total_regions: get_u64(&map, "total_regions")?,
                },
                "jit_compile" => EventKind::JitCompile {
                    method: get_u64(&map, "method")? as u32,
                    osr: get_bool(&map, "osr")?,
                },
                "call_profiling" => EventKind::CallProfiling {
                    call_site: get_u64(&map, "call_site")? as u32,
                    enabled: get_bool(&map, "enabled")?,
                },
                "profiler_inference" => EventKind::ProfilerInference {
                    epoch: get_u64(&map, "epoch")?,
                    old_rows: get_u64(&map, "old_rows")?,
                    old_bytes: get_u64(&map, "old_bytes")?,
                    new_conflicts: get_u64(&map, "new_conflicts")?,
                    unresolved_conflicts: get_u64(&map, "unresolved_conflicts")?,
                    decisions: get_u64(&map, "decisions")?,
                    demotions: get_u64(&map, "demotions")?,
                },
                "conflict_batch" => EventKind::ConflictBatch {
                    action: get_label(&map, "action")?,
                    size: get_u64(&map, "size")?,
                },
                "decision_change" => EventKind::DecisionChange {
                    context: get_u64(&map, "context")? as u32,
                    from_gen: get_u64(&map, "from_gen")? as u8,
                    to_gen: get_u64(&map, "to_gen")? as u8,
                    reason: get_label(&map, "reason")?,
                },
                "survivor_tracking" => {
                    EventKind::SurvivorTracking { enabled: get_bool(&map, "enabled")? }
                }
                "old_table_merge" => {
                    let mut records = [0u64; 8];
                    if let Some(JsonValue::UintArray(xs)) = map.get("records") {
                        for (i, v) in xs.iter().take(8).enumerate() {
                            records[i] = *v;
                        }
                    }
                    EventKind::OldTableMerge {
                        cycle: get_u64(&map, "cycle")?,
                        workers: get_u64(&map, "workers")? as u32,
                        records,
                        total_records: get_u64(&map, "total_records")?,
                    }
                }
                "decision_publish" => EventKind::DecisionPublish {
                    version: get_u64(&map, "version")?,
                    changed_rows: get_u64(&map, "changed_rows")?,
                    decisions: get_u64(&map, "decisions")?,
                },
                "governor_transition" => EventKind::GovernorTransition {
                    from: get_label(&map, "from")?,
                    to: get_label(&map, "to")?,
                    reason: get_label(&map, "reason")?,
                    record_events: get_u64(&map, "record_events")?,
                    table_bytes: get_u64(&map, "table_bytes")?,
                    call_overhead_ns: get_u64(&map, "call_overhead_ns")?,
                },
                "profile_import" => EventKind::ProfileImport {
                    entries: get_u64(&map, "entries")?,
                    applied: get_u64(&map, "applied")?,
                    rejected: get_u64(&map, "rejected")?,
                    call_sites: get_u64(&map, "call_sites")?,
                    had_fingerprint: get_bool(&map, "had_fingerprint")?,
                    fingerprint_matched: get_bool(&map, "fingerprint_matched")?,
                },
                "profile_blend" => EventKind::ProfileBlend {
                    epoch: get_u64(&map, "epoch")?,
                    decayed: get_u64(&map, "decayed")?,
                    released: get_u64(&map, "released")?,
                    remaining: get_u64(&map, "remaining")?,
                },
                "shard_merge" => {
                    let mut records = [0u64; 8];
                    if let Some(JsonValue::UintArray(xs)) = map.get("records") {
                        for (i, v) in xs.iter().take(8).enumerate() {
                            records[i] = *v;
                        }
                    }
                    EventKind::ShardMerge {
                        cycle: get_u64(&map, "cycle")?,
                        shards: get_u64(&map, "shards")? as u32,
                        records,
                        total_records: get_u64(&map, "total_records")?,
                        merge_ns: get_u64(&map, "merge_ns")?,
                    }
                }
                "fleet_submission" => EventKind::FleetSubmission {
                    instance: get_u64(&map, "instance")? as u32,
                    epochs: get_u64(&map, "epochs")?,
                    entries: get_u64(&map, "entries")?,
                    accepted: get_bool(&map, "accepted")?,
                },
                "fleet_consensus" => EventKind::FleetConsensus {
                    instances: get_u64(&map, "instances")? as u32,
                    entries: get_u64(&map, "entries")?,
                    contested: get_u64(&map, "contested")?,
                },
                "serve_phase_shift" => EventKind::ServePhaseShift {
                    phase: get_u64(&map, "phase")? as u32,
                    rate_rps: get_u64(&map, "rate_rps")?,
                    requests_before: get_u64(&map, "requests_before")?,
                },
                other => return Err(format!("unknown event type '{other}'")),
            })
        })()
        .map_err(|e| format!("line {}: {e}", lineno + 1))?;
        events.push(TraceEvent {
            ts: SimTime::from_nanos(
                get_u64(&map, "ts_ns").map_err(|e| format!("line {}: {e}", lineno + 1))?,
            ),
            thread: get_u64(&map, "thread").map_err(|e| format!("line {}: {e}", lineno + 1))?
                as u32,
            seq: get_u64(&map, "seq").map_err(|e| format!("line {}: {e}", lineno + 1))?,
            kind,
        });
    }
    Ok(events)
}

/// Display track for an event in the Chrome trace: GC/profiler events on
/// tid 0, mutator thread `t` on tid `t + 1`.
fn chrome_tid(thread: u32) -> u64 {
    if thread == GLOBAL_THREAD {
        0
    } else {
        thread as u64 + 1
    }
}

/// Renders the event stream in Chrome `trace_event` format (a JSON object
/// with a `traceEvents` array), loadable in `chrome://tracing` / Perfetto.
pub fn to_chrome_trace(events: &[TraceEvent]) -> String {
    let mut entries: Vec<String> = Vec::with_capacity(events.len() + 2);
    // Name the tracks.
    let mut meta = JsonObject::new();
    meta.str("name", "thread_name")
        .str("ph", "M")
        .u64("pid", 1)
        .u64("tid", 0)
        .raw("args", "{\"name\":\"GC + profiler\"}");
    entries.push(meta.finish());
    for e in events {
        let mut obj = JsonObject::new();
        obj.u64("pid", 1).u64("tid", chrome_tid(e.thread)).str("cat", e.kind.type_name());
        match &e.kind {
            EventKind::GcPause { kind, cause, duration_ns, bytes_copied, survivors, .. } => {
                let mut args = JsonObject::new();
                args.str("cause", cause)
                    .u64("bytes_copied", *bytes_copied)
                    .u64("survivors", *survivors);
                obj.str("name", &format!("GC pause ({kind})"))
                    .str("ph", "X")
                    .u64("ts", e.ts.as_micros())
                    .u64("dur", (*duration_ns / 1_000).max(1))
                    .raw("args", &args.finish());
            }
            EventKind::HeapWatermark { used_bytes, committed_bytes, .. } => {
                let mut args = JsonObject::new();
                args.u64("used_mb", used_bytes >> 20).u64("committed_mb", committed_bytes >> 20);
                obj.str("name", "heap")
                    .str("ph", "C")
                    .u64("ts", e.ts.as_micros())
                    .raw("args", &args.finish());
            }
            other => {
                let name = match other {
                    EventKind::JitCompile { osr: true, .. } => "JIT OSR compile",
                    EventKind::JitCompile { .. } => "JIT compile",
                    EventKind::CallProfiling { enabled: true, .. } => "call profiling on",
                    EventKind::CallProfiling { .. } => "call profiling off",
                    EventKind::ProfilerInference { .. } => "ROLP inference",
                    EventKind::ConflictBatch { action, .. } => return_batch_name(action),
                    EventKind::DecisionChange { .. } => "pretenure decision",
                    EventKind::SurvivorTracking { enabled: true } => "survivor tracking on",
                    EventKind::SurvivorTracking { .. } => "survivor tracking off",
                    EventKind::OldTableMerge { .. } => "OLD table merge",
                    EventKind::DecisionPublish { .. } => "decision publish",
                    EventKind::GovernorTransition { .. } => "governor transition",
                    EventKind::ProfileImport { .. } => "profile import",
                    EventKind::ProfileBlend { .. } => "profile blend",
                    EventKind::ShardMerge { .. } => "shard merge",
                    EventKind::FleetSubmission { .. } => "fleet submission",
                    EventKind::FleetConsensus { .. } => "fleet consensus",
                    EventKind::ServePhaseShift { .. } => "serve phase shift",
                    _ => unreachable!("pause and watermark handled above"),
                };
                // Strip the envelope fields the JSONL form carries; the
                // instant's args keep the payload for inspection.
                let full = parse_flat_object(&event_to_json(e)).expect("own output parses");
                let mut args = JsonObject::new();
                for (k, v) in &full {
                    if matches!(k.as_str(), "type" | "ts_ns" | "thread" | "seq") {
                        continue;
                    }
                    match v {
                        JsonValue::Str(s) => args.str(k, s),
                        JsonValue::Uint(n) => args.u64(k, *n),
                        JsonValue::Float(f) => args.f64(k, *f),
                        JsonValue::Bool(b) => args.bool(k, *b),
                        JsonValue::UintArray(xs) => args.u64_array(k, xs),
                    };
                }
                obj.str("name", name)
                    .str("ph", "i")
                    .str("s", "g")
                    .u64("ts", e.ts.as_micros())
                    .raw("args", &args.finish());
            }
        }
        entries.push(obj.finish());
    }
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    out.push_str(&entries.join(",\n"));
    out.push_str("\n]}\n");
    out
}

fn return_batch_name(action: &str) -> &'static str {
    match action {
        "enable" => "conflict batch: enable",
        "shrink" => "conflict batch: shrink",
        "disable" => "conflict batch: disable",
        "freeze" => "conflict batch: freeze",
        _ => "conflict batch",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<TraceEvent> {
        let t = SimTime::from_nanos;
        let mut gen_bytes = [0u64; 16];
        gen_bytes[0] = 1024;
        gen_bytes[2] = 4096;
        gen_bytes[15] = 7;
        vec![
            TraceEvent {
                ts: t(1_000),
                thread: GLOBAL_THREAD,
                seq: 0,
                kind: EventKind::GcPause {
                    kind: "young",
                    cause: "eden-full",
                    duration_ns: 2_500_000,
                    bytes_copied: 5 << 20,
                    survivors: 123,
                    regions_in_cset: 9,
                    regions_released: 8,
                    regions_fully_dead: 3,
                    gen_bytes,
                },
            },
            TraceEvent {
                ts: t(2_000),
                thread: GLOBAL_THREAD,
                seq: 1,
                kind: EventKind::HeapWatermark {
                    used_bytes: 100 << 20,
                    committed_bytes: 200 << 20,
                    free_regions: 40,
                    total_regions: 128,
                },
            },
            TraceEvent {
                ts: t(3_000),
                thread: 2,
                seq: 0,
                kind: EventKind::JitCompile { method: 17, osr: true },
            },
            TraceEvent {
                ts: t(4_000),
                thread: GLOBAL_THREAD,
                seq: 2,
                kind: EventKind::CallProfiling { call_site: 99, enabled: true },
            },
            TraceEvent {
                ts: t(5_000),
                thread: GLOBAL_THREAD,
                seq: 3,
                kind: EventKind::ProfilerInference {
                    epoch: 1,
                    old_rows: 42,
                    old_bytes: 42 * 64,
                    new_conflicts: 2,
                    unresolved_conflicts: 1,
                    decisions: 5,
                    demotions: 0,
                },
            },
            TraceEvent {
                ts: t(6_000),
                thread: GLOBAL_THREAD,
                seq: 4,
                kind: EventKind::ConflictBatch { action: "shrink", size: 8 },
            },
            TraceEvent {
                ts: t(7_000),
                thread: GLOBAL_THREAD,
                seq: 5,
                kind: EventKind::DecisionChange {
                    context: 0xABCD_0003,
                    from_gen: 0,
                    to_gen: 2,
                    reason: "inferred",
                },
            },
            TraceEvent {
                ts: t(8_000),
                thread: GLOBAL_THREAD,
                seq: 6,
                kind: EventKind::SurvivorTracking { enabled: false },
            },
            TraceEvent {
                ts: t(9_000),
                thread: GLOBAL_THREAD,
                seq: 7,
                kind: EventKind::OldTableMerge {
                    cycle: 12,
                    workers: 4,
                    records: [10, 11, 12, 13, 0, 0, 0, 0],
                    total_records: 46,
                },
            },
            TraceEvent {
                ts: t(10_000),
                thread: GLOBAL_THREAD,
                seq: 8,
                kind: EventKind::DecisionPublish { version: 3, changed_rows: 5, decisions: 17 },
            },
            TraceEvent {
                ts: t(11_000),
                thread: GLOBAL_THREAD,
                seq: 9,
                kind: EventKind::GovernorTransition {
                    from: "full",
                    to: "reduced",
                    reason: "call-budget",
                    record_events: 120_000,
                    table_bytes: 4 << 20,
                    call_overhead_ns: 9_000_000,
                },
            },
            TraceEvent {
                ts: t(12_000),
                thread: GLOBAL_THREAD,
                seq: 10,
                kind: EventKind::ProfileImport {
                    entries: 12,
                    applied: 10,
                    rejected: 2,
                    call_sites: 3,
                    had_fingerprint: true,
                    fingerprint_matched: false,
                },
            },
            TraceEvent {
                ts: t(13_000),
                thread: GLOBAL_THREAD,
                seq: 11,
                kind: EventKind::ProfileBlend { epoch: 4, decayed: 3, released: 1, remaining: 9 },
            },
            TraceEvent {
                ts: t(14_000),
                thread: GLOBAL_THREAD,
                seq: 12,
                kind: EventKind::ShardMerge {
                    cycle: 16,
                    shards: 4,
                    records: [20, 0, 14, 12, 0, 0, 0, 0],
                    total_records: 46,
                    merge_ns: 3_200,
                },
            },
            TraceEvent {
                ts: t(15_000),
                thread: GLOBAL_THREAD,
                seq: 13,
                kind: EventKind::FleetSubmission {
                    instance: 2,
                    epochs: 6,
                    entries: 11,
                    accepted: true,
                },
            },
            TraceEvent {
                ts: t(16_000),
                thread: GLOBAL_THREAD,
                seq: 14,
                kind: EventKind::FleetConsensus { instances: 3, entries: 12, contested: 1 },
            },
            TraceEvent {
                ts: t(17_000),
                thread: GLOBAL_THREAD,
                seq: 15,
                kind: EventKind::ServePhaseShift {
                    phase: 1,
                    rate_rps: 12_000,
                    requests_before: 240_000,
                },
            },
        ]
    }

    #[test]
    fn jsonl_round_trips_every_event_kind() {
        let events = sample_events();
        let jsonl = to_jsonl(&events);
        let parsed = parse_jsonl(&jsonl).expect("parse");
        assert_eq!(parsed, events);
    }

    #[test]
    fn jsonl_reports_line_numbers_on_errors() {
        let good = event_to_json(&sample_events()[2]);
        let input = format!("{good}\n{{\"type\":\"nope\"}}\n");
        let err = parse_jsonl(&input).unwrap_err();
        assert!(err.contains("line 2"), "got: {err}");
    }

    #[test]
    fn chrome_trace_is_structurally_sound() {
        let events = sample_events();
        let trace = to_chrome_trace(&events);
        assert!(trace.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(trace.trim_end().ends_with("]}"));
        // One entry per event plus the thread-name metadata record.
        let entries = trace.matches("\"ph\":").count();
        assert_eq!(entries, events.len() + 1);
        // The pause is a complete slice with a microsecond duration.
        assert!(trace.contains("\"name\":\"GC pause (young)\""));
        assert!(trace.contains("\"ph\":\"X\""));
        assert!(trace.contains("\"dur\":2500"));
        // The watermark is a counter track.
        assert!(trace.contains("\"ph\":\"C\""));
        assert!(trace.contains("\"used_mb\":100"));
        // Instants carry their payload in args.
        assert!(trace.contains("\"name\":\"JIT OSR compile\""));
        assert!(trace.contains("\"ph\":\"i\""));
        // Every line between the brackets is valid flat-ish JSON: check a
        // couple parse (instants/counters are flat except the args object).
        assert!(trace.contains("\"cat\":\"profiler_inference\""));
    }

    #[test]
    fn sub_microsecond_pauses_keep_nonzero_duration() {
        let mut e = sample_events()[0];
        if let EventKind::GcPause { ref mut duration_ns, .. } = e.kind {
            *duration_ns = 300;
        }
        let trace = to_chrome_trace(&[e]);
        assert!(trace.contains("\"dur\":1"), "rounded up to 1us: {trace}");
    }
}
