//! Asserts the overhead discipline: with tracing disabled (the default),
//! emitting events performs ZERO heap allocations, and with tracing
//! enabled, pushes into an already-constructed ring also allocate nothing.
//!
//! Lives in its own integration-test binary so no other test's allocations
//! can perturb the counter, and runs its checks from a single `#[test]` so
//! the harness cannot interleave them.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use rolp_metrics::SimTime;
use rolp_trace::{EventKind, TraceRecorder};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations_during<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let result = f();
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    (after - before, result)
}

#[test]
fn emit_paths_do_not_allocate() {
    // Disabled recorder: the acceptance criterion — the mutator fast path
    // must see zero allocations when tracing is off.
    let mut disabled = TraceRecorder::disabled();
    let (n, _) = allocations_during(|| {
        for i in 0..10_000u64 {
            disabled.emit_thread(
                (i % 8) as u32,
                SimTime::from_nanos(i),
                EventKind::JitCompile { method: i as u32, osr: false },
            );
            disabled
                .emit_global(SimTime::from_nanos(i), EventKind::SurvivorTracking { enabled: true });
            disabled.set_gc_cause("eden-full");
            disabled.merge_safepoint();
        }
    });
    assert_eq!(n, 0, "disabled recorder allocated {n} times");

    // Enabled recorder: ring pushes past construction stay allocation-free
    // (drop-oldest overwrite, no growth), including overflow.
    let mut enabled = TraceRecorder::enabled(4, 64);
    // Fault in each ring's backing storage once.
    for t in 0..4 {
        enabled.emit_thread(t, SimTime::ZERO, EventKind::JitCompile { method: 0, osr: false });
    }
    let (n, _) = allocations_during(|| {
        for i in 0..10_000u64 {
            enabled.emit_thread(
                (i % 4) as u32,
                SimTime::from_nanos(i),
                EventKind::JitCompile { method: i as u32, osr: i % 2 == 0 },
            );
        }
    });
    assert_eq!(n, 0, "enabled ring pushes allocated {n} times");
    assert!(enabled.dropped() > 0, "overflow exercised the drop-oldest path");
}
