//! Property tests for the per-thread metric cells.
//!
//! The telemetry plane's correctness hinges on one equivalence: samples
//! recorded into per-thread [`rolp_telemetry::HistogramCell`]s and
//! merged at a safepoint must produce *exactly* the histogram a
//! single-threaded reference gets from the same samples — no lost
//! counts, no drifted extremes, identical percentiles. These tests run
//! the real multi-threaded path (cells registered and filled from
//! spawned threads) and are kept small enough to stay Miri-clean; CI
//! runs them under Miri with a reduced case count.

use std::sync::Arc;

use proptest::prelude::*;

use rolp_metrics::Histogram;
use rolp_telemetry::{Bucket, CounterId, HistId, Registry};

/// Partitions `samples` round-robin over `threads` real threads, each
/// recording into its own registered cell, then aggregates.
fn record_across_threads(
    samples: &[u64],
    threads: usize,
) -> (Arc<Registry>, rolp_telemetry::MetricsSnapshot) {
    let registry = Arc::new(Registry::new());
    let mut handles = Vec::new();
    for t in 0..threads {
        let cells = registry.register_thread();
        let chunk: Vec<u64> = samples.iter().copied().skip(t).step_by(threads).collect();
        handles.push(std::thread::spawn(move || {
            for v in chunk {
                cells.record(HistId::GcPauseNs, v);
                cells.add_time(Bucket::MutatorApp, v);
                cells.bump(CounterId::GcPauses, 1);
            }
        }));
    }
    for h in handles {
        h.join().expect("recorder thread");
    }
    let snapshot = registry.aggregate(0);
    (registry, snapshot)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: if cfg!(miri) { 4 } else { 64 },
        ..ProptestConfig::default()
    })]

    /// Safepoint aggregation of per-thread cells is bit-identical to a
    /// single-threaded reference histogram fed the same samples.
    #[test]
    fn merged_cells_equal_reference_histogram(
        samples in prop::collection::vec(0u64..4_000_000_000, 1..200),
        threads in 1usize..5,
    ) {
        let mut reference = Histogram::new();
        for &v in &samples {
            reference.record(v);
        }

        let (_registry, snapshot) = record_across_threads(&samples, threads);
        let merged = snapshot.histogram(HistId::GcPauseNs);

        prop_assert_eq!(merged.count(), reference.count(), "no lost counts");
        prop_assert_eq!(merged.min(), reference.min());
        prop_assert_eq!(merged.max(), reference.max());
        prop_assert_eq!(merged.mean(), reference.mean());
        for p in [0.0, 25.0, 50.0, 90.0, 99.0, 99.9, 100.0] {
            prop_assert_eq!(
                merged.percentile(p),
                reference.percentile(p),
                "p{} diverged", p
            );
        }
        let ref_buckets: Vec<(u64, u64)> = reference.iter_buckets().collect();
        let merged_buckets: Vec<(u64, u64)> = merged.iter_buckets().collect();
        prop_assert_eq!(merged_buckets, ref_buckets, "bucket-level divergence");
    }

    /// Time and counter cells are conserved across any thread partition.
    #[test]
    fn time_and_counters_are_conserved(
        samples in prop::collection::vec(0u64..1_000_000, 1..200),
        threads in 1usize..5,
    ) {
        let expected_time: u64 = samples.iter().sum();
        let (registry, snapshot) = record_across_threads(&samples, threads);
        prop_assert_eq!(snapshot.time(Bucket::MutatorApp), expected_time);
        prop_assert_eq!(snapshot.counter(CounterId::GcPauses), samples.len() as u64);
        prop_assert_eq!(registry.total_time(Bucket::MutatorApp), expected_time);
        prop_assert_eq!(registry.thread_count(), threads);
    }

    /// Aggregation is deterministic: two aggregations of the same cells
    /// observe the same state, and publishing bumps the version by one.
    #[test]
    fn aggregation_is_deterministic(
        samples in prop::collection::vec(0u64..1_000_000, 1..100),
    ) {
        let (registry, first) = record_across_threads(&samples, 2);
        let second = registry.aggregate(0);
        prop_assert_eq!(first.time(Bucket::MutatorApp), second.time(Bucket::MutatorApp));
        prop_assert_eq!(
            first.histogram(HistId::GcPauseNs).percentile(99.0),
            second.histogram(HistId::GcPauseNs).percentile(99.0)
        );
        let v1 = registry.publish(1);
        let v2 = registry.publish(2);
        prop_assert_eq!(v1 + 1, v2);
        prop_assert_eq!(registry.store().load().version(), v2);
    }
}
