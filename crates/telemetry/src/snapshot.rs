//! Immutable, versioned metric snapshots and their publication point.
//!
//! [`MetricsSnapshot`] is the aggregation of every registered thread's
//! cells at one safepoint. [`SnapshotStore`] publishes snapshots with
//! the same discipline as `rolp_vm::DecisionStore`: an atomic pointer
//! swap with `Release` ordering, every published snapshot retained in an
//! epoch history so a reader holding a pointer from any epoch still
//! dereferences valid memory, and a lock-free `Acquire`-load read side.

use std::fmt;
use std::sync::{Arc, Mutex};

#[cfg(feature = "loom")]
use loom::sync::atomic::{AtomicPtr, Ordering};
#[cfg(not(feature = "loom"))]
use std::sync::atomic::{AtomicPtr, Ordering};

use rolp_metrics::Histogram;
use rolp_trace::json::JsonObject;

use crate::bucket::{Bucket, CounterId, GaugeId, HistId};

/// The quantiles exported per histogram series (JSONL and Prometheus).
pub const EXPORT_QUANTILES: [f64; 3] = [0.5, 0.9, 0.99];

/// An immutable aggregate of all registered cells at one point in
/// simulated time.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    version: u64,
    at_ns: u64,
    time_ns: [u64; Bucket::COUNT],
    counters: [u64; CounterId::COUNT],
    gauges: [u64; GaugeId::COUNT],
    histograms: Vec<Histogram>,
}

impl MetricsSnapshot {
    /// The empty version-0 snapshot every store starts from.
    pub fn empty() -> Self {
        MetricsSnapshot {
            version: 0,
            at_ns: 0,
            time_ns: [0; Bucket::COUNT],
            counters: [0; CounterId::COUNT],
            gauges: [0; GaugeId::COUNT],
            histograms: (0..HistId::COUNT).map(|_| Histogram::new()).collect(),
        }
    }

    /// Assembles a snapshot from aggregated state (registry-side).
    pub(crate) fn assemble(
        version: u64,
        at_ns: u64,
        time_ns: [u64; Bucket::COUNT],
        counters: [u64; CounterId::COUNT],
        gauges: [u64; GaugeId::COUNT],
        histograms: Vec<Histogram>,
    ) -> Self {
        assert_eq!(histograms.len(), HistId::COUNT);
        MetricsSnapshot { version, at_ns, time_ns, counters, gauges, histograms }
    }

    /// The snapshot's version (0 = initial empty snapshot).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Simulated time the snapshot was taken at, nanoseconds.
    pub fn at_ns(&self) -> u64 {
        self.at_ns
    }

    /// Time attributed to `bucket`, nanoseconds.
    pub fn time(&self, bucket: Bucket) -> u64 {
        self.time_ns[bucket.index()]
    }

    /// Value of counter `id`.
    pub fn counter(&self, id: CounterId) -> u64 {
        self.counters[id.index()]
    }

    /// Value of gauge `id`.
    pub fn gauge(&self, id: GaugeId) -> u64 {
        self.gauges[id.index()]
    }

    /// The histogram for series `id`.
    pub fn histogram(&self, id: HistId) -> &Histogram {
        &self.histograms[id.index()]
    }

    /// Clock-backed time attributed so far: every bucket except the
    /// modeled profiler stages. Equals the simulated clock reading when
    /// all charge sites are instrumented.
    pub fn clock_backed_ns(&self) -> u64 {
        Bucket::ALL.iter().filter(|b| !b.is_modeled()).map(|&b| self.time(b)).sum()
    }

    /// Busy mutator time: application work + profiling instructions +
    /// JIT compiles (idle and pause time excluded).
    pub fn busy_mutator_ns(&self) -> u64 {
        self.time(Bucket::MutatorApp)
            + self.time(Bucket::MutatorProfiling)
            + self.time(Bucket::JitCompile)
    }

    /// Self-measured profiler overhead: the fraction of busy mutator
    /// time spent executing profiling instructions. This is the metric
    /// the paper's ~5% claim is about (§8.3) and what the governor's
    /// measured cost source consumes. 0.0 when no mutator time has been
    /// attributed yet.
    pub fn profiling_overhead(&self) -> f64 {
        let busy = self.busy_mutator_ns();
        if busy == 0 {
            return 0.0;
        }
        self.time(Bucket::MutatorProfiling) as f64 / busy as f64
    }

    /// Renders the snapshot as one flat JSON object (a JSONL stream row).
    ///
    /// All keys are scalar so the row parses with
    /// `rolp_trace::json::parse_flat_object` as well as any JSON reader.
    pub fn to_jsonl(&self) -> String {
        let mut obj = JsonObject::new();
        obj.str("schema", "rolp-metrics-v1")
            .u64("version", self.version)
            .u64("at_ns", self.at_ns)
            .u64("busy_mutator_ns", self.busy_mutator_ns())
            .f64("profiling_overhead", self.profiling_overhead());
        for b in Bucket::ALL {
            obj.u64(&format!("time_{}_ns", b.label()), self.time(b));
        }
        for c in CounterId::ALL {
            obj.u64(&format!("count_{}", c.label()), self.counter(c));
        }
        for g in GaugeId::ALL {
            obj.u64(g.label(), self.gauge(g));
        }
        for h in HistId::ALL {
            let hist = self.histogram(h);
            obj.u64(&format!("{}_count", h.label()), hist.count());
            for q in EXPORT_QUANTILES {
                let key = format!("{}_p{}", h.label(), (q * 100.0) as u32);
                obj.u64(&key, hist.value_at_quantile(q));
            }
            obj.u64(&format!("{}_max", h.label()), hist.max());
        }
        obj.finish()
    }

    /// Renders the snapshot in Prometheus text exposition format.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        out.push_str("# HELP rolp_time_ns Simulated time attributed per bucket.\n");
        out.push_str("# TYPE rolp_time_ns counter\n");
        for b in Bucket::ALL {
            out.push_str(&format!("rolp_time_ns{{bucket=\"{}\"}} {}\n", b.label(), self.time(b)));
        }
        out.push_str("# HELP rolp_events_total Monotonic event counts.\n");
        out.push_str("# TYPE rolp_events_total counter\n");
        for c in CounterId::ALL {
            out.push_str(&format!(
                "rolp_events_total{{event=\"{}\"}} {}\n",
                c.label(),
                self.counter(c)
            ));
        }
        for g in GaugeId::ALL {
            out.push_str(&format!("# TYPE rolp_{} gauge\n", g.label()));
            out.push_str(&format!("rolp_{} {}\n", g.label(), self.gauge(g)));
        }
        out.push_str("# HELP rolp_profiling_overhead Self-measured profiler overhead fraction.\n");
        out.push_str("# TYPE rolp_profiling_overhead gauge\n");
        out.push_str(&format!("rolp_profiling_overhead {}\n", self.profiling_overhead()));
        for h in HistId::ALL {
            let hist = self.histogram(h);
            out.push_str(&format!("# TYPE rolp_{} summary\n", h.label()));
            for q in EXPORT_QUANTILES {
                out.push_str(&format!(
                    "rolp_{}{{quantile=\"{}\"}} {}\n",
                    h.label(),
                    q,
                    hist.value_at_quantile(q)
                ));
            }
            out.push_str(&format!(
                "rolp_{}_sum {}\n",
                h.label(),
                (hist.mean() * hist.count() as f64) as u64
            ));
            out.push_str(&format!("rolp_{}_count {}\n", h.label(), hist.count()));
        }
        out.push_str(&format!("rolp_snapshot_version {}\n", self.version));
        out.push_str(&format!("rolp_snapshot_at_ns {}\n", self.at_ns));
        out
    }
}

/// The publication point for [`MetricsSnapshot`]s.
///
/// `load` is lock-free: one `Acquire` pointer load. `publish`
/// (safepoint-side, window cadence) swaps the pointer and retains the
/// snapshot in the history so earlier pointers stay dereferenceable for
/// the store's lifetime — the same protocol as the decision store.
pub struct SnapshotStore {
    current: AtomicPtr<MetricsSnapshot>,
    /// Every published snapshot, oldest first. One entry per publication
    /// window — bounded by run length, and what makes `load`'s borrowed
    /// return sound.
    history: Mutex<Vec<Arc<MetricsSnapshot>>>,
}

impl SnapshotStore {
    /// A store holding the empty version-0 snapshot.
    pub fn new() -> Self {
        let initial = Arc::new(MetricsSnapshot::empty());
        let ptr = Arc::as_ptr(&initial) as *mut MetricsSnapshot;
        SnapshotStore { current: AtomicPtr::new(ptr), history: Mutex::new(vec![initial]) }
    }

    /// The current snapshot — the lock-free read side.
    #[inline]
    pub fn load(&self) -> &MetricsSnapshot {
        let ptr = self.current.load(Ordering::Acquire);
        // SAFETY: `ptr` was derived from an `Arc<MetricsSnapshot>` that
        // is retained in `history` until the store itself drops, so it
        // is valid for `&self`'s lifetime; the pointee is immutable
        // after publication.
        unsafe { &*ptr }
    }

    /// An owned handle to the current snapshot. May be held across
    /// publishes; keeps reading a consistent (old) version.
    pub fn snapshot(&self) -> Arc<MetricsSnapshot> {
        let ptr = self.current.load(Ordering::Acquire);
        let history = self.history.lock().expect("snapshot history poisoned");
        history
            .iter()
            .rev()
            .find(|s| std::ptr::eq(Arc::as_ptr(s), ptr))
            .cloned()
            .unwrap_or_else(|| history.last().expect("history never empty").clone())
    }

    /// Publishes `snapshot` as the new current one. Returns its version.
    pub fn publish(&self, snapshot: MetricsSnapshot) -> u64 {
        let version = snapshot.version();
        let arc = Arc::new(snapshot);
        let ptr = Arc::as_ptr(&arc) as *mut MetricsSnapshot;
        // Retain before the swap so no reader can observe a pointer
        // whose backing allocation is not yet anchored in the history.
        self.history.lock().expect("snapshot history poisoned").push(arc);
        self.current.store(ptr, Ordering::Release);
        version
    }

    /// The current snapshot's version.
    pub fn version(&self) -> u64 {
        self.load().version()
    }

    /// Every published snapshot, oldest first (including the initial
    /// empty one).
    pub fn history(&self) -> Vec<Arc<MetricsSnapshot>> {
        self.history.lock().expect("snapshot history poisoned").clone()
    }
}

impl Default for SnapshotStore {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for SnapshotStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SnapshotStore").field("version", &self.version()).finish()
    }
}

// SAFETY: published snapshots are immutable; `current` and the history
// mutex guard all shared mutation.
unsafe impl Send for SnapshotStore {}
unsafe impl Sync for SnapshotStore {}

#[cfg(all(test, not(feature = "loom")))]
mod tests {
    use super::*;
    use rolp_trace::json::parse_flat_object;

    fn sample() -> MetricsSnapshot {
        let mut time = [0u64; Bucket::COUNT];
        time[Bucket::MutatorApp.index()] = 9_000;
        time[Bucket::MutatorProfiling.index()] = 500;
        time[Bucket::JitCompile.index()] = 500;
        time[Bucket::GcEvac.index()] = 2_000;
        let mut counters = [0u64; CounterId::COUNT];
        counters[CounterId::JitCompiles.index()] = 3;
        let mut gauges = [0u64; GaugeId::COUNT];
        gauges[GaugeId::HeapUsedBytes.index()] = 4096;
        let mut hists: Vec<Histogram> = (0..HistId::COUNT).map(|_| Histogram::new()).collect();
        hists[HistId::GcPauseNs.index()].record(1_000_000);
        MetricsSnapshot::assemble(7, 12_000, time, counters, gauges, hists)
    }

    #[test]
    fn overhead_is_profiling_share_of_busy_mutator_time() {
        let s = sample();
        assert_eq!(s.busy_mutator_ns(), 10_000);
        assert!((s.profiling_overhead() - 0.05).abs() < 1e-12);
        assert_eq!(s.clock_backed_ns(), 12_000);
    }

    #[test]
    fn empty_snapshot_reports_zero_overhead() {
        let s = MetricsSnapshot::empty();
        assert_eq!(s.profiling_overhead(), 0.0);
        assert_eq!(s.version(), 0);
    }

    #[test]
    fn jsonl_row_is_flat_and_parseable() {
        let s = sample();
        let row = s.to_jsonl();
        let map = parse_flat_object(&row).expect("flat JSON");
        assert_eq!(map["schema"].as_str(), Some("rolp-metrics-v1"));
        assert_eq!(map["version"].as_u64(), Some(7));
        assert_eq!(map["at_ns"].as_u64(), Some(12_000));
        assert_eq!(map["time_mutator_app_ns"].as_u64(), Some(9_000));
        assert_eq!(map["count_jit_compiles"].as_u64(), Some(3));
        assert_eq!(map["heap_used_bytes"].as_u64(), Some(4096));
        assert_eq!(map["gc_pause_ns_count"].as_u64(), Some(1));
        assert!(map.contains_key("gc_pause_ns_p99"));
        assert!(map.contains_key("profiling_overhead"));
    }

    #[test]
    fn prometheus_dump_contains_all_series() {
        let text = sample().to_prometheus();
        assert!(text.contains("rolp_time_ns{bucket=\"mutator_app\"} 9000"));
        assert!(text.contains("rolp_events_total{event=\"jit_compiles\"} 3"));
        assert!(text.contains("rolp_heap_used_bytes 4096"));
        assert!(text.contains("rolp_profiling_overhead 0.05"));
        assert!(text.contains("rolp_gc_pause_ns{quantile=\"0.99\"}"));
        assert!(text.contains("rolp_gc_pause_ns_count 1"));
        assert!(text.contains("rolp_snapshot_version 7"));
        // Every exposition line is `name{labels} value` or `# comment`.
        for line in text.lines() {
            assert!(
                line.starts_with('#') || line.split_whitespace().count() == 2,
                "malformed line: {line}"
            );
        }
    }

    #[test]
    fn store_publish_bumps_version_and_load_sees_it() {
        let store = SnapshotStore::new();
        assert_eq!(store.version(), 0);
        let mut s = sample();
        s.version = 1;
        assert_eq!(store.publish(s), 1);
        assert_eq!(store.version(), 1);
        assert_eq!(store.load().busy_mutator_ns(), 10_000);
        assert_eq!(store.history().len(), 2);
    }

    #[test]
    fn old_snapshot_stays_consistent_across_a_publish() {
        let store = SnapshotStore::new();
        let mut v1 = sample();
        v1.version = 1;
        store.publish(v1);
        let held = store.snapshot();
        assert_eq!(held.version(), 1);

        let mut v2 = MetricsSnapshot::empty();
        v2.version = 2;
        v2.time_ns[Bucket::MutatorApp.index()] = 1;
        store.publish(v2);

        assert_eq!(held.version(), 1);
        assert_eq!(held.time(Bucket::MutatorApp), 9_000);
        assert_eq!(store.load().version(), 2);
        assert_eq!(store.load().time(Bucket::MutatorApp), 1);
    }

    #[test]
    fn loads_across_threads_see_published_snapshots() {
        let store = Arc::new(SnapshotStore::new());
        let reader = {
            let store = Arc::clone(&store);
            std::thread::spawn(move || loop {
                let s = store.load();
                match s.version() {
                    0 => assert_eq!(s.busy_mutator_ns(), 0),
                    v => {
                        // Internally consistent: version matches payload.
                        assert_eq!(s.busy_mutator_ns(), 10_000);
                        break v;
                    }
                }
                std::thread::yield_now();
            })
        };
        let mut s = sample();
        s.version = 1;
        store.publish(s);
        assert_eq!(reader.join().expect("reader"), 1);
    }
}
