//! Per-thread lock-free metric cells.
//!
//! Each thread that wants to record metrics registers one [`ThreadCells`]
//! block in the [`crate::Registry`] and then updates it with plain
//! `Relaxed` atomic adds — no locks, no allocation, no contention with
//! other recorders. Aggregation (safepoint-side, no racing writers in
//! the simulator) reads the cells and reconstructs exact
//! [`rolp_metrics::Histogram`]s because the cells share its bucket
//! layout bit for bit.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use rolp_metrics::Histogram;

use crate::bucket::{Bucket, CounterId, HistId};

/// A lock-free histogram cell mirroring [`Histogram`]'s bucket layout.
///
/// `record` is wait-free: one index computation plus five `Relaxed`
/// atomic RMWs. [`HistogramCell::to_histogram`] converts back to an
/// exact `Histogram` — merging any partition of a sample across cells
/// yields the same histogram as recording it single-threaded.
pub struct HistogramCell {
    counts: Box<[AtomicU64]>,
    total: AtomicU64,
    /// Sum of recorded values. `u64` holds > 580 years of nanoseconds,
    /// far beyond any simulated run.
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl HistogramCell {
    /// An empty cell.
    pub fn new() -> Self {
        let counts: Vec<AtomicU64> = (0..Histogram::SLOTS).map(|_| AtomicU64::new(0)).collect();
        HistogramCell {
            counts: counts.into_boxed_slice(),
            total: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation (lock-free, wait-free).
    ///
    /// Values are durations in nanoseconds; the running sum is a `u64`,
    /// so the cell is exact as long as the total stays below `u64::MAX`
    /// (~584 years of attributed nanoseconds).
    pub fn record(&self, value: u64) {
        self.counts[Histogram::index_of(value)].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Accumulates this cell into aggregation scratch state. Safepoint
    /// side: assumes no concurrent recorders (the simulator aggregates
    /// between ticks; tests join threads first).
    pub(crate) fn drain_into(
        &self,
        counts: &mut [u64],
        min: &mut u64,
        max: &mut u64,
        sum: &mut u128,
    ) {
        for (dst, src) in counts.iter_mut().zip(self.counts.iter()) {
            *dst += src.load(Ordering::Relaxed);
        }
        *min = (*min).min(self.min.load(Ordering::Relaxed));
        *max = (*max).max(self.max.load(Ordering::Relaxed));
        *sum += self.sum.load(Ordering::Relaxed) as u128;
    }

    /// Converts this cell alone into an exact [`Histogram`].
    pub fn to_histogram(&self) -> Histogram {
        let mut counts = vec![0u64; Histogram::SLOTS];
        let (mut min, mut max, mut sum) = (u64::MAX, 0u64, 0u128);
        self.drain_into(&mut counts, &mut min, &mut max, &mut sum);
        Histogram::from_bucket_counts(&counts, min, max, sum)
    }
}

impl Default for HistogramCell {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for HistogramCell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HistogramCell")
            .field("count", &self.count())
            .field("max", &self.max.load(Ordering::Relaxed))
            .finish()
    }
}

/// One thread's metric cells: time-per-bucket, counters, histograms.
pub struct ThreadCells {
    time_ns: [AtomicU64; Bucket::COUNT],
    counters: [AtomicU64; CounterId::COUNT],
    histograms: [HistogramCell; HistId::COUNT],
}

impl ThreadCells {
    /// A zeroed cell block.
    pub fn new() -> Self {
        ThreadCells {
            time_ns: std::array::from_fn(|_| AtomicU64::new(0)),
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            histograms: std::array::from_fn(|_| HistogramCell::new()),
        }
    }

    /// Attributes `ns` of time to `bucket`.
    #[inline]
    pub fn add_time(&self, bucket: Bucket, ns: u64) {
        self.time_ns[bucket.index()].fetch_add(ns, Ordering::Relaxed);
    }

    /// Time attributed to `bucket` so far.
    pub fn time(&self, bucket: Bucket) -> u64 {
        self.time_ns[bucket.index()].load(Ordering::Relaxed)
    }

    /// Increments counter `id` by `n`.
    #[inline]
    pub fn bump(&self, id: CounterId, n: u64) {
        self.counters[id.index()].fetch_add(n, Ordering::Relaxed);
    }

    /// Current value of counter `id`.
    pub fn counter(&self, id: CounterId) -> u64 {
        self.counters[id.index()].load(Ordering::Relaxed)
    }

    /// Records `value` into histogram series `id`.
    #[inline]
    pub fn record(&self, id: HistId, value: u64) {
        self.histograms[id.index()].record(value);
    }

    /// The cell for histogram series `id`.
    pub fn histogram_cell(&self, id: HistId) -> &HistogramCell {
        &self.histograms[id.index()]
    }
}

impl Default for ThreadCells {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for ThreadCells {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total: u64 = Bucket::ALL.iter().map(|&b| self.time(b)).sum();
        f.debug_struct("ThreadCells").field("attributed_ns", &total).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_round_trips_to_exact_histogram() {
        let cell = HistogramCell::new();
        let mut reference = Histogram::new();
        for v in [0u64, 1, 31, 32, 1_000, 123_456_789, 1 << 62] {
            cell.record(v);
            reference.record(v);
        }
        let h = cell.to_histogram();
        assert_eq!(h.count(), reference.count());
        assert_eq!(h.min(), reference.min());
        assert_eq!(h.max(), reference.max());
        assert_eq!(h.mean(), reference.mean());
        for p in [50.0, 90.0, 99.0, 100.0] {
            assert_eq!(h.percentile(p), reference.percentile(p), "p{p}");
        }
    }

    #[test]
    fn empty_cell_converts_to_empty_histogram() {
        let h = HistogramCell::new().to_histogram();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.percentile(99.0), 0);
    }

    #[test]
    fn thread_cells_accumulate_time_and_counters() {
        let cells = ThreadCells::new();
        cells.add_time(Bucket::MutatorApp, 100);
        cells.add_time(Bucket::MutatorApp, 50);
        cells.add_time(Bucket::GcEvac, 7);
        cells.bump(CounterId::JitCompiles, 2);
        cells.record(HistId::GcPauseNs, 1_000);
        assert_eq!(cells.time(Bucket::MutatorApp), 150);
        assert_eq!(cells.time(Bucket::GcEvac), 7);
        assert_eq!(cells.time(Bucket::Idle), 0);
        assert_eq!(cells.counter(CounterId::JitCompiles), 2);
        assert_eq!(cells.histogram_cell(HistId::GcPauseNs).count(), 1);
    }
}
