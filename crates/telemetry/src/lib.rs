//! Always-on live metrics plane for the ROLP reproduction.
//!
//! The paper's headline overhead claim ("profiling stays under ~5%",
//! §8.3) should be checkable *while a run executes*, not only by offline
//! post-processing of the flight recorder. This crate is the substrate
//! for that: every simulated nanosecond a run charges is attributed to
//! exactly one [`Bucket`] (mutator work, profiling instructions, JIT
//! compiles, GC pause phases, profiler epoch stages, idle pacing), so
//! self-observed profiler overhead is a first-class live metric the
//! overhead governor can act on.
//!
//! The design mirrors the decision-table plane:
//!
//! - **Per-thread cells** ([`ThreadCells`]): plain relaxed atomics —
//!   time-per-bucket counters, event counters, and log-bucketed latency
//!   histogram cells sharing `rolp_metrics::Histogram`'s exact bucket
//!   layout. Recording is lock-free and allocation-free.
//! - **Safepoint aggregation**: [`Registry::publish`] sums the cells
//!   into an immutable, versioned [`MetricsSnapshot`] (histogram cells
//!   convert losslessly via `Histogram::from_bucket_counts`).
//! - **Atomic-pointer publication** ([`SnapshotStore`]): the same
//!   publish/load discipline as `rolp_vm::DecisionStore` — readers take
//!   one `Acquire` load; every published snapshot is retained so a
//!   pointer from any epoch stays dereferenceable.
//! - **RAII attribution spans** ([`Telemetry::span`]): a guard swaps the
//!   thread's *current bucket*; whatever the run charges while the guard
//!   lives lands in that bucket. Guards nest, restore on drop, and cost
//!   one `Cell` swap plus one reference-count bump — no allocation.
//!
//! Snapshots render to a flat JSONL row ([`MetricsSnapshot::to_jsonl`])
//! and Prometheus text exposition ([`MetricsSnapshot::to_prometheus`]).

pub mod bucket;
pub mod cell;
pub mod registry;
pub mod snapshot;
pub mod span;

pub use bucket::{Bucket, CounterId, GaugeId, HistId};
pub use cell::{HistogramCell, ThreadCells};
pub use registry::Registry;
pub use snapshot::{MetricsSnapshot, SnapshotStore};
pub use span::{SpanGuard, Telemetry};
