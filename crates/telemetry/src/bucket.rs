//! Metric identifiers: time buckets, counters, gauges, histograms.
//!
//! Everything is a small dense enum so per-thread cells are fixed-size
//! arrays indexed without hashing, and so the set of exported series is
//! closed and documented in one place.

use std::fmt;

/// The bucket a span of attributed time lands in.
///
/// The first nine buckets partition *clock-backed* time: every
/// nanosecond the simulated clock advances is charged to exactly one of
/// them. The `Profiler*` buckets hold *modeled* self-cost of the epoch
/// pipeline's safepoint stages (which do not advance the simulated
/// clock) and are reported separately.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(usize)]
pub enum Bucket {
    /// Guest computation, allocation, field access — the application.
    MutatorApp,
    /// ROLP profiling instructions on mutator paths (call-site TSS
    /// updates, allocation-site table increments). The numerator of the
    /// measured-overhead metric.
    MutatorProfiling,
    /// JIT compilation charged to mutator time.
    JitCompile,
    /// Request pacing / think time (excluded from busy time).
    Idle,
    /// Pause time spent marking (initial mark, remark, full-GC mark
    /// traversal, concurrent-mark cycles stolen from the mutator).
    GcMark,
    /// Pause time spent evacuating/copying (plus roots and per-region
    /// bookkeeping).
    GcEvac,
    /// Pause time spent scanning remembered sets.
    GcRemset,
    /// Pause time spent on ROLP survivor tracking (the collector half of
    /// profiling overhead).
    GcProfiling,
    /// Pause time not decomposed further (safepoint entry/exit,
    /// concurrent-collector handshakes).
    GcOther,
    /// Modeled: merging per-worker survivor observations at epoch end.
    ProfilerMerge,
    /// Modeled: lifetime inference over the OLD table.
    ProfilerInfer,
    /// Modeled: conflict resolution / context expansion.
    ProfilerResolve,
    /// Modeled: building + publishing the decision table.
    ProfilerPublish,
}

impl Bucket {
    /// Number of buckets.
    pub const COUNT: usize = 13;

    /// Every bucket, in index order.
    pub const ALL: [Bucket; Bucket::COUNT] = [
        Bucket::MutatorApp,
        Bucket::MutatorProfiling,
        Bucket::JitCompile,
        Bucket::Idle,
        Bucket::GcMark,
        Bucket::GcEvac,
        Bucket::GcRemset,
        Bucket::GcProfiling,
        Bucket::GcOther,
        Bucket::ProfilerMerge,
        Bucket::ProfilerInfer,
        Bucket::ProfilerResolve,
        Bucket::ProfilerPublish,
    ];

    /// Dense array index.
    #[inline]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Stable snake_case label used in JSONL keys and Prometheus labels.
    pub const fn label(self) -> &'static str {
        match self {
            Bucket::MutatorApp => "mutator_app",
            Bucket::MutatorProfiling => "mutator_profiling",
            Bucket::JitCompile => "jit_compile",
            Bucket::Idle => "idle",
            Bucket::GcMark => "gc_mark",
            Bucket::GcEvac => "gc_evac",
            Bucket::GcRemset => "gc_remset",
            Bucket::GcProfiling => "gc_profiling",
            Bucket::GcOther => "gc_other",
            Bucket::ProfilerMerge => "profiler_merge",
            Bucket::ProfilerInfer => "profiler_infer",
            Bucket::ProfilerResolve => "profiler_resolve",
            Bucket::ProfilerPublish => "profiler_publish",
        }
    }

    /// True for the `Profiler*` buckets, whose time is modeled (derived
    /// from work counts and cost constants) rather than clock-backed.
    pub const fn is_modeled(self) -> bool {
        matches!(
            self,
            Bucket::ProfilerMerge
                | Bucket::ProfilerInfer
                | Bucket::ProfilerResolve
                | Bucket::ProfilerPublish
        )
    }
}

impl fmt::Display for Bucket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Monotonic event counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(usize)]
pub enum CounterId {
    /// Allocations that installed an allocation context.
    ProfiledAllocs,
    /// Allocations that took the unprofiled fast path.
    UnprofiledAllocs,
    /// JIT method compilations (including OSR).
    JitCompiles,
    /// Stop-the-world pauses recorded.
    GcPauses,
    /// Profiler inference epochs completed.
    EpochsInferred,
    /// Offline-profile decision entries applied at import.
    ProfileEntriesImported,
    /// Imported-row confidence halvings under the blend decay.
    ProfileBlendDecays,
    /// Wall nanoseconds spent in sharded-backend safepoint merges
    /// (cumulative; 0 on unsharded backends).
    ShardMergeNs,
    /// Contended shard-lock acquisitions in the sharded OLD table
    /// (cumulative; 0 on unsharded backends).
    ShardLockWaits,
    /// Requests completed by the open-loop service harness (`rolp-serve`).
    ServeRequests,
    /// Served requests whose coordinated-omission-corrected latency
    /// missed the primary SLO threshold.
    ServeSloMisses,
    /// TLAB refills (chunk carves from region frontiers) on the
    /// allocation fast path.
    TlabRefills,
    /// Decision micro-cache hits (repeat-site allocations that skipped
    /// the decision-table load). Flushed from per-thread caches at
    /// safepoints.
    MicrocacheHits,
    /// Decision micro-cache misses (first-touch or version-invalidated
    /// lookups that fell back to the table load).
    MicrocacheMisses,
    /// Age-0 OLD-table records flushed from per-thread batch buffers at
    /// safepoints (batched counterpart of per-alloc increments).
    Age0Flushed,
}

impl CounterId {
    /// Number of counters.
    pub const COUNT: usize = 15;

    /// Every counter, in index order.
    pub const ALL: [CounterId; CounterId::COUNT] = [
        CounterId::ProfiledAllocs,
        CounterId::UnprofiledAllocs,
        CounterId::JitCompiles,
        CounterId::GcPauses,
        CounterId::EpochsInferred,
        CounterId::ProfileEntriesImported,
        CounterId::ProfileBlendDecays,
        CounterId::ShardMergeNs,
        CounterId::ShardLockWaits,
        CounterId::ServeRequests,
        CounterId::ServeSloMisses,
        CounterId::TlabRefills,
        CounterId::MicrocacheHits,
        CounterId::MicrocacheMisses,
        CounterId::Age0Flushed,
    ];

    /// Dense array index.
    #[inline]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Stable snake_case label.
    pub const fn label(self) -> &'static str {
        match self {
            CounterId::ProfiledAllocs => "profiled_allocs",
            CounterId::UnprofiledAllocs => "unprofiled_allocs",
            CounterId::JitCompiles => "jit_compiles",
            CounterId::GcPauses => "gc_pauses",
            CounterId::EpochsInferred => "epochs_inferred",
            CounterId::ProfileEntriesImported => "profile_entries_imported",
            CounterId::ProfileBlendDecays => "profile_blend_decays",
            CounterId::ShardMergeNs => "shard_merge_ns",
            CounterId::ShardLockWaits => "shard_lock_wait",
            CounterId::ServeRequests => "serve_requests",
            CounterId::ServeSloMisses => "serve_slo_misses",
            CounterId::TlabRefills => "tlab_refills",
            CounterId::MicrocacheHits => "microcache_hits",
            CounterId::MicrocacheMisses => "microcache_misses",
            CounterId::Age0Flushed => "age0_flushed",
        }
    }
}

/// Last-write-wins point-in-time gauges (process-wide, set at
/// safepoints/sampling windows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(usize)]
pub enum GaugeId {
    /// Live heap bytes at the last sample.
    HeapUsedBytes,
    /// Committed heap bytes at the last sample.
    HeapCommittedBytes,
    /// Version of the currently published decision table.
    DecisionVersion,
    /// Overhead-governor state, encoded 0 = Full, 1 = Reduced,
    /// 2 = SitesOnly, 3 = Off.
    GovernorState,
}

impl GaugeId {
    /// Number of gauges.
    pub const COUNT: usize = 4;

    /// Every gauge, in index order.
    pub const ALL: [GaugeId; GaugeId::COUNT] = [
        GaugeId::HeapUsedBytes,
        GaugeId::HeapCommittedBytes,
        GaugeId::DecisionVersion,
        GaugeId::GovernorState,
    ];

    /// Dense array index.
    #[inline]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Stable snake_case label.
    pub const fn label(self) -> &'static str {
        match self {
            GaugeId::HeapUsedBytes => "heap_used_bytes",
            GaugeId::HeapCommittedBytes => "heap_committed_bytes",
            GaugeId::DecisionVersion => "decision_version",
            GaugeId::GovernorState => "governor_state",
        }
    }
}

/// Latency histogram series.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(usize)]
pub enum HistId {
    /// Stop-the-world pause durations, nanoseconds.
    GcPauseNs,
    /// Individual JIT compile durations, nanoseconds.
    JitCompileNs,
    /// Modeled per-epoch profiler pipeline cost, nanoseconds.
    ProfilerEpochNs,
    /// Coordinated-omission-corrected request latency (completion minus
    /// *intended* arrival) in the open-loop service harness, nanoseconds.
    ServeLatencyNs,
    /// Queueing delay (actual start minus intended arrival) in the
    /// open-loop service harness, nanoseconds.
    ServeQueueNs,
}

impl HistId {
    /// Number of histogram series.
    pub const COUNT: usize = 5;

    /// Every histogram series, in index order.
    pub const ALL: [HistId; HistId::COUNT] = [
        HistId::GcPauseNs,
        HistId::JitCompileNs,
        HistId::ProfilerEpochNs,
        HistId::ServeLatencyNs,
        HistId::ServeQueueNs,
    ];

    /// Dense array index.
    #[inline]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Stable snake_case label.
    pub const fn label(self) -> &'static str {
        match self {
            HistId::GcPauseNs => "gc_pause_ns",
            HistId::JitCompileNs => "jit_compile_ns",
            HistId::ProfilerEpochNs => "profiler_epoch_ns",
            HistId::ServeLatencyNs => "serve_latency_ns",
            HistId::ServeQueueNs => "serve_queue_ns",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_match_all_order() {
        for (i, b) in Bucket::ALL.iter().enumerate() {
            assert_eq!(b.index(), i);
        }
        for (i, c) in CounterId::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
        for (i, g) in GaugeId::ALL.iter().enumerate() {
            assert_eq!(g.index(), i);
        }
        for (i, h) in HistId::ALL.iter().enumerate() {
            assert_eq!(h.index(), i);
        }
    }

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<&str> = Bucket::ALL.iter().map(|b| b.label()).collect();
        labels.extend(CounterId::ALL.iter().map(|c| c.label()));
        labels.extend(GaugeId::ALL.iter().map(|g| g.label()));
        labels.extend(HistId::ALL.iter().map(|h| h.label()));
        let n = labels.len();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), n, "duplicate metric label");
    }

    #[test]
    fn modeled_buckets_are_exactly_the_profiler_stages() {
        let modeled: Vec<Bucket> = Bucket::ALL.iter().copied().filter(|b| b.is_modeled()).collect();
        assert_eq!(
            modeled,
            vec![
                Bucket::ProfilerMerge,
                Bucket::ProfilerInfer,
                Bucket::ProfilerResolve,
                Bucket::ProfilerPublish
            ]
        );
    }
}
