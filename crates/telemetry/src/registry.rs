//! The metric registry: cell registration, gauges, safepoint aggregation.

use std::sync::{Arc, Mutex};

use std::sync::atomic::{AtomicU64, Ordering};

use rolp_metrics::Histogram;

use crate::bucket::{Bucket, CounterId, GaugeId, HistId};
use crate::cell::ThreadCells;
use crate::snapshot::{MetricsSnapshot, SnapshotStore};

/// Registration and aggregation point for all metric cells of one run.
///
/// Threads register cells on the cold path (once, under a mutex) and
/// record into them lock-free; gauges are process-wide atomics; the
/// registry aggregates everything into [`MetricsSnapshot`]s published
/// through its [`SnapshotStore`].
#[derive(Debug)]
pub struct Registry {
    threads: Mutex<Vec<Arc<ThreadCells>>>,
    gauges: [AtomicU64; GaugeId::COUNT],
    store: SnapshotStore,
}

impl Registry {
    /// An empty registry whose store holds the version-0 snapshot.
    pub fn new() -> Self {
        Registry {
            threads: Mutex::new(Vec::new()),
            gauges: std::array::from_fn(|_| AtomicU64::new(0)),
            store: SnapshotStore::new(),
        }
    }

    /// Registers a new thread cell block (cold path).
    pub fn register_thread(&self) -> Arc<ThreadCells> {
        let cells = Arc::new(ThreadCells::new());
        self.threads.lock().expect("registry poisoned").push(Arc::clone(&cells));
        cells
    }

    /// Number of registered thread cell blocks.
    pub fn thread_count(&self) -> usize {
        self.threads.lock().expect("registry poisoned").len()
    }

    /// Sets gauge `id` to `value` (last write wins).
    pub fn set_gauge(&self, id: GaugeId, value: u64) {
        self.gauges[id.index()].store(value, Ordering::Relaxed);
    }

    /// Current value of gauge `id`.
    pub fn gauge(&self, id: GaugeId) -> u64 {
        self.gauges[id.index()].load(Ordering::Relaxed)
    }

    /// Live sum of time attributed to `bucket` across all cells (the
    /// governor's epoch-boundary read; does not require a publish).
    pub fn total_time(&self, bucket: Bucket) -> u64 {
        self.threads.lock().expect("registry poisoned").iter().map(|c| c.time(bucket)).sum()
    }

    /// Aggregates all cells into a fresh snapshot versioned after the
    /// currently published one. Safepoint-side: assumes no concurrent
    /// recorders are mid-update.
    pub fn aggregate(&self, at_ns: u64) -> MetricsSnapshot {
        let threads = self.threads.lock().expect("registry poisoned");
        let mut time_ns = [0u64; Bucket::COUNT];
        let mut counters = [0u64; CounterId::COUNT];
        for cells in threads.iter() {
            for b in Bucket::ALL {
                time_ns[b.index()] += cells.time(b);
            }
            for c in CounterId::ALL {
                counters[c.index()] += cells.counter(c);
            }
        }
        let mut histograms = Vec::with_capacity(HistId::COUNT);
        for h in HistId::ALL {
            let mut counts = vec![0u64; Histogram::SLOTS];
            let (mut min, mut max, mut sum) = (u64::MAX, 0u64, 0u128);
            for cells in threads.iter() {
                cells.histogram_cell(h).drain_into(&mut counts, &mut min, &mut max, &mut sum);
            }
            histograms.push(Histogram::from_bucket_counts(&counts, min, max, sum));
        }
        let gauges = std::array::from_fn(|i| self.gauges[i].load(Ordering::Relaxed));
        MetricsSnapshot::assemble(
            self.store.version() + 1,
            at_ns,
            time_ns,
            counters,
            gauges,
            histograms,
        )
    }

    /// Aggregates and publishes a snapshot at `at_ns`; returns its
    /// version.
    pub fn publish(&self, at_ns: u64) -> u64 {
        let snapshot = self.aggregate(at_ns);
        self.store.publish(snapshot)
    }

    /// The snapshot store (lock-free read side).
    pub fn store(&self) -> &SnapshotStore {
        &self.store
    }
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(all(test, not(feature = "loom")))]
mod tests {
    use super::*;

    #[test]
    fn aggregate_sums_cells_across_threads() {
        let reg = Registry::new();
        let a = reg.register_thread();
        let b = reg.register_thread();
        a.add_time(Bucket::MutatorApp, 100);
        b.add_time(Bucket::MutatorApp, 50);
        b.add_time(Bucket::GcMark, 7);
        a.bump(CounterId::GcPauses, 2);
        b.bump(CounterId::GcPauses, 1);
        a.record(HistId::GcPauseNs, 10);
        b.record(HistId::GcPauseNs, 1_000);
        reg.set_gauge(GaugeId::DecisionVersion, 4);

        let s = reg.aggregate(99);
        assert_eq!(s.version(), 1);
        assert_eq!(s.at_ns(), 99);
        assert_eq!(s.time(Bucket::MutatorApp), 150);
        assert_eq!(s.time(Bucket::GcMark), 7);
        assert_eq!(s.counter(CounterId::GcPauses), 3);
        assert_eq!(s.gauge(GaugeId::DecisionVersion), 4);
        let h = s.histogram(HistId::GcPauseNs);
        assert_eq!(h.count(), 2);
        assert_eq!(h.min(), 10);
        assert_eq!(h.max(), 1_000);
    }

    #[test]
    fn publish_versions_are_monotonic_and_cumulative() {
        let reg = Registry::new();
        let cells = reg.register_thread();
        cells.add_time(Bucket::MutatorApp, 10);
        assert_eq!(reg.publish(1), 1);
        cells.add_time(Bucket::MutatorApp, 5);
        assert_eq!(reg.publish(2), 2);
        // Cells are cumulative, so later snapshots contain earlier time.
        assert_eq!(reg.store().load().time(Bucket::MutatorApp), 15);
        let history = reg.store().history();
        assert_eq!(history.len(), 3);
        assert_eq!(history[1].time(Bucket::MutatorApp), 10);
    }

    #[test]
    fn total_time_reads_live_without_publish() {
        let reg = Registry::new();
        let cells = reg.register_thread();
        cells.add_time(Bucket::MutatorProfiling, 42);
        assert_eq!(reg.total_time(Bucket::MutatorProfiling), 42);
        assert_eq!(reg.store().version(), 0, "no publish happened");
    }
}
