//! Time-attribution spans: the `span!`-style RAII guard.
//!
//! The simulator is single-threaded per VM loop, so the *current bucket*
//! lives in a `Cell` behind an `Rc` shared between the [`Telemetry`]
//! handle and its guards. Opening a span swaps the current bucket and
//! returns a [`SpanGuard`] that restores the previous one on drop —
//! nestable, panic-safe, allocation-free (one `Rc` clone, one `Cell`
//! swap). Every nanosecond charged while a guard lives is attributed to
//! its bucket via [`Telemetry::on_charge`].

use std::cell::Cell;
use std::fmt;
use std::rc::Rc;
use std::sync::Arc;

use crate::bucket::{Bucket, CounterId, HistId};
use crate::cell::ThreadCells;
use crate::registry::Registry;

struct ThreadState {
    cells: Arc<ThreadCells>,
    current: Cell<Bucket>,
}

/// The per-VM telemetry handle: owns this thread's cells and the current
/// attribution bucket, and carries the shared [`Registry`].
pub struct Telemetry {
    registry: Arc<Registry>,
    state: Rc<ThreadState>,
}

impl Telemetry {
    /// A telemetry plane with a fresh registry and one registered thread
    /// cell block (the VM loop's).
    pub fn new() -> Self {
        Self::with_registry(Arc::new(Registry::new()))
    }

    /// A telemetry handle registering a new cell block in an existing
    /// registry.
    pub fn with_registry(registry: Arc<Registry>) -> Self {
        let cells = registry.register_thread();
        Telemetry {
            registry,
            state: Rc::new(ThreadState { cells, current: Cell::new(Bucket::MutatorApp) }),
        }
    }

    /// The shared registry (for publication, gauges, totals).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// This handle's cell block.
    pub fn cells(&self) -> &Arc<ThreadCells> {
        &self.state.cells
    }

    /// The bucket charges are currently attributed to.
    pub fn current(&self) -> Bucket {
        self.state.current.get()
    }

    /// Opens an attribution span: charges land in `bucket` until the
    /// returned guard drops (which restores the previous bucket).
    #[must_use = "dropping the guard immediately closes the span"]
    pub fn span(&self, bucket: Bucket) -> SpanGuard {
        let prev = self.state.current.replace(bucket);
        SpanGuard { state: Rc::clone(&self.state), prev }
    }

    /// Attributes `ns` to the current bucket (the `VmEnv::charge` hook).
    #[inline]
    pub fn on_charge(&self, ns: u64) {
        self.state.cells.add_time(self.state.current.get(), ns);
    }

    /// Attributes `ns` directly to `bucket`, bypassing the current span
    /// (pause decomposition, idle time, modeled profiler stages).
    #[inline]
    pub fn add(&self, bucket: Bucket, ns: u64) {
        self.state.cells.add_time(bucket, ns);
    }

    /// Increments counter `id` by `n`.
    #[inline]
    pub fn bump(&self, id: CounterId, n: u64) {
        self.state.cells.bump(id, n);
    }

    /// Records `value` into histogram series `id`.
    #[inline]
    pub fn record(&self, id: HistId, value: u64) {
        self.state.cells.record(id, value);
    }
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Telemetry")
            .field("current", &self.current())
            .field("threads", &self.registry.thread_count())
            .finish()
    }
}

/// Restores the previous attribution bucket when dropped.
pub struct SpanGuard {
    state: Rc<ThreadState>,
    prev: Bucket,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.state.current.set(self.prev);
    }
}

impl fmt::Debug for SpanGuard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SpanGuard").field("restores", &self.prev).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_land_in_the_current_bucket() {
        let t = Telemetry::new();
        t.on_charge(100);
        {
            let _g = t.span(Bucket::MutatorProfiling);
            t.on_charge(30);
        }
        t.on_charge(5);
        assert_eq!(t.cells().time(Bucket::MutatorApp), 105);
        assert_eq!(t.cells().time(Bucket::MutatorProfiling), 30);
    }

    #[test]
    fn spans_nest_and_restore() {
        let t = Telemetry::new();
        assert_eq!(t.current(), Bucket::MutatorApp);
        {
            let _outer = t.span(Bucket::JitCompile);
            assert_eq!(t.current(), Bucket::JitCompile);
            {
                let _inner = t.span(Bucket::MutatorProfiling);
                assert_eq!(t.current(), Bucket::MutatorProfiling);
            }
            assert_eq!(t.current(), Bucket::JitCompile);
        }
        assert_eq!(t.current(), Bucket::MutatorApp);
    }

    #[test]
    fn guard_restores_on_panic() {
        let t = Telemetry::new();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = t.span(Bucket::GcMark);
            panic!("boom");
        }));
        assert!(r.is_err());
        assert_eq!(t.current(), Bucket::MutatorApp, "guard restored during unwind");
    }

    #[test]
    fn handles_share_one_registry() {
        let registry = Arc::new(Registry::new());
        let a = Telemetry::with_registry(Arc::clone(&registry));
        let b = Telemetry::with_registry(Arc::clone(&registry));
        a.add(Bucket::GcEvac, 10);
        b.add(Bucket::GcEvac, 7);
        assert_eq!(registry.thread_count(), 2);
        assert_eq!(registry.total_time(Bucket::GcEvac), 17);
    }
}
