//! Shared harness for the paper's tables and figures.
//!
//! Every bench target (`fig6_*`, `fig7_*`, `fig8_9_*`, `fig10_*`,
//! `table1_*`, `table2_*`, `ablations`) builds on these helpers: workload
//! construction at the experiment scale, runtime-configuration assembly
//! per collector, and shared formatting.
//!
//! Scaling: the paper's testbed (6 GB heaps, 30-minute runs, 10 k ops/s)
//! is divided by the experiment scale (default 16, override with
//! `ROLP_BENCH_SCALE`). Copy bandwidth scales with the heap so pause
//! *magnitudes* stay comparable; run *durations* are scaled less
//! aggressively (by scale/4) so each run still contains enough GC cycles
//! for stable percentiles.

use rolp::runtime::{CollectorKind, RuntimeConfig};
use rolp_heap::HeapConfig;
use rolp_metrics::{SimScale, SimTime};
use rolp_vm::CostModel;
use rolp_workloads::{RunBudget, RunOutcome, Workload};

pub use rolp_metrics::table::{fmt_bytes, fmt_pct, TextTable};
pub use rolp_workloads::presets::{bigdata_heap, bigdata_workloads, cassandra, graphchi, lucene};

/// The experiment scale (default 1/16; `ROLP_BENCH_SCALE` overrides).
pub fn scale() -> SimScale {
    SimScale::from_env(16)
}

/// Run budget for the pause-distribution experiments: the paper's 30 min
/// with a warmup discard, time-scaled by `scale/8` (see module docs).
///
/// The discard is a quarter of the run rather than the paper's sixth:
/// ROLP's learning time is a fixed number of GC cycles (~3 inference
/// windows), so compressing the run compresses the steady state but not
/// the warmup — the discard must still cover it, as the paper's 300 s
/// discard covers its ~350 s stabilization (Fig. 10).
pub fn bigdata_budget(scale: SimScale) -> RunBudget {
    let divisor = (scale.divisor() / 8).max(1);
    let secs = (1_800 / divisor).max(120);
    RunBudget {
        sim_time: SimTime::from_secs(secs),
        warmup_discard: SimTime::from_secs(secs / 4),
        max_ops: u64::MAX,
    }
}

/// A shorter budget for throughput/memory comparisons (Fig. 10 mid/right).
pub fn throughput_budget(scale: SimScale) -> RunBudget {
    let budget = bigdata_budget(scale);
    RunBudget {
        sim_time: SimTime::from_nanos(budget.sim_time.as_nanos() / 3),
        warmup_discard: SimTime::from_nanos(budget.warmup_discard.as_nanos() / 3),
        max_ops: u64::MAX,
    }
}

/// Assembles the runtime configuration for one collector at scale.
pub fn runtime_config(kind: CollectorKind, heap: HeapConfig, scale: SimScale) -> RuntimeConfig {
    RuntimeConfig {
        collector: kind,
        heap,
        cost: CostModel::scaled(scale),
        threads: 4,
        side_table_scale: scale.divisor(),
        ..Default::default()
    }
}

/// Runs one workload under one collector with the given budget, at the
/// default bench thread count (4 — the concurrent profiler backend).
///
/// When `ROLP_TRACE_DIR` is set, the run records a flight-recorder trace
/// and writes `<dir>/<workload>-<collector>.trace.json` (Chrome
/// `trace_event` format) so any bench run can be inspected in Perfetto
/// without code changes.
pub fn run_one(
    workload: &mut dyn Workload,
    kind: CollectorKind,
    heap: HeapConfig,
    scale: SimScale,
    budget: &RunBudget,
) -> RunOutcome {
    run_one_threads(workload, kind, heap, scale, budget, 4)
}

/// [`run_one`] with an explicit mutator-thread count — the bench-side
/// analogue of the CLI's `--mutator-threads`. `threads` selects the
/// profiler's table backend exactly as the runtime does: 1 runs the
/// sequential/exact `OldTable`, >1 the relaxed-atomic `SharedOldTable`
/// (and the matching GC worker parallelism), so the pause gate can cover
/// both data planes.
pub fn run_one_threads(
    workload: &mut dyn Workload,
    kind: CollectorKind,
    heap: HeapConfig,
    scale: SimScale,
    budget: &RunBudget,
    threads: u32,
) -> RunOutcome {
    let trace_dir = std::env::var("ROLP_TRACE_DIR").ok();
    let mut config = runtime_config(kind, heap, scale);
    config.threads = threads;
    config.trace_enabled = trace_dir.is_some();
    let name = workload.name();
    let out = rolp_workloads::execute(workload, config, budget);
    if let Some(dir) = trace_dir {
        let slug: String = format!("{}-{}", name, kind.label())
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c.to_ascii_lowercase() } else { '-' })
            .collect();
        let path = std::path::Path::new(&dir).join(format!("{slug}.trace.json"));
        if let Err(e) = std::fs::write(&path, rolp_trace::export::to_chrome_trace(&out.trace)) {
            eprintln!("warning: cannot write trace {}: {e}", path.display());
        }
    }
    out
}

/// [`run_one_threads`] for ROLP with the overhead governor engaged
/// (default budgets, no fault plan) — the `ROLP (governed)` gate row.
/// With nothing injected the governor should stay in `Full` and cost
/// only its once-per-epoch evaluation, so this row's pause percentiles
/// must track plain ROLP's (the ISSUE acceptance bound is 10% on p99).
pub fn run_one_governed(
    workload: &mut dyn Workload,
    heap: HeapConfig,
    scale: SimScale,
    budget: &RunBudget,
    threads: u32,
) -> RunOutcome {
    let mut config = runtime_config(CollectorKind::RolpNg2c, heap, scale);
    config.threads = threads;
    config.rolp.governor = Some(rolp::GovernorConfig::default());
    rolp_workloads::execute(workload, config, budget)
}

/// [`run_one_threads`] for ROLP with the sharded OLD-table backend —
/// the `ROLP (sharded)` gate row, the bench-side analogue of the CLI's
/// `--table-shards`. Per-shard locking makes the counting exact (unlike
/// the relaxed-atomic concurrent backend) while the deterministic
/// cross-shard reductions keep published decisions bit-identical to the
/// sequential reference, so this row's pause percentiles must track
/// plain ROLP's (the ISSUE acceptance bound is 10% on p99).
pub fn run_one_sharded(
    workload: &mut dyn Workload,
    heap: HeapConfig,
    scale: SimScale,
    budget: &RunBudget,
    threads: u32,
    shards: usize,
) -> RunOutcome {
    let mut config = runtime_config(CollectorKind::RolpNg2c, heap, scale);
    config.threads = threads;
    config.rolp.table_shards = Some(shards);
    rolp_workloads::execute(workload, config, budget)
}

/// [`run_one_threads`] for ROLP, additionally extracting the learned
/// [`rolp::DecisionProfile`] at the end of the run — the bench-side
/// analogue of the CLI's `--profile-out`. The outcome is identical to a
/// plain ROLP run (extraction happens after the final tick, before the
/// report), so this can substitute for `run_one_threads` in a gate row.
pub fn run_one_learning(
    workload: &mut dyn Workload,
    heap: HeapConfig,
    scale: SimScale,
    budget: &RunBudget,
    threads: u32,
) -> (RunOutcome, rolp::DecisionProfile) {
    let mut config = runtime_config(CollectorKind::RolpNg2c, heap, scale);
    config.threads = threads;
    let mut profile = rolp::DecisionProfile::default();
    let out = rolp_workloads::execute_hooked(
        workload,
        config,
        budget,
        |_| {},
        |rt| {
            if let Some(p) = rt.profiler.as_ref() {
                profile = rolp::DecisionProfile::from_profiler(
                    &p.borrow(),
                    &rt.vm.env.program,
                    &rt.vm.env.jit,
                );
            }
        },
    );
    (out, profile)
}

/// [`run_one_threads`] for ROLP warm-started from a previously learned
/// profile — the bench-side analogue of the CLI's `--profile-in`.
pub fn run_one_warm(
    workload: &mut dyn Workload,
    heap: HeapConfig,
    scale: SimScale,
    budget: &RunBudget,
    threads: u32,
    profile: rolp::DecisionProfile,
) -> RunOutcome {
    let mut config = runtime_config(CollectorKind::RolpNg2c, heap, scale);
    config.threads = threads;
    config.rolp.offline_profile = Some(profile);
    rolp_workloads::execute(workload, config, budget)
}

/// p99 of the pauses recorded inside `[0, window)` of a run — the
/// warmup-window tail the Fig. 10 warm-start comparison and
/// `scripts/warmup_gate.py` gate on. Computed from the raw (undiscarded)
/// recorder so the warmup itself is visible.
pub fn warmup_p99_ms(out: &RunOutcome, window: SimTime) -> f64 {
    let mut ms: Vec<f64> = out
        .raw_pauses
        .events_between(SimTime::ZERO, window)
        .map(|e| e.duration.as_millis_f64())
        .collect();
    if ms.is_empty() {
        return 0.0;
    }
    ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let idx = ((ms.len() as f64) * 0.99).ceil() as usize;
    ms[idx.saturating_sub(1).min(ms.len() - 1)]
}

/// One service-mode gate row: SLO attainment and served tail latency
/// from an open-loop `rolp-serve` run (quick-mode Fig. 8/9 only).
pub struct ServedRow {
    /// Gate label (`ROLP (served)` / `G1 (served)`).
    pub collector: &'static str,
    /// Requests completed by the schedule.
    pub requests: u64,
    /// GC pauses observed.
    pub pauses: usize,
    /// GC cycles completed.
    pub gc_cycles: u64,
    /// Guest operations completed.
    pub ops: u64,
    /// Self-measured profiling overhead.
    pub profiling_overhead: f64,
    /// Exact attainment of the primary (10 ms) SLO, corrected for
    /// coordinated omission.
    pub slo_attainment: f64,
    /// Corrected p99 request latency, milliseconds.
    pub served_p99_ms: f64,
    /// GC-pause p99, milliseconds (the `p99_ms` gate column).
    pub pause_p99_ms: f64,
}

/// Runs the service-mode comparison the `slo_gate.py` acceptance rests
/// on — the same diurnal schedule under ROLP and G1 — and returns one
/// gate row per collector. The serving harness runs 8x smaller than the
/// batch rows: the open-loop schedule is the only load, so the heap has
/// to churn within tens of simulated seconds.
pub fn run_served(scale: SimScale) -> Vec<ServedRow> {
    use rolp_serve::{default_tenants, parse_phases, serve, ServeConfig};
    let serve_scale = SimScale::new(scale.divisor() * 8);
    [CollectorKind::RolpNg2c, CollectorKind::G1]
        .into_iter()
        .map(|kind| {
            let mut cfg = ServeConfig::new(kind, serve_scale);
            cfg.phases = parse_phases("20s@1500x3/1;20s@1500x1/3").expect("schedule parses");
            cfg.inference_period = Some(2);
            let out = serve(&cfg, &mut default_tenants(serve_scale));
            let (_, _, attainment) = out.latency.attainment()[0];
            ServedRow {
                collector: match kind {
                    CollectorKind::RolpNg2c => "ROLP (served)",
                    _ => "G1 (served)",
                },
                requests: out.requests,
                pauses: out.pauses.count(),
                gc_cycles: out.report.gc_cycles,
                ops: out.report.ops,
                profiling_overhead: out.report.profiling_overhead,
                slo_attainment: attainment,
                served_p99_ms: out.latency.corrected().percentile(99.0) as f64 / 1e6,
                pause_p99_ms: out.pauses.percentile_ms(99.0),
            }
        })
        .collect()
}

/// The Fig. 8 percentiles.
pub const FIG8_PERCENTILES: [f64; 7] = [50.0, 75.0, 90.0, 95.0, 99.0, 99.9, 100.0];

/// The Fig. 9 pause-duration interval bounds, in milliseconds.
pub const FIG9_INTERVALS_MS: [u64; 7] = [0, 10, 25, 50, 100, 250, 500];

/// Renders the Fig. 9 interval labels.
pub fn fig9_labels() -> Vec<String> {
    let b = FIG9_INTERVALS_MS;
    let mut out: Vec<String> = b.windows(2).map(|w| format!("[{},{})ms", w[0], w[1])).collect();
    out.push(format!("[{},inf)ms", b[b.len() - 1]));
    out
}

/// Prints a standard experiment header.
pub fn banner(title: &str, scale: SimScale) {
    println!();
    println!("=== {title} ===");
    println!(
        "scale: 1/{} of the paper's testbed (override with ROLP_BENCH_SCALE)",
        scale.divisor()
    );
    println!();
}
