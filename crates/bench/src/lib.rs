//! Shared harness for the paper's tables and figures.
//!
//! Every bench target (`fig6_*`, `fig7_*`, `fig8_9_*`, `fig10_*`,
//! `table1_*`, `table2_*`, `ablations`) builds on these helpers: workload
//! construction at the experiment scale, runtime-configuration assembly
//! per collector, and shared formatting.
//!
//! Scaling: the paper's testbed (6 GB heaps, 30-minute runs, 10 k ops/s)
//! is divided by the experiment scale (default 16, override with
//! `ROLP_BENCH_SCALE`). Copy bandwidth scales with the heap so pause
//! *magnitudes* stay comparable; run *durations* are scaled less
//! aggressively (by scale/4) so each run still contains enough GC cycles
//! for stable percentiles.

use rolp::runtime::{CollectorKind, RuntimeConfig};
use rolp_heap::HeapConfig;
use rolp_metrics::{SimScale, SimTime};
use rolp_vm::CostModel;
use rolp_workloads::{
    CassandraMix, CassandraParams, CassandraWorkload, GraphAlgo, GraphChiParams,
    GraphChiWorkload, LuceneParams, LuceneWorkload, RunBudget, RunOutcome, Workload,
};

pub use rolp_metrics::table::{fmt_bytes, fmt_pct, TextTable};

/// The experiment scale (default 1/16; `ROLP_BENCH_SCALE` overrides).
pub fn scale() -> SimScale {
    SimScale::from_env(16)
}

/// The big-data heap: the paper's 6 GB divided by the scale, with
/// region count held near G1's ~1.5–2 k regions.
pub fn bigdata_heap(scale: SimScale) -> HeapConfig {
    let heap = scale.bytes(6 * 1024 * 1024 * 1024);
    let region = (heap / 1536).next_power_of_two().clamp(64 * 1024, 1024 * 1024);
    HeapConfig { region_bytes: region as usize, max_heap_bytes: heap }
}

/// Run budget for the pause-distribution experiments: the paper's 30 min
/// with a warmup discard, time-scaled by `scale/8` (see module docs).
///
/// The discard is a quarter of the run rather than the paper's sixth:
/// ROLP's learning time is a fixed number of GC cycles (~3 inference
/// windows), so compressing the run compresses the steady state but not
/// the warmup — the discard must still cover it, as the paper's 300 s
/// discard covers its ~350 s stabilization (Fig. 10).
pub fn bigdata_budget(scale: SimScale) -> RunBudget {
    let divisor = (scale.divisor() / 8).max(1);
    let secs = (1_800 / divisor).max(120);
    RunBudget {
        sim_time: SimTime::from_secs(secs),
        warmup_discard: SimTime::from_secs(secs / 4),
        max_ops: u64::MAX,
    }
}

/// A shorter budget for throughput/memory comparisons (Fig. 10 mid/right).
pub fn throughput_budget(scale: SimScale) -> RunBudget {
    let budget = bigdata_budget(scale);
    RunBudget {
        sim_time: SimTime::from_nanos(budget.sim_time.as_nanos() / 3),
        warmup_discard: SimTime::from_nanos(budget.warmup_discard.as_nanos() / 3),
        max_ops: u64::MAX,
    }
}

/// Cassandra workload at experiment scale.
pub fn cassandra(mix: CassandraMix, scale: SimScale) -> CassandraWorkload {
    CassandraWorkload::new(CassandraParams {
        mix,
        op_pacing_ns: 100_000, // 10 k ops/s as in the paper
        memtable_flush_entries: scale.count(2_400_000) as usize,
        key_space: scale.count(8_000_000),
        parse_buffers_per_op: 6,
        row_cache_entries: scale.count(1_200_000) as usize,
        seed: 0xCA55,
    })
}

/// Lucene workload at experiment scale.
pub fn lucene(scale: SimScale) -> LuceneWorkload {
    LuceneWorkload::new(LuceneParams {
        write_fraction: 0.80,
        op_pacing_ns: 40_000, // 25 k ops/s as in the paper
        segment_flush_docs: scale.count(4_500_000) as usize,
        vocabulary: scale.count(1_200_000),
        doc_words: 48,
        postings_per_doc: 2,
        analysis_scratch: 4,
        seed: 0x10CE,
    })
}

/// GraphChi workload at experiment scale (paper: 42 M vertices, 1.5 B
/// edges, 16 shards — one shard's edge blocks are roughly a quarter of
/// the heap and live for exactly one interval).
pub fn graphchi(algo: GraphAlgo, scale: SimScale) -> GraphChiWorkload {
    let vertices = scale.count(42_000_000) as u32;
    let edges = scale.count(1_500_000_000);
    GraphChiWorkload::new(GraphChiParams {
        algo,
        vertices,
        edges,
        shards: 16,
        chunk: 4_096,
        io_ns_per_edge: 800,
        update_sample: 64,
        seed: 0x6AF,
    })
}

/// The six big-data rows of Table 1 / Figs. 8–10, in paper order.
pub fn bigdata_workloads(scale: SimScale) -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(cassandra(CassandraMix::WriteIntensive, scale)),
        Box::new(cassandra(CassandraMix::ReadWrite, scale)),
        Box::new(cassandra(CassandraMix::ReadIntensive, scale)),
        Box::new(lucene(scale)),
        Box::new(graphchi(GraphAlgo::ConnectedComponents, scale)),
        Box::new(graphchi(GraphAlgo::PageRank, scale)),
    ]
}

/// Assembles the runtime configuration for one collector at scale.
pub fn runtime_config(kind: CollectorKind, heap: HeapConfig, scale: SimScale) -> RuntimeConfig {
    RuntimeConfig {
        collector: kind,
        heap,
        cost: CostModel::scaled(scale),
        threads: 4,
        side_table_scale: scale.divisor(),
        ..Default::default()
    }
}

/// Runs one workload under one collector with the given budget.
pub fn run_one(
    workload: &mut dyn Workload,
    kind: CollectorKind,
    heap: HeapConfig,
    scale: SimScale,
    budget: &RunBudget,
) -> RunOutcome {
    let config = runtime_config(kind, heap, scale);
    rolp_workloads::execute(workload, config, budget)
}

/// The Fig. 8 percentiles.
pub const FIG8_PERCENTILES: [f64; 7] = [50.0, 75.0, 90.0, 95.0, 99.0, 99.9, 100.0];

/// The Fig. 9 pause-duration interval bounds, in milliseconds.
pub const FIG9_INTERVALS_MS: [u64; 7] = [0, 10, 25, 50, 100, 250, 500];

/// Renders the Fig. 9 interval labels.
pub fn fig9_labels() -> Vec<String> {
    let b = FIG9_INTERVALS_MS;
    let mut out: Vec<String> = b.windows(2).map(|w| format!("[{},{})ms", w[0], w[1])).collect();
    out.push(format!("[{},inf)ms", b[b.len() - 1]));
    out
}

/// Prints a standard experiment header.
pub fn banner(title: &str, scale: SimScale) {
    println!();
    println!("=== {title} ===");
    println!(
        "scale: 1/{} of the paper's testbed (override with ROLP_BENCH_SCALE)",
        scale.divisor()
    );
    println!();
}
