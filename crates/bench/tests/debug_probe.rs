//! Diagnostic probes (ignored by default): run one workload under ROLP
//! and dump the profiler's internal state — decisions, OLD-table rows,
//! stats, and the biggest pauses with timestamps. Invaluable when tuning
//! workloads or investigating why a decision did or did not form.
//!
//! ```sh
//! cargo test --release -p rolp-bench --test debug_probe -- --ignored --nocapture
//! ```

use rolp::runtime::{CollectorKind, JvmRuntime};
use rolp::LifetimeTable;
use rolp_metrics::SimScale;
use rolp_workloads::{CassandraMix, RunBudget, Workload};

#[test]
#[ignore]
fn probe_lucene_rolp_decisions() {
    let scale = SimScale::new(64);
    let w = rolp_bench::lucene(scale);
    probe(Box::new(w), scale, 200);
}

#[test]
#[ignore]
fn probe_graphchi_rolp_decisions() {
    let scale = SimScale::new(64);
    let w = rolp_bench::graphchi(rolp_workloads::GraphAlgo::ConnectedComponents, scale);
    probe(Box::new(w), scale, 200);
}

fn probe(mut w: Box<dyn Workload>, scale: SimScale, secs: u64) {
    let heap = rolp_bench::bigdata_heap(scale);
    let config = {
        let mut c = rolp_bench::runtime_config(CollectorKind::RolpNg2c, heap, scale);
        c.rolp.filters = w.profiling_filters();
        c
    };
    let program = w.build_program();
    let mut rt = JvmRuntime::new(config, program);
    w.setup(&mut rt);

    let budget = RunBudget::scaled_run(secs);
    let mut ops = 0u64;
    loop {
        let mut ctx = rt.ctx(rolp_vm::ThreadId(0));
        ops += w.tick(&mut ctx);
        if rt.vm.env.clock.now() >= budget.sim_time {
            break;
        }
    }
    let p = rt.profiler.clone().unwrap();
    let p = p.borrow();
    println!("ops={ops} cycles={}", rt.vm.collector.gc_cycles());
    println!("decisions:");
    for (k, g) in p.decisions() {
        println!("  ctx {:#010x} (site {}, tss {}) -> gen {}", k, k >> 16, k & 0xFFFF, g);
    }
    println!("touched rows now:");
    for key in p.old.touched_rows() {
        let h = p.old.histogram(key);
        println!("  site {:>3} tss {:>5}: {:?}", key >> 16, key & 0xFFFF, h);
    }
    let stats = p.stats(&rt.vm.env.program, &rt.vm.env.jit);
    println!("stats: {stats:#?}");
    // Pause-kind summary.
    use rolp_metrics::PauseKind::*;
    for k in [Young, Mixed, Full, ConcurrentHandshake] {
        let evs: Vec<_> =
            rt.vm.env.pauses.events().iter().filter(|e| e.kind == k).cloned().collect();
        if !evs.is_empty() {
            let max = evs.iter().map(|e| e.duration.as_millis_f64()).fold(0.0, f64::max);
            println!("{}: {} pauses, max {:.1} ms", k.label(), evs.len(), max);
            // last few big ones with timestamps
            let mut big: Vec<_> =
                evs.iter().filter(|e| e.duration.as_millis_f64() > 20.0).collect();
            if big.len() > 6 {
                let n = big.len();
                big = big.split_off(n - 6);
            }
            for e in big {
                println!(
                    "    at {:>8.1}s: {:.1} ms",
                    e.at.as_secs_f64(),
                    e.duration.as_millis_f64()
                );
            }
        }
    }
}

#[test]
#[ignore]
fn probe_cassandra_rolp_decisions() {
    let scale = SimScale::new(128);
    let mut w = rolp_bench::cassandra(CassandraMix::WriteIntensive, scale);
    let heap = rolp_bench::bigdata_heap(scale);
    let config = {
        let mut c = rolp_bench::runtime_config(CollectorKind::RolpNg2c, heap, scale);
        c.rolp.filters = w.profiling_filters();
        c
    };
    let program = w.build_program();
    let mut rt = JvmRuntime::new(config, program);
    w.setup(&mut rt);

    let budget = RunBudget::scaled_run(60);
    let mut ops = 0u64;
    loop {
        let mut ctx = rt.ctx(rolp_vm::ThreadId(0));
        ops += w.tick(&mut ctx);
        if rt.vm.env.clock.now() >= budget.sim_time {
            break;
        }
    }
    let p = rt.profiler.clone().unwrap();
    let p = p.borrow();
    println!("ops={ops} cycles={}", rt.vm.collector.gc_cycles());
    println!("decisions:");
    for (k, g) in p.decisions() {
        println!("  ctx {:#010x} (site {}, tss {}) -> gen {}", k, k >> 16, k & 0xFFFF, g);
    }
    println!("touched rows now:");
    for key in p.old.touched_rows() {
        let h = p.old.histogram(key);
        println!("  site {:>3} tss {:>5}: {:?}", key >> 16, key & 0xFFFF, h);
    }
    let stats = p.stats(&rt.vm.env.program, &rt.vm.env.jit);
    println!("stats: {stats:#?}");
}
