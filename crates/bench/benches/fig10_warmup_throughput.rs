//! Figure 10: Cassandra WI warmup pause timeline (left), and throughput
//! and max memory usage normalized to G1 (middle, right).
//!
//! Left: pause times over the warmup window of a Cassandra WI run under
//! ROLP, bucketed per time slice. The paper's three phases must be
//! visible: (1) no lifetime information yet — G1-like pauses; (2) first
//! inference results — pauses drop as NG2C starts pretenuring; (3) more
//! profiling information — pauses stabilize low (paper: ~350 s; here
//! scaled with the GC-cycle compression).
//!
//! Middle/right: for every big-data workload, throughput and max memory
//! of CMS / ZGC / NG2C / ROLP normalized to G1. Paper shape: ROLP within
//! ~5-6% of G1 throughput with negligible memory overhead, while ZGC pays
//! a large throughput tax and more memory for its tiny pauses.

use rolp::runtime::CollectorKind;
use rolp_bench::{
    banner, bigdata_budget, bigdata_heap, bigdata_workloads, run_one, scale, throughput_budget,
    TextTable,
};
use rolp_metrics::SimTime;
use rolp_workloads::{CassandraMix, RunBudget};

fn main() {
    let scale = scale();
    banner("Figure 10: warmup pauses (left), throughput & max memory vs G1 (mid/right)", scale);

    // --- Left: warmup timeline under ROLP ---
    let heap = bigdata_heap(scale);
    let full = bigdata_budget(scale);
    let warmup_window = SimTime::from_nanos(full.sim_time.as_nanos() / 2);
    let budget =
        RunBudget { sim_time: warmup_window, warmup_discard: SimTime::ZERO, max_ops: u64::MAX };
    let mut w = rolp_bench::cassandra(CassandraMix::WriteIntensive, scale);
    let out = run_one(&mut w, CollectorKind::RolpNg2c, heap.clone(), scale, &budget);

    println!("--- Fig. 10 (left): Cassandra WI warmup pause times under ROLP ---");
    let slices = 24u64;
    let slice_ns = warmup_window.as_nanos() / slices;
    let mut timeline = TextTable::new(vec!["window", "pauses", "mean ms", "max ms"]);
    for i in 0..slices {
        let from = SimTime::from_nanos(i * slice_ns);
        let to = SimTime::from_nanos((i + 1) * slice_ns);
        let evs: Vec<_> = out.raw_pauses.events_between(from, to).collect();
        let (mut sum, mut max) = (0.0f64, 0.0f64);
        for e in &evs {
            let ms = e.duration.as_millis_f64();
            sum += ms;
            max = max.max(ms);
        }
        let mean = if evs.is_empty() { 0.0 } else { sum / evs.len() as f64 };
        timeline.row(vec![
            format!("{:>5.0}-{:<5.0}s", from.as_secs_f64(), to.as_secs_f64()),
            evs.len().to_string(),
            format!("{mean:.1}"),
            format!("{max:.1}"),
        ]);
    }
    println!("{}", timeline.render());
    println!(
        "shape check: pauses start G1-like, drop after the first inference\n\
         rounds, and stabilize low once pretenuring covers the hot contexts\n\
         (the paper's three warmup phases, ~350 s there, compressed here).\n"
    );

    // --- Middle/right: throughput and max memory normalized to G1 ---
    let budget = throughput_budget(scale);
    let systems =
        [CollectorKind::Cms, CollectorKind::Zgc, CollectorKind::Ng2c, CollectorKind::RolpNg2c];
    let mut thr = TextTable::new(vec!["workload", "CMS", "ZGC", "NG2C", "ROLP"]);
    let mut mem = TextTable::new(vec!["workload", "CMS", "ZGC", "NG2C", "ROLP"]);

    let names: Vec<String> = bigdata_workloads(scale).iter().map(|w| w.name()).collect();
    for (wi, name) in names.iter().enumerate() {
        let g1 = {
            let mut ws = bigdata_workloads(scale);
            run_one(ws[wi].as_mut(), CollectorKind::G1, heap.clone(), scale, &budget)
        };
        let g1_thr = g1.report.ops_per_busy_sec.max(1e-9);
        let g1_mem = g1.report.max_committed_bytes.max(1) as f64;

        let mut thr_row = vec![name.clone()];
        let mut mem_row = vec![name.clone()];
        for &kind in &systems {
            let mut ws = bigdata_workloads(scale);
            let out = run_one(ws[wi].as_mut(), kind, heap.clone(), scale, &budget);
            thr_row.push(format!("{:.3}", out.report.ops_per_busy_sec / g1_thr));
            mem_row.push(format!("{:.3}", out.report.max_committed_bytes as f64 / g1_mem));
        }
        thr.row(thr_row);
        mem.row(mem_row);
        eprintln!("  {name} done");
    }
    println!("--- Fig. 10 (middle): throughput normalized to G1 (higher = better) ---");
    println!("{}", thr.render());
    println!("--- Fig. 10 (right): max memory usage normalized to G1 (lower = better) ---");
    println!("{}", mem.render());
    println!(
        "shape check: ROLP within ~6% of G1 throughput with negligible memory\n\
         overhead (the OLD table); ZGC trades a visible throughput/memory tax\n\
         for its sub-10 ms pauses (paper Section 8.5)."
    );
}
