//! Figure 10: Cassandra WI warmup pause timeline (left), and throughput
//! and max memory usage normalized to G1 (middle, right).
//!
//! Left: pause times over the warmup window of a Cassandra WI run under
//! ROLP, bucketed per time slice. The paper's three phases must be
//! visible: (1) no lifetime information yet — G1-like pauses; (2) first
//! inference results — pauses drop as NG2C starts pretenuring; (3) more
//! profiling information — pauses stabilize low (paper: ~350 s; here
//! scaled with the GC-cycle compression).
//!
//! Middle/right: for every big-data workload, throughput and max memory
//! of CMS / ZGC / NG2C / ROLP normalized to G1. Paper shape: ROLP within
//! ~5-6% of G1 throughput with negligible memory overhead, while ZGC pays
//! a large throughput tax and more memory for its tiny pauses.
//!
//! CI hooks:
//! - `ROLP_BENCH_WARMUP=1` runs the warm-start comparison instead: the
//!   warmup window of Cassandra WI under ROLP started cold, warm (from a
//!   profile the cold run exported), and drifted-warm (from a profile
//!   learned on Cassandra RI — same program shape, different traffic).
//!   Reports the warmup-window p99 and time-to-stable-decisions (first
//!   epoch after which the published decision table stops changing) for
//!   each.
//! - `ROLP_BENCH_JSON=<file>` (warmup mode only) writes those rows as
//!   JSON for `scripts/warmup_gate.py --bench`.

use rolp::runtime::CollectorKind;
use rolp_bench::{
    banner, bigdata_budget, bigdata_heap, bigdata_workloads, run_one, scale, throughput_budget,
    TextTable,
};
use rolp_metrics::SimTime;
use rolp_workloads::{CassandraMix, RunBudget, RunOutcome};

/// One warm-start row for the warmup gate.
struct WarmupRow {
    label: &'static str,
    warmup_p99_ms: f64,
    epochs_to_stable: u64,
    pauses: usize,
    gc_cycles: u64,
    ops: u64,
}

fn warmup_row(label: &'static str, out: &RunOutcome, window: SimTime) -> WarmupRow {
    let rolp = out.report.rolp.as_ref().expect("warmup rows are ROLP runs");
    WarmupRow {
        label,
        warmup_p99_ms: rolp_bench::warmup_p99_ms(out, window),
        epochs_to_stable: rolp.last_change_epoch,
        pauses: out.raw_pauses.count(),
        gc_cycles: out.report.gc_cycles,
        ops: out.report.ops,
    }
}

fn render_warmup_json(scale_divisor: u64, rows: &[WarmupRow]) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"scale\": {scale_divisor},\n  \"results\": [\n"));
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"workload\": \"Cassandra WI\", \"collector\": \"{}\", \
             \"pauses\": {}, \"gc_cycles\": {}, \"ops\": {}, \
             \"warmup_p99_ms\": {:.3}, \"epochs_to_stable\": {}}}{}",
            r.label,
            r.pauses,
            r.gc_cycles,
            r.ops,
            r.warmup_p99_ms,
            r.epochs_to_stable,
            if i + 1 < rows.len() { ",\n" } else { "\n" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// The `ROLP_BENCH_WARMUP=1` mode: cold vs warm vs drifted-warm starts
/// over the Cassandra WI warmup window.
fn warmup_comparison(scale: rolp_metrics::SimScale) {
    let heap = bigdata_heap(scale);
    let full = bigdata_budget(scale);
    let warmup_window = SimTime::from_nanos(full.sim_time.as_nanos() / 2);
    let budget =
        RunBudget { sim_time: warmup_window, warmup_discard: SimTime::ZERO, max_ops: u64::MAX };

    // Cold: no prior profile; the run also exports what it learned.
    let mut w = rolp_bench::cassandra(CassandraMix::WriteIntensive, scale);
    let (cold, wi_profile) = rolp_bench::run_one_learning(&mut w, heap.clone(), scale, &budget, 4);

    // Warm: a restarted service replaying the cold run's profile.
    let mut w = rolp_bench::cassandra(CassandraMix::WriteIntensive, scale);
    let warm =
        rolp_bench::run_one_warm(&mut w, heap.clone(), scale, &budget, 4, wi_profile.clone());

    // Drifted-warm: the profile was learned under read-intensive traffic,
    // then the restarted service sees write-intensive traffic. Same
    // program shape (the fingerprint matches), different demography — the
    // confidence-weighted blend must converge instead of replaying stale
    // decisions forever.
    let mut w = rolp_bench::cassandra(CassandraMix::ReadIntensive, scale);
    let (_, ri_profile) = rolp_bench::run_one_learning(&mut w, heap.clone(), scale, &budget, 4);
    let mut w = rolp_bench::cassandra(CassandraMix::WriteIntensive, scale);
    let drifted = rolp_bench::run_one_warm(&mut w, heap, scale, &budget, 4, ri_profile);

    let rows = vec![
        warmup_row("ROLP (cold)", &cold, warmup_window),
        warmup_row("ROLP (warm)", &warm, warmup_window),
        warmup_row("ROLP (drifted-warm)", &drifted, warmup_window),
    ];

    println!("--- Fig. 10 (warm start): Cassandra WI warmup window, cold vs warm ---");
    let mut t = TextTable::new(vec![
        "run",
        "warmup p99 ms",
        "stable at epoch",
        "pauses",
        "gc cycles",
        "ops",
    ]);
    for r in &rows {
        t.row(vec![
            r.label.to_string(),
            format!("{:.1}", r.warmup_p99_ms),
            r.epochs_to_stable.to_string(),
            r.pauses.to_string(),
            r.gc_cycles.to_string(),
            r.ops.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!(
        "shape check: the warm start stabilizes earlier than cold with a\n\
         lower warmup-window p99 (no warmup cliff; under the multi-thread\n\
         TLAB fast path borderline rows may re-estimate by a quantile\n\
         bin, so epoch 0 is not guaranteed here); the drifted-warm start\n\
         decays stale entries instead of replaying them forever, so it\n\
         still beats cold over the warmup window."
    );

    if let Ok(path) = std::env::var("ROLP_BENCH_JSON") {
        let rendered = render_warmup_json(scale.divisor(), &rows);
        std::fs::write(&path, rendered).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("stats: {} run(s) written to {path} (ROLP_BENCH_JSON)", rows.len());
    }
}

fn main() {
    let scale = scale();
    if std::env::var("ROLP_BENCH_WARMUP").is_ok_and(|v| v != "0") {
        banner("Figure 10 (warm start): cold vs warm vs drifted-warm warmup", scale);
        warmup_comparison(scale);
        return;
    }
    banner("Figure 10: warmup pauses (left), throughput & max memory vs G1 (mid/right)", scale);

    // --- Left: warmup timeline under ROLP ---
    let heap = bigdata_heap(scale);
    let full = bigdata_budget(scale);
    let warmup_window = SimTime::from_nanos(full.sim_time.as_nanos() / 2);
    let budget =
        RunBudget { sim_time: warmup_window, warmup_discard: SimTime::ZERO, max_ops: u64::MAX };
    let mut w = rolp_bench::cassandra(CassandraMix::WriteIntensive, scale);
    let out = run_one(&mut w, CollectorKind::RolpNg2c, heap.clone(), scale, &budget);

    println!("--- Fig. 10 (left): Cassandra WI warmup pause times under ROLP ---");
    let slices = 24u64;
    let slice_ns = warmup_window.as_nanos() / slices;
    let mut timeline = TextTable::new(vec!["window", "pauses", "mean ms", "max ms"]);
    for i in 0..slices {
        let from = SimTime::from_nanos(i * slice_ns);
        let to = SimTime::from_nanos((i + 1) * slice_ns);
        let evs: Vec<_> = out.raw_pauses.events_between(from, to).collect();
        let (mut sum, mut max) = (0.0f64, 0.0f64);
        for e in &evs {
            let ms = e.duration.as_millis_f64();
            sum += ms;
            max = max.max(ms);
        }
        let mean = if evs.is_empty() { 0.0 } else { sum / evs.len() as f64 };
        timeline.row(vec![
            format!("{:>5.0}-{:<5.0}s", from.as_secs_f64(), to.as_secs_f64()),
            evs.len().to_string(),
            format!("{mean:.1}"),
            format!("{max:.1}"),
        ]);
    }
    println!("{}", timeline.render());
    println!(
        "shape check: pauses start G1-like, drop after the first inference\n\
         rounds, and stabilize low once pretenuring covers the hot contexts\n\
         (the paper's three warmup phases, ~350 s there, compressed here).\n"
    );

    // --- Middle/right: throughput and max memory normalized to G1 ---
    let budget = throughput_budget(scale);
    let systems =
        [CollectorKind::Cms, CollectorKind::Zgc, CollectorKind::Ng2c, CollectorKind::RolpNg2c];
    let mut thr = TextTable::new(vec!["workload", "CMS", "ZGC", "NG2C", "ROLP"]);
    let mut mem = TextTable::new(vec!["workload", "CMS", "ZGC", "NG2C", "ROLP"]);

    let names: Vec<String> = bigdata_workloads(scale).iter().map(|w| w.name()).collect();
    for (wi, name) in names.iter().enumerate() {
        let g1 = {
            let mut ws = bigdata_workloads(scale);
            run_one(ws[wi].as_mut(), CollectorKind::G1, heap.clone(), scale, &budget)
        };
        let g1_thr = g1.report.ops_per_busy_sec.max(1e-9);
        let g1_mem = g1.report.max_committed_bytes.max(1) as f64;

        let mut thr_row = vec![name.clone()];
        let mut mem_row = vec![name.clone()];
        for &kind in &systems {
            let mut ws = bigdata_workloads(scale);
            let out = run_one(ws[wi].as_mut(), kind, heap.clone(), scale, &budget);
            thr_row.push(format!("{:.3}", out.report.ops_per_busy_sec / g1_thr));
            mem_row.push(format!("{:.3}", out.report.max_committed_bytes as f64 / g1_mem));
        }
        thr.row(thr_row);
        mem.row(mem_row);
        eprintln!("  {name} done");
    }
    println!("--- Fig. 10 (middle): throughput normalized to G1 (higher = better) ---");
    println!("{}", thr.render());
    println!("--- Fig. 10 (right): max memory usage normalized to G1 (lower = better) ---");
    println!("{}", mem.render());
    println!(
        "shape check: ROLP within ~6% of G1 throughput with negligible memory\n\
         overhead (the OLD table); ZGC trades a visible throughput/memory tax\n\
         for its sub-10 ms pauses (paper Section 8.5)."
    );
}
