//! Figure 7: worst-case conflict-resolution time.
//!
//! The §5 algorithm converges in `ceil(1/P)` probing rounds of 16 GC
//! cycles each; the paper plots the worst case per DaCapo benchmark for
//! P ∈ {5%, 10%, 20%, 50%} using the measured average GC interval. This
//! harness does the same — it measures each benchmark's GC interval and
//! jitted-call-site count from a short ROLP run, applies the model, and
//! then cross-checks the model against an *actual* resolution on a
//! conflict-bearing benchmark.

use rolp::runtime::{CollectorKind, RuntimeConfig};
use rolp::{worst_case_resolution_time_ms, ConflictConfig};
use rolp_bench::{banner, scale, TextTable};
use rolp_vm::CostModel;
use rolp_workloads::{all_benchmarks, benchmark, execute, DacapoBench, DacapoSpec, RunBudget};

const P_VALUES: [f64; 4] = [0.05, 0.10, 0.20, 0.50];

/// Measured inputs for the model: jitted call sites and mean GC interval.
fn measure(spec: &DacapoSpec, scale: rolp_metrics::SimScale) -> (usize, f64) {
    let mut bench = DacapoBench::new(spec.clone(), 7);
    let config = RuntimeConfig {
        collector: CollectorKind::RolpNg2c,
        heap: spec.heap_config(scale),
        cost: CostModel::scaled(scale),
        ..Default::default()
    };
    let ops = spec.ops.min(6_000);
    let out = execute(&mut bench, config, &RunBudget::smoke(ops));
    let rolp = out.report.rolp.expect("rolp stats");
    let cycles = out.report.gc_cycles.max(1);
    let interval_ms = out.report.elapsed.as_millis_f64() / cycles as f64;
    (rolp.conflicts.frozen_sites as usize + rolp.installed_call_sites, interval_ms)
}

fn main() {
    let scale = scale();
    banner("Figure 7: worst-case conflict resolution time (ms) vs P", scale);

    let mut table = TextTable::new(vec![
        "benchmark",
        "jitted calls",
        "GC interval",
        "P=5%",
        "P=10%",
        "P=20%",
        "P=50%",
    ]);
    for spec in all_benchmarks() {
        let (call_sites, interval_ms) = measure(&spec, scale);
        let mut row =
            vec![spec.name.to_string(), call_sites.to_string(), format!("{interval_ms:.0}ms")];
        for p in P_VALUES {
            let ms = worst_case_resolution_time_ms(call_sites, p, interval_ms, 16);
            row.push(format!("{:.1}s", ms / 1_000.0));
        }
        table.row(row);
    }
    println!("{}", table.render());
    println!(
        "shape check: time scales with 1/P (P=5% is 10x P=50%); the paper reports\n\
         worst cases up to ~520 s at P=20%, under two minutes for most benchmarks.\n"
    );

    // Cross-check: measure an actual resolution on pmd (6 conflicts).
    // Scale the op budget with the heap so the run spans enough GC cycles
    // for several resolution rounds at any experiment scale.
    let ops = 16_000_000 / scale.divisor();
    let spec = DacapoSpec { ops, ..benchmark("pmd").expect("pmd exists") };
    let mut bench = DacapoBench::new(spec.clone(), 7);
    let mut config = RuntimeConfig {
        collector: CollectorKind::RolpNg2c,
        heap: spec.heap_config(scale),
        cost: CostModel::scaled(scale),
        ..Default::default()
    };
    config.rolp.conflict = ConflictConfig { p_fraction: 0.20, shrink: true };
    let out = execute(&mut bench, config, &RunBudget::smoke(spec.ops));
    let rolp = out.report.rolp.expect("rolp stats");
    println!(
        "cross-check [pmd, P=20%]: detected {} conflict site(s), resolved {}, \
         {} probe rounds, over {} GC cycles ({} elapsed)",
        rolp.conflicts.detected,
        rolp.conflicts.resolved,
        rolp.conflicts.probe_rounds,
        out.report.gc_cycles,
        out.report.elapsed,
    );
    println!(
        "model predicts <= {} probe rounds at P=20% (ceil(1/P) = 5 per conflict; conflicts\n\
         are worked sequentially, plus shrink rounds to find each minimal set S)",
        5 * rolp.conflicts.detected.max(1)
    );
}
