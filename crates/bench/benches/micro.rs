//! Criterion micro-benchmarks for the hot paths of the reproduction.
//!
//! These are the operations whose cost the paper reasons about at the
//! instruction level (§3.2.4): the header encode/install, the OLD-table
//! increment on the allocation path, the thread-stack-state add/sub, the
//! heap allocation fast path, and the survivor-processing table update.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rolp::{LifetimeTable, OldTable, WorkerTable};
use rolp_heap::{Heap, HeapConfig, ObjectHeader, SpaceKind};
use rolp_metrics::Histogram;
use rolp_vm::thread::{MutatorThread, ThreadId};
use rolp_vm::CallSiteId;
use rolp_workloads::Zipfian;

fn bench_header(c: &mut Criterion) {
    c.bench_function("header_install_context", |b| {
        let h = ObjectHeader::new(0xABCDEF);
        let mut ctx = 0u32;
        b.iter(|| {
            ctx = ctx.wrapping_add(1);
            black_box(h.with_allocation_context(ctx).allocation_context())
        });
    });
    c.bench_function("header_age_increment", |b| {
        let h = ObjectHeader::new(1).with_allocation_context(0xDEAD_BEEF);
        b.iter(|| black_box(h.with_incremented_age().age()));
    });
}

fn bench_old_table(c: &mut Criterion) {
    c.bench_function("old_table_record_allocation", |b| {
        let mut t = OldTable::new();
        let mut ctx = 1u32 << 16;
        b.iter(|| {
            ctx = ctx.wrapping_add(1) | (1 << 16);
            t.record_allocation(black_box(ctx));
        });
    });
    c.bench_function("old_table_survivor_update", |b| {
        let mut t = OldTable::new();
        t.record_allocation(5 << 16);
        b.iter(|| t.record_survival(black_box(5 << 16), black_box(3)));
    });
    c.bench_function("worker_table_record_and_merge_1k", |b| {
        let mut t = OldTable::new();
        b.iter(|| {
            let mut w = WorkerTable::new();
            for i in 0..1_000u32 {
                w.record_survival((1 + (i & 7)) << 16, (i % 15) as u8);
            }
            w.merge_into(&mut t);
        });
    });
}

fn bench_stack_state(c: &mut Criterion) {
    c.bench_function("tss_push_pop", |b| {
        let mut t = MutatorThread::new(ThreadId(0));
        b.iter(|| {
            t.push_frame(CallSiteId(1), black_box(0x1234));
            t.pop_frame(black_box(0x1234));
        });
    });
}

fn bench_alloc_path(c: &mut Criterion) {
    c.bench_function("heap_alloc_small_object", |b| {
        let mut heap = Heap::new(HeapConfig { region_bytes: 1 << 20, max_heap_bytes: 1 << 30 });
        let class = heap.classes.register("bench.Obj");
        let header = ObjectHeader::new(1);
        b.iter(|| {
            if heap.free_regions() < 4 {
                // Recycle: release everything eden and start over.
                for id in heap.regions_of_kind(rolp_heap::RegionKind::Eden) {
                    heap.release_region(id);
                }
            }
            black_box(heap.alloc_in(SpaceKind::Eden, class, 0, 6, header).unwrap())
        });
    });
}

fn bench_metrics(c: &mut Criterion) {
    c.bench_function("histogram_record", |b| {
        let mut h = Histogram::new();
        let mut v = 1u64;
        b.iter(|| {
            v = v.wrapping_mul(6364136223846793005).wrapping_add(1);
            h.record(black_box(v >> 40));
        });
    });
    c.bench_function("zipfian_sample", |b| {
        let z = Zipfian::ycsb(1_000_000);
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(7);
        b.iter(|| black_box(z.sample(&mut rng)));
    });
}

criterion_group!(
    benches,
    bench_header,
    bench_old_table,
    bench_stack_state,
    bench_alloc_path,
    bench_metrics
);
criterion_main!(benches);
