//! Allocation fast-path micro gate: `ns/alloc` and `ns/decision-lookup`.
//!
//! Two paired measurements, each fast path against its pre-TLAB
//! reference on the same machine in the same process:
//!
//! - **ns/alloc** — the full mutator allocation path through the
//!   runtime. Fast: TLAB bump + decision micro-cache + batched age-0
//!   recording (the defaults). Reference: shared-frontier allocation, a
//!   `DecisionStore` Acquire load per allocation, and a per-alloc
//!   OLD-table increment (`--no-tlab --no-microcache` semantics).
//! - **ns/decision-lookup** — the decision consult alone. Fast: a
//!   `DecisionCache` hit (validate against the version hint, decode the
//!   cached slot byte). Reference: the uncached path (Acquire table
//!   load + bounds-checked slot resolve) on every lookup.
//!
//! Absolute ns/op is machine-dependent, so the committed gate value is
//! the *within-run* `speedup_vs_reference` ratio: `scripts/bench_gate.py`
//! fails the build when the fast path stops beating the reference path
//! it replaced (floor 1.0, `--min-speedup`). The ns columns are recorded
//! in `BENCH_baseline.json` for trend reading, not gated.
//!
//! CI hooks: `ROLP_BENCH_JSON=<file>` writes the rows; the `alloc-micro`
//! job gates them with `scripts/bench_gate.py --partial`, and the
//! `bench-smoke` job gates them alongside the fig8/9 rows.

use std::collections::BTreeMap;
use std::hint::black_box;
use std::time::Instant;

use rolp::runtime::{CollectorKind, JvmRuntime, RuntimeConfig};
use rolp_bench::{banner, TextTable};
use rolp_heap::HeapConfig;
use rolp_vm::{DecisionCache, DecisionStore, DecisionTable, ProgramBuilder, ThreadId};

/// Timed repetitions per measurement; the first is a warmup and the
/// fastest of the rest is reported (minimum-of-N rejects scheduler
/// noise far better than the mean on shared CI runners).
const REPS: usize = 5;

/// End-to-end mutator allocations per repetition.
const ALLOCS_PER_REP: u64 = 200_000;

/// Decision lookups per repetition.
const LOOKUPS_PER_REP: u64 = 2_000_000;

/// ns per allocation through the full runtime path.
fn alloc_ns_per_op(fast: bool) -> f64 {
    let mut b = ProgramBuilder::new();
    let main = b.method("app.Main::run", 100, false);
    let worker = b.method("app.Worker::step", 80, false);
    let call = b.call_site(main, worker);
    let site = b.alloc_site(worker, 1);
    let program = b.build();

    let mut config = RuntimeConfig {
        collector: CollectorKind::RolpNg2c,
        // Large regions and a roomy heap: collections still happen (every
        // object is released immediately, so they are cheap and identical
        // on both sides) without dominating the per-alloc cost.
        heap: HeapConfig { region_bytes: 1 << 20, max_heap_bytes: 128 << 20 },
        seed: 7,
        ..Default::default()
    };
    if !fast {
        // The pre-TLAB reference path.
        config.tlab_bytes = 0;
        config.microcache = false;
        config.rolp.batch_age0 = false;
    }

    let mut rt = JvmRuntime::new(config, program);
    let class = rt.vm.env.heap.classes.register("bench.Item");
    let mut best = f64::INFINITY;
    for rep in 0..=REPS {
        let start = Instant::now();
        let mut ctx = rt.ctx(ThreadId(0));
        ctx.call(call, |ctx| {
            for _ in 0..ALLOCS_PER_REP {
                let h = ctx.alloc(site, class, 1, 6);
                ctx.release(h);
            }
            ctx.complete_ops(ALLOCS_PER_REP);
        });
        let ns = start.elapsed().as_nanos() as f64 / ALLOCS_PER_REP as f64;
        if rep > 0 {
            best = best.min(ns);
        }
    }
    best
}

/// ns per decision lookup: micro-cache hit vs uncached store consult.
///
/// The contexts resolve through conflict-*expanded* sites (paper
/// §3.2.3): the uncached path pays the expanded-block walk on every
/// lookup, which is exactly what the cache's stored slot byte skips. For
/// unexpanded sites both paths are a single array index and the cache is
/// cost-neutral, so the expanded case is the one worth gating.
fn lookup_ns_per_op(fast: bool) -> f64 {
    // 64 published contexts, one per cache slot (`slot_of` maps
    // `site << 16` to `site & 63`), so the fast side measures the
    // steady-state hit path after a one-miss-per-slot warmup.
    let store = DecisionStore::with_initial(DecisionTable::empty_with_geometry(256, 64));
    let rows: BTreeMap<u32, u8> = (1..=64u32).map(|s| (s << 16, (s % 9) as u8 + 1)).collect();
    let table = DecisionTable::next_from(store.load(), &rows, 1..=64u16);
    store.publish(table);

    let mut cache = DecisionCache::new();
    let mut best = f64::INFINITY;
    for rep in 0..=REPS {
        let start = Instant::now();
        let mut acc = 0u64;
        for i in 0..LOOKUPS_PER_REP {
            let context = (((i % 64) as u32) + 1) << 16;
            let tick = i as u32;
            let advice = if fast {
                cache.advise_for_alloc(&store, context, tick)
            } else {
                store.load().advise_for_alloc(context, tick)
            };
            acc = acc.wrapping_add(advice.unwrap_or(0) as u64);
        }
        black_box(acc);
        let ns = start.elapsed().as_nanos() as f64 / LOOKUPS_PER_REP as f64;
        if rep > 0 {
            best = best.min(ns);
        }
    }
    best
}

struct MicroRow {
    collector: &'static str,
    ns_per_op: f64,
    ns_per_op_reference: f64,
    ops: u64,
}

impl MicroRow {
    fn speedup(&self) -> f64 {
        if self.ns_per_op > 0.0 {
            self.ns_per_op_reference / self.ns_per_op
        } else {
            f64::INFINITY
        }
    }
}

fn render_json(scale_divisor: u64, rows: &[MicroRow]) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"scale\": {scale_divisor},\n  \"results\": [\n"));
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"workload\": \"Alloc micro\", \"collector\": \"{}\", \
             \"ns_per_op\": {:.2}, \"ns_per_op_reference\": {:.2}, \
             \"speedup_vs_reference\": {:.3}, \"ops\": {}",
            r.collector,
            r.ns_per_op,
            r.ns_per_op_reference,
            r.speedup(),
            r.ops
        ));
        s.push_str(if i + 1 < rows.len() { "},\n" } else { "}\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

fn main() {
    let scale = rolp_bench::scale();
    let json_out = std::env::var("ROLP_BENCH_JSON").ok();
    banner("Allocation fast-path micro gate (ns/alloc, ns/decision-lookup)", scale);

    let rows = vec![
        MicroRow {
            collector: "ns/alloc",
            ns_per_op: alloc_ns_per_op(true),
            ns_per_op_reference: alloc_ns_per_op(false),
            ops: ALLOCS_PER_REP,
        },
        MicroRow {
            collector: "ns/decision-lookup",
            ns_per_op: lookup_ns_per_op(true),
            ns_per_op_reference: lookup_ns_per_op(false),
            ops: LOOKUPS_PER_REP,
        },
    ];

    let mut table = TextTable::new(vec![
        "path".to_string(),
        "fast ns/op".to_string(),
        "reference ns/op".to_string(),
        "speedup".to_string(),
    ]);
    for r in &rows {
        table.row(vec![
            r.collector.to_string(),
            format!("{:.2}", r.ns_per_op),
            format!("{:.2}", r.ns_per_op_reference),
            format!("{:.2}x", r.speedup()),
        ]);
    }
    println!("{}", table.render());
    for r in &rows {
        assert!(
            r.speedup() >= 1.0,
            "{}: fast path ({:.2} ns/op) must not lose to the reference \
             path ({:.2} ns/op) it replaced",
            r.collector,
            r.ns_per_op,
            r.ns_per_op_reference
        );
    }

    if let Some(path) = json_out {
        let rendered = render_json(scale.divisor(), &rows);
        std::fs::write(&path, rendered).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("stats: {} row(s) written to {path} (ROLP_BENCH_JSON)", rows.len());
    }
}
