//! Figure 6: DaCapo execution time normalized to G1 under four profiling
//! levels.
//!
//! For each of the 13 DaCapo-like benchmarks, five runs are performed: a
//! plain G1 baseline and the ROLP runtime at the paper's four profiling
//! levels —
//!
//! - `no-call`: only allocation sites carry profiling code,
//! - `fast-call`: call-site code emitted but never enabled (every call
//!   takes the `test`/`je` fast branch),
//! - `real`: normal operation (conflict resolution enables what it needs),
//! - `slow-call`: every non-inlined jitted call site enabled (worst case).
//!
//! Printed values are execution time normalized to G1 (>1 = slower). The
//! paper's shape: most benchmarks a few percent, call-heavy ones (`fop`,
//! `jython`) approach ~10% at the slow level, allocation-heavy `sunflow`
//! shows allocation-profiling cost but near-zero call-profiling cost, and
//! `real` tracks `fast-call` closely because few calls are ever enabled.

use rolp::runtime::{CollectorKind, RuntimeConfig};
use rolp::ProfilingLevel;
use rolp_bench::{banner, scale, TextTable};
use rolp_metrics::stats::geometric_mean;
use rolp_vm::CostModel;
use rolp_workloads::{all_benchmarks, execute, DacapoBench, RunBudget};

fn run_once(
    spec: &rolp_workloads::DacapoSpec,
    collector: CollectorKind,
    level: ProfilingLevel,
    scale: rolp_metrics::SimScale,
) -> f64 {
    let heap = spec.heap_config(scale);
    let mut bench = DacapoBench::new(spec.clone(), 0xDACA);
    let mut config =
        RuntimeConfig { collector, heap, cost: CostModel::scaled(scale), ..Default::default() };
    config.rolp.level = level;
    let budget = RunBudget::smoke(spec.ops);
    let out = execute(&mut bench, config, &budget);
    out.report.elapsed.as_secs_f64()
}

fn main() {
    let scale = scale();
    banner("Figure 6: DaCapo execution time normalized to G1 (profiling levels)", scale);

    let mut table = TextTable::new(vec!["benchmark", "no-call", "fast-call", "real", "slow-call"]);
    let levels = [
        ProfilingLevel::NoCallProfiling,
        ProfilingLevel::FastCallProfiling,
        ProfilingLevel::Real,
        ProfilingLevel::SlowCallProfiling,
    ];
    let mut per_level: Vec<Vec<f64>> = vec![Vec::new(); levels.len()];

    for spec in all_benchmarks() {
        let g1 = run_once(&spec, CollectorKind::G1, ProfilingLevel::Real, scale);
        let mut row = vec![spec.name.to_string()];
        for (i, &level) in levels.iter().enumerate() {
            let t = run_once(&spec, CollectorKind::RolpNg2c, level, scale);
            let norm = t / g1;
            per_level[i].push(norm);
            row.push(format!("{norm:.3}"));
        }
        table.row(row);
        eprintln!("  {} done", spec.name);
    }
    let mut geo = vec!["geomean".to_string()];
    for values in &per_level {
        geo.push(format!("{:.3}", geometric_mean(values)));
    }
    table.row(geo);

    println!("{}", table.render());
    println!(
        "shape check: values are execution time / G1 (1.000 = no overhead); expect\n\
         no-call <= fast-call <= slow-call, `real` close to fast-call, and the\n\
         slow-call worst case within ~15% for call-heavy benchmarks."
    );
}
