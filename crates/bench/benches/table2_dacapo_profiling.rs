//! Table 2: DaCapo profiling summary and conflict overhead.
//!
//! Left side: per benchmark, the heap size (Table 2's values, scaled), the
//! number of profiled method-call sites (PMC: call sites with profiling
//! code installed in jitted code), profiled allocation sites (PAS), and
//! conflicts found.
//!
//! Right side: the simulated throughput overhead of having P=20% of all
//! jitted call sites tracked (the paper reports 0.02%–1.8%), computed by
//! actually running each benchmark with every call site enabled and
//! scaling the measured slow-branch cost share to a 20% enablement.

use rolp::runtime::{CollectorKind, RuntimeConfig};
use rolp::ProfilingLevel;
use rolp_bench::{banner, fmt_bytes, scale, TextTable};
use rolp_vm::CostModel;
use rolp_workloads::{all_benchmarks, execute, DacapoBench, RunBudget};

fn run_level(
    spec: &rolp_workloads::DacapoSpec,
    level: ProfilingLevel,
    scale: rolp_metrics::SimScale,
    ops: u64,
) -> (f64, rolp::RolpStats) {
    let mut bench = DacapoBench::new(spec.clone(), 0xDACA);
    let mut config = RuntimeConfig {
        collector: CollectorKind::RolpNg2c,
        heap: spec.heap_config(scale),
        cost: CostModel::scaled(scale),
        ..Default::default()
    };
    config.rolp.level = level;
    let out = execute(&mut bench, config, &RunBudget::smoke(ops));
    (out.report.elapsed.as_secs_f64(), out.report.rolp.expect("rolp stats"))
}

fn main() {
    let scale = scale();
    banner("Table 2: DaCapo profiling (PMC, PAS, conflicts, 20% tracking overhead)", scale);

    let mut table = TextTable::new(vec![
        "benchmark",
        "heap (paper)",
        "heap (run)",
        "PMC",
        "PAS",
        "CFs",
        "CF overhead @P=20%",
    ]);
    for spec in all_benchmarks() {
        // Conflict detection needs inference rounds (16 GC cycles each),
        // whose cadence scales with the heap: budget ops accordingly.
        let ops = (9_600_000 / scale.divisor()).max(8_000);
        let (t_fast, stats) = run_level(&spec, ProfilingLevel::FastCallProfiling, scale, ops);
        let (t_slow, _) = run_level(&spec, ProfilingLevel::SlowCallProfiling, scale, ops);
        // All call sites enabled costs (t_slow - t_fast); tracking 20% of
        // them costs a fifth of that.
        let overhead_20 = ((t_slow - t_fast) * 0.2 / t_fast).max(0.0);
        let heap = spec.heap_config(scale);
        table.row(vec![
            spec.name.to_string(),
            format!("{} MB", spec.paper_heap_mb),
            fmt_bytes(heap.max_heap_bytes),
            stats.installed_call_sites.to_string(),
            stats.profiled_alloc_sites.to_string(),
            stats.conflicts.detected.to_string(),
            rolp_bench::fmt_pct(overhead_20, 2),
        ]);
        eprintln!("  {} done", spec.name);
    }
    println!("{}", table.render());
    println!(
        "shape check: conflicts concentrate in the factory-heavy benchmarks\n\
         (paper: pmd 6, tomcat 4, tradesoap 3, rest 0) and the P=20% tracking\n\
         overhead stays in the paper's 0.02%-1.8% band."
    );
}
