//! Ablation studies for the design choices the paper calls out.
//!
//! 1. *Hot-code-only profiling* (§3.2) vs profiling everything from the
//!    first execution (Memento-style, §9.1) — throughput overhead.
//! 2. *Skip-inlined-calls* (§7.2.1) on/off — profiled-site count and
//!    conflict resolvability.
//! 3. *Survivor-tracking shutdown* (§7.4) on/off — mean pause time once
//!    the workload is stable.
//! 4. *Allocation-site-only contexts* vs site + thread-stack-state — why
//!    conflicts need call-path information (§1, §9.2: Memento's binary
//!    decision problem).
//! 5. *Unsynchronized OLD counters* (§7.6) — injected increment loss vs
//!    decision stability.

use rolp::runtime::{CollectorKind, RuntimeConfig};
use rolp::ProfilingLevel;
use rolp_bench::{banner, scale, TextTable};
use rolp_metrics::SimScale;
use rolp_vm::{CostModel, JitConfig};
use rolp_workloads::{
    benchmark, execute, CassandraMix, DacapoBench, DacapoSpec, RunBudget, Workload,
};

fn dacapo_config(spec: &DacapoSpec, scale: SimScale) -> RuntimeConfig {
    RuntimeConfig {
        collector: CollectorKind::RolpNg2c,
        heap: spec.heap_config(scale),
        cost: CostModel::scaled(scale),
        ..Default::default()
    }
}

/// Ablation 1: profile only hot (jitted) code, as ROLP does, vs
/// instrumenting interpreted code from the first execution, as Memento
/// does (paper §9.1). A high compile threshold keeps a large share of the
/// code base interpreted so the coverage/cost trade is visible.
fn hot_code_only(scale: SimScale) {
    println!("--- Ablation 1: hot-code-only vs interpret-time profiling (Sections 3.2, 9.1) ---");
    let spec = DacapoSpec { ops: 6_000, ..benchmark("fop").expect("fop") };
    let mut table =
        TextTable::new(vec!["mode", "exec time", "profiled allocs", "unprofiled allocs"]);
    for (label, interp) in [("hot-only (ROLP)", false), ("interpreted too (Memento-style)", true)] {
        let mut bench = DacapoBench::new(spec.clone(), 3);
        let mut config = dacapo_config(&spec, scale);
        config.jit = JitConfig {
            compile_threshold: 2_000,
            profile_interpreted: interp,
            ..Default::default()
        };
        let out = execute(&mut bench, config, &RunBudget::smoke(spec.ops));
        let r = out.report.rolp.expect("rolp");
        table.row(vec![
            label.to_string(),
            format!("{}", out.report.elapsed),
            r.profiled_allocations.to_string(),
            r.unprofiled_allocations.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "expect: interpret-time profiling covers every allocation but pays a much\n\
         higher per-allocation cost; ROLP trades a little coverage for speed\n"
    );
}

/// Ablation 2: inlined call sites never carry profiling code.
fn skip_inlined(scale: SimScale) {
    println!("--- Ablation 2: skip-inlined-calls optimization (Section 7.2.1) ---");
    let spec = DacapoSpec { ops: 6_000, ..benchmark("fop").expect("fop") };
    let mut table = TextTable::new(vec!["mode", "exec time", "profilable call sites"]);
    for (label, inline_size) in [("inlining on (<=36 bytecodes)", 36u32), ("inlining off", 0)] {
        let mut bench = DacapoBench::new(spec.clone(), 3);
        let mut config = dacapo_config(&spec, scale);
        config.jit = JitConfig { inline_size, ..Default::default() };
        config.rolp.level = ProfilingLevel::SlowCallProfiling; // make call cost visible
        let out = execute(&mut bench, config, &RunBudget::smoke(spec.ops));
        let r = out.report.rolp.expect("rolp");
        table.row(vec![
            label.to_string(),
            format!("{}", out.report.elapsed),
            r.installed_call_sites.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!("expect: disabling inlining exposes many more profiled call sites and costs time\n");
}

/// Ablation 3: survivor-tracking shutdown.
fn survivor_shutdown(scale: SimScale) {
    println!("--- Ablation 3: survivor-tracking shutdown (Section 7.4) ---");
    let heap = rolp_bench::bigdata_heap(scale);
    let budget = rolp_bench::bigdata_budget(scale);
    let mut table = TextTable::new(vec![
        "mode",
        "stable mean ms",
        "p99 ms",
        "off/on switches",
        "survivor records",
    ]);
    for (label, shutdown) in [("shutdown enabled", true), ("always tracking", false)] {
        let mut w = rolp_bench::cassandra(CassandraMix::WriteIntensive, scale);
        let mut config = rolp_bench::runtime_config(CollectorKind::RolpNg2c, heap.clone(), scale);
        config.rolp.survivor_shutdown = shutdown;
        config.rolp.filters = w.profiling_filters();
        let out = execute(&mut w, config, &budget);
        let r = out.report.rolp.expect("rolp");
        // Stable phase: the last third of the run.
        let stable_from = rolp_metrics::SimTime::from_nanos(budget.sim_time.as_nanos() * 2 / 3);
        let stable: Vec<f64> = out
            .raw_pauses
            .events_between(stable_from, budget.sim_time)
            .map(|e| e.duration.as_millis_f64())
            .collect();
        let stable_mean =
            if stable.is_empty() { 0.0 } else { stable.iter().sum::<f64>() / stable.len() as f64 };
        table.row(vec![
            label.to_string(),
            format!("{stable_mean:.2}"),
            format!("{:.2}", out.pauses.percentile_ms(99.0)),
            format!("{}/{}", r.survivor_shutdowns, r.survivor_reactivations),
            r.survivor_records.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!("expect: shutdown trims the per-survivor table-lookup share of stable-phase pauses\n");
}

/// Ablation 4: allocation-site-only contexts cannot separate call paths.
fn site_only_contexts(scale: SimScale) {
    println!("--- Ablation 4: site-only vs site+stack-state contexts (Sections 1, 5) ---");
    // GC-cycle budget, not op budget: conflict detection needs inference
    // rounds, whose cadence scales with the heap.
    let ops = 9_600_000 / scale.divisor();
    let spec = DacapoSpec { ops, ..benchmark("pmd").expect("pmd") };
    let mut table =
        TextTable::new(vec!["mode", "conflicts detected", "resolved", "distinguishing sites kept"]);
    for (label, level) in [
        ("site-only (no call tracking)", ProfilingLevel::FastCallProfiling),
        ("site + stack state (real)", ProfilingLevel::Real),
    ] {
        let mut bench = DacapoBench::new(spec.clone(), 3);
        let mut config = dacapo_config(&spec, scale);
        config.rolp.level = level;
        let out = execute(&mut bench, config, &RunBudget::smoke(spec.ops));
        let r = out.report.rolp.expect("rolp");
        table.row(vec![
            label.to_string(),
            r.conflicts.detected.to_string(),
            r.conflicts.resolved.to_string(),
            r.conflicts.frozen_sites.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "expect: conflicts are detected either way (the multimodal curves are visible\n\
         in the site rows), but only thread-stack-state tracking can separate the\n\
         call paths and resolve them — the paper's Section 1 argument against\n\
         site-only indicators\n"
    );
}

/// Ablation 5: §7.6 unsynchronized-counter loss — *measured*, not
/// simulated. Real OS mutator threads hammer the shared OLD table with
/// racy relaxed increments; per-epoch reconciliation against exact
/// per-thread tallies reports how many increments the races actually
/// lost, and the merged histograms are compared cell-by-cell against the
/// single-threaded reference.
fn old_table_loss(_scale: SimScale) {
    use rolp::concurrent::{compare_to_reference, run_concurrent, run_reference, ConcurrentConfig};
    println!("--- Ablation 5: unsynchronized OLD-table increments (Section 7.6) ---");
    let mut table = TextTable::new(vec![
        "mutator threads",
        "intended increments",
        "lost (measured)",
        "loss",
        "histogram deviation",
    ]);
    for threads in [1usize, 2, 4, 8] {
        let config = ConcurrentConfig { mutator_threads: threads, ..Default::default() };
        let run = run_concurrent(&config);
        let reference = run_reference(&config);
        let report = compare_to_reference(&run.histograms, &reference);
        assert!(
            report.within_bound(run.total_lost),
            "loss bound violated: deviation {} > measured loss {}",
            report.total_abs_dev,
            run.total_lost
        );
        table.row(vec![
            threads.to_string(),
            run.total_intended.to_string(),
            run.total_lost.to_string(),
            rolp_bench::fmt_pct(run.total_lost as f64 / run.total_intended.max(1) as f64, 2),
            report.total_abs_dev.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "expect: contention may drop some age-0 counts, but the merged histograms\n\
         never exceed the reference and deviate by at most the measured loss —\n\
         the decisions the profiler derives from the shape are unaffected\n"
    );
}

/// Ablation 6: shard-count sweep over the locked sharded OLD table. The
/// same real-thread workload as ablation 5 runs against
/// `ShardedOldTable` at increasing shard counts: locked counting is
/// exact at *every* count (zero lost increments, zero histogram
/// deviation — the contrast with ablation 5's racy counters), while
/// more shards spread the mutators over independent locks and shrink
/// the wall time of the contended recording phase.
fn shard_sweep(_scale: SimScale) {
    use rolp::concurrent::{
        compare_to_reference, run_concurrent_sharded, run_reference, ConcurrentConfig,
    };
    println!("--- Ablation 6: OLD-table shard count (locked, exact) sweep ---");
    let mut table = TextTable::new(vec![
        "shards",
        "intended increments",
        "lost (measured)",
        "histogram deviation",
        "wall time",
    ]);
    let config = ConcurrentConfig { mutator_threads: 4, ..Default::default() };
    let reference = run_reference(&config);
    for shards in [1usize, 2, 4, 8, 16] {
        let start = std::time::Instant::now();
        let run = run_concurrent_sharded(&config, shards);
        let wall = start.elapsed();
        let report = compare_to_reference(&run.histograms, &reference);
        assert_eq!(run.total_lost, 0, "locked sharded counting must be exact");
        assert_eq!(report.total_abs_dev, 0, "sharded histograms must match the reference");
        table.row(vec![
            shards.to_string(),
            run.total_intended.to_string(),
            run.total_lost.to_string(),
            report.total_abs_dev.to_string(),
            format!("{wall:.1?}"),
        ]);
    }
    println!("{}", table.render());
    println!(
        "expect: zero loss and zero deviation at every shard count (the locked plane\n\
         is exact by construction); wall time falls as shards decouple the mutator\n\
         threads' lock traffic\n"
    );
}

fn main() {
    let scale = scale();
    banner("Ablations: the paper's design choices, isolated", scale);
    hot_code_only(scale);
    skip_inlined(scale);
    survivor_shutdown(scale);
    site_only_contexts(scale);
    old_table_loss(scale);
    shard_sweep(scale);
}
