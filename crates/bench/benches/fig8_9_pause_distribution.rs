//! Figures 8 and 9: pause-time percentiles and pause-duration histograms.
//!
//! Reproduces the paper's headline result. For each of the six big-data
//! workloads (Cassandra WI/RW/RI, Lucene, GraphChi CC/PR) and each of the
//! four plotted collectors (CMS, G1, NG2C, ROLP — ZGC is omitted exactly
//! as in the paper because its pauses never exceed 10 ms), one run is
//! performed and two views are printed:
//!
//! - Fig. 8: pause duration at the 50th..100th percentiles (ms), after
//!   discarding the warmup window.
//! - Fig. 9: number of pauses per duration interval (fewer pauses to the
//!   right = better).
//!
//! Expected shape (paper §8.4): ROLP ≈ NG2C ≪ G1 < CMS at the tail, with
//! ROLP needing no programmer effort.
//!
//! CI hooks:
//! - `ROLP_BENCH_QUICK=1` runs a smoke subset (first workload, G1 + ROLP
//!   only) sized for a per-PR gate.
//! - `ROLP_BENCH_JSON=<file>` writes the per-run pause statistics as
//!   JSON; `scripts/bench_gate.py` compares it against the committed
//!   `BENCH_baseline.json` and fails the build on a p99 regression.

use rolp::runtime::CollectorKind;
use rolp_bench::{
    banner, bigdata_budget, bigdata_heap, bigdata_workloads, fig9_labels, run_one_threads, scale,
    TextTable, FIG8_PERCENTILES, FIG9_INTERVALS_MS,
};

/// One run's machine-readable summary for the regression gate.
struct JsonRow {
    workload: String,
    collector: &'static str,
    pauses: usize,
    gc_cycles: u64,
    ops: u64,
    /// Self-measured profiling overhead (mutator-attributed profiling
    /// time / busy mutator time) from the run's final telemetry
    /// snapshot; `scripts/metrics_gate.py` fails the build if a ROLP
    /// row exceeds the paper's ~5% bound.
    profiling_overhead: f64,
    percentiles_ms: Vec<(f64, f64)>,
    /// p99 of the pauses inside the warmup window (before the discard
    /// point) — present on ROLP rows so `scripts/bench_gate.py` can
    /// compare the warmup cliff across cold and warm starts.
    warmup_p99_ms: Option<f64>,
    /// First epoch after which the published decision table stopped
    /// changing (0 = stable from the start, i.e. a fully-warm start).
    epochs_to_stable: Option<u64>,
    /// Primary-SLO attainment of the service-mode rows (quick mode),
    /// corrected for coordinated omission.
    slo_attainment: Option<f64>,
    /// Corrected p99 request latency of the service-mode rows, ms.
    served_p99_ms: Option<f64>,
}

fn render_json(scale_divisor: u64, rows: &[JsonRow]) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"scale\": {scale_divisor},\n  \"results\": [\n"));
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"workload\": \"{}\", \"collector\": \"{}\", \"pauses\": {}, \
             \"gc_cycles\": {}, \"ops\": {}, \"profiling_overhead\": {:.6}",
            r.workload, r.collector, r.pauses, r.gc_cycles, r.ops, r.profiling_overhead
        ));
        for (p, ms) in &r.percentiles_ms {
            // "99.9" -> "p99_9": keys must be identifier-ish for the gate.
            let key = format!("{p}").replace('.', "_");
            s.push_str(&format!(", \"p{key}_ms\": {ms:.3}"));
        }
        if let Some(w) = r.warmup_p99_ms {
            s.push_str(&format!(", \"warmup_p99_ms\": {w:.3}"));
        }
        if let Some(e) = r.epochs_to_stable {
            s.push_str(&format!(", \"epochs_to_stable\": {e}"));
        }
        if let Some(a) = r.slo_attainment {
            s.push_str(&format!(", \"slo_attainment\": {a:.6}"));
        }
        if let Some(p) = r.served_p99_ms {
            s.push_str(&format!(", \"served_p99_ms\": {p:.3}"));
        }
        s.push_str(if i + 1 < rows.len() { "},\n" } else { "}\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

fn main() {
    let scale = scale();
    let quick = std::env::var("ROLP_BENCH_QUICK").is_ok_and(|v| v != "0");
    let json_out = std::env::var("ROLP_BENCH_JSON").ok();
    banner("Figures 8 & 9: application pause distribution (6 workloads x 4 collectors)", scale);
    let heap = bigdata_heap(scale);
    let budget = bigdata_budget(scale);
    println!(
        "heap: {} per run, run length: {} simulated (warmup discard {})",
        rolp_bench::fmt_bytes(heap.max_heap_bytes),
        budget.sim_time,
        budget.warmup_discard,
    );
    if quick {
        println!(
            "quick mode: first workload, G1 + ROLP (4 mutator threads) + ROLP-seq \
             (1 thread, sequential profiler backend) + ROLP (governed) \
             (overhead governor on, no faults) + ROLP (warm) \
             (warm-started from the plain ROLP run's profile) + ROLP (sharded) \
             (4-shard locked OLD-table backend) (ROLP_BENCH_QUICK)"
        );
    }

    /// How one gate row is driven.
    #[derive(Clone, Copy, PartialEq)]
    enum Mode {
        Plain,
        /// Overhead governor engaged.
        Governed,
        /// Plain ROLP that also exports its learned decision profile.
        Learn,
        /// ROLP warm-started from the profile the `Learn` row exported.
        Warm,
        /// Sharded OLD-table backend with the given shard count.
        Sharded(usize),
    }

    // (collector, mutator threads, gate label, mode). The default
    // 4-thread runs exercise the concurrent profiler data plane; quick
    // mode adds a 1-thread ROLP run so the gate also covers the
    // sequential backend, a governed ROLP run so the gate bounds the
    // governor's own overhead, and a warm-started ROLP run so the gate
    // covers the profile import/blend path. The governed and warm rows
    // must come *after* plain ROLP: the shape-check lookup below takes
    // the first match per CollectorKind, and the warm row consumes the
    // profile the plain (`Learn`) row exports.
    let collectors: Vec<(CollectorKind, u32, &'static str, Mode)> = if quick {
        vec![
            (CollectorKind::G1, 4, CollectorKind::G1.label(), Mode::Plain),
            (CollectorKind::RolpNg2c, 4, CollectorKind::RolpNg2c.label(), Mode::Learn),
            (CollectorKind::RolpNg2c, 1, "ROLP-seq", Mode::Plain),
            (CollectorKind::RolpNg2c, 4, "ROLP (governed)", Mode::Governed),
            (CollectorKind::RolpNg2c, 4, "ROLP (warm)", Mode::Warm),
            (CollectorKind::RolpNg2c, 4, "ROLP (sharded)", Mode::Sharded(4)),
        ]
    } else {
        [CollectorKind::Cms, CollectorKind::G1, CollectorKind::Ng2c, CollectorKind::RolpNg2c]
            .into_iter()
            .map(|k| (k, 4, k.label(), Mode::Plain))
            .collect()
    };
    let mut json_rows: Vec<JsonRow> = Vec::new();

    let mut names: Vec<String> = bigdata_workloads(scale).iter().map(|w| w.name()).collect();
    if quick {
        names.truncate(1);
    }
    for (wi, name) in names.iter().enumerate() {
        let mut fig8 = TextTable::new(
            std::iter::once("system".to_string())
                .chain(FIG8_PERCENTILES.iter().map(|p| format!("p{p}")))
                .collect::<Vec<_>>(),
        );
        let mut fig9 = TextTable::new(
            std::iter::once("system".to_string()).chain(fig9_labels()).collect::<Vec<_>>(),
        );
        let mut tail_ms: Vec<(CollectorKind, f64)> = Vec::new();
        let mut governed_tail: Option<f64> = None;
        let mut sharded_p99: Option<f64> = None;
        let mut plain_p99: Option<f64> = None;
        let mut learned: Option<rolp::DecisionProfile> = None;
        let mut warm_info: Vec<(&'static str, f64, u64)> = Vec::new();

        for &(kind, threads, label, mode) in &collectors {
            // Fresh workload instance per run (independent state).
            let mut workloads = bigdata_workloads(scale);
            let w = &mut workloads[wi];
            let start = std::time::Instant::now();
            let out = match mode {
                Mode::Governed => {
                    rolp_bench::run_one_governed(w.as_mut(), heap.clone(), scale, &budget, threads)
                }
                Mode::Learn => {
                    let (out, profile) = rolp_bench::run_one_learning(
                        w.as_mut(),
                        heap.clone(),
                        scale,
                        &budget,
                        threads,
                    );
                    learned = Some(profile);
                    out
                }
                Mode::Warm => rolp_bench::run_one_warm(
                    w.as_mut(),
                    heap.clone(),
                    scale,
                    &budget,
                    threads,
                    learned.clone().expect("warm row must follow the learning ROLP row"),
                ),
                Mode::Sharded(shards) => rolp_bench::run_one_sharded(
                    w.as_mut(),
                    heap.clone(),
                    scale,
                    &budget,
                    threads,
                    shards,
                ),
                Mode::Plain => {
                    run_one_threads(w.as_mut(), kind, heap.clone(), scale, &budget, threads)
                }
            };
            let wall = start.elapsed();
            if mode == Mode::Governed {
                governed_tail = Some(out.pauses.percentile_ms(99.9));
            }
            if matches!(mode, Mode::Sharded(_)) {
                sharded_p99 = Some(out.pauses.percentile_ms(99.0));
            }
            if mode == Mode::Learn {
                plain_p99 = Some(out.pauses.percentile_ms(99.0));
            }
            let (warmup_p99, stable) = match &out.report.rolp {
                Some(r) => (
                    Some(rolp_bench::warmup_p99_ms(&out, budget.warmup_discard)),
                    Some(r.last_change_epoch),
                ),
                None => (None, None),
            };
            if let (Some(w99), Some(e)) = (warmup_p99, stable) {
                warm_info.push((label, w99, e));
            }

            let mut row = vec![label.to_string()];
            for p in FIG8_PERCENTILES {
                row.push(format!("{:.1}", out.pauses.percentile_ms(p)));
            }
            fig8.row(row);
            json_rows.push(JsonRow {
                workload: name.clone(),
                collector: label,
                pauses: out.pauses.count(),
                gc_cycles: out.report.gc_cycles,
                ops: out.report.ops,
                profiling_overhead: out.report.profiling_overhead,
                percentiles_ms: FIG8_PERCENTILES
                    .iter()
                    .map(|&p| (p, out.pauses.percentile_ms(p)))
                    .collect(),
                warmup_p99_ms: warmup_p99,
                epochs_to_stable: stable,
                slo_attainment: None,
                served_p99_ms: None,
            });

            let bounds_ns: Vec<u64> = FIG9_INTERVALS_MS.iter().map(|ms| ms * 1_000_000).collect();
            let counts = out.pauses.histogram().interval_counts(&bounds_ns);
            let mut row9 = vec![label.to_string()];
            row9.extend(counts.iter().map(|c| c.to_string()));
            fig9.row(row9);

            tail_ms.push((kind, out.pauses.percentile_ms(99.9)));
            {
                use rolp_metrics::PauseKind::*;
                for k in [Young, Mixed, Full, ConcurrentHandshake] {
                    let evs: Vec<_> =
                        out.raw_pauses.events().iter().filter(|e| e.kind == k).collect();
                    if !evs.is_empty() {
                        let max =
                            evs.iter().map(|e| e.duration.as_millis_f64()).fold(0.0, f64::max);
                        eprintln!("    {}: {} pauses, max {:.1} ms", k.label(), evs.len(), max);
                    }
                }
            }
            if let Some(r) = &out.report.rolp {
                eprintln!(
                    "    rolp: {} inferences, {} decisions, {} profiled allocs, {} survivor recs, \
                     conflicts {:?}, shutdowns {}/{}",
                    r.inferences,
                    r.decisions,
                    r.profiled_allocations,
                    r.survivor_records,
                    r.conflicts,
                    r.survivor_shutdowns,
                    r.survivor_reactivations
                );
            }
            eprintln!(
                "  [{name} / {label}] {} pauses, {} GC cycles, ops {}, wall {:.1?}",
                out.pauses.count(),
                out.report.gc_cycles,
                out.report.ops,
                wall
            );
        }

        println!("--- Fig. 8: {name} — pause-time percentiles (ms) ---");
        println!("{}", fig8.render());
        println!("--- Fig. 9: {name} — pauses per duration interval ---");
        println!("{}", fig9.render());

        let get =
            |k: CollectorKind| tail_ms.iter().find(|(c, _)| *c == k).map(|(_, v)| *v).unwrap();
        if quick {
            let (g1, rolp) = (get(CollectorKind::G1), get(CollectorKind::RolpNg2c));
            let reduction = if g1 > 0.0 { (1.0 - rolp / g1) * 100.0 } else { 0.0 };
            println!(
                "shape check [{name}]: p99.9 G1 {g1:.1} ms, ROLP {rolp:.1} ms -> \
                 ROLP reduces G1 tail by {reduction:.0}%"
            );
            if let Some(gov) = governed_tail {
                let overhead = if rolp > 0.0 { (gov / rolp - 1.0) * 100.0 } else { 0.0 };
                println!(
                    "governor overhead [{name}]: p99.9 governed {gov:.1} ms vs plain \
                     {rolp:.1} ms ({overhead:+.1}%)"
                );
            }
            if let (Some(sh), Some(pl)) = (sharded_p99, plain_p99) {
                let delta = if pl > 0.0 { (sh / pl - 1.0) * 100.0 } else { 0.0 };
                println!(
                    "sharded backend [{name}]: p99 sharded {sh:.1} ms vs plain {pl:.1} ms \
                     ({delta:+.1}%)"
                );
            }
            let find = |l: &str| warm_info.iter().find(|(n, _, _)| *n == l);
            if let (Some(&(_, cold_w, cold_e)), Some(&(_, warm_w, warm_e))) =
                (find("ROLP"), find("ROLP (warm)"))
            {
                println!(
                    "warm start [{name}]: warmup-window p99 cold {cold_w:.1} ms \
                     (stable at epoch {cold_e}) vs warm {warm_w:.1} ms (stable at \
                     epoch {warm_e})"
                );
            }
            println!();
        } else {
            let (cms, g1, ng2c, rolp) = (
                get(CollectorKind::Cms),
                get(CollectorKind::G1),
                get(CollectorKind::Ng2c),
                get(CollectorKind::RolpNg2c),
            );
            let reduction = if g1 > 0.0 { (1.0 - rolp / g1) * 100.0 } else { 0.0 };
            println!(
                "shape check [{name}]: p99.9 CMS {cms:.1} ms, G1 {g1:.1} ms, NG2C {ng2c:.1} ms, \
                 ROLP {rolp:.1} ms -> ROLP reduces G1 tail by {reduction:.0}%\n"
            );
        }
    }

    // Service-mode rows (quick mode): the open-loop rolp-serve harness
    // under ROLP and G1 on the same diurnal schedule, gated on primary
    // SLO attainment and corrected p99 so service tail latency regresses
    // as loudly as batch pause percentiles do.
    if quick {
        let served = rolp_bench::run_served(scale);
        println!(
            "--- service mode: open-loop SLO comparison (1/{} scale) ---",
            scale.divisor() * 8
        );
        for row in &served {
            println!(
                "  [{}] {} requests, attainment {:.4} @ primary SLO, \
                 corrected p99 {:.2} ms, pause p99 {:.2} ms",
                row.collector,
                row.requests,
                row.slo_attainment,
                row.served_p99_ms,
                row.pause_p99_ms
            );
            json_rows.push(JsonRow {
                workload: "Served mix".to_string(),
                collector: row.collector,
                pauses: row.pauses,
                gc_cycles: row.gc_cycles,
                ops: row.ops,
                profiling_overhead: row.profiling_overhead,
                percentiles_ms: vec![(99.0, row.pause_p99_ms)],
                warmup_p99_ms: None,
                epochs_to_stable: None,
                slo_attainment: Some(row.slo_attainment),
                served_p99_ms: Some(row.served_p99_ms),
            });
        }
        let rolp_att = served.iter().find(|r| r.collector.starts_with("ROLP"));
        let g1_att = served.iter().find(|r| r.collector.starts_with("G1"));
        if let (Some(r), Some(g)) = (rolp_att, g1_att) {
            println!(
                "service shape check: ROLP attainment {:.4} vs G1 {:.4}, \
                 served p99 {:.2} ms vs {:.2} ms\n",
                r.slo_attainment, g.slo_attainment, r.served_p99_ms, g.served_p99_ms
            );
        }
    }

    if let Some(path) = json_out {
        let rendered = render_json(scale.divisor(), &json_rows);
        std::fs::write(&path, rendered).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("stats: {} run(s) written to {path} (ROLP_BENCH_JSON)", json_rows.len());
    }
}
