//! Table 1 (right side): Big Data profiling summary.
//!
//! For each of the six big-data workloads run under ROLP with the paper's
//! package filters: PAS (fraction of allocation sites carrying profiling
//! code), PMC (fraction of method-call sites whose tracking is enabled),
//! the number of allocation-context conflicts, the count of hand
//! annotations the NG2C baseline needs instead, and the OLD table size.
//!
//! Paper shape: PAS and PMC well under 0.1%, conflicts 0–3 per workload,
//! OLD table 4–16 MB. (The percentages here are computed against this
//! reproduction's much smaller synthetic programs, so the absolute
//! percentages are larger; the point preserved is that only a tiny
//! handful of sites is ever profiled — see EXPERIMENTS.md.)

use rolp::runtime::CollectorKind;
use rolp_bench::{banner, bigdata_heap, bigdata_workloads, run_one, scale, TextTable};
use rolp_metrics::SimTime;
use rolp_workloads::RunBudget;

fn main() {
    let scale = scale();
    banner("Table 1: Big Data workload profiling summary (ROLP)", scale);
    let heap = bigdata_heap(scale);
    // Use the full Fig. 8 run length: conflict detection and resolution
    // need the same number of inference windows here as there.
    let full = rolp_bench::bigdata_budget(scale);
    let budget =
        RunBudget { sim_time: full.sim_time, warmup_discard: SimTime::ZERO, max_ops: u64::MAX };

    let mut table =
        TextTable::new(vec!["workload", "filters", "PAS", "PMC", "#CFs", "NG2C", "OLD"]);

    let names: Vec<String> = bigdata_workloads(scale).iter().map(|w| w.name()).collect();
    for (wi, name) in names.iter().enumerate() {
        let mut workloads = bigdata_workloads(scale);
        let w = &mut workloads[wi];
        let filters = if w.profiling_filters().is_unfiltered() { "(none)" } else { "paper" };
        let annotations = w.annotation_count();
        let out = run_one(w.as_mut(), CollectorKind::RolpNg2c, heap.clone(), scale, &budget);
        let r = out.report.rolp.expect("rolp stats");
        table.row(vec![
            name.clone(),
            filters.to_string(),
            format!(
                "{}/{} ({})",
                r.profiled_alloc_sites,
                r.total_alloc_sites,
                rolp_bench::fmt_pct(
                    r.profiled_alloc_sites as f64 / r.total_alloc_sites.max(1) as f64,
                    0
                )
            ),
            format!(
                "{}/{} ({})",
                r.enabled_call_sites,
                r.total_call_sites,
                rolp_bench::fmt_pct(
                    r.enabled_call_sites as f64 / r.total_call_sites.max(1) as f64,
                    0
                )
            ),
            r.conflicts.detected.to_string(),
            annotations.to_string(),
            rolp_bench::fmt_bytes(r.old_table_bytes),
        ]);
        eprintln!("  {name} done ({} ops)", out.report.ops);
    }
    println!("{}", table.render());
    println!(
        "shape check: conflicts are rare (paper: 0-3), the OLD table stays at\n\
         4 MB + 4 MB per conflict (paper: 4-16 MB), and ROLP replaces the 8-22\n\
         hand annotations per platform that NG2C requires."
    );
}
