//! The fully concurrent collector (ZGC/C4-class).
//!
//! All collection work — marking and relocation — runs alongside the
//! mutator: the simulated copying cost is charged to *mutator* time, and
//! the application only stops for short handshakes. In exchange, every
//! reference load and field store pays a barrier tax, and the heap needs
//! relocation headroom, so both throughput and memory are worse than G1's
//! (exactly the trade the paper describes in §2.2 and measures in §8.5 —
//! which is why Fig. 8 omits ZGC pauses: they never exceed 10 ms).

use std::cell::RefCell;
use std::rc::Rc;

use rolp_heap::{AllocFailure, ObjectRef, RegionId, RegionKind, SpaceKind, TlabAlloc};
use rolp_vm::{AllocRequest, CollectorApi, VmEnv};

use crate::evac::{charge_refill, evacuate_concurrent};
use crate::observer::GcHooks;
use crate::parallel::mark_liveness_parallel;

/// Tunables of the concurrent collector.
#[derive(Debug, Clone)]
pub struct ConcurrentConfig {
    /// Heap occupancy (fraction of regions) that starts a cycle. Low, to
    /// leave relocation headroom.
    pub trigger_occupancy: f64,
    /// A region is relocated if its live fraction is at most this.
    pub relocate_live_threshold: f64,
    /// Regions kept free as relocation reserve.
    pub reserve_regions: usize,
}

impl Default for ConcurrentConfig {
    fn default() -> Self {
        ConcurrentConfig {
            trigger_occupancy: 0.50,
            relocate_live_threshold: 0.80,
            reserve_regions: 6,
        }
    }
}

/// Per-collector statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct ConcurrentStats {
    /// Completed concurrent cycles.
    pub cycles_run: u64,
    /// Regions relocated.
    pub regions_relocated: u64,
    /// Bytes copied concurrently.
    pub bytes_relocated: u64,
}

/// The ZGC/C4-like collector.
pub struct ConcurrentCollector {
    config: ConcurrentConfig,
    hooks: Rc<RefCell<dyn GcHooks>>,
    cycles: u64,
    stats: ConcurrentStats,
    /// (bytes allocated, busy ns) at the previous cycle, for the
    /// allocation-rate estimate behind the headroom model.
    last_sample: (u64, u64),
    load_barrier_ns: u64,
    store_barrier_ns: u64,
    work_tax_permille: u64,
}

impl ConcurrentCollector {
    /// Creates a concurrent collector with default tunables; barrier costs
    /// are taken from `cost`.
    pub fn new(hooks: Rc<RefCell<dyn GcHooks>>, cost: &rolp_vm::CostModel) -> Self {
        ConcurrentCollector {
            config: ConcurrentConfig::default(),
            hooks,
            cycles: 0,
            stats: ConcurrentStats::default(),
            last_sample: (0, 0),
            load_barrier_ns: cost.concurrent_load_barrier_ns,
            store_barrier_ns: cost.concurrent_store_barrier_ns,
            work_tax_permille: cost.concurrent_work_tax_permille,
        }
    }

    /// Collector statistics.
    pub fn stats(&self) -> ConcurrentStats {
        self.stats
    }

    fn occupancy(&self, env: &VmEnv) -> f64 {
        let total = env.heap.num_regions();
        (total - env.heap.free_regions()) as f64 / total as f64
    }

    fn cycle(&mut self, env: &mut VmEnv) {
        env.safepoint_flush_alloc_path();
        let mark = mark_liveness_parallel(&mut env.heap, env.cost.gc_workers.max(1) as usize);
        // Concurrent marking steals mutator cycles.
        let mark_ns = env.cost.copy_ns(mark.live_bytes) / 2;
        env.clock.advance(mark_ns);
        env.telemetry.add(rolp_telemetry::Bucket::GcMark, mark_ns);

        // Reclaim wholly dead regions outright, then relocate sparse ones.
        for id in env
            .heap
            .regions()
            .filter(|(_, r)| {
                !matches!(r.kind, RegionKind::Free)
                    && r.live_bytes == 0
                    && r.used_bytes() > 0
                    && r.liveness_valid
            })
            .map(|(id, _)| id)
            .collect::<Vec<_>>()
        {
            env.heap.release_region(id);
        }

        let cset: Vec<RegionId> = env
            .heap
            .regions()
            .filter(|(_, r)| {
                matches!(r.kind, RegionKind::Eden) && r.used_bytes() > 0 && r.liveness_valid && {
                    let live = r.live_bytes as f64 / r.used_bytes() as f64;
                    live <= self.config.relocate_live_threshold
                }
            })
            .map(|(id, _)| id)
            .collect();

        let mut dest = |_from: RegionKind, _age: u8, _size: u32, _ctx: Option<u32>| SpaceKind::Eden;
        env.trace.set_gc_cause("relocate");
        let hooks = Rc::clone(&self.hooks);
        let mut hooks_ref = hooks.borrow_mut();
        let outcome = evacuate_concurrent(env, &cset, &mut dest, &mut *hooks_ref);
        drop(hooks_ref);

        self.cycles += 1;
        self.stats.cycles_run += 1;
        self.stats.regions_relocated += outcome.stats.regions_released;
        self.stats.bytes_relocated += outcome.stats.bytes_copied;

        if outcome.failed {
            // Even the concurrent collector must fall back when headroom
            // runs out mid-relocation.
            env.trace.set_gc_cause("evac-failure");
            let hooks = Rc::clone(&self.hooks);
            let mut hooks_ref = hooks.borrow_mut();
            crate::evac::full_compact(env, &mut *hooks_ref);
        }

        // Allocation proceeds *during* a real concurrent cycle; the heap
        // must hold that headroom committed. Estimate the rate from the
        // last inter-cycle window and pre-commit cycle-duration's worth.
        let now_busy = env.clock.busy_time().as_nanos();
        let now_alloc = env.heap.stats().bytes_allocated;
        let (prev_alloc, prev_busy) = self.last_sample;
        if now_busy > prev_busy && now_alloc > prev_alloc {
            let rate = (now_alloc - prev_alloc) as f64 / (now_busy - prev_busy) as f64;
            let cycle_ns = env.cost.copy_ns(mark.live_bytes) / 2
                + env.cost.copy_ns(outcome.stats.bytes_copied);
            let headroom_bytes = (rate * cycle_ns as f64) as usize;
            let regions = headroom_bytes.div_ceil(env.heap.region_bytes().max(1));
            env.heap.commit_headroom(regions);
            env.sample_memory();
        }
        self.last_sample = (now_alloc, now_busy);
    }
}

impl CollectorApi for ConcurrentCollector {
    fn fast_alloc(
        &mut self,
        env: &mut VmEnv,
        req: &AllocRequest,
        thread: u32,
    ) -> Option<ObjectRef> {
        // Decline when the occupancy trigger would fire so the slow path
        // runs the cycle at the identical allocation index.
        if self.occupancy(env) > self.config.trigger_occupancy
            || env.heap.free_regions() <= self.config.reserve_regions
        {
            return None;
        }
        match env.heap.tlab_alloc(
            thread,
            SpaceKind::Eden,
            req.class,
            req.ref_words,
            req.data_words,
            req.header,
        ) {
            TlabAlloc::Hit(obj) => Some(obj),
            TlabAlloc::Refilled(obj) => {
                charge_refill(env);
                Some(obj)
            }
            TlabAlloc::Miss => None,
        }
    }

    fn allocate(&mut self, env: &mut VmEnv, req: AllocRequest) -> ObjectRef {
        if self.occupancy(env) > self.config.trigger_occupancy
            || env.heap.free_regions() <= self.config.reserve_regions
        {
            env.trace.set_gc_cause("occupancy");
            self.cycle(env);
        }
        for attempt in 0..3 {
            match env.heap.alloc_in(
                SpaceKind::Eden,
                req.class,
                req.ref_words,
                req.data_words,
                req.header,
            ) {
                Ok(obj) => return obj,
                Err(AllocFailure::TooLarge) => {
                    panic!("OutOfMemoryError: object larger than the heap")
                }
                Err(AllocFailure::NeedsGc) => match attempt {
                    0 => {
                        env.trace.set_gc_cause("alloc-failure");
                        self.cycle(env);
                    }
                    1 => {
                        env.trace.set_gc_cause("heap-full");
                        env.safepoint_flush_alloc_path();
                        let hooks = Rc::clone(&self.hooks);
                        let mut hooks_ref = hooks.borrow_mut();
                        crate::evac::full_compact(env, &mut *hooks_ref);
                    }
                    _ => break,
                },
            }
        }
        panic!("OutOfMemoryError: concurrent collector could not free enough regions");
    }

    fn name(&self) -> &'static str {
        "ZGC"
    }

    fn gc_cycles(&self) -> u64 {
        self.cycles
    }

    fn load_barrier_ns(&self) -> u64 {
        self.load_barrier_ns
    }

    fn store_barrier_ns(&self) -> u64 {
        self.store_barrier_ns
    }

    fn work_tax_permille(&self) -> u64 {
        self.work_tax_permille
    }
}
