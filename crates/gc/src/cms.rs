//! The CMS-like collector.
//!
//! Young generation: stop-the-world copying collections (ParNew-style)
//! with an age-based tenuring threshold. Old generation: *never compacted
//! concurrently* — a concurrent mark-sweep cycle (initial-mark and remark
//! pauses, marking and sweeping charged to mutator time) reclaims only
//! regions that are entirely dead. Partially dead old regions accumulate
//! as fragmentation until the heap runs out of regions, at which point a
//! stop-the-world full compaction produces the long tail pauses the paper
//! attributes to CMS (§8.4).

use std::cell::RefCell;
use std::rc::Rc;

use rolp_heap::{AllocFailure, ObjectRef, RegionId, RegionKind, SpaceKind, TlabAlloc};
use rolp_metrics::{PauseKind, SimTime};
use rolp_vm::{AllocRequest, CollectorApi, VmEnv};

use crate::evac::{charge_refill, evacuate, full_compact, trace_pause, EvacStats};
use crate::observer::{GcCycleInfo, GcHooks};
use crate::parallel::mark_liveness_parallel;

/// Tunables of the CMS-like collector.
#[derive(Debug, Clone)]
pub struct CmsConfig {
    /// Young-generation target as a fraction of total regions.
    pub eden_fraction: f64,
    /// Survivor cap as a fraction of total regions.
    pub survivor_fraction: f64,
    /// Tenuring threshold (CMS default is lower than G1's; promotes
    /// earlier).
    pub tenuring_threshold: u8,
    /// Occupancy fraction starting a concurrent mark-sweep cycle
    /// (`CMSInitiatingOccupancyFraction`).
    pub initiating_occupancy: f64,
    /// Regions kept free as promotion reserve.
    pub reserve_regions: usize,
}

impl Default for CmsConfig {
    fn default() -> Self {
        CmsConfig {
            eden_fraction: 0.25,
            survivor_fraction: 0.08,
            tenuring_threshold: 6,
            initiating_occupancy: 0.60,
            reserve_regions: 4,
        }
    }
}

/// Per-collector statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct CmsStats {
    /// Young collections.
    pub young_gcs: u64,
    /// Concurrent mark-sweep cycles.
    pub concurrent_cycles: u64,
    /// Old regions swept (reclaimed without copying).
    pub regions_swept: u64,
    /// Stop-the-world full compactions.
    pub full_gcs: u64,
}

/// The CMS-like collector.
pub struct CmsCollector {
    config: CmsConfig,
    hooks: Rc<RefCell<dyn GcHooks>>,
    cycles: u64,
    stats: CmsStats,
}

impl CmsCollector {
    /// Creates a CMS collector with default tunables.
    pub fn new(hooks: Rc<RefCell<dyn GcHooks>>) -> Self {
        CmsCollector::with_config(CmsConfig::default(), hooks)
    }

    /// Creates a CMS collector with explicit tunables.
    pub fn with_config(config: CmsConfig, hooks: Rc<RefCell<dyn GcHooks>>) -> Self {
        CmsCollector { config, hooks, cycles: 0, stats: CmsStats::default() }
    }

    /// Collector statistics.
    pub fn stats(&self) -> CmsStats {
        self.stats
    }

    fn eden_target(&self, env: &VmEnv) -> usize {
        ((env.heap.num_regions() as f64 * self.config.eden_fraction) as usize).max(1)
    }

    fn should_collect_young(&self, env: &VmEnv) -> bool {
        env.heap.num_of_kind(RegionKind::Eden) >= self.eden_target(env)
            || env.heap.free_regions() <= self.config.reserve_regions
    }

    fn occupancy(&self, env: &VmEnv) -> f64 {
        let total = env.heap.num_regions();
        (total - env.heap.free_regions()) as f64 / total as f64
    }

    fn collect_young(&mut self, env: &mut VmEnv) -> bool {
        env.safepoint_flush_alloc_path();
        let mut cset: Vec<RegionId> = env.heap.regions_of_kind(RegionKind::Eden);
        cset.extend(env.heap.regions_of_kind(RegionKind::Survivor));

        let survivor_budget = (env.heap.num_regions() as f64 * self.config.survivor_fraction)
            as u64
            * env.heap.region_bytes() as u64;
        let tenuring = self.config.tenuring_threshold;
        let mut survivor_bytes = 0u64;
        let mut dest =
            |from: RegionKind, age: u8, size_words: u32, _ctx: Option<u32>| -> SpaceKind {
                match from {
                    RegionKind::Eden | RegionKind::Survivor => {
                        survivor_bytes += size_words as u64 * 8;
                        if age >= tenuring || survivor_bytes > survivor_budget {
                            SpaceKind::Old
                        } else {
                            SpaceKind::Survivor
                        }
                    }
                    _ => SpaceKind::Old,
                }
            };

        let hooks = Rc::clone(&self.hooks);
        let mut hooks_ref = hooks.borrow_mut();
        let outcome = evacuate(env, &cset, &mut dest, &mut *hooks_ref, PauseKind::Young);
        drop(hooks_ref);

        self.cycles += 1;
        self.stats.young_gcs += 1;

        if outcome.failed {
            env.trace.set_gc_cause("evac-failure");
            self.full_collect(env);
            return false;
        }
        self.notify_end(
            env,
            PauseKind::Young,
            outcome.stats.bytes_copied,
            outcome.stats.survivors,
            outcome.pause,
        );

        // Concurrent old-generation cycle when occupancy crosses the
        // initiating threshold.
        if self.occupancy(env) > self.config.initiating_occupancy {
            self.concurrent_cycle(env);
        }
        true
    }

    /// Concurrent mark + sweep: marking charged to mutator time framed by
    /// two short pauses; sweeping releases only fully dead old regions —
    /// no compaction, so fragmentation stays.
    fn concurrent_cycle(&mut self, env: &mut VmEnv) {
        env.safepoint_flush_alloc_path();
        // Initial mark pause.
        let t0 = env.clock.now();
        let initial = SimTime::from_nanos(env.cost.safepoint_ns);
        env.clock.advance_paused(initial);
        env.telemetry.add(rolp_telemetry::Bucket::GcMark, initial.as_nanos());
        env.pauses.record(t0, initial, PauseKind::ConcurrentHandshake);
        crate::evac::telemetry_pause(env, initial);
        env.trace.set_gc_cause("initial-mark");
        trace_pause(env, t0, initial, PauseKind::ConcurrentHandshake, &EvacStats::default());

        let mark = mark_liveness_parallel(&mut env.heap, env.cost.gc_workers.max(1) as usize);
        self.hooks.borrow_mut().on_liveness(&mark.context_live);
        let trace_ns = env.cost.copy_ns(mark.live_bytes) / 2;
        env.clock.advance(trace_ns);
        env.telemetry.add(rolp_telemetry::Bucket::GcMark, trace_ns);

        // Remark pause (rescan roots).
        let t1 = env.clock.now();
        let remark = SimTime::from_nanos(
            env.cost.safepoint_ns
                + env.heap.handles.live() as u64 * env.cost.root_scan_ns
                    / env.cost.gc_workers.max(1),
        );
        env.clock.advance_paused(remark);
        env.telemetry.add(rolp_telemetry::Bucket::GcMark, remark.as_nanos());
        env.pauses.record(t1, remark, PauseKind::ConcurrentHandshake);
        crate::evac::telemetry_pause(env, remark);
        env.trace.set_gc_cause("remark");
        trace_pause(env, t1, remark, PauseKind::ConcurrentHandshake, &EvacStats::default());

        // Concurrent sweep: free wholly dead old and humongous regions.
        let mut swept = 0u64;
        for id in env
            .heap
            .regions()
            .filter(|(_, r)| {
                matches!(r.kind, RegionKind::Old | RegionKind::Humongous)
                    && r.used_bytes() > 0
                    && r.live_bytes == 0
                    && r.liveness_valid
            })
            .map(|(id, _)| id)
            .collect::<Vec<_>>()
        {
            env.heap.release_region(id);
            swept += 1;
        }
        env.heap.retire_current(SpaceKind::Old);
        self.stats.regions_swept += swept;
        self.stats.concurrent_cycles += 1;
        env.sample_memory();
    }

    fn full_collect(&mut self, env: &mut VmEnv) {
        env.safepoint_flush_alloc_path();
        let hooks = Rc::clone(&self.hooks);
        let mut hooks_ref = hooks.borrow_mut();
        let before = env.pauses.count();
        let stats = full_compact(env, &mut *hooks_ref);
        drop(hooks_ref);
        self.cycles += 1;
        self.stats.full_gcs += 1;
        let pause = env.pauses.events().get(before).map(|e| e.duration).unwrap_or(SimTime::ZERO);
        self.notify_end(env, PauseKind::Full, stats.bytes_copied, stats.survivors, pause);
    }

    fn notify_end(
        &mut self,
        env: &mut VmEnv,
        kind: PauseKind,
        bytes_copied: u64,
        survivors: u64,
        duration: SimTime,
    ) {
        let mut used = 0u64;
        let mut garbage = 0u64;
        for (_, r) in env.heap.regions() {
            if matches!(r.kind, RegionKind::Old) {
                used += r.used_bytes();
                garbage += r.garbage_bytes();
            }
        }
        let info = GcCycleInfo {
            cycle: self.cycles,
            kind,
            bytes_copied,
            survivors,
            duration,
            tenured_fragmentation: if used == 0 { 0.0 } else { garbage as f64 / used as f64 },
            dynamic_gen_garbage: [0.0; 16],
        };
        let hooks = Rc::clone(&self.hooks);
        hooks.borrow_mut().on_gc_end(env, &info);
    }
}

impl CollectorApi for CmsCollector {
    fn fast_alloc(
        &mut self,
        env: &mut VmEnv,
        req: &AllocRequest,
        thread: u32,
    ) -> Option<ObjectRef> {
        // Decline when the young trigger would fire so the slow path runs
        // the collection at the identical allocation index.
        if self.should_collect_young(env) {
            return None;
        }
        match env.heap.tlab_alloc(
            thread,
            SpaceKind::Eden,
            req.class,
            req.ref_words,
            req.data_words,
            req.header,
        ) {
            TlabAlloc::Hit(obj) => Some(obj),
            TlabAlloc::Refilled(obj) => {
                charge_refill(env);
                Some(obj)
            }
            TlabAlloc::Miss => None,
        }
    }

    fn allocate(&mut self, env: &mut VmEnv, req: AllocRequest) -> ObjectRef {
        if self.should_collect_young(env) {
            env.trace.set_gc_cause("eden-full");
            self.collect_young(env);
        }
        for attempt in 0..3 {
            match env.heap.alloc_in(
                SpaceKind::Eden,
                req.class,
                req.ref_words,
                req.data_words,
                req.header,
            ) {
                Ok(obj) => return obj,
                Err(AllocFailure::TooLarge) => {
                    panic!("OutOfMemoryError: object larger than the heap")
                }
                Err(AllocFailure::NeedsGc) => match attempt {
                    0 => {
                        env.trace.set_gc_cause("alloc-failure");
                        self.collect_young(env);
                    }
                    1 => {
                        env.trace.set_gc_cause("heap-full");
                        self.full_collect(env);
                    }
                    _ => break,
                },
            }
        }
        panic!("OutOfMemoryError: CMS could not free enough regions");
    }

    fn name(&self) -> &'static str {
        "CMS"
    }

    fn gc_cycles(&self) -> u64 {
        self.cycles
    }
}
