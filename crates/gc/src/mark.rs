//! Heap tracing (marking).
//!
//! A full transitive-closure mark from the root handles, producing
//! per-region live-byte counts. G1-like collectors run this as their
//! "concurrent" marking phase (charged to mutator time plus a short
//! remark pause); the full compaction and the CMS sweep consume its
//! results directly.

use std::collections::{HashMap, HashSet};

use rolp_heap::{Heap, ObjectRef, RegionKind};

/// Result of a marking pass.
#[derive(Debug, Clone, Default)]
pub struct MarkResult {
    /// Reachable objects.
    pub live_objects: u64,
    /// Reachable bytes.
    pub live_bytes: u64,
    /// The set of reachable objects (by current location).
    pub marked: HashSet<ObjectRef>,
    /// Live objects per allocation context (objects whose headers carry a
    /// valid, non-biased context). Feeds the leak-detection use-case the
    /// paper sketches in §2.2: a context whose live population only grows
    /// is a leak suspect.
    pub context_live: HashMap<u32, u64>,
}

/// Marks the heap from the root handles, updating every region's
/// `live_bytes`.
///
/// # Panics
///
/// Panics (debug) if a forwarded header is encountered — marking must only
/// run on a heap at rest.
pub fn mark_liveness(heap: &mut Heap) -> MarkResult {
    // Reset liveness of every assigned region.
    let ids: Vec<_> = heap.regions().map(|(id, _)| id).collect();
    for id in ids {
        let r = heap.region_mut(id);
        if !matches!(r.kind, RegionKind::Free) {
            r.live_bytes = 0;
            r.liveness_valid = true;
        }
    }

    let mut result = MarkResult::default();
    let mut stack: Vec<ObjectRef> = heap.handles.roots().collect();

    while let Some(obj) = stack.pop() {
        if !result.marked.insert(obj) {
            continue;
        }
        debug_assert!(!heap.header(obj).is_forwarded(), "marking over a forwarded object");
        let size_bytes = heap.size_words(obj) as u64 * 8;
        result.live_objects += 1;
        result.live_bytes += size_bytes;
        if let Some(ctx) = heap.header(obj).allocation_context() {
            if ctx != 0 {
                *result.context_live.entry(ctx).or_insert(0) += 1;
            }
        }
        let region = obj.region();
        heap.region_mut(region).live_bytes += size_bytes;
        for i in 0..heap.ref_words(obj) {
            let v = heap.get_ref(obj, i);
            if !v.is_null() && !result.marked.contains(&v) {
                stack.push(v);
            }
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use rolp_heap::{ClassId, HeapConfig, ObjectHeader, SpaceKind};

    fn heap() -> Heap {
        let mut h = Heap::new(HeapConfig { region_bytes: 1024, max_heap_bytes: 32 * 1024 });
        h.classes.register("t.A");
        h
    }

    fn alloc(h: &mut Heap, space: SpaceKind, refs: u16, data: u32) -> ObjectRef {
        let hash = h.next_identity_hash();
        h.alloc_in(space, ClassId(0), refs, data, ObjectHeader::new(hash)).unwrap()
    }

    #[test]
    fn marks_transitive_closure_from_roots() {
        let mut h = heap();
        let a = alloc(&mut h, SpaceKind::Eden, 1, 0);
        let b = alloc(&mut h, SpaceKind::Old, 1, 4);
        let c = alloc(&mut h, SpaceKind::Old, 0, 2);
        let dead = alloc(&mut h, SpaceKind::Eden, 0, 8);
        h.set_ref(a, 0, b);
        h.set_ref(b, 0, c);
        h.handles.create(a);

        let r = mark_liveness(&mut h);
        assert_eq!(r.live_objects, 3);
        assert!(r.marked.contains(&a) && r.marked.contains(&b) && r.marked.contains(&c));
        assert!(!r.marked.contains(&dead));
        let expected = (h.size_words(a) + h.size_words(b) + h.size_words(c)) as u64 * 8;
        assert_eq!(r.live_bytes, expected);
    }

    #[test]
    fn region_live_bytes_are_rebuilt() {
        let mut h = heap();
        let a = alloc(&mut h, SpaceKind::Eden, 0, 2);
        let _dead = alloc(&mut h, SpaceKind::Eden, 0, 2);
        h.handles.create(a);
        mark_liveness(&mut h);
        let region = h.region(a.region());
        assert_eq!(region.live_bytes, h.size_words(a) as u64 * 8);
        assert!(region.garbage_bytes() > 0);
    }

    #[test]
    fn cycles_terminate() {
        let mut h = heap();
        let a = alloc(&mut h, SpaceKind::Eden, 1, 0);
        let b = alloc(&mut h, SpaceKind::Eden, 1, 0);
        h.set_ref(a, 0, b);
        h.set_ref(b, 0, a);
        h.handles.create(a);
        let r = mark_liveness(&mut h);
        assert_eq!(r.live_objects, 2);
    }

    #[test]
    fn empty_roots_mark_nothing() {
        let mut h = heap();
        let _a = alloc(&mut h, SpaceKind::Eden, 0, 0);
        let r = mark_liveness(&mut h);
        assert_eq!(r.live_objects, 0);
        assert_eq!(r.live_bytes, 0);
    }
}
