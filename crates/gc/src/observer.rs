//! Collector-side hook points for the profiler.
//!
//! The paper's ROLP↔NG2C integration (§3.3, §6, §7.1, §7.4) needs three
//! channels, all bundled in [`GcHooks`]:
//!
//! 1. *Pretenuring advice*: at allocation time NG2C asks for the estimated
//!    lifetime of the allocation context and places the object in that
//!    dynamic generation.
//! 2. *Survivor tracking*: during evacuation, each surviving object's
//!    allocation context and age are reported so the OLD table can move
//!    the object from its age column to the next. The profiler can turn
//!    this off for stable workloads (§7.4) — the collector then also stops
//!    paying the per-survivor profiling cost.
//! 3. *End-of-cycle callback*: while the world is still stopped, the
//!    profiler reconciles thread stack states (§7.2.3), runs lifetime
//!    inference every 16 cycles (§4), and reacts to fragmentation (§6).

use rolp_heap::{ObjectHeader, RegionKind};
use rolp_metrics::{PauseKind, SimTime};
use rolp_vm::VmEnv;

/// Summary of one completed GC cycle, passed to [`GcHooks::on_gc_end`].
#[derive(Debug, Clone)]
pub struct GcCycleInfo {
    /// Cycle ordinal (1-based; the paper's unit of object age).
    pub cycle: u64,
    /// Pause classification.
    pub kind: PauseKind,
    /// Bytes copied in this cycle.
    pub bytes_copied: u64,
    /// Objects that survived (were copied).
    pub survivors: u64,
    /// Pause duration.
    pub duration: SimTime,
    /// Garbage fraction of the tenured spaces (old + dynamic) after the
    /// cycle, per the freshest liveness information; 0.0 when unknown.
    pub tenured_fragmentation: f64,
    /// Garbage fraction per dynamic generation (index = generation 1..=14;
    /// index 0 and 15 unused), for the §6 lifetime-demotion signal.
    pub dynamic_gen_garbage: [f64; 16],
}

/// The profiler-facing hooks a collector calls. All methods have inert
/// defaults so plain collectors can run with [`NullHooks`].
pub trait GcHooks {
    /// Estimated lifetime (target generation 0..=15) for an allocation
    /// context, or `None` when there is no estimate (paper §7.1: 0 =
    /// young, 1..=14 = dynamic generation, 15 = old).
    fn advise(&self, _context: u32) -> Option<u8> {
        None
    }

    /// Whether survivor tracking is currently enabled (§7.4).
    fn survivor_tracking_enabled(&self) -> bool {
        false
    }

    /// One object survived a collection; `header` is its pre-copy header
    /// (context + age before the increment), `from` the kind of region it
    /// was copied out of, and `worker` the GC worker thread (mirroring the
    /// per-worker private tables of §7.6). Note that, as in HotSpot, only
    /// young-generation copies advance an object's age — once promoted or
    /// pretenured, an object's recorded age freezes, which is why the
    /// paper corrects shrinking lifetimes through fragmentation (§6)
    /// rather than through age data.
    fn on_survivor(&mut self, _header: ObjectHeader, _from: RegionKind, _worker: u32) {}

    /// A GC cycle finished; the world is still stopped.
    fn on_gc_end(&mut self, _env: &mut VmEnv, _info: &GcCycleInfo) {}

    /// A marking pass completed; `context_live` is the live-object census
    /// per allocation context (the §2.2 leak-detection signal).
    fn on_liveness(&mut self, _context_live: &std::collections::HashMap<u32, u64>) {}
}

/// Hooks that do nothing (plain G1/CMS/ZGC configurations).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullHooks;

impl GcHooks for NullHooks {}
