//! The regional generational collector: G1 and NG2C.
//!
//! One engine covers both collectors the paper builds on:
//!
//! - **G1 mode** (`pretenuring = false`): region-based young collections
//!   (eden + survivors evacuated, age-based tenuring with survivor-space
//!   overflow), marking when tenured occupancy crosses a threshold, then
//!   mixed collections over the most-garbage old regions — Garbage-First
//!   [Detlefs et al. 2004] as the paper's baseline.
//! - **NG2C mode** (`pretenuring = true`): the same engine plus 16
//!   generations (young, 14 dynamic, old; paper §7.1). Allocations carry a
//!   target generation — from hand annotations (the NG2C baseline) or from
//!   ROLP's advice (the paper's contribution) — and go straight to that
//!   dynamic generation, skipping every young-generation copy. Dynamic
//!   regions whose objects died together are reclaimed without copying.
//!
//! The mechanical claim of the paper emerges here, not from a formula:
//! pretenured long-lived objects are never copied through the survivor
//! spaces, so young pauses shrink with the bytes they no longer copy.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

use rolp_heap::{AllocFailure, ObjectRef, RegionId, RegionKind, SpaceKind, TlabAlloc};
use rolp_metrics::{PauseKind, SimTime};
use rolp_vm::{AllocRequest, CollectorApi, DecisionStore, VmEnv};

use crate::evac::{charge_refill, evacuate, full_compact, EvacStats};
use crate::observer::{GcCycleInfo, GcHooks};
use crate::parallel::mark_liveness_parallel;

/// Tunables of the regional collector.
#[derive(Debug, Clone)]
pub struct RegionalConfig {
    /// Young-generation (eden) target as a fraction of total regions.
    pub eden_fraction: f64,
    /// Survivor-space cap as a fraction of total regions; overflow
    /// promotes to old.
    pub survivor_fraction: f64,
    /// Age at which survivors are tenured (HotSpot max 15).
    pub tenuring_threshold: u8,
    /// Tenured occupancy (fraction of total regions) that starts a marking
    /// cycle followed by mixed collections.
    pub mark_trigger: f64,
    /// A tenured region joins a mixed collection set if its live fraction
    /// is at most this (G1's `G1MixedGCLiveThresholdPercent`).
    pub mixed_live_threshold: f64,
    /// Maximum tenured regions per mixed collection.
    pub mixed_max_regions: usize,
    /// Mixed collections to run after each marking cycle.
    pub mixed_cycles: usize,
    /// Regions kept free as evacuation reserve.
    pub reserve_regions: usize,
    /// NG2C mode: honor per-allocation generation targets.
    pub pretenuring: bool,
}

impl Default for RegionalConfig {
    fn default() -> Self {
        RegionalConfig {
            eden_fraction: 0.25,
            survivor_fraction: 0.10,
            tenuring_threshold: 15,
            mark_trigger: 0.45,
            mixed_live_threshold: 0.85,
            mixed_max_regions: 256,
            mixed_cycles: 4,
            reserve_regions: 4,
            pretenuring: false,
        }
    }
}

/// Per-collector statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct RegionalStats {
    /// Young collections.
    pub young_gcs: u64,
    /// Mixed collections.
    pub mixed_gcs: u64,
    /// Full compactions (evacuation-failure fallback).
    pub full_gcs: u64,
    /// Marking cycles.
    pub markings: u64,
    /// Objects allocated directly into dynamic generations / old
    /// (pretenured).
    pub pretenured: u64,
    /// Tenured regions reclaimed with zero survivors ("died together").
    pub regions_died_together: u64,
}

/// The G1/NG2C collector.
pub struct RegionalCollector {
    config: RegionalConfig,
    hooks: Rc<RefCell<dyn GcHooks>>,
    decisions: Option<Arc<DecisionStore>>,
    cycles: u64,
    mixed_remaining: usize,
    liveness_fresh: bool,
    stats: RegionalStats,
    name: &'static str,
}

impl RegionalCollector {
    /// A plain G1 collector (no pretenuring).
    pub fn g1(hooks: Rc<RefCell<dyn GcHooks>>) -> Self {
        let config = RegionalConfig { pretenuring: false, ..Default::default() };
        RegionalCollector::with_config(config, hooks, "G1")
    }

    /// An NG2C collector (16 generations, pretenuring honored).
    pub fn ng2c(hooks: Rc<RefCell<dyn GcHooks>>) -> Self {
        let config = RegionalConfig { pretenuring: true, ..Default::default() };
        RegionalCollector::with_config(config, hooks, "NG2C")
    }

    /// A collector with explicit tunables.
    pub fn with_config(
        config: RegionalConfig,
        hooks: Rc<RefCell<dyn GcHooks>>,
        name: &'static str,
    ) -> Self {
        RegionalCollector {
            config,
            hooks,
            decisions: None,
            cycles: 0,
            mixed_remaining: 0,
            liveness_fresh: false,
            stats: RegionalStats::default(),
            name,
        }
    }

    /// Collector statistics.
    pub fn stats(&self) -> RegionalStats {
        self.stats
    }

    /// Attaches the profiler's published [`DecisionStore`]. Evacuation
    /// then routes promoted survivors straight to their advised dynamic
    /// generation by reading the current snapshot lock-free (the same
    /// table the allocation fast path indexes).
    pub fn set_decision_store(&mut self, store: Arc<DecisionStore>) {
        self.decisions = Some(store);
    }

    /// The space an allocation request targets, without touching stats —
    /// shared by the TLAB fast path and the slow path so both resolve a
    /// request identically.
    fn space_for(&self, req: &AllocRequest) -> SpaceKind {
        if !self.config.pretenuring {
            return SpaceKind::Eden;
        }
        // Priority: hand annotation, then the advice the mutator already
        // resolved from the decision snapshot, then a hooks query (the
        // path direct-driven collectors without a VmEnv store use). When
        // this collector has its own store the mutator consulted the same
        // snapshot — honor its verdict, including a canary-sampled `None`
        // that deliberately keeps an imported-row allocation young.
        let gen = req.manual_gen.or(req.advised_gen).or_else(|| {
            if self.decisions.is_some() {
                None
            } else {
                req.context.and_then(|c| self.hooks.borrow().advise(c))
            }
        });
        match gen {
            None | Some(0) => SpaceKind::Eden,
            Some(15) => SpaceKind::Old,
            Some(g) => SpaceKind::Dynamic(g.min(14)),
        }
    }

    fn choose_space(&mut self, req: &AllocRequest) -> SpaceKind {
        let space = self.space_for(req);
        if !matches!(space, SpaceKind::Eden) {
            self.stats.pretenured += 1;
        }
        space
    }

    fn eden_target(&self, env: &VmEnv) -> usize {
        ((env.heap.num_regions() as f64 * self.config.eden_fraction) as usize).max(1)
    }

    fn tenured_regions(&self, env: &VmEnv) -> usize {
        let h = &env.heap;
        let mut n = h.num_of_kind(RegionKind::Old) + h.num_of_kind(RegionKind::Humongous);
        for g in 1..=14 {
            n += h.num_of_kind(RegionKind::Dynamic(g));
        }
        n
    }

    fn should_collect(&self, env: &VmEnv) -> bool {
        env.heap.num_of_kind(RegionKind::Eden) >= self.eden_target(env)
            || env.heap.free_regions() <= self.config.reserve_regions
    }

    /// "Concurrent" marking: liveness is recomputed with the cost charged
    /// to mutator time, plus a short remark pause — matching G1's
    /// concurrent cycle shape.
    fn run_marking(&mut self, env: &mut VmEnv) {
        env.safepoint_flush_alloc_path();
        let mark = mark_liveness_parallel(&mut env.heap, env.cost.gc_workers.max(1) as usize);
        self.hooks.borrow_mut().on_liveness(&mark.context_live);
        // Tracing is roughly bandwidth-bound like copying, but runs
        // concurrently with the application.
        let trace_ns = env.cost.copy_ns(mark.live_bytes) / 2;
        env.clock.advance(trace_ns);
        env.telemetry.add(rolp_telemetry::Bucket::GcMark, trace_ns);
        let remark_start = env.clock.now();
        let remark = SimTime::from_nanos(
            env.cost.safepoint_ns
                + env.heap.handles.live() as u64 * env.cost.root_scan_ns
                    / env.cost.gc_workers.max(1),
        );
        env.clock.advance_paused(remark);
        env.telemetry.add(rolp_telemetry::Bucket::GcMark, remark.as_nanos());
        env.pauses.record(remark_start, remark, PauseKind::ConcurrentHandshake);
        crate::evac::telemetry_pause(env, remark);
        env.trace.set_gc_cause("remark");
        crate::evac::trace_pause(
            env,
            remark_start,
            remark,
            PauseKind::ConcurrentHandshake,
            &EvacStats::default(),
        );

        // Eagerly reclaim dead humongous regions (G1 does this at cleanup).
        for id in env.heap.regions_of_kind(RegionKind::Humongous) {
            if env.heap.region(id).live_bytes == 0 {
                env.heap.release_region(id);
            }
        }
        self.liveness_fresh = true;
        self.mixed_remaining = self.config.mixed_cycles;
        self.stats.markings += 1;
    }

    fn mixed_candidates(&self, env: &VmEnv) -> Vec<RegionId> {
        let mut cands: Vec<(u64, RegionId)> = env
            .heap
            .regions()
            .filter(|(_, r)| {
                let tenured = matches!(r.kind, RegionKind::Old | RegionKind::Dynamic(_));
                // Only regions whose liveness was established by a marking
                // *after* their assignment are candidates; a fresh region's
                // zero live-bytes means "unknown", not "dead".
                if !tenured || r.used_bytes() == 0 || !r.liveness_valid {
                    return false;
                }
                let live_frac = r.live_bytes as f64 / r.used_bytes() as f64;
                live_frac <= self.config.mixed_live_threshold
            })
            .map(|(id, r)| (r.garbage_bytes(), id))
            .collect();
        cands.sort_by_key(|&(g, _)| std::cmp::Reverse(g));
        let cap = self.config.mixed_max_regions.min(env.heap.num_regions() / 8).max(4);
        cands.truncate(cap);
        cands.into_iter().map(|(_, id)| id).collect()
    }

    /// Runs one young or mixed collection. Returns true on success; false
    /// means evacuation failed and a full compaction was performed.
    fn collect(&mut self, env: &mut VmEnv) -> bool {
        env.safepoint_flush_alloc_path();
        let mut cset: Vec<RegionId> = env.heap.regions_of_kind(RegionKind::Eden);
        cset.extend(env.heap.regions_of_kind(RegionKind::Survivor));

        let mixed = self.mixed_remaining > 0 && self.liveness_fresh;
        let mut kind = PauseKind::Young;
        if mixed {
            let cands = self.mixed_candidates(env);
            if cands.is_empty() {
                self.mixed_remaining = 0;
            } else {
                cset.extend(cands);
                kind = PauseKind::Mixed;
                self.mixed_remaining -= 1;
            }
        }

        let survivor_budget = (env.heap.num_regions() as f64 * self.config.survivor_fraction)
            as u64
            * env.heap.region_bytes() as u64;
        let tenuring = self.config.tenuring_threshold;
        let mut survivor_bytes = 0u64;
        // Promotion placement: a survivor leaving the young spaces lands
        // in its advised dynamic generation when the current decision
        // snapshot has one for its allocation context (objects allocated
        // before the decision was published still regroup with their
        // cohort), otherwise in old — G1's behavior.
        let decisions = if self.config.pretenuring { self.decisions.as_deref() } else { None };
        let mut dest =
            |from: RegionKind, age: u8, size_words: u32, ctx: Option<u32>| -> SpaceKind {
                match from {
                    RegionKind::Eden | RegionKind::Survivor => {
                        survivor_bytes += size_words as u64 * 8;
                        if age >= tenuring || survivor_bytes > survivor_budget {
                            match ctx.zip(decisions).and_then(|(c, store)| store.load().advise(c)) {
                                Some(g @ 1..=14) => SpaceKind::Dynamic(g),
                                _ => SpaceKind::Old,
                            }
                        } else {
                            SpaceKind::Survivor
                        }
                    }
                    RegionKind::Dynamic(g) => SpaceKind::Dynamic(g),
                    _ => SpaceKind::Old,
                }
            };

        let hooks = Rc::clone(&self.hooks);
        let mut hooks_ref = hooks.borrow_mut();
        let outcome = evacuate(env, &cset, &mut dest, &mut *hooks_ref, kind);
        drop(hooks_ref);

        self.cycles += 1;
        match kind {
            PauseKind::Mixed => self.stats.mixed_gcs += 1,
            _ => self.stats.young_gcs += 1,
        }
        self.stats.regions_died_together += outcome.stats.regions_fully_dead;

        if outcome.failed {
            env.trace.set_gc_cause("evac-failure");
            self.full_collect(env);
            return false;
        }

        self.finish_cycle(env, kind, &outcome.stats, outcome.pause);

        // Kick off marking when tenured occupancy crosses the trigger.
        let tenured_frac = self.tenured_regions(env) as f64 / env.heap.num_regions() as f64;
        if tenured_frac > self.config.mark_trigger && self.mixed_remaining == 0 {
            self.run_marking(env);
        }
        true
    }

    fn full_collect(&mut self, env: &mut VmEnv) {
        env.safepoint_flush_alloc_path();
        let hooks = Rc::clone(&self.hooks);
        let mut hooks_ref = hooks.borrow_mut();
        let start_pauses = env.pauses.count();
        let stats = full_compact(env, &mut *hooks_ref);
        drop(hooks_ref);
        self.cycles += 1;
        self.stats.full_gcs += 1;
        self.liveness_fresh = true; // full GC recomputed liveness
        self.mixed_remaining = 0;
        let pause =
            env.pauses.events().get(start_pauses).map(|e| e.duration).unwrap_or(SimTime::ZERO);
        self.finish_cycle(env, PauseKind::Full, &stats, pause);
    }

    fn finish_cycle(
        &mut self,
        env: &mut VmEnv,
        kind: PauseKind,
        stats: &EvacStats,
        pause: SimTime,
    ) {
        let info = GcCycleInfo {
            cycle: self.cycles,
            kind,
            bytes_copied: stats.bytes_copied,
            survivors: stats.survivors,
            duration: pause,
            tenured_fragmentation: self.tenured_fragmentation(env),
            dynamic_gen_garbage: self.dynamic_gen_garbage(env),
        };
        let hooks = Rc::clone(&self.hooks);
        hooks.borrow_mut().on_gc_end(env, &info);
    }

    /// True fragmentation is garbage *co-located with live data*: a fully
    /// dead region is not fragmented (it is reclaimed for free at the next
    /// mixed cycle), and a freshly assigned region's liveness is unknown.
    /// Counting either would make the §6 demotion fire on healthy epochal
    /// behaviour and drag correct estimates back towards the young
    /// generation.
    fn is_fragmented_candidate(r: &rolp_heap::Region) -> bool {
        r.liveness_valid && r.live_bytes > 0 && r.used_bytes() > 0
    }

    fn tenured_fragmentation(&self, env: &VmEnv) -> f64 {
        let mut used = 0u64;
        let mut garbage = 0u64;
        for (_, r) in env.heap.regions() {
            if matches!(r.kind, RegionKind::Old | RegionKind::Dynamic(_))
                && Self::is_fragmented_candidate(r)
            {
                used += r.used_bytes();
                garbage += r.garbage_bytes();
            }
        }
        if used == 0 {
            0.0
        } else {
            garbage as f64 / used as f64
        }
    }

    fn dynamic_gen_garbage(&self, env: &VmEnv) -> [f64; 16] {
        let mut used = [0u64; 16];
        let mut garbage = [0u64; 16];
        for (_, r) in env.heap.regions() {
            if let RegionKind::Dynamic(g) = r.kind {
                if Self::is_fragmented_candidate(r) {
                    used[g as usize] += r.used_bytes();
                    garbage[g as usize] += r.garbage_bytes();
                }
            }
        }
        let mut out = [0.0; 16];
        for g in 0..16 {
            if used[g] > 0 {
                out[g] = garbage[g] as f64 / used[g] as f64;
            }
        }
        out
    }
}

impl CollectorApi for RegionalCollector {
    fn fast_alloc(
        &mut self,
        env: &mut VmEnv,
        req: &AllocRequest,
        thread: u32,
    ) -> Option<ObjectRef> {
        let space = self.space_for(req);
        // Preserve the collection schedule: when the GC trigger would fire
        // for this allocation, decline so the slow path runs the identical
        // collect-then-allocate sequence at the identical allocation index.
        if matches!(space, SpaceKind::Eden) && self.should_collect(env) {
            return None;
        }
        match env.heap.tlab_alloc(
            thread,
            space,
            req.class,
            req.ref_words,
            req.data_words,
            req.header,
        ) {
            TlabAlloc::Hit(obj) => {
                if !matches!(space, SpaceKind::Eden) {
                    self.stats.pretenured += 1;
                }
                Some(obj)
            }
            TlabAlloc::Refilled(obj) => {
                charge_refill(env);
                if !matches!(space, SpaceKind::Eden) {
                    self.stats.pretenured += 1;
                }
                Some(obj)
            }
            TlabAlloc::Miss => None,
        }
    }

    fn allocate(&mut self, env: &mut VmEnv, req: AllocRequest) -> ObjectRef {
        let space = self.choose_space(&req);

        if matches!(space, SpaceKind::Eden) && self.should_collect(env) {
            env.trace.set_gc_cause("eden-full");
            self.collect(env);
        }

        for attempt in 0..3 {
            match env.heap.alloc_in(space, req.class, req.ref_words, req.data_words, req.header) {
                Ok(obj) => return obj,
                Err(AllocFailure::TooLarge) => {
                    panic!("OutOfMemoryError: object larger than the heap")
                }
                Err(AllocFailure::NeedsGc) => match attempt {
                    0 => {
                        env.trace.set_gc_cause("alloc-failure");
                        self.collect(env);
                    }
                    1 => {
                        env.trace.set_gc_cause("heap-full");
                        self.full_collect(env);
                    }
                    _ => break,
                },
            }
        }
        panic!(
            "OutOfMemoryError: {} could not free enough regions (heap {} bytes)",
            self.name,
            env.heap.max_heap_bytes()
        );
    }

    fn name(&self) -> &'static str {
        self.name
    }

    fn gc_cycles(&self) -> u64 {
        self.cycles
    }
}
