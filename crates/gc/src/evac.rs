//! Stop-the-world evacuation and full compaction.
//!
//! This is the copying machinery every stop-the-world collector here
//! shares. [`evacuate`] moves the live objects of a *collection set* of
//! regions to destination spaces chosen by a policy closure, driving:
//!
//! - root processing through the handle table,
//! - remembered-set scanning with epoch validation (stale slots in
//!   recycled regions are discarded, never written through),
//! - transitive copying with forwarding pointers in object headers,
//! - age increments for survivors and per-survivor profiler callbacks,
//! - pause-time accounting from the cost model (copying is
//!   memory-bandwidth-bound, the paper's §2.1 premise).
//!
//! [`full_compact`] is the slow-path mark-compact used as G1's evacuation-
//! failure fallback and CMS's fragmentation escape hatch. It tolerates a
//! heap left half-evacuated by a failed [`evacuate`] (forwarding pointers
//! are resolved up front) and compacts with a rolling region release so it
//! can run with as little as one free region.

use std::collections::HashMap;

use rolp_heap::{Heap, ObjectRef, RegionId, RegionKind, SpaceKind};
use rolp_metrics::{PauseKind, SimTime};
use rolp_telemetry::{Bucket, CounterId, HistId};
use rolp_vm::{CostModel, VmEnv};

use crate::observer::GcHooks;
use crate::parallel::{mark_liveness_parallel, prescan_remsets, RemsetPrescan};

/// Statistics of one evacuation (or compaction) pause.
#[derive(Debug, Clone, Copy, Default)]
pub struct EvacStats {
    /// Bytes copied.
    pub bytes_copied: u64,
    /// Objects copied (survivors).
    pub survivors: u64,
    /// Root handles examined.
    pub roots_scanned: u64,
    /// Remembered-set slots examined (valid or stale).
    pub remset_slots: u64,
    /// Regions in the collection set.
    pub regions_in_cset: u64,
    /// Collection-set regions released (all of them unless the evacuation
    /// failed).
    pub regions_released: u64,
    /// Collection-set regions that contained no survivor at all (the
    /// "die-together" regions NG2C aims for).
    pub regions_fully_dead: u64,
    /// Bytes copied per destination generation: index 0 for the young
    /// spaces (eden/survivor), `g` for dynamic generation `g`, and 15 for
    /// the old generation (paper Fig. 9's per-generation copy volumes).
    pub gen_bytes: [u64; 16],
}

/// The `gen_bytes` slot a destination space tallies into.
pub fn gen_index(space: SpaceKind) -> usize {
    match space {
        SpaceKind::Eden | SpaceKind::Survivor => 0,
        SpaceKind::Dynamic(g) => (g as usize).clamp(1, 14),
        SpaceKind::Old => 15,
    }
}

/// Outcome of [`evacuate`].
#[derive(Debug, Clone, Copy)]
pub struct EvacOutcome {
    /// Work performed.
    pub stats: EvacStats,
    /// True if the heap ran out of regions mid-copy; the caller must run
    /// [`full_compact`] to restore consistency.
    pub failed: bool,
    /// Pause duration charged.
    pub pause: SimTime,
}

/// Flight-recorder bookkeeping for one stop-the-world pause: merges the
/// per-thread event buffers (the world is stopped — this is the natural
/// safepoint) and emits the pause event with the collector-supplied cause.
pub(crate) fn trace_pause(
    env: &mut VmEnv,
    start: SimTime,
    pause: SimTime,
    kind: PauseKind,
    stats: &EvacStats,
) {
    if !env.trace.is_enabled() {
        return;
    }
    env.trace.merge_safepoint();
    let cause = env.trace.take_gc_cause();
    env.trace.emit_global(
        start,
        rolp_trace::EventKind::GcPause {
            kind: kind.label(),
            cause,
            duration_ns: pause.as_nanos(),
            bytes_copied: stats.bytes_copied,
            survivors: stats.survivors,
            regions_in_cset: stats.regions_in_cset,
            regions_released: stats.regions_released,
            regions_fully_dead: stats.regions_fully_dead,
            gen_bytes: stats.gen_bytes,
        },
    );
}

/// Computes the pause duration for an evacuation from its work counts.
pub fn evac_pause_ns(cost: &CostModel, stats: &EvacStats, survivor_tracking: bool) -> u64 {
    let workers = cost.gc_workers.max(1);
    let per_worker = |n: u64, each: u64| n.saturating_mul(each) / workers;
    let survivor_each =
        cost.survivor_overhead_ns + if survivor_tracking { cost.profile_survivor_ns } else { 0 };
    cost.safepoint_ns
        + per_worker(stats.roots_scanned, cost.root_scan_ns)
        + per_worker(stats.remset_slots, cost.remset_scan_ns)
        + per_worker(stats.regions_in_cset, cost.region_overhead_ns)
        + cost.copy_ns(stats.bytes_copied)
        + per_worker(stats.survivors, survivor_each)
}

/// Attributes the components of an evacuation's work to telemetry
/// buckets, term for term with [`evac_pause_ns`]: remembered-set
/// scanning → `GcRemset`, the survivor-tracking increment → the
/// collector half of `GcProfiling`, the safepoint → `GcOther`, and
/// everything else (roots, region bookkeeping, copying, survivor aging)
/// → `GcEvac`. The four parts sum exactly to `evac_pause_ns`.
fn attribute_evac_work(env: &VmEnv, stats: &EvacStats, survivor_tracking: bool) {
    let cost = &env.cost;
    let workers = cost.gc_workers.max(1);
    let per_worker = |n: u64, each: u64| n.saturating_mul(each) / workers;
    let survivor_each =
        cost.survivor_overhead_ns + if survivor_tracking { cost.profile_survivor_ns } else { 0 };
    let remset = per_worker(stats.remset_slots, cost.remset_scan_ns);
    let survivor_total = per_worker(stats.survivors, survivor_each);
    let survivor_base = per_worker(stats.survivors, cost.survivor_overhead_ns);
    let profiling = if survivor_tracking { survivor_total - survivor_base } else { 0 };
    let evac = per_worker(stats.roots_scanned, cost.root_scan_ns)
        + per_worker(stats.regions_in_cset, cost.region_overhead_ns)
        + cost.copy_ns(stats.bytes_copied)
        + survivor_total
        - profiling;
    let t = &env.telemetry;
    t.add(Bucket::GcOther, cost.safepoint_ns);
    t.add(Bucket::GcRemset, remset);
    t.add(Bucket::GcProfiling, profiling);
    t.add(Bucket::GcEvac, evac);
}

/// Records one stop-the-world pause into the live metrics plane.
pub(crate) fn telemetry_pause(env: &VmEnv, pause: SimTime) {
    env.telemetry.bump(CounterId::GcPauses, 1);
    env.telemetry.record(HistId::GcPauseNs, pause.as_nanos());
}

/// Charges one TLAB refill stall. The time lands in the GC bucket
/// ([`Bucket::GcOther`]), not application time: the mutator is stalled on
/// heap machinery, and latency decomposition must blame the collector for
/// it (see `rolp-serve`'s sum-to-wall-time invariant).
pub(crate) fn charge_refill(env: &mut VmEnv) {
    {
        let _span = env.telemetry.span(Bucket::GcOther);
        env.charge(env.cost.tlab_refill_ns);
    }
    env.telemetry.bump(CounterId::TlabRefills, 1);
}

struct Evacuator<'a> {
    heap: &'a mut Heap,
    dest: &'a mut dyn FnMut(RegionKind, u8, u32, Option<u32>) -> SpaceKind,
    hooks: &'a mut dyn GcHooks,
    tracking: bool,
    in_cset: Vec<bool>,
    gc_workers: u32,
    stats: EvacStats,
    scan: Vec<ObjectRef>,
    failed: bool,
}

impl Evacuator<'_> {
    fn in_cset(&self, r: RegionId) -> bool {
        self.in_cset[r.0 as usize]
    }

    /// Copies `obj` out of the collection set (idempotent via forwarding).
    /// Returns `None` on region exhaustion.
    fn forward(&mut self, obj: ObjectRef) -> Option<ObjectRef> {
        let header = self.heap.header(obj);
        if header.is_forwarded() {
            return Some(header.forwardee());
        }
        let from_kind = self.heap.region(obj.region()).kind;
        // As in HotSpot, only young-generation copies age an object.
        let new_age = if from_kind.is_young() {
            header.age().saturating_add(1).min(rolp_heap::header::MAX_AGE)
        } else {
            header.age()
        };
        let size_words = self.heap.size_words(obj);
        let space = (self.dest)(from_kind, new_age, size_words, header.allocation_context());
        let size_bytes = size_words as u64 * 8;
        match self.heap.copy_object(obj, space) {
            Ok(new) => {
                let fixed = self.heap.header(new).with_age(new_age);
                self.heap.set_header(new, fixed);
                self.stats.survivors += 1;
                self.stats.bytes_copied += size_bytes;
                self.stats.gen_bytes[gen_index(space)] += size_bytes;
                if self.tracking {
                    // Per-worker private tables (§5.2): a worker owns the
                    // source regions it claims, so attribute by source
                    // region — deterministic under any claim order.
                    let worker = obj.region().0 % self.gc_workers;
                    self.hooks.on_survivor(header, from_kind, worker);
                }
                self.scan.push(new);
                Some(new)
            }
            Err(_) => {
                self.failed = true;
                None
            }
        }
    }

    fn process_roots(&mut self) {
        let roots: Vec<_> = self.heap.handles.entries().collect();
        for (h, obj) in roots {
            self.stats.roots_scanned += 1;
            if self.in_cset(obj.region()) {
                if let Some(new) = self.forward(obj) {
                    self.heap.handles.set(h, new);
                } else {
                    return; // exhausted; full_compact will finish the job
                }
            }
        }
    }

    /// Applies the verdicts of a [`prescan_remsets`] pass: the workers
    /// already validated every slot (read-only, in parallel); the
    /// coordinator performs the order-sensitive forwarding writes here,
    /// in the prescan's sorted order, which keeps the result identical to
    /// the single-threaded reference.
    fn process_remsets(&mut self, cset: &[RegionId], prescan: RemsetPrescan) {
        self.stats.remset_slots += prescan.slots_examined;
        for (&r, valid) in cset.iter().zip(&prescan.valid) {
            self.heap.region_mut(r).rset.clear();
            for v in valid {
                // `forward` is idempotent, so a slot aliased into several
                // collection-set remembered sets converges to the same
                // rewrite, and the re-record below dedups in the set.
                match self.forward(v.value) {
                    Some(new) => {
                        let slot = v.slot;
                        self.heap.region_mut(slot.region).set_word(slot.offset, new.raw());
                        // The slot still holds a cross-region reference;
                        // re-record it against the new target region.
                        if new.region() != slot.region {
                            let epoch = self.heap.region(slot.region).assigned_epoch;
                            let addr = rolp_heap::remset::SlotAddr {
                                region: slot.region,
                                offset: slot.offset,
                                epoch,
                            };
                            self.heap.region_mut(new.region()).rset.record(addr);
                        }
                    }
                    None => return,
                }
            }
        }
    }

    fn drain_scan(&mut self) {
        while let Some(obj) = self.scan.pop() {
            for i in 0..self.heap.ref_words(obj) {
                let v = self.heap.get_ref(obj, i);
                if v.is_null() {
                    continue;
                }
                let target = if self.in_cset(v.region()) {
                    match self.forward(v) {
                        Some(new) => new,
                        None => return,
                    }
                } else {
                    v
                };
                // set_ref re-records the remembered-set entry for the
                // object's *new* location.
                self.heap.set_ref(obj, i, target);
            }
            if self.failed {
                return;
            }
        }
    }
}

/// Evacuates the live objects of `cset`, releasing its regions on success.
///
/// `dest` maps (source region kind, post-increment age, object size in
/// words, allocation context when the object was profiled) to the
/// destination space. The pause is computed from the cost model, charged
/// to the clock, and recorded with `kind`.
pub fn evacuate(
    env: &mut VmEnv,
    cset: &[RegionId],
    dest: &mut dyn FnMut(RegionKind, u8, u32, Option<u32>) -> SpaceKind,
    hooks: &mut dyn GcHooks,
    kind: PauseKind,
) -> EvacOutcome {
    evacuate_mode(env, cset, dest, hooks, kind, false)
}

/// Like [`evacuate`], but the copying work is charged to *mutator* time
/// (the collector runs concurrently); only a short handshake pause is
/// recorded. This is how the ZGC/C4-class collector trades throughput for
/// latency (paper §2.2).
pub fn evacuate_concurrent(
    env: &mut VmEnv,
    cset: &[RegionId],
    dest: &mut dyn FnMut(RegionKind, u8, u32, Option<u32>) -> SpaceKind,
    hooks: &mut dyn GcHooks,
) -> EvacOutcome {
    evacuate_mode(env, cset, dest, hooks, PauseKind::ConcurrentHandshake, true)
}

fn evacuate_mode(
    env: &mut VmEnv,
    cset: &[RegionId],
    dest: &mut dyn FnMut(RegionKind, u8, u32, Option<u32>) -> SpaceKind,
    hooks: &mut dyn GcHooks,
    kind: PauseKind,
    concurrent: bool,
) -> EvacOutcome {
    let start = env.clock.now();
    env.heap.retire_all_current();

    let mut in_cset = vec![false; env.heap.num_regions()];
    for id in cset {
        in_cset[id.0 as usize] = true;
    }
    // Fan the remembered-set validation out to the GC workers while the
    // heap is still quiescent (nothing has been forwarded yet); the
    // verdicts are applied sequentially below.
    let gc_workers = env.cost.gc_workers.max(1);
    let prescan = prescan_remsets(&env.heap, cset, &in_cset, gc_workers as usize);
    let tracking = hooks.survivor_tracking_enabled();
    let mut ev = Evacuator {
        heap: &mut env.heap,
        dest,
        hooks,
        tracking,
        in_cset,
        gc_workers: gc_workers as u32,
        stats: EvacStats { regions_in_cset: cset.len() as u64, ..Default::default() },
        scan: Vec::new(),
        failed: false,
    };

    ev.process_roots();
    if !ev.failed {
        ev.process_remsets(cset, prescan);
    }
    if !ev.failed {
        ev.drain_scan();
    }

    let mut stats = ev.stats;
    let failed = ev.failed;

    // The double-copy watermark: sources and copies coexist here.
    env.sample_memory();

    if !failed {
        for &r in cset {
            let region = env.heap.region(r);
            // A region nobody copied out of died wholesale ("epochal"
            // reclamation): it is released for free.
            let had_survivor =
                env.heap.objects_in_region(r).any(|o| env.heap.header(o).is_forwarded());
            if !had_survivor && region.used_bytes() > 0 {
                stats.regions_fully_dead += 1;
            }
            env.heap.release_region(r);
            stats.regions_released += 1;
        }
    }

    let work = SimTime::from_nanos(evac_pause_ns(&env.cost, &stats, tracking));
    // The work decomposition is the same whether it runs inside the
    // pause or concurrently (stolen from the mutator).
    attribute_evac_work(env, &stats, tracking);
    let pause = if concurrent {
        // Copying proceeds alongside the mutator; the application only
        // stops for three short relocation handshakes.
        env.clock.advance(work.as_nanos());
        let pause = SimTime::from_nanos(3 * env.cost.safepoint_ns);
        env.telemetry.add(Bucket::GcOther, pause.as_nanos());
        pause
    } else {
        work
    };
    env.clock.advance_paused(pause);
    env.pauses.record(start, pause, kind);
    telemetry_pause(env, pause);
    trace_pause(env, start, pause, kind, &stats);
    env.sample_memory();

    EvacOutcome { stats, failed, pause }
}

/// Rewrites every reference (fields and roots) that points at a forwarded
/// object to its forwardee. Restores consistency after a failed
/// evacuation.
fn resolve_all_forwarding(heap: &mut Heap) {
    let regions: Vec<RegionId> = heap
        .regions()
        .filter(|(_, r)| !matches!(r.kind, RegionKind::Free))
        .map(|(id, _)| id)
        .collect();
    for id in &regions {
        let objects: Vec<ObjectRef> = heap.objects_in_region(*id).collect();
        for obj in objects {
            if heap.header(obj).is_forwarded() {
                continue; // garbage original
            }
            for i in 0..heap.ref_words(obj) {
                let v = heap.get_ref(obj, i);
                if v.is_null() {
                    continue;
                }
                let resolved = heap.resolve(v);
                if resolved != v {
                    heap.set_ref(obj, i, resolved);
                }
            }
        }
    }
    let roots: Vec<_> = heap.handles.entries().collect();
    for (h, obj) in roots {
        let resolved = heap.resolve(obj);
        if resolved != obj {
            heap.handles.set(h, resolved);
        }
    }
}

/// Clears and rebuilds every remembered set from the actual heap graph.
/// Needed after full compaction (every object moved).
pub fn rebuild_remsets(heap: &mut Heap) {
    let regions: Vec<RegionId> = heap.regions().map(|(id, _)| id).collect();
    for id in &regions {
        heap.region_mut(*id).rset.clear();
    }
    let live_regions: Vec<RegionId> = heap
        .regions()
        .filter(|(_, r)| !matches!(r.kind, RegionKind::Free))
        .map(|(id, _)| id)
        .collect();
    for id in live_regions {
        let objects: Vec<ObjectRef> = heap.objects_in_region(id).collect();
        for obj in objects {
            if heap.header(obj).is_forwarded() {
                continue;
            }
            for i in 0..heap.ref_words(obj) {
                let v = heap.get_ref(obj, i);
                if !v.is_null() && v.region() != id {
                    let epoch = heap.region(id).assigned_epoch;
                    let slot = rolp_heap::remset::SlotAddr {
                        region: id,
                        offset: obj.offset() + rolp_heap::heap::OBJECT_HEADER_WORDS + i as u32,
                        epoch,
                    };
                    heap.region_mut(v.region()).rset.record(slot);
                }
            }
        }
    }
}

/// Full stop-the-world mark-compact.
///
/// Young survivors are tenured (as in HotSpot full GCs); old regions
/// compact into old; dynamic generations compact within their generation;
/// live humongous regions stay put. Works with one free region via rolling
/// release, using a relocation map instead of in-heap forwarding so source
/// regions can be recycled immediately.
///
/// # Panics
///
/// Panics with an out-of-memory diagnostic if even compaction cannot make
/// room (live data exceeds the heap).
pub fn full_compact(env: &mut VmEnv, hooks: &mut dyn GcHooks) -> EvacStats {
    let start = env.clock.now();

    // A full compaction is a stop-the-world safepoint in its own right:
    // retire allocation buffers so every region is parsable, even when
    // called directly rather than through a collector's pause entry.
    env.safepoint_flush_alloc_path();

    // Phase 0: a failed evacuation may have left forwarding pointers.
    resolve_all_forwarding(&mut env.heap);

    // Phase 1: mark, on the worker pool when one is configured.
    let gc_workers = env.cost.gc_workers.max(1) as u32;
    let mark = mark_liveness_parallel(&mut env.heap, gc_workers as usize);

    // Phase 2: compact, most-garbage regions first (releases fastest).
    env.heap.retire_all_current();
    let mut sources: Vec<RegionId> = env
        .heap
        .regions()
        .filter(|(_, r)| {
            r.kind.is_allocatable() && !matches!(r.kind, RegionKind::Free | RegionKind::Humongous)
        })
        .map(|(id, _)| id)
        .collect();
    sources.sort_by_key(|&id| std::cmp::Reverse(env.heap.region(id).garbage_bytes()));

    let tracking = hooks.survivor_tracking_enabled();
    let mut stats = EvacStats { regions_in_cset: sources.len() as u64, ..Default::default() };
    let mut relocation: HashMap<ObjectRef, ObjectRef> = HashMap::new();

    for src in sources {
        let from_kind = env.heap.region(src).kind;
        let to_space = match from_kind {
            RegionKind::Eden | RegionKind::Survivor | RegionKind::Old => SpaceKind::Old,
            RegionKind::Dynamic(g) => SpaceKind::Dynamic(g),
            _ => unreachable!("filtered above"),
        };
        let objects: Vec<ObjectRef> = env.heap.objects_in_region(src).collect();
        let mut had_live = false;
        for obj in objects {
            if !mark.marked.contains(&obj) {
                continue;
            }
            had_live = true;
            let header = env.heap.header(obj);
            let new_age = if from_kind.is_young() {
                header.age().saturating_add(1).min(rolp_heap::header::MAX_AGE)
            } else {
                header.age()
            };
            let size_bytes = env.heap.size_words(obj) as u64 * 8;
            let new = env
                .heap
                .copy_object(obj, to_space)
                .unwrap_or_else(|_| panic!("OutOfMemoryError: full GC cannot compact"));
            let fixed = env.heap.header(new).with_age(new_age);
            env.heap.set_header(new, fixed);
            relocation.insert(obj, new);
            stats.survivors += 1;
            stats.bytes_copied += size_bytes;
            stats.gen_bytes[gen_index(to_space)] += size_bytes;
            if tracking {
                // Source-region attribution, as in `Evacuator::forward`.
                let worker = src.0 % gc_workers;
                hooks.on_survivor(header, from_kind, worker);
            }
        }
        if !had_live && env.heap.region(src).used_bytes() > 0 {
            stats.regions_fully_dead += 1;
        }
        env.heap.release_region(src);
        stats.regions_released += 1;
    }

    // Dead humongous regions are reclaimed in place.
    for id in env.heap.regions_of_kind(RegionKind::Humongous) {
        if env.heap.region(id).live_bytes == 0 {
            env.heap.release_region(id);
            stats.regions_released += 1;
            stats.regions_fully_dead += 1;
        }
    }

    // Phase 3: fix every reference and root through the relocation map.
    let live_regions: Vec<RegionId> = env
        .heap
        .regions()
        .filter(|(_, r)| !matches!(r.kind, RegionKind::Free))
        .map(|(id, _)| id)
        .collect();
    for id in live_regions {
        let objects: Vec<ObjectRef> = env.heap.objects_in_region(id).collect();
        for obj in objects {
            for i in 0..env.heap.ref_words(obj) {
                let v = env.heap.get_ref(obj, i);
                if let Some(&new) = relocation.get(&v) {
                    env.heap.set_ref(obj, i, new);
                }
            }
        }
    }
    let roots: Vec<_> = env.heap.handles.entries().collect();
    stats.roots_scanned = roots.len() as u64;
    for (h, obj) in roots {
        if let Some(&new) = relocation.get(&obj) {
            env.heap.handles.set(h, new);
        }
    }

    // Phase 4: remembered sets are void after a whole-heap move.
    rebuild_remsets(&mut env.heap);

    // Pause: marking + copying + two full fix-up scans, bandwidth-bound.
    let used = env.heap.used_bytes();
    let mark_ns = env.cost.copy_ns(mark.live_bytes) / 2; // mark traversal
    let compact_ns = env.cost.copy_ns(stats.bytes_copied) // compaction copy
        + env.cost.copy_ns(used) / 2 // reference fix-up scans
        + stats.survivors * env.cost.survivor_overhead_ns / env.cost.gc_workers.max(1);
    let pause_ns = env.cost.safepoint_ns + mark_ns + compact_ns;
    env.telemetry.add(Bucket::GcOther, env.cost.safepoint_ns);
    env.telemetry.add(Bucket::GcMark, mark_ns);
    env.telemetry.add(Bucket::GcEvac, compact_ns);
    let pause = SimTime::from_nanos(pause_ns);
    env.clock.advance_paused(pause);
    env.pauses.record(start, pause, PauseKind::Full);
    telemetry_pause(env, pause);
    trace_pause(env, start, pause, PauseKind::Full, &stats);
    env.sample_memory();

    stats
}
