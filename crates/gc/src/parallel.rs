//! Parallel GC worker pool: atomic mark bitmap, work-stealing marking,
//! and the read-only remembered-set prescan.
//!
//! Pauses parallelize on three invariants that keep the parallel result
//! byte-identical to the single-threaded reference:
//!
//! - **Exactly-once claiming.** [`MarkBitmap`] gives every object one
//!   atomic mark bit (`fetch_or`); whichever worker wins the claim owns
//!   the object's accounting, so per-worker partial results are disjoint
//!   and their merge is a plain sum — commutative, hence independent of
//!   the racy claim order.
//! - **Read-only fan-out, sequential apply.** The remembered-set prescan
//!   ([`prescan_remsets`]) validates slots against the quiescent heap
//!   with no writes at all; the (order-sensitive) forwarding writes stay
//!   on the coordinator, consuming the prescan's sorted verdicts.
//! - **Work stealing over static partitions.** Workers claim work from
//!   shared cursors ([`rolp_heap::RegionClaimer`]-style) and steal from
//!   each other's deques, so one dense region cannot serialize the
//!   pause.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use rolp_heap::remset::SlotAddr;
use rolp_heap::{Heap, ObjectRef, RegionId, RegionKind};

use crate::mark::{mark_liveness, MarkResult};

/// One atomic mark bit per heap word (an object is marked at its header
/// word), claimable exactly once.
pub struct MarkBitmap {
    words_per_region: usize,
    bits: Box<[AtomicU64]>,
}

impl MarkBitmap {
    /// A cleared bitmap sized for `heap`.
    pub fn for_heap(heap: &Heap) -> Self {
        Self::new(heap.num_regions(), heap.region_words())
    }

    /// A cleared bitmap for `num_regions` regions of `words_per_region`
    /// words.
    pub fn new(num_regions: usize, words_per_region: usize) -> Self {
        let bits = num_regions * words_per_region;
        MarkBitmap {
            words_per_region,
            bits: (0..bits.div_ceil(64)).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    #[inline]
    fn locate(&self, obj: ObjectRef) -> (usize, u64) {
        let bit = obj.region().0 as usize * self.words_per_region + obj.offset() as usize;
        (bit / 64, 1u64 << (bit % 64))
    }

    /// Atomically claims `obj`'s mark bit; true if this caller won.
    #[inline]
    pub fn try_claim(&self, obj: ObjectRef) -> bool {
        let (word, mask) = self.locate(obj);
        self.bits[word].fetch_or(mask, Ordering::Relaxed) & mask == 0
    }

    /// True if `obj` has been claimed.
    pub fn is_marked(&self, obj: ObjectRef) -> bool {
        let (word, mask) = self.locate(obj);
        self.bits[word].load(Ordering::Relaxed) & mask != 0
    }
}

/// A worker's private share of the mark results. Objects are claimed
/// exactly once, so partials are disjoint and merging is summation.
#[derive(Default)]
struct MarkPartial {
    live_objects: u64,
    live_bytes: u64,
    marked: Vec<ObjectRef>,
    context_live: HashMap<u32, u64>,
    region_live: HashMap<u32, u64>,
}

/// Marks the heap from the root handles using `workers` work-stealing OS
/// threads, updating every region's `live_bytes`.
///
/// `workers <= 1` falls through to the sequential
/// [`crate::mark::mark_liveness`], the deterministic reference; the
/// parallel path produces an identical [`MarkResult`] because all merge
/// operations commute.
pub fn mark_liveness_parallel(heap: &mut Heap, workers: usize) -> MarkResult {
    if workers <= 1 {
        return mark_liveness(heap);
    }

    // Reset liveness of every assigned region (as the sequential pass
    // does), while we still hold the heap mutably.
    let ids: Vec<_> = heap.regions().map(|(id, _)| id).collect();
    for id in ids {
        let r = heap.region_mut(id);
        if !matches!(r.kind, RegionKind::Free) {
            r.live_bytes = 0;
            r.liveness_valid = true;
        }
    }

    let bitmap = MarkBitmap::for_heap(heap);
    let deques: Vec<Mutex<VecDeque<ObjectRef>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    // Seed the deques round-robin with the (deduplicated) roots.
    for (i, root) in heap.handles.roots().enumerate() {
        if bitmap.try_claim(root) {
            deques[i % workers].lock().unwrap().push_back(root);
        }
    }

    let idle = AtomicUsize::new(0);
    let shared: &Heap = heap;
    let partials: Vec<MarkPartial> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|me| {
                let (bitmap, deques, idle) = (&bitmap, &deques, &idle);
                s.spawn(move || mark_worker(shared, bitmap, deques, idle, me, workers))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("mark worker panicked")).collect()
    });

    let mut result = MarkResult::default();
    let mut region_live: HashMap<u32, u64> = HashMap::new();
    for partial in partials {
        result.live_objects += partial.live_objects;
        result.live_bytes += partial.live_bytes;
        result.marked.extend(partial.marked);
        for (ctx, n) in partial.context_live {
            *result.context_live.entry(ctx).or_insert(0) += n;
        }
        for (region, bytes) in partial.region_live {
            *region_live.entry(region).or_insert(0) += bytes;
        }
    }
    for (region, bytes) in region_live {
        heap.region_mut(RegionId(region)).live_bytes += bytes;
    }
    result
}

fn mark_worker(
    heap: &Heap,
    bitmap: &MarkBitmap,
    deques: &[Mutex<VecDeque<ObjectRef>>],
    idle: &AtomicUsize,
    me: usize,
    workers: usize,
) -> MarkPartial {
    let mut partial = MarkPartial::default();
    loop {
        // Own deque first (LIFO for locality), then steal (FIFO). One
        // statement per lock: a guard held across a second `lock()`
        // would deadlock two workers stealing from each other.
        let mut next = deques[me].lock().unwrap().pop_back();
        if next.is_none() {
            for d in 1..workers {
                next = deques[(me + d) % workers].lock().unwrap().pop_front();
                if next.is_some() {
                    break;
                }
            }
        }
        match next {
            Some(obj) => {
                // This worker won `obj`'s claim: all of its accounting
                // lands in this partial, exactly once.
                debug_assert!(!heap.header(obj).is_forwarded(), "marking over a forwarded object");
                let size_bytes = heap.size_words(obj) as u64 * 8;
                partial.live_objects += 1;
                partial.live_bytes += size_bytes;
                partial.marked.push(obj);
                if let Some(ctx) = heap.header(obj).allocation_context() {
                    if ctx != 0 {
                        *partial.context_live.entry(ctx).or_insert(0) += 1;
                    }
                }
                *partial.region_live.entry(obj.region().0).or_insert(0) += size_bytes;
                let mut own = deques[me].lock().unwrap();
                for i in 0..heap.ref_words(obj) {
                    let v = heap.get_ref(obj, i);
                    if !v.is_null() && bitmap.try_claim(v) {
                        own.push_back(v);
                    }
                }
            }
            None => {
                // Termination: a worker is counted idle only while it is
                // inside this loop, and work is only produced by
                // non-idle workers — so `idle == workers` means every
                // deque is empty and stays empty.
                idle.fetch_add(1, Ordering::SeqCst);
                loop {
                    if deques.iter().any(|d| !d.lock().unwrap().is_empty()) {
                        idle.fetch_sub(1, Ordering::SeqCst);
                        break;
                    }
                    if idle.load(Ordering::SeqCst) == workers {
                        return partial;
                    }
                    std::thread::yield_now();
                }
            }
        }
    }
}

/// Fans `work` out over the indices of `items` on a shared-cursor worker
/// pool, returning the results in input order.
///
/// This is the pool idiom the remembered-set prescan uses, extracted so
/// other embarrassingly parallel index spaces (the sharded OLD table's
/// per-shard merge and inference fan-outs) share it: workers claim
/// indices from one atomic cursor, each result lands in its index's slot,
/// and the output order matches `items` regardless of how the claim race
/// resolves. `workers <= 1` (or a single item) runs inline on the caller
/// — the deterministic reference the parallel path must match.
pub fn fan_out_indexed<T, R, F>(items: &[T], workers: usize, work: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if workers <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, t)| work(i, t)).collect();
    }
    let cursor = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<R>>> = (0..items.len()).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..workers.min(items.len()) {
            let (cursor, results, work) = (&cursor, &results, &work);
            s.spawn(move || loop {
                let idx = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(idx) else { break };
                *results[idx].lock().unwrap() = Some(work(idx, item));
            });
        }
    });
    results
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("every index claimed exactly once"))
        .collect()
}

/// A remembered-set slot that survived prescan validation: it still holds
/// a reference into the collection set and must be forwarded.
#[derive(Debug, Clone, Copy)]
pub struct ValidSlot {
    /// The validated slot.
    pub slot: SlotAddr,
    /// The collection-set reference the slot held at prescan time.
    pub value: ObjectRef,
}

/// Result of [`prescan_remsets`].
#[derive(Debug, Default)]
pub struct RemsetPrescan {
    /// Valid slots per collection-set region, parallel to the input
    /// `cset` order, each list sorted by `(region, offset, epoch)`.
    pub valid: Vec<Vec<ValidSlot>>,
    /// Total slots examined (valid or stale) — the pause-accounting
    /// figure the cost model charges.
    pub slots_examined: u64,
}

/// Validates the collection set's remembered-set slots in parallel,
/// read-only, against the quiescent (world-stopped) heap.
///
/// Safe to run before any forwarding because validation only reads state
/// the evacuator's remset pass never changes: cset membership, holder
/// region epochs/kinds/tops, and slot words of *non*-cset holders (the
/// evacuator rewrites those only after this prescan). The verdicts are
/// sorted, so the output is independent of how workers split the regions.
pub fn prescan_remsets(
    heap: &Heap,
    cset: &[RegionId],
    in_cset: &[bool],
    workers: usize,
) -> RemsetPrescan {
    let slots_examined = AtomicU64::new(0);
    let validate_region = |&r: &RegionId| -> Vec<ValidSlot> {
        let mut valid: Vec<ValidSlot> = Vec::new();
        let mut examined = 0u64;
        for slot in heap.region(r).rset.iter() {
            examined += 1;
            if in_cset[slot.region.0 as usize] {
                continue; // covered by transitive scanning
            }
            let holder = heap.region(slot.region);
            if holder.assigned_epoch != slot.epoch
                || matches!(holder.kind, RegionKind::Free)
                || (slot.offset as usize) >= holder.top()
            {
                continue; // stale: recycled holder or truncated slot
            }
            let value = ObjectRef::from_raw(holder.word(slot.offset));
            if value.is_null() || !in_cset[value.region().0 as usize] {
                continue; // overwritten since recording
            }
            valid.push(ValidSlot { slot: *slot, value });
        }
        // The remembered set hashes its slots; sort so neither the
        // hasher nor the worker split leaks into evacuation order.
        valid.sort_unstable_by_key(|v| (v.slot.region.0, v.slot.offset, v.slot.epoch));
        slots_examined.fetch_add(examined, Ordering::Relaxed);
        valid
    };

    let valid: Vec<Vec<ValidSlot>> = fan_out_indexed(cset, workers, |_, r| validate_region(r));

    RemsetPrescan { valid, slots_examined: slots_examined.into_inner() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rolp_heap::{ClassId, HeapConfig, ObjectHeader, SpaceKind};

    fn heap() -> Heap {
        let mut h = Heap::new(HeapConfig { region_bytes: 1024, max_heap_bytes: 64 * 1024 });
        h.classes.register("t.A");
        h
    }

    fn alloc(h: &mut Heap, space: SpaceKind, refs: u16, data: u32) -> ObjectRef {
        let hash = h.next_identity_hash();
        h.alloc_in(space, ClassId(0), refs, data, ObjectHeader::new(hash)).unwrap()
    }

    #[test]
    fn bitmap_claims_exactly_once() {
        let bm = MarkBitmap::new(4, 128);
        let a = ObjectRef::new(RegionId(1), 64);
        let b = ObjectRef::new(RegionId(1), 65);
        assert!(!bm.is_marked(a));
        assert!(bm.try_claim(a));
        assert!(!bm.try_claim(a), "second claim loses");
        assert!(bm.is_marked(a));
        assert!(!bm.is_marked(b), "adjacent bit untouched");
        assert!(bm.try_claim(b));
    }

    #[test]
    fn bitmap_concurrent_claims_are_exclusive() {
        let bm = std::sync::Arc::new(MarkBitmap::new(8, 128));
        let wins = std::sync::Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let (bm, wins) = (std::sync::Arc::clone(&bm), std::sync::Arc::clone(&wins));
                s.spawn(move || {
                    for region in 0..8u32 {
                        for offset in 0..128u32 {
                            if bm.try_claim(ObjectRef::new(RegionId(region), offset)) {
                                wins.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                });
            }
        });
        assert_eq!(wins.load(Ordering::Relaxed), 8 * 128, "each bit claimed exactly once");
    }

    fn build_graph(h: &mut Heap) -> (ObjectRef, ObjectRef) {
        // A chain and a fan-out crossing regions, plus garbage.
        let root = alloc(h, SpaceKind::Eden, 4, 0);
        let mut prev = root;
        for i in 0..40 {
            let space = if i % 3 == 0 { SpaceKind::Old } else { SpaceKind::Eden };
            let next = alloc(h, space, 2, i % 7);
            h.set_ref(prev, 0, next);
            prev = next;
        }
        let shared = alloc(h, SpaceKind::Old, 0, 3);
        h.set_ref(root, 1, shared);
        h.set_ref(prev, 1, shared);
        // A cycle.
        h.set_ref(prev, 0, root);
        let dead = alloc(h, SpaceKind::Eden, 0, 5);
        h.handles.create(root);
        (root, dead)
    }

    #[test]
    fn parallel_mark_matches_sequential_reference() {
        let mut h1 = heap();
        let (_, dead1) = build_graph(&mut h1);
        let mut h2 = heap();
        let (_, _) = build_graph(&mut h2);

        let seq = mark_liveness(&mut h1);
        let par = mark_liveness_parallel(&mut h2, 4);

        assert_eq!(par.live_objects, seq.live_objects);
        assert_eq!(par.live_bytes, seq.live_bytes);
        assert_eq!(par.marked, seq.marked);
        assert_eq!(par.context_live, seq.context_live);
        assert!(!par.marked.contains(&dead1));
        // Per-region liveness matches too.
        for (id, r1) in h1.regions() {
            assert_eq!(h2.region(id).live_bytes, r1.live_bytes, "region {id:?}");
        }
    }

    #[test]
    fn parallel_mark_with_one_worker_is_the_sequential_path() {
        let mut h = heap();
        build_graph(&mut h);
        let r = mark_liveness_parallel(&mut h, 1);
        assert!(r.live_objects > 0);
    }

    #[test]
    fn fan_out_preserves_input_order_at_any_worker_count() {
        let items: Vec<u32> = (0..37).collect();
        let f = |i: usize, &v: &u32| (i as u32) * 1000 + v * 2;
        let seq = fan_out_indexed(&items, 1, f);
        for workers in [2, 4, 16, 64] {
            assert_eq!(fan_out_indexed(&items, workers, f), seq);
        }
        assert!(fan_out_indexed(&Vec::<u32>::new(), 4, f).is_empty());
    }

    #[test]
    fn prescan_is_worker_count_independent() {
        let mut h = heap();
        // Objects in eden referenced from old regions (remset entries).
        let eden: Vec<ObjectRef> = (0..12).map(|i| alloc(&mut h, SpaceKind::Eden, 0, i)).collect();
        for &e in &eden {
            let holder = alloc(&mut h, SpaceKind::Old, 1, 0);
            h.set_ref(holder, 0, e); // write barrier records the slot
            h.handles.create(holder);
        }
        let cset = h.regions_of_kind(RegionKind::Eden);
        let mut in_cset = vec![false; h.num_regions()];
        for r in &cset {
            in_cset[r.0 as usize] = true;
        }
        let p1 = prescan_remsets(&h, &cset, &in_cset, 1);
        let p4 = prescan_remsets(&h, &cset, &in_cset, 4);
        assert_eq!(p1.slots_examined, p4.slots_examined);
        assert!(p1.slots_examined >= 12);
        assert_eq!(p1.valid.len(), p4.valid.len());
        for (a, b) in p1.valid.iter().zip(&p4.valid) {
            let key = |v: &ValidSlot| (v.slot.region.0, v.slot.offset, v.slot.epoch, v.value);
            assert_eq!(
                a.iter().map(key).collect::<Vec<_>>(),
                b.iter().map(key).collect::<Vec<_>>()
            );
        }
    }
}
