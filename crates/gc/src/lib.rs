//! Garbage collectors for the ROLP reproduction.
//!
//! The paper evaluates ROLP against four collector configurations on the
//! same JVM; this crate provides all of them over the `rolp-heap`
//! substrate:
//!
//! - [`regional::RegionalCollector::g1`] — the G1 baseline: regional young
//!   collections, concurrent-style marking, mixed collections.
//! - [`regional::RegionalCollector::ng2c`] — NG2C: G1 plus 16 generations
//!   with pretenuring, driven by hand annotations or by ROLP's advice
//!   through [`observer::GcHooks`].
//! - [`cms::CmsCollector`] — CMS: concurrent mark-sweep old generation
//!   with no compaction until a stop-the-world full GC.
//! - [`concurrent::ConcurrentCollector`] — the ZGC/C4 class: everything
//!   concurrent, tiny pauses, barrier and memory taxes.
//!
//! Shared machinery: [`mark`] (tracing), [`evac`] (evacuation, full
//! compaction, remembered-set maintenance, pause accounting), and
//! [`parallel`] (the GC worker pool: atomic mark bitmap, work-stealing
//! marking, read-only remembered-set prescan).

pub mod cms;
pub mod concurrent;
pub mod evac;
pub mod mark;
pub mod observer;
pub mod parallel;
pub mod regional;

pub use cms::{CmsCollector, CmsConfig, CmsStats};
pub use concurrent::{ConcurrentCollector, ConcurrentConfig, ConcurrentStats};
pub use evac::{evacuate, full_compact, rebuild_remsets, EvacOutcome, EvacStats};
pub use mark::{mark_liveness, MarkResult};
pub use observer::{GcCycleInfo, GcHooks, NullHooks};
pub use parallel::{
    fan_out_indexed, mark_liveness_parallel, prescan_remsets, MarkBitmap, RemsetPrescan,
};
pub use regional::{RegionalCollector, RegionalConfig, RegionalStats};
