//! End-to-end collector tests over a real heap.
//!
//! Each test drives a collector through `CollectorApi::allocate` exactly as
//! the VM would, then checks structural invariants with the heap verifier
//! and behavioural invariants (promotion, pretenuring, reclamation, pause
//! shape) directly.

use std::cell::RefCell;
use std::rc::Rc;

use rolp_gc::{
    full_compact, CmsCollector, ConcurrentCollector, GcHooks, NullHooks, RegionalCollector,
    RegionalConfig,
};
use rolp_heap::verify::assert_heap_valid;
use rolp_heap::{ClassId, Handle, Heap, HeapConfig, ObjectHeader, RegionKind};
use rolp_metrics::PauseKind;
use rolp_vm::{AllocRequest, CollectorApi, CostModel, JitConfig, ProgramBuilder, VmEnv};

fn env(heap_bytes: u64) -> VmEnv {
    let mut heap = Heap::new(HeapConfig { region_bytes: 4096, max_heap_bytes: heap_bytes });
    heap.classes.register("t.Obj");
    VmEnv::new(heap, CostModel::default(), ProgramBuilder::new().build(), JitConfig::default(), 1)
}

fn req(ref_words: u16, data_words: u32) -> AllocRequest {
    AllocRequest {
        class: ClassId(0),
        ref_words,
        data_words,
        header: ObjectHeader::new(1),
        context: None,
        manual_gen: None,
        advised_gen: None,
    }
}

fn alloc_live(c: &mut dyn CollectorApi, env: &mut VmEnv, refs: u16, data: u32) -> Handle {
    let obj = c.allocate(env, req(refs, data));
    env.heap.handles.create(obj)
}

fn alloc_garbage(c: &mut dyn CollectorApi, env: &mut VmEnv, data: u32) {
    let _ = c.allocate(env, req(0, data));
}

fn hooks() -> Rc<RefCell<dyn GcHooks>> {
    Rc::new(RefCell::new(NullHooks))
}

#[test]
fn g1_survives_live_objects_through_young_gcs() {
    let mut env = env(1 << 20);
    let mut g1 = RegionalCollector::g1(hooks());

    // A small linked list that must survive.
    let head = alloc_live(&mut g1, &mut env, 1, 4);
    let tail = alloc_live(&mut g1, &mut env, 0, 4);
    {
        let (h, t) = (env.heap.handles.get(head), env.heap.handles.get(tail));
        env.heap.set_ref(h, 0, t);
        let o = env.heap.handles.get(head);
        env.heap.set_data(o, 0, 0xABCD);
    }

    // Churn enough garbage to force several young collections.
    for _ in 0..8_000 {
        alloc_garbage(&mut g1, &mut env, 10);
    }
    assert!(g1.stats().young_gcs >= 2, "expected young GCs, got {:?}", g1.stats());

    // The list is intact at its (moved) location.
    let h = env.heap.handles.get(head);
    assert_eq!(env.heap.get_data(h, 0), 0xABCD);
    let t = env.heap.get_ref(h, 0);
    assert_eq!(t, env.heap.handles.get(tail));
    assert_heap_valid(&env.heap, false);
}

#[test]
fn g1_promotes_long_lived_objects_to_old() {
    let mut env = env(1 << 20);
    let cfg = RegionalConfig { tenuring_threshold: 3, ..Default::default() };
    let mut g1 = RegionalCollector::with_config(cfg, hooks(), "G1");

    let keep = alloc_live(&mut g1, &mut env, 0, 4);
    for _ in 0..30_000 {
        alloc_garbage(&mut g1, &mut env, 10);
    }
    let obj = env.heap.handles.get(keep);
    assert_eq!(env.heap.region(obj.region()).kind, RegionKind::Old, "survivor should tenure");
    assert!(env.heap.header(obj).age() >= 3);
}

#[test]
fn young_pauses_scale_with_survivor_bytes() {
    // Use a cost model where per-pause fixed costs are negligible, so the
    // bandwidth-bound copy term is observable even on a tiny test heap.
    let copy_cost = || CostModel {
        safepoint_ns: 100,
        region_overhead_ns: 10,
        copy_bandwidth_bytes_per_sec: 100_000_000, // 100 MB/s per worker
        ..Default::default()
    };

    // Run A: everything dies young.
    let mut env_a = env(1 << 20);
    env_a.cost = copy_cost();
    let mut g1 = RegionalCollector::g1(hooks());
    for _ in 0..20_000 {
        alloc_garbage(&mut g1, &mut env_a, 10);
    }
    let mean_a = env_a.pauses.mean_ms();

    // Run B: a large fraction survives (live handles retained).
    let mut env_b = env(1 << 20);
    env_b.cost = copy_cost();
    let mut g1b = RegionalCollector::g1(hooks());
    let mut keep = Vec::new();
    for i in 0..20_000 {
        if i % 4 == 0 && keep.len() < 3_000 {
            keep.push(alloc_live(&mut g1b, &mut env_b, 0, 10));
        } else {
            alloc_garbage(&mut g1b, &mut env_b, 10);
        }
    }
    let mean_b = env_b.pauses.mean_ms();
    assert!(
        mean_b > mean_a * 2.0,
        "copying-bound pauses: all-garbage {mean_a} ms vs surviving {mean_b} ms"
    );
}

#[test]
fn ng2c_pretenures_into_dynamic_generations() {
    let mut env = env(1 << 20);
    let mut ng2c = RegionalCollector::ng2c(hooks());

    let mut r = req(0, 4);
    r.manual_gen = Some(5);
    let obj = ng2c.allocate(&mut env, r);
    let h = env.heap.handles.create(obj);
    assert_eq!(env.heap.region(obj.region()).kind, RegionKind::Dynamic(5));
    assert_eq!(ng2c.stats().pretenured, 1);

    // Young GCs never copy it: it is not in any young collection set.
    let copied_before = env.heap.stats().objects_copied;
    for _ in 0..8_000 {
        alloc_garbage(&mut ng2c, &mut env, 10);
    }
    assert!(ng2c.stats().young_gcs >= 2);
    let obj_now = env.heap.handles.get(h);
    assert_eq!(env.heap.region(obj_now.region()).kind, RegionKind::Dynamic(5));
    assert_eq!(obj_now, obj, "pretenured object never moved");
    let _ = copied_before;
}

#[test]
fn ng2c_reclaims_died_together_regions_without_copying() {
    let mut env = env(1 << 20);
    let cfg =
        RegionalConfig { mark_trigger: 0.05, mixed_live_threshold: 0.95, ..Default::default() };
    let mut ng2c = RegionalCollector::with_config(
        RegionalConfig { pretenuring: true, ..cfg },
        hooks(),
        "NG2C",
    );

    // Fill generation 3 with objects, then drop them all: an epoch dying
    // together.
    let mut epoch = Vec::new();
    for _ in 0..600 {
        let mut r = req(0, 16);
        r.manual_gen = Some(3);
        let obj = ng2c.allocate(&mut env, r);
        epoch.push(env.heap.handles.create(obj));
    }
    let dyn_regions = env.heap.num_of_kind(RegionKind::Dynamic(3));
    assert!(dyn_regions >= 2);
    for h in epoch {
        env.heap.handles.drop_handle(h);
    }

    // Churn young garbage until marking + mixed collections run.
    let copied_before = env.heap.stats().bytes_copied;
    for _ in 0..40_000 {
        alloc_garbage(&mut ng2c, &mut env, 10);
    }
    assert!(ng2c.stats().markings >= 1, "marking should have triggered");
    assert_eq!(env.heap.num_of_kind(RegionKind::Dynamic(3)), 0, "dead dynamic regions reclaimed");
    assert!(
        ng2c.stats().regions_died_together >= dyn_regions as u64,
        "died-together reclamation should be copy-free: {:?}",
        ng2c.stats()
    );
    let _ = copied_before;
}

#[test]
fn full_compact_preserves_object_graph_and_rebuilds_remsets() {
    let mut env = env(1 << 20);
    let mut g1 = RegionalCollector::g1(hooks());

    // Build a graph spanning several regions with cross-links.
    let mut handles = Vec::new();
    for i in 0..500 {
        let h = alloc_live(&mut g1, &mut env, 2, 6);
        let o = env.heap.handles.get(h);
        env.heap.set_data(o, 0, i as u64);
        handles.push(h);
    }
    for i in 1..handles.len() {
        let a = env.heap.handles.get(handles[i - 1]);
        let b = env.heap.handles.get(handles[i]);
        env.heap.set_ref(a, 0, b);
    }
    // Some garbage in between.
    for _ in 0..2_000 {
        alloc_garbage(&mut g1, &mut env, 12);
    }

    let mut null_hooks = NullHooks;
    full_compact(&mut env, &mut null_hooks);

    // Graph intact.
    for (i, h) in handles.iter().enumerate() {
        let o = env.heap.handles.get(*h);
        assert_eq!(env.heap.get_data(o, 0), i as u64);
        if i + 1 < handles.len() {
            assert_eq!(env.heap.get_ref(o, 0), env.heap.handles.get(handles[i + 1]));
        }
    }
    // Heap structurally valid *including* remembered-set completeness.
    assert_heap_valid(&env.heap, true);
    // The last pause is a Full pause.
    assert_eq!(env.pauses.events().last().unwrap().kind, PauseKind::Full);
}

#[test]
fn cms_sweeps_dead_old_regions_without_pauses() {
    let mut env = env(1 << 20);
    let cms_cfg = rolp_gc::CmsConfig { initiating_occupancy: 0.10, ..Default::default() };
    let mut cms = CmsCollector::with_config(cms_cfg, hooks());

    // Promote a batch, drop it, then let the concurrent cycle sweep.
    let mut batch = Vec::new();
    for _ in 0..2_000 {
        batch.push(alloc_live(&mut cms, &mut env, 0, 10));
    }
    // Churn so survivors promote (tenuring threshold 6).
    for _ in 0..30_000 {
        alloc_garbage(&mut cms, &mut env, 10);
    }
    for h in batch {
        env.heap.handles.drop_handle(h);
    }
    for _ in 0..60_000 {
        alloc_garbage(&mut cms, &mut env, 10);
    }
    let stats = cms.stats();
    assert!(stats.concurrent_cycles >= 1, "concurrent cycle expected: {stats:?}");
    assert!(stats.regions_swept >= 1, "sweep should reclaim dead old regions: {stats:?}");
    assert_heap_valid(&env.heap, false);
}

#[test]
fn concurrent_collector_keeps_pauses_tiny() {
    let mut env = env(1 << 20);
    let cost = env.cost.clone();
    let mut z = ConcurrentCollector::new(hooks(), &cost);

    let mut keep = Vec::new();
    for i in 0..30_000 {
        if i % 10 == 0 && keep.len() < 2_000 {
            keep.push(alloc_live(&mut z, &mut env, 0, 10));
        } else {
            alloc_garbage(&mut z, &mut env, 10);
        }
    }
    assert!(z.stats().cycles_run >= 1);
    // Every pause is a handshake in the low-millisecond class.
    let max_ms = env.pauses.percentile_ms(100.0);
    assert!(max_ms < 10.0, "concurrent pause crossed 10 ms: {max_ms} ms");
    // But the mutator paid the relocation work: mutator time exceeds what
    // the same allocation count costs under G1 young pauses.
    assert!(z.stats().bytes_relocated > 0);
    assert!(z.load_barrier_ns() > 0 && z.store_barrier_ns() > 0);
    assert_heap_valid(&env.heap, false);
}

#[test]
fn gc_hooks_see_survivors_and_cycle_ends() {
    #[derive(Default)]
    struct Recorder {
        survivors: u64,
        cycles: u64,
    }
    impl GcHooks for Recorder {
        fn survivor_tracking_enabled(&self) -> bool {
            true
        }
        fn on_survivor(&mut self, _h: ObjectHeader, _from: RegionKind, _w: u32) {
            self.survivors += 1;
        }
        fn on_gc_end(&mut self, _env: &mut VmEnv, info: &rolp_gc::GcCycleInfo) {
            self.cycles += 1;
            assert_eq!(info.cycle, self.cycles);
        }
    }

    let rec: Rc<RefCell<Recorder>> = Rc::new(RefCell::new(Recorder::default()));
    let mut env = env(1 << 20);
    let mut g1 = RegionalCollector::g1(rec.clone());

    let _keep: Vec<Handle> = (0..500).map(|_| alloc_live(&mut g1, &mut env, 0, 10)).collect();
    for _ in 0..10_000 {
        alloc_garbage(&mut g1, &mut env, 10);
    }
    let r = rec.borrow();
    assert!(r.cycles >= 1);
    assert!(r.survivors >= 500, "every live object reported on survival");
}

#[test]
fn evacuation_failure_falls_back_to_full_gc_not_corruption() {
    // A tiny heap where live data nearly fills everything: young evac can
    // run out of regions and must recover through full compaction.
    let mut env = env(128 * 1024); // 32 regions of 4 KiB
    let cfg = RegionalConfig { reserve_regions: 0, eden_fraction: 0.5, ..Default::default() };
    let mut g1 = RegionalCollector::with_config(cfg, hooks(), "G1");

    let mut keep = Vec::new();
    for i in 0..3_000 {
        // Keep ~60% alive so survivors barely fit.
        if i % 5 != 0 {
            keep.push(alloc_live(&mut g1, &mut env, 0, 20));
        } else {
            alloc_garbage(&mut g1, &mut env, 20);
        }
        if keep.len() > 400 {
            // Release the oldest half to keep total live bounded.
            for h in keep.drain(..200) {
                env.heap.handles.drop_handle(h);
            }
        }
    }
    for h in &keep {
        let o = env.heap.handles.get(*h);
        assert!(!env.heap.header(o).is_forwarded());
    }
    assert_heap_valid(&env.heap, false);
}
