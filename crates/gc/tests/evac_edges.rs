//! Evacuation edge cases: empty collection sets, all-dead regions,
//! self-referential objects, deep chains across regions, and pause
//! accounting.

use rolp_gc::{evacuate, rebuild_remsets, EvacStats, NullHooks};
use rolp_heap::verify::assert_heap_valid;
use rolp_heap::{ClassId, Heap, HeapConfig, ObjectHeader, ObjectRef, RegionKind, SpaceKind};
use rolp_metrics::PauseKind;
use rolp_vm::{CostModel, JitConfig, ProgramBuilder, VmEnv};

fn env() -> VmEnv {
    let mut heap = Heap::new(HeapConfig { region_bytes: 1024, max_heap_bytes: 64 * 1024 });
    heap.classes.register("t.Obj");
    VmEnv::new(heap, CostModel::default(), ProgramBuilder::new().build(), JitConfig::default(), 1)
}

fn alloc(env: &mut VmEnv, space: SpaceKind, refs: u16, data: u32) -> ObjectRef {
    let hash = env.heap.next_identity_hash();
    env.heap.alloc_in(space, ClassId(0), refs, data, ObjectHeader::new(hash)).expect("fits")
}

fn young_dest(from: RegionKind, _age: u8, _size: u32, _ctx: Option<u32>) -> SpaceKind {
    match from {
        RegionKind::Eden | RegionKind::Survivor => SpaceKind::Survivor,
        RegionKind::Dynamic(g) => SpaceKind::Dynamic(g),
        _ => SpaceKind::Old,
    }
}

#[test]
fn empty_cset_records_only_the_fixed_pause() {
    let mut env = env();
    let mut hooks = NullHooks;
    let outcome = evacuate(&mut env, &[], &mut young_dest, &mut hooks, PauseKind::Young);
    assert!(!outcome.failed);
    let EvacStats { bytes_copied, survivors, regions_released, .. } = outcome.stats;
    assert_eq!((bytes_copied, survivors, regions_released), (0, 0, 0));
    assert_eq!(env.pauses.count(), 1);
    // Pause = safepoint + root scan only (no roots -> just the safepoint).
    assert!(outcome.pause.as_nanos() >= env.cost.safepoint_ns);
}

#[test]
fn all_dead_regions_are_released_for_free() {
    let mut env = env();
    // Fill two eden regions with garbage (no handles).
    for _ in 0..12 {
        let _ = alloc(&mut env, SpaceKind::Eden, 0, 16);
    }
    let cset = env.heap.regions_of_kind(RegionKind::Eden);
    assert!(cset.len() >= 2);
    let free_before = env.heap.free_regions();

    let mut hooks = NullHooks;
    let outcome = evacuate(&mut env, &cset, &mut young_dest, &mut hooks, PauseKind::Young);
    assert!(!outcome.failed);
    assert_eq!(outcome.stats.bytes_copied, 0, "nothing live, nothing copied");
    assert_eq!(outcome.stats.regions_fully_dead, cset.len() as u64);
    assert_eq!(env.heap.free_regions(), free_before + cset.len());
}

#[test]
fn self_referential_objects_survive() {
    let mut env = env();
    let obj = alloc(&mut env, SpaceKind::Eden, 1, 2);
    env.heap.set_ref(obj, 0, obj); // self-loop
    env.heap.set_data(obj, 1, 0x5E1F);
    let h = env.heap.handles.create(obj);

    let cset = env.heap.regions_of_kind(RegionKind::Eden);
    let mut hooks = NullHooks;
    let outcome = evacuate(&mut env, &cset, &mut young_dest, &mut hooks, PauseKind::Young);
    assert!(!outcome.failed);
    let moved = env.heap.handles.get(h);
    assert_ne!(moved, obj);
    assert_eq!(env.heap.get_ref(moved, 0), moved, "self-loop re-targeted to the copy");
    assert_eq!(env.heap.get_data(moved, 1), 0x5E1F);
    assert_heap_valid(&env.heap, false);
}

#[test]
fn deep_chains_across_regions_survive_with_remsets_intact() {
    let mut env = env();
    // A chain alternating young/old so every link crosses a region.
    let mut prev = alloc(&mut env, SpaceKind::Old, 1, 1);
    let head = env.heap.handles.create(prev);
    for i in 0..60 {
        let space = if i % 2 == 0 { SpaceKind::Eden } else { SpaceKind::Old };
        let next = alloc(&mut env, space, 1, 1);
        env.heap.set_data(next, 0, i);
        env.heap.set_ref(prev, 0, next);
        prev = next;
    }

    let cset = env.heap.regions_of_kind(RegionKind::Eden);
    let mut hooks = NullHooks;
    let outcome = evacuate(&mut env, &cset, &mut young_dest, &mut hooks, PauseKind::Young);
    assert!(!outcome.failed);

    // Walk the chain: every young link moved, every old link stayed, all
    // data intact.
    let mut cur = env.heap.handles.get(head);
    let mut seen = 0;
    loop {
        let next = env.heap.get_ref(cur, 0);
        if next.is_null() {
            break;
        }
        assert_eq!(env.heap.get_data(next, 0), seen);
        seen += 1;
        cur = next;
    }
    assert_eq!(seen, 60);
    rebuild_remsets(&mut env.heap);
    assert_heap_valid(&env.heap, true);
}

#[test]
fn survivor_pause_grows_with_copied_bytes() {
    let sizes = [4u32, 40]; // both below the humongous threshold (half of a 128-word region)
    let mut pauses = Vec::new();
    for &words in &sizes {
        let mut env = env();
        // Slow copy bandwidth so the copy term dominates the fixed costs.
        env.cost.copy_bandwidth_bytes_per_sec = 1_000_000;
        let mut handles = Vec::new();
        for _ in 0..6 {
            let o = alloc(&mut env, SpaceKind::Eden, 0, words);
            handles.push(env.heap.handles.create(o));
        }
        let cset = env.heap.regions_of_kind(RegionKind::Eden);
        let mut hooks = NullHooks;
        let outcome = evacuate(&mut env, &cset, &mut young_dest, &mut hooks, PauseKind::Young);
        assert_eq!(outcome.stats.survivors, 6);
        pauses.push(outcome.pause.as_nanos());
    }
    assert!(pauses[1] > pauses[0], "10x larger objects must cost more: {pauses:?}");
}
