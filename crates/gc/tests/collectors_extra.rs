//! Additional collector behaviour tests: humongous objects, ZGC headroom
//! and barrier surface, CMS fragmentation full GCs, marking censuses, and
//! mixed-collection liveness gating.

use std::cell::RefCell;
use std::rc::Rc;

use rolp_gc::{
    mark_liveness, CmsCollector, CmsConfig, ConcurrentCollector, GcHooks, NullHooks,
    RegionalCollector, RegionalConfig,
};
use rolp_heap::verify::assert_heap_valid;
use rolp_heap::{ClassId, Handle, Heap, HeapConfig, ObjectHeader, RegionKind};
use rolp_vm::{AllocRequest, CollectorApi, CostModel, JitConfig, ProgramBuilder, VmEnv};

fn env(heap_bytes: u64) -> VmEnv {
    let mut heap = Heap::new(HeapConfig { region_bytes: 4096, max_heap_bytes: heap_bytes });
    heap.classes.register("t.Obj");
    VmEnv::new(heap, CostModel::default(), ProgramBuilder::new().build(), JitConfig::default(), 1)
}

fn req(ref_words: u16, data_words: u32) -> AllocRequest {
    AllocRequest {
        class: ClassId(0),
        ref_words,
        data_words,
        header: ObjectHeader::new(1),
        context: None,
        manual_gen: None,
        advised_gen: None,
    }
}

fn hooks() -> Rc<RefCell<dyn GcHooks>> {
    Rc::new(RefCell::new(NullHooks))
}

fn alloc_live(c: &mut dyn CollectorApi, env: &mut VmEnv, data: u32) -> Handle {
    let obj = c.allocate(env, req(0, data));
    env.heap.handles.create(obj)
}

#[test]
fn humongous_objects_survive_collections_in_place() {
    let mut env = env(1 << 20);
    let mut g1 = RegionalCollector::g1(hooks());

    // > half a region (4 KiB regions -> 256 words): humongous.
    let big = alloc_live(&mut g1, &mut env, 400);
    let obj0 = env.heap.handles.get(big);
    assert_eq!(env.heap.region(obj0.region()).kind, RegionKind::Humongous);
    {
        let o = env.heap.handles.get(big);
        env.heap.set_data(o, 399, 0xFEED);
    }

    for _ in 0..8_000 {
        let _ = g1.allocate(&mut env, req(0, 10));
    }
    assert!(g1.stats().young_gcs >= 2);
    let obj1 = env.heap.handles.get(big);
    assert_eq!(obj1, obj0, "humongous objects are not evacuated by young GCs");
    assert_eq!(env.heap.get_data(obj1, 399), 0xFEED);
}

#[test]
fn dead_humongous_regions_are_reclaimed_at_marking() {
    let mut env = env(1 << 20);
    let cfg = RegionalConfig { mark_trigger: 0.05, ..Default::default() };
    let mut g1 = RegionalCollector::with_config(cfg, hooks(), "G1");

    let big = alloc_live(&mut g1, &mut env, 400);
    assert_eq!(env.heap.num_of_kind(RegionKind::Humongous), 1);
    env.heap.handles.drop_handle(big);
    // Enough promoted mass to cross the marking trigger.
    let mut keepers = Vec::new();
    for i in 0..20_000 {
        if i % 10 == 0 && keepers.len() < 2_000 {
            keepers.push(alloc_live(&mut g1, &mut env, 10));
        } else {
            let _ = g1.allocate(&mut env, req(0, 10));
        }
    }
    assert!(g1.stats().markings >= 1);
    assert_eq!(
        env.heap.num_of_kind(RegionKind::Humongous),
        0,
        "dead humongous region must be eagerly reclaimed"
    );
}

#[test]
fn concurrent_collector_commits_allocation_headroom() {
    let mut env = env(1 << 20);
    let cost = env.cost.clone();
    let mut z = ConcurrentCollector::new(hooks(), &cost);

    let committed_start = env.heap.committed_bytes();
    let mut keep = Vec::new();
    for i in 0..30_000 {
        if i % 8 == 0 && keep.len() < 1_500 {
            keep.push(alloc_live(&mut z, &mut env, 10));
        } else {
            let _ = z.allocate(&mut env, req(0, 10));
        }
    }
    assert!(z.stats().cycles_run >= 2);
    // Headroom pre-commit makes the committed footprint exceed what plain
    // occupancy would produce.
    assert!(env.heap.committed_bytes() > committed_start);
    assert!(z.work_tax_permille() > 0, "barrier work tax must be modelled");
    assert_heap_valid(&env.heap, false);
}

#[test]
fn cms_fragmentation_eventually_forces_a_full_gc() {
    let mut env = env(1 << 20); // small heap: fragmentation bites fast
    let cfg = CmsConfig { initiating_occupancy: 0.30, tenuring_threshold: 1, ..Default::default() };
    let mut cms = CmsCollector::with_config(cfg, hooks());

    // Interleave long-lived and middle-lived objects so promoted regions
    // are never fully dead: CMS cannot sweep them and must eventually
    // compact. The middle-lived window exceeds the young GC interval so
    // the churn is promoted before it dies.
    let mut keep: Vec<Handle> = Vec::new();
    let mut churn: std::collections::VecDeque<Handle> = std::collections::VecDeque::new();
    for i in 0..150_000 {
        let h = alloc_live(&mut cms, &mut env, 8);
        if i % 7 == 0 && keep.len() < 900 {
            keep.push(h);
        } else {
            churn.push_back(h);
        }
        if churn.len() > 3_000 {
            let old = churn.pop_front().expect("non-empty");
            env.heap.handles.drop_handle(old);
        }
        if keep.len() >= 900 && i % 2_000 == 0 {
            // Rotate the keepers so old regions keep fragmenting.
            for h in keep.drain(..450) {
                env.heap.handles.drop_handle(h);
            }
        }
    }
    let stats = cms.stats();
    assert!(stats.full_gcs >= 1, "mixed-liveness old regions must force a compaction: {stats:?}");
    assert_heap_valid(&env.heap, false);
}

#[test]
fn marking_census_counts_contexts() {
    let mut env = env(1 << 20);
    let mut g1 = RegionalCollector::g1(hooks());
    // Three live objects with context 7, one with context 9.
    for _ in 0..3 {
        let obj = g1.allocate(
            &mut env,
            AllocRequest { header: ObjectHeader::new(1).with_allocation_context(7), ..req(0, 4) },
        );
        env.heap.handles.create(obj);
    }
    let obj = g1.allocate(
        &mut env,
        AllocRequest { header: ObjectHeader::new(1).with_allocation_context(9), ..req(0, 4) },
    );
    env.heap.handles.create(obj);

    let mark = mark_liveness(&mut env.heap);
    assert_eq!(mark.context_live.get(&7), Some(&3));
    assert_eq!(mark.context_live.get(&9), Some(&1));
}

#[test]
fn fresh_regions_are_not_mixed_candidates() {
    // Directly validate the liveness-staleness gate: a freshly assigned,
    // fully live old region must never be selected for mixed collection.
    let mut env = env(1 << 20);
    let cfg = RegionalConfig { mark_trigger: 2.0, ..Default::default() }; // never mark
    let mut ng2c = RegionalCollector::with_config(
        RegionalConfig { pretenuring: true, ..cfg },
        hooks(),
        "NG2C",
    );
    // Fill a dynamic generation (liveness never validated by a mark).
    for _ in 0..200 {
        let mut r = req(0, 16);
        r.manual_gen = Some(4);
        let obj = ng2c.allocate(&mut env, r);
        env.heap.handles.create(obj);
    }
    let copied_before = env.heap.stats().bytes_copied;
    for _ in 0..20_000 {
        let _ = ng2c.allocate(&mut env, req(0, 10));
    }
    // Without a marking pass those regions stay out of every cset, so no
    // dynamic-region bytes were ever copied.
    let dynamic_regions = env.heap.num_of_kind(RegionKind::Dynamic(4));
    assert!(dynamic_regions > 0);
    assert_eq!(ng2c.stats().markings, 0);
    let copied_young = env.heap.stats().bytes_copied - copied_before;
    // Copying happened only for young survivors (there are none held), so
    // essentially zero.
    assert_eq!(copied_young, 0, "fully live fresh regions must not be evacuated");
}
